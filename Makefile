GO ?= go

.PHONY: all build vet lint test race budget verify experiments bench chaos chaos-writes

all: verify

build:
	$(GO) build ./...

# vet runs the default analyzer set, then copylocks as an explicit pass so a
# future change to the default set can never silently drop it (the guarded
# structs of probecache/engine/core must not be copied). shadow and nilness
# are x/tools vettools; they run when installed and skip with a note when the
# environment has no network to install them.
vet:
	$(GO) vet ./...
	$(GO) vet -copylocks ./...
	@if command -v shadow >/dev/null 2>&1; then \
		$(GO) vet -vettool="$$(command -v shadow)" ./...; \
	else \
		echo "vet: shadow not installed, skipping (go install golang.org/x/tools/go/analysis/passes/shadow/cmd/shadow@latest)"; \
	fi
	@if command -v nilness >/dev/null 2>&1; then \
		$(GO) vet -vettool="$$(command -v nilness)" ./...; \
	else \
		echo "vet: nilness not installed, skipping (go install golang.org/x/tools/go/analysis/passes/nilness/cmd/nilness@latest)"; \
	fi

# lint runs the repo's own analyzer suite (cmd/kwslint): determinism,
# ctxflow, metricname, lockcheck, errwrap, and the CFG-based analyzers
# lockflow, leakcheck, hotpath, eventkind. See DESIGN.md §10 and §14.
lint:
	$(GO) run ./cmd/kwslint ./...

test:
	$(GO) test ./...

# The observability layer, the server middleware, the core pipeline (with
# its bitset probe engine), the engine (including the plan cache under
# concurrent Prepare/Select/Insert), the probe cache, storage (serialized
# writers against snapshot readers), and the bitmap containers are the
# concurrency-sensitive packages; run them under the race detector.
race:
	$(GO) test -race ./internal/obs ./internal/server ./internal/core ./internal/core/bitprobe ./internal/bitset ./internal/engine ./internal/probecache ./internal/storage

# budget re-runs the //kws:hotpath allocation pins on their own (they also
# run inside `test`): the manifest-driven table in internal/core requires a
# harness for every annotated function and pins warm probe servicing and
# flight logging at zero allocations.
budget:
	$(GO) test -run 'TestHotpathAllocBudgets|TestLookupRecordAllocFree' ./internal/core ./internal/invidx

verify: build vet lint test race budget

experiments:
	$(GO) run ./cmd/experiments -scale 0.02 -maxlevel 3

# Fault-injection and resource-governance tests, repeated to shake out
# scheduling-dependent flakes: engine retry/backoff under injected transient
# faults, core identity under faults, budget/deadline degradation, and
# cancellation cleanliness.
chaos:
	$(GO) test -count=5 -run 'Chaos|Fault|Retry|Budget|Deadline|Cancel' ./internal/engine ./internal/core

# Concurrent INSERT storms against in-flight warm debug runs, under the race
# detector: writers serialize in storage, readers see consistent prefixes,
# and at quiesce the repaired warm output must be byte-identical to a cold
# run at every worker count — on the prepared path and on the bitset path
# (suspect -> re-probe -> repair through bitmap semi-joins). Repeated because
# the interleavings that matter are scheduling-dependent.
chaos-writes:
	$(GO) test -race -count=3 -run 'ChaosWriteStorm|ChaosBitsetWriteStorm|RepairAcrossWorkerCounts' ./internal/core

# Probe scheduler + cache sweep, the budget degradation curve, the
# prepared-plan comparison, and the flight-recorder overhead check: renders
# the tables to stdout and writes the machine-readable reports (ns/op,
# probes/op, speedup, warm-cache hit rate at workers=1,2,4,8; MPAN recall vs
# budget fraction; text vs prepared ns/probe cold and warm; recorder-on vs
# recorder-off ns/op at workers=1,8) to BENCH_probe.json, BENCH_degrade.json,
# BENCH_plan.json, and BENCH_flight.json. GOMAXPROCS is pinned so the speedup
# columns are comparable across hosts; every report records both the
# requested and effective value.
#
# The bitset step compares the bitmap semi-join probe engine against the
# warm prepared pipeline (BENCH_bitset.json): ns per executed probe cold and
# warm, the bitset hit rate, and the warm speedup — >= 10x on the level-3
# DBLife sweep, with speedup_trusted flagging worker counts the host can
# actually run in parallel.
#
# The second invocation runs the write-churn sweep (BENCH_writes.json) at
# -maxlevel 5 — the level-5 lattice is where Q3 actually probes — showing a
# disjoint-table write invalidates 0 probe-cache entries and a warm repaired
# run beats a cold run by >= 2x fewer SQL probes.
BENCH_GOMAXPROCS ?= 4
bench:
	$(GO) run ./cmd/experiments -scale 0.02 -maxlevel 3 -only probe,degrade,plan,bitset,flight \
		-gomaxprocs $(BENCH_GOMAXPROCS) \
		-probe-json BENCH_probe.json -degrade-json BENCH_degrade.json \
		-plan-json BENCH_plan.json -bitset-json BENCH_bitset.json \
		-flight-json BENCH_flight.json
	$(GO) run ./cmd/experiments -scale 0.02 -maxlevel 5 -only writes \
		-gomaxprocs $(BENCH_GOMAXPROCS) \
		-writes-json BENCH_writes.json
