GO ?= go

.PHONY: all build vet test race verify experiments bench

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability layer, the server middleware, the core pipeline, the
# engine, and the probe cache are the concurrency-sensitive packages; run
# them under the race detector.
race:
	$(GO) test -race ./internal/obs ./internal/server ./internal/core ./internal/engine ./internal/probecache

verify: build vet test race

experiments:
	$(GO) run ./cmd/experiments -scale 0.02 -maxlevel 3

# Probe scheduler + cache sweep: renders the table to stdout and writes the
# machine-readable report (ns/op, probes/op, speedup, warm-cache hit rate at
# workers=1,2,4,8) to BENCH_probe.json.
bench:
	$(GO) run ./cmd/experiments -scale 0.02 -maxlevel 3 -only probe -probe-json BENCH_probe.json
