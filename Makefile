GO ?= go

.PHONY: all build vet test race verify experiments

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability layer, the server middleware, and the core pipeline are
# the concurrency-sensitive packages; run them under the race detector.
race:
	$(GO) test -race ./internal/obs ./internal/server ./internal/core ./internal/engine

verify: build vet test race

experiments:
	$(GO) run ./cmd/experiments -scale 0.02 -maxlevel 3
