// Repository-level benchmarks: one per table and figure of the paper's
// evaluation (§3). Each benchmark drives the same runner the cmd/experiments
// binary prints, so `go test -bench=.` regenerates every measured artifact;
// custom metrics expose the paper's counted quantities (SQL probes, lattice
// nodes) alongside wall time.
//
// The level-7 benchmarks (Table 3/4 columns, Figure 13, Figure 15) build a
// ~1.4M-node lattice once per process; expect the first level-7 benchmark to
// spend tens of seconds in setup.
package kwsdbg

import (
	"sync"
	"testing"

	"kwsdbg/internal/bench"
	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/lattice"
)

// benchScale keeps level-7 traversals affordable while preserving the
// workload's distributional structure (see DESIGN.md's substitution table).
const benchScale = 0.02

var (
	envOnce sync.Once
	envVal  *bench.Env
	envErr  error
)

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = bench.NewEnv(dblife.Config{Seed: 1, Scale: benchScale})
	})
	if envErr != nil {
		b.Fatalf("NewEnv: %v", envErr)
	}
	return envVal
}

// prepare builds the lattice for a level outside the timed region.
func prepare(b *testing.B, env *bench.Env, levels ...int) {
	b.Helper()
	for _, l := range levels {
		if _, err := env.System(l); err != nil {
			b.Fatalf("System(%d): %v", l, err)
		}
	}
	b.ResetTimer()
}

// BenchmarkFig9aLatticeNodes regenerates the level-5 lattice from scratch,
// the offline Phase 0 cost whose node counts Figure 9(a) plots.
func BenchmarkFig9aLatticeNodes(b *testing.B) {
	schema := dblife.Schema()
	var nodes, dups int
	for i := 0; i < b.N; i++ {
		l, err := lattice.GenerateOpts(schema, lattice.Options{MaxJoins: 4, KeywordSlots: 3})
		if err != nil {
			b.Fatal(err)
		}
		nodes = l.Len()
		dups = 0
		for _, st := range l.Stats() {
			dups += st.Duplicates
		}
	}
	b.ReportMetric(float64(nodes), "nodes")
	b.ReportMetric(float64(dups), "duplicates")
}

// BenchmarkFig9bLatticeGenTime times lattice generation per level bound,
// Figure 9(b)'s series.
func BenchmarkFig9bLatticeGenTime(b *testing.B) {
	schema := dblife.Schema()
	for _, level := range []int{2, 3, 4, 5} {
		b.Run(levelName(level), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lattice.GenerateOpts(schema, lattice.Options{MaxJoins: level - 1, KeywordSlots: 3}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func levelName(l int) string { return "level" + string(rune('0'+l)) }

// BenchmarkPhase12Pruning measures keyword mapping, lattice pruning, and MTN
// discovery across the whole workload (§3.3's timings).
func BenchmarkPhase12Pruning(b *testing.B) {
	env := benchEnv(b)
	sys, err := env.System(5)
	if err != nil {
		b.Fatal(err)
	}
	prepare(b, env, 5)
	var pruned, mtns int
	for i := 0; i < b.N; i++ {
		pruned, mtns = 0, 0
		for _, q := range dblife.Workload() {
			st, err := sys.Analyze(q.Keywords)
			if err != nil {
				b.Fatal(err)
			}
			pruned += st.PrunedNodes
			mtns += st.MTNs
		}
	}
	b.ReportMetric(float64(pruned), "pruned_nodes")
	b.ReportMetric(float64(mtns), "mtns")
}

// BenchmarkFig10PruningStats measures the per-query statistics of Figure 10
// (pruned nodes, MTNs, descendants, unique descendants) at level 5.
func BenchmarkFig10PruningStats(b *testing.B) {
	env := benchEnv(b)
	prepare(b, env, 5)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10(env, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11QueryCounts runs the whole workload per traversal strategy
// at level 5 and reports the executed SQL count Figure 11 plots.
func BenchmarkFig11QueryCounts(b *testing.B) {
	env := benchEnv(b)
	sys, err := env.System(5)
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range append(append([]core.Strategy{}, core.Strategies...), core.RE) {
		b.Run(strat.String(), func(b *testing.B) {
			prepare(b, env, 5)
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, q := range dblife.Workload() {
					out, err := sys.Debug(q.Keywords, core.Options{Strategy: strat})
					if err != nil {
						b.Fatal(err)
					}
					total += out.Stats.SQLExecuted
				}
			}
			b.ReportMetric(float64(total), "sql_queries")
		})
	}
}

// BenchmarkFig12TraversalTime measures end-to-end traversal wall time per
// strategy at level 5, the quantity behind Figure 12.
func BenchmarkFig12TraversalTime(b *testing.B) {
	env := benchEnv(b)
	sys, err := env.System(5)
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range core.Strategies {
		b.Run(strat.String(), func(b *testing.B) {
			prepare(b, env, 5)
			for i := 0; i < b.N; i++ {
				for _, q := range dblife.Workload() {
					if _, err := sys.Debug(q.Keywords, core.Options{Strategy: strat}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkTable3Distributions counts MTNs and MPANs across lattice levels
// 3, 5, and 7 (the paper's Table 3).
func BenchmarkTable3Distributions(b *testing.B) {
	env := benchEnv(b)
	prepare(b, env, 3, 5, 7)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(env, []int{3, 5, 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Q3Levels measures Q3's SQL counts per strategy at levels
// 3, 5, and 7 (the paper's Table 4).
func BenchmarkTable4Q3Levels(b *testing.B) {
	env := benchEnv(b)
	prepare(b, env, 3, 5, 7)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4(env, "Q3", []int{3, 5, 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13Reuse computes the reuse percentages of Figure 13 at levels
// 3, 5, and 7.
func BenchmarkFig13Reuse(b *testing.B) {
	env := benchEnv(b)
	prepare(b, env, 3, 5, 7)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig13(env, []int{3, 5, 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14Alternatives5 compares our approach against Return Nothing
// and Return Everything at level 5 (Figure 14).
func BenchmarkFig14Alternatives5(b *testing.B) {
	env := benchEnv(b)
	prepare(b, env, 5)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Alternatives(env, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15Alternatives7 is Figure 15: the same comparison with up to
// six joins, where the lattice's advantage is most dramatic.
func BenchmarkFig15Alternatives7(b *testing.B) {
	env := benchEnv(b)
	prepare(b, env, 7)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Alternatives(env, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPa sweeps the score-based heuristic's aliveness prior
// (the paper's §2.5.3 claim that pa = 0.5 works well).
func BenchmarkAblationPa(b *testing.B) {
	env := benchEnv(b)
	prepare(b, env, 5)
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationPa(env, 5, []float64{0.1, 0.5, 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRNCoverage measures the §3.8 incompleteness quantification: how
// many MPANs the Return Nothing workflow could never surface.
func BenchmarkRNCoverage(b *testing.B) {
	env := benchEnv(b)
	prepare(b, env, 5)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RNCoverage(env, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineCN measures the paper's claim (iii): lattice lookup versus
// classical query-time candidate-network generation.
func BenchmarkOnlineCN(b *testing.B) {
	env := benchEnv(b)
	prepare(b, env, 5)
	for i := 0; i < b.N; i++ {
		if _, err := bench.OnlineCN(env, 5); err != nil {
			b.Fatal(err)
		}
	}
}
