// Command dbgen materializes the synthetic DBLife dataset as a portable SQL
// script, so the evaluation data can be loaded into kwsdbg (or any tool that
// speaks the engine's dialect) without regenerating it:
//
//	dbgen -scale 0.02 -seed 1 > dblife.sql
//	kwsdbg -dataset dblife.sql "Widom Trio"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"kwsdbg/internal/dblife"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale factor (1.0 = the paper's ~801k tuples)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	eng, err := dblife.Generate(dblife.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	if err := eng.Dump(w); err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dbgen: %d tuples\n", eng.Database().TotalRows())
}
