// Command experiments regenerates every table and figure of the paper's
// evaluation section over the synthetic DBLife dataset.
//
// Usage:
//
//	experiments [-scale 0.05] [-seed 1] [-maxlevel 5] [-only fig11,tab4] [-v]
//
// With -maxlevel 7 the level-7 columns of Table 3, Table 4, Figure 13, and
// Figure 15 are produced as in the paper; level 7 lattices take tens of
// seconds and a few gigabytes, so the default stops at level 5.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"kwsdbg/internal/bench"
	"kwsdbg/internal/dblife"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale factor (1.0 = the paper's ~801k tuples)")
	seed := flag.Int64("seed", 1, "dataset generator seed")
	maxLevel := flag.Int("maxlevel", 5, "deepest lattice level to evaluate (paper uses up to 7)")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	cacheDir := flag.String("cachedir", "", "directory for persisted lattices (skips regeneration on reruns)")
	probeJSON := flag.String("probe-json", "", "path where the 'probe' step writes its JSON report")
	degradeJSON := flag.String("degrade-json", "", "path where the 'degrade' step writes its JSON report")
	planJSON := flag.String("plan-json", "", "path where the 'plan' step writes its JSON report")
	flightJSON := flag.String("flight-json", "", "path where the 'flight' step writes its JSON report")
	writesJSON := flag.String("writes-json", "", "path where the 'writes' step writes its JSON report")
	bitsetJSON := flag.String("bitset-json", "", "path where the 'bitset' step writes its JSON report")
	procs := flag.Int("gomaxprocs", 0, "set GOMAXPROCS before measuring (0 = leave the runtime default); recorded in every JSON report")
	verbose := flag.Bool("v", false, "log progress to stderr")
	flag.Parse()

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	if err := run(os.Stdout, *scale, *seed, *maxLevel, *only, *cacheDir, *probeJSON, *degradeJSON, *planJSON, *flightJSON, *writesJSON, *bitsetJSON, *procs, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// writeJSON persists one step's machine-readable report. A non-empty
// parallelism warning (num_cpu == 1, or a worker grid beyond the host's
// cores) is printed to stderr exactly once per file at generation time, so
// an untrusted speedup column is flagged where the artifact is made rather
// than discovered in review.
func writeJSON(path string, rep any, warning string) error {
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return err
	}
	if warning != "" {
		fmt.Fprintf(os.Stderr, "experiments: %s: %s\n", path, warning)
	}
	return nil
}

func run(w io.Writer, scale float64, seed int64, maxLevel int, only, cacheDir, probeJSON, degradeJSON, planJSON, flightJSON, writesJSON, bitsetJSON string, procs int, verbose bool) error {
	if maxLevel < 3 {
		return fmt.Errorf("-maxlevel must be >= 3")
	}
	selected := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }
	logf := func(format string, args ...any) {
		if verbose {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	logf("generating DBLife dataset (scale=%v seed=%d)...", scale, seed)
	env, err := bench.NewEnv(dblife.Config{Seed: seed, Scale: scale})
	if err != nil {
		return err
	}
	env.CacheDir = cacheDir
	env.Procs = procs
	fmt.Fprintf(w, "dataset: %d tuples (scale %v, seed %d); keyword slots 3\n\n",
		env.Engine().Database().TotalRows(), scale, seed)

	// The level grid the paper uses, clipped to -maxlevel.
	grid := []int{}
	for _, l := range []int{3, 5, 7} {
		if l <= maxLevel {
			grid = append(grid, l)
		}
	}
	mid := grid[len(grid)-1]
	if mid > 5 {
		mid = 5
	}

	emit := func(t *bench.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(w, t.Render())
		return nil
	}

	type step struct {
		id  string
		run func() (*bench.Table, error)
	}
	steps := []step{
		{"tab2", func() (*bench.Table, error) { return bench.Table2(), nil }},
		{"fig9a", func() (*bench.Table, error) { return bench.Fig9a(env, maxLevel) }},
		{"fig9b", func() (*bench.Table, error) { return bench.Fig9b(env, maxLevel) }},
		{"phase12", func() (*bench.Table, error) { return bench.Phase12(env, mid) }},
		{"fig10", func() (*bench.Table, error) { return bench.Fig10(env, mid) }},
		{"fig11", func() (*bench.Table, error) { return bench.Fig11(env, mid) }},
		{"fig12", func() (*bench.Table, error) { return bench.Fig12(env, mid) }},
		{"tab3", func() (*bench.Table, error) { return bench.Table3(env, grid) }},
		{"tab4", func() (*bench.Table, error) { return bench.Table4(env, "Q3", grid) }},
		{"fig13", func() (*bench.Table, error) { return bench.Fig13(env, grid) }},
		{"fig14", func() (*bench.Table, error) { return bench.Alternatives(env, mid) }},
	}
	if maxLevel >= 7 {
		steps = append(steps, step{"fig15", func() (*bench.Table, error) { return bench.Alternatives(env, 7) }})
	}
	if maxLevel >= 5 {
		// The write-churn sweep needs the level-5 lattice: below it Q3
		// prunes without issuing SQL and there are no verdicts to churn.
		steps = append(steps, step{"writes", func() (*bench.Table, error) {
			t, rep, err := bench.WritesSweep(env, 5)
			if err != nil {
				return nil, err
			}
			if writesJSON != "" {
				if err := writeJSON(writesJSON, rep, rep.Warning); err != nil {
					return nil, err
				}
			}
			return t, nil
		}})
	}
	steps = append(steps,
		step{"probe", func() (*bench.Table, error) {
			t, rep, err := bench.ProbeSweep(env, mid, []int{1, 2, 4, 8}, 3)
			if err != nil {
				return nil, err
			}
			if probeJSON != "" {
				if err := writeJSON(probeJSON, rep, rep.Warning); err != nil {
					return nil, err
				}
			}
			return t, nil
		}},
		step{"degrade", func() (*bench.Table, error) {
			t, rep, err := bench.DegradeSweep(env, mid, []float64{1, 0.75, 0.5, 0.25, 0.1})
			if err != nil {
				return nil, err
			}
			if degradeJSON != "" {
				if err := writeJSON(degradeJSON, rep, rep.Warning); err != nil {
					return nil, err
				}
			}
			return t, nil
		}},
		step{"plan", func() (*bench.Table, error) {
			t, rep, err := bench.PlanSweep(env, mid, []int{1, 4, 8}, 7)
			if err != nil {
				return nil, err
			}
			if planJSON != "" {
				if err := writeJSON(planJSON, rep, rep.Warning); err != nil {
					return nil, err
				}
			}
			return t, nil
		}},
		step{"bitset", func() (*bench.Table, error) {
			t, rep, err := bench.BitsetSweep(env, mid, []int{1, 4, 8}, 7)
			if err != nil {
				return nil, err
			}
			if bitsetJSON != "" {
				if err := writeJSON(bitsetJSON, rep, rep.Warning); err != nil {
					return nil, err
				}
			}
			return t, nil
		}},
		step{"flight", func() (*bench.Table, error) {
			t, rep, err := bench.FlightSweep(env, mid, []int{1, 8}, 7)
			if err != nil {
				return nil, err
			}
			if flightJSON != "" {
				if err := writeJSON(flightJSON, rep, rep.Warning); err != nil {
					return nil, err
				}
			}
			return t, nil
		}},
		step{"rn-coverage", func() (*bench.Table, error) { return bench.RNCoverage(env, mid) }},
		step{"online-cn", func() (*bench.Table, error) { return bench.OnlineCN(env, mid) }},
		step{"ablation-pa", func() (*bench.Table, error) {
			return bench.AblationPa(env, mid, []float64{0.1, 0.3, 0.5, 0.7, 0.9})
		}},
		step{"ablation-skew", func() (*bench.Table, error) {
			return bench.AblationSkew(env, mid, 1.4)
		}},
		step{"ablation-copies", func() (*bench.Table, error) {
			l := maxLevel
			if l > 4 {
				l = 4 // the literal lattice explodes beyond level 4
			}
			return bench.AblationCopies(env, l)
		}},
		// Last, so the snapshot reflects every experiment above; its probe
		// counters must agree with the per-figure SQL counts.
		step{"metrics", func() (*bench.Table, error) { return bench.MetricsTable(), nil }},
	)

	for _, s := range steps {
		if !want(s.id) {
			continue
		}
		start := time.Now()
		logf("running %s...", s.id)
		if err := emit(s.run()); err != nil {
			return fmt.Errorf("%s: %w", s.id, err)
		}
		logf("%s done in %v", s.id, time.Since(start))
	}
	return nil
}
