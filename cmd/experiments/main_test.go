package main

import (
	"strings"
	"testing"
)

func TestRunAllExperimentsSmall(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0.01, 1, 3, "", "", "", "", "", "", "", "", 0, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"tab2", "fig9a", "fig9b", "phase12", "fig10", "fig11", "fig12",
		"tab3", "tab4", "fig13", "fig14", "probe", "degrade", "plan", "bitset", "flight", "ablation-pa", "ablation-copies",
	} {
		if !strings.Contains(out, "== "+want) {
			t.Errorf("output missing experiment %s", want)
		}
	}
	if strings.Contains(out, "== fig15") {
		t.Error("fig15 must require -maxlevel 7")
	}
}

func TestRunOnlySelection(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0.01, 1, 3, "tab2, fig13", "", "", "", "", "", "", "", 0, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "== tab2") || !strings.Contains(out, "== fig13") {
		t.Errorf("selected experiments missing:\n%s", out)
	}
	if strings.Contains(out, "== fig11") {
		t.Error("unselected experiment ran")
	}
}

func TestRunValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0.01, 1, 2, "", "", "", "", "", "", "", "", 0, false); err == nil {
		t.Error("maxlevel 2 accepted")
	}
}
