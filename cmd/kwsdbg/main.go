// Command kwsdbg is the interactive non-answer debugger: it loads a dataset,
// accepts keyword queries, and reports answer queries, non-answer queries,
// and — for every non-answer — the maximal alive sub-queries (MPANs) that
// explain it, exactly the output the paper's system presents to developers.
//
// Usage:
//
//	kwsdbg -dataset figure2 saffron scented candle
//	kwsdbg -dataset dblife -scale 0.02 -maxjoins 4          # then type queries
//	echo "Widom Trio" | kwsdbg -dataset dblife -json
//
// In interactive mode each keyword query opens a session; what-if commands
// let the developer pin hypothetical facts and re-run without touching the
// database (the paper's "combine the search for MPANs with user
// intervention"):
//
//	> saffron scented candle
//	> :pin 123 alive        # assume node 123's sub-query matched
//	> :unpin 123
//	> :pins                 # list assumptions
//	> :reset                # drop memoized probe results after data edits
//
// The offline lattice can be cached across runs with -cache file.gob.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/report"
)

func main() {
	cfg := parseFlags()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "kwsdbg:", err)
		os.Exit(1)
	}
}

type config struct {
	dataset   string
	scale     float64
	seed      int64
	maxJoins  int
	slots     int
	strategy  string
	preview   int
	showSQL   bool
	asJSON    bool
	cachePath string
	search    bool
	topK      int
	args      []string
}

func parseFlags() config {
	var c config
	flag.StringVar(&c.dataset, "dataset", "figure2", "dataset: figure2 | dblife | a SQL script path")
	flag.Float64Var(&c.scale, "scale", 0.02, "dblife dataset scale factor")
	flag.Int64Var(&c.seed, "seed", 1, "dblife dataset seed")
	flag.IntVar(&c.maxJoins, "maxjoins", 2, "lattice join bound (lattice has maxjoins+1 levels)")
	flag.IntVar(&c.slots, "slots", 3, "maximum keywords per query")
	flag.StringVar(&c.strategy, "strategy", "SBH", "traversal: BU | TD | BUWR | TDWR | SBH | RE")
	flag.IntVar(&c.preview, "preview", 3, "result tuples to preview per alive query (0 = none)")
	flag.BoolVar(&c.showSQL, "sql", false, "print the SQL of every reported query")
	flag.BoolVar(&c.asJSON, "json", false, "emit JSON instead of text")
	flag.StringVar(&c.cachePath, "cache", "", "lattice cache file (generated if absent, loaded if present)")
	flag.BoolVar(&c.search, "search", false, "end-user mode: return ranked joined tuples instead of the debugging report")
	flag.IntVar(&c.topK, "topk", 10, "results returned in -search mode")
	flag.Parse()
	c.args = flag.Args()
	return c
}

func run(c config) error {
	strat, err := parseStrategy(c.strategy)
	if err != nil {
		return err
	}
	eng, err := loadDataset(c.dataset, c.scale, c.seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %s: %d tuples\n", c.dataset, eng.Database().TotalRows())
	lat, err := obtainLattice(eng, c)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(eng, lat)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lattice ready: %d nodes, %d levels\n", lat.Len(), lat.Levels())

	ropts := report.Options{ShowSQL: c.showSQL, Preview: c.preview, Sys: sys}
	emit := func(out *core.Output) {
		if c.asJSON {
			if err := report.JSON(os.Stdout, out, c.showSQL); err != nil {
				fmt.Fprintln(os.Stderr, "  error:", err)
			}
			return
		}
		if err := report.Text(os.Stdout, out, ropts); err != nil {
			fmt.Fprintln(os.Stderr, "  error:", err)
		}
	}

	if c.search {
		return searchMode(sys, c)
	}
	if len(c.args) > 0 {
		out, err := sys.Debug(c.args, core.Options{Strategy: strat})
		if err != nil {
			return err
		}
		emit(out)
		return nil
	}
	return interact(sys, strat, emit)
}

// searchMode serves the end-user side of the KWS-S system: ranked joined
// tuples for the keyword query (from the command line or stdin).
func searchMode(sys *core.System, c config) error {
	serve := func(keywords []string) {
		full, partial, missing, err := sys.SearchPartial(keywords, c.topK)
		if err != nil {
			fmt.Fprintln(os.Stderr, "  error:", err)
			return
		}
		switch {
		case len(missing) > 0:
			fmt.Printf("no results: %s not found anywhere in the data\n", strings.Join(missing, ", "))
		case len(full) > 0:
			for i, r := range full {
				fmt.Printf("%2d. %s\n", i+1, r)
			}
		case len(partial) > 0:
			// The paper's Figure 1: offer the maximal sub-queries' results
			// instead of an empty page.
			fmt.Printf("no exact matches for %q; closest partial matches:\n", strings.Join(keywords, " "))
			for i, p := range partial {
				fmt.Printf("%2d. [%s] %s\n", i+1, strings.Join(p.Covered, "+"), p.SearchResult)
			}
		default:
			fmt.Println("no results at all (run without -search to debug why)")
		}
	}
	if len(c.args) > 0 {
		serve(c.args)
		return nil
	}
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("search> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		if fields := strings.Fields(sc.Text()); len(fields) > 0 {
			serve(fields)
		}
	}
}

// interact runs the REPL: keyword queries plus session what-if commands.
func interact(sys *core.System, strat core.Strategy, emit func(*core.Output)) error {
	fmt.Println("enter keyword queries, one per line; :help for commands; ctrl-D to exit")
	var sess *core.Session
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, ":"):
			if err := command(sys, &sess, strat, line, emit); err != nil {
				fmt.Fprintln(os.Stderr, "  error:", err)
			}
		default:
			var err error
			sess, err = sys.NewSession(strings.Fields(line))
			if err != nil {
				fmt.Fprintln(os.Stderr, "  error:", err)
				continue
			}
			out, err := sess.Run(core.Options{Strategy: strat})
			if err != nil {
				fmt.Fprintln(os.Stderr, "  error:", err)
				continue
			}
			emit(out)
		}
	}
}

func command(sys *core.System, sess **core.Session, strat core.Strategy, line string, emit func(*core.Output)) error {
	fields := strings.Fields(line)
	rerun := func() error {
		if *sess == nil {
			return fmt.Errorf("no active query; enter a keyword query first")
		}
		out, err := (*sess).Run(core.Options{Strategy: strat})
		if err != nil {
			return err
		}
		emit(out)
		return nil
	}
	switch fields[0] {
	case ":help":
		fmt.Println("  :pin <node> alive|dead   assume a sub-query's status and re-run")
		fmt.Println("  :unpin <node>            drop an assumption and re-run")
		fmt.Println("  :pins                    list assumptions")
		fmt.Println("  :reset                   forget memoized probes (after data edits)")
		fmt.Println("  :explain <node>          show the engine's plan for a node's probe")
		fmt.Println("  :search <keywords...>    end-user view: ranked joined tuples")
		return nil
	case ":explain":
		if *sess == nil {
			return fmt.Errorf("no active query")
		}
		if len(fields) != 2 {
			return fmt.Errorf("usage: :explain <node>")
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil || id < 0 || id >= sys.Lattice().Len() {
			return fmt.Errorf("bad node id %q", fields[1])
		}
		probe, err := sys.Lattice().SQL(sys.Lattice().Node(id), (*sess).Keywords(), true)
		if err != nil {
			return err
		}
		plan, err := sys.Engine().Explain(probe)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	case ":search":
		if len(fields) < 2 {
			return fmt.Errorf("usage: :search <keywords...>")
		}
		results, missing, err := sys.Search(fields[1:], 10)
		if err != nil {
			return err
		}
		if len(missing) > 0 {
			fmt.Printf("  %s not found anywhere in the data\n", strings.Join(missing, ", "))
			return nil
		}
		for i, r := range results {
			fmt.Printf("  %2d. %s\n", i+1, r)
		}
		return nil
	case ":pin":
		if *sess == nil {
			return fmt.Errorf("no active query")
		}
		if len(fields) != 3 || (fields[2] != "alive" && fields[2] != "dead") {
			return fmt.Errorf("usage: :pin <node> alive|dead")
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil || id < 0 || id >= sys.Lattice().Len() {
			return fmt.Errorf("bad node id %q", fields[1])
		}
		(*sess).Pin(id, fields[2] == "alive")
		return rerun()
	case ":unpin":
		if *sess == nil {
			return fmt.Errorf("no active query")
		}
		if len(fields) != 2 {
			return fmt.Errorf("usage: :unpin <node>")
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad node id %q", fields[1])
		}
		(*sess).Unpin(id)
		return rerun()
	case ":pins":
		if *sess == nil {
			return fmt.Errorf("no active query")
		}
		for _, id := range (*sess).Pins() {
			fmt.Printf("  %d  %s\n", id, sys.Lattice().Node(id))
		}
		return nil
	case ":reset":
		if *sess == nil {
			return fmt.Errorf("no active query")
		}
		(*sess).Reset()
		sys.Engine().InvalidateIndex()
		return rerun()
	default:
		return fmt.Errorf("unknown command %s (try :help)", fields[0])
	}
}

func parseStrategy(name string) (core.Strategy, error) {
	switch strings.ToUpper(name) {
	case "BU":
		return core.BU, nil
	case "TD":
		return core.TD, nil
	case "BUWR":
		return core.BUWR, nil
	case "TDWR":
		return core.TDWR, nil
	case "SBH":
		return core.SBH, nil
	case "RE":
		return core.RE, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

func loadDataset(dataset string, scale float64, seed int64) (*engine.Engine, error) {
	switch dataset {
	case "figure2":
		return figure2.Engine()
	case "dblife":
		return dblife.Generate(dblife.Config{Seed: seed, Scale: scale})
	default:
		script, err := os.ReadFile(dataset)
		if err != nil {
			return nil, fmt.Errorf("dataset %q is not figure2, dblife, or a readable script: %w", dataset, err)
		}
		return engine.Load(string(script))
	}
}

// obtainLattice loads the Phase 0 artifact from the cache file when present,
// generating (and saving) it otherwise.
func obtainLattice(eng *engine.Engine, c config) (*lattice.Lattice, error) {
	opts := lattice.Options{MaxJoins: c.maxJoins, KeywordSlots: c.slots}
	if c.cachePath != "" {
		if f, err := os.Open(c.cachePath); err == nil {
			defer f.Close()
			lat, err := lattice.Load(f, eng.Database().Schema())
			if err != nil {
				return nil, fmt.Errorf("cache %s: %w", c.cachePath, err)
			}
			if lat.MaxJoins() != c.maxJoins || lat.KeywordSlots() != c.slots {
				return nil, fmt.Errorf("cache %s was built with maxjoins=%d slots=%d",
					c.cachePath, lat.MaxJoins(), lat.KeywordSlots())
			}
			fmt.Fprintf(os.Stderr, "lattice loaded from %s\n", c.cachePath)
			return lat, nil
		}
	}
	lat, err := lattice.GenerateOpts(eng.Database().Schema(), opts)
	if err != nil {
		return nil, err
	}
	if c.cachePath != "" {
		f, err := os.Create(c.cachePath)
		if err != nil {
			return nil, fmt.Errorf("cache %s: %w", c.cachePath, err)
		}
		defer f.Close()
		if err := lat.Save(f); err != nil {
			return nil, fmt.Errorf("cache %s: %w", c.cachePath, err)
		}
		fmt.Fprintf(os.Stderr, "lattice saved to %s\n", c.cachePath)
	}
	return lat, nil
}
