package main

import (
	"os"
	"path/filepath"
	"testing"

	"kwsdbg/internal/core"
)

func TestParseStrategy(t *testing.T) {
	good := map[string]core.Strategy{
		"BU": core.BU, "td": core.TD, "BuWr": core.BUWR,
		"TDWR": core.TDWR, "sbh": core.SBH, "RE": core.RE,
	}
	for in, want := range good {
		got, err := parseStrategy(in)
		if err != nil || got != want {
			t.Errorf("parseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseStrategy("nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestLoadDataset(t *testing.T) {
	eng, err := loadDataset("figure2", 0, 0)
	if err != nil || eng.Database().TotalRows() == 0 {
		t.Fatalf("figure2: %v", err)
	}
	eng, err = loadDataset("dblife", 0.01, 1)
	if err != nil || eng.Database().TotalRows() == 0 {
		t.Fatalf("dblife: %v", err)
	}
	if _, err := loadDataset("/no/such/file.sql", 0, 0); err == nil {
		t.Error("missing script accepted")
	}
	// A SQL script on disk works too.
	script := filepath.Join(t.TempDir(), "db.sql")
	if err := os.WriteFile(script, []byte("CREATE TABLE t (id INT PRIMARY KEY, s TEXT); INSERT INTO t VALUES (1, 'hello')"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err = loadDataset(script, 0, 0)
	if err != nil || eng.Database().TotalRows() != 1 {
		t.Fatalf("script dataset: %v", err)
	}
}

func TestObtainLatticeCache(t *testing.T) {
	eng, err := loadDataset("figure2", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := filepath.Join(t.TempDir(), "lat.gob")
	c := config{maxJoins: 1, slots: 2, cachePath: cache}
	lat1, err := obtainLattice(eng, c)
	if err != nil {
		t.Fatalf("generate+save: %v", err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cache not written: %v", err)
	}
	lat2, err := obtainLattice(eng, c)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if lat1.Len() != lat2.Len() {
		t.Errorf("cache round trip: %d vs %d nodes", lat1.Len(), lat2.Len())
	}
	// A cache built with different options is rejected.
	c2 := config{maxJoins: 2, slots: 2, cachePath: cache}
	if _, err := obtainLattice(eng, c2); err == nil {
		t.Error("mismatched cache accepted")
	}
}
