// Command kwsdbgd serves the keyword search system and its non-answer
// debugger over HTTP (JSON):
//
//	kwsdbgd -dataset dblife -scale 0.02 -maxjoins 4 -addr :8080
//	curl 'localhost:8080/search?q=Widom+Trio&k=5'
//	curl 'localhost:8080/debug?q=DeRose+VLDB&strategy=SBH'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/server"
)

func main() {
	dataset := flag.String("dataset", "figure2", "dataset: figure2 | dblife | a SQL script path")
	scale := flag.Float64("scale", 0.02, "dblife dataset scale factor")
	seed := flag.Int64("seed", 1, "dblife dataset seed")
	maxJoins := flag.Int("maxjoins", 2, "lattice join bound")
	slots := flag.Int("slots", 3, "maximum keywords per query")
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request probing budget")
	flag.Parse()

	eng, err := loadDataset(*dataset, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwsdbgd:", err)
		os.Exit(1)
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: *maxJoins, KeywordSlots: *slots})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwsdbgd:", err)
		os.Exit(1)
	}
	srv := server.New(sys)
	srv.Timeout = *timeout
	fmt.Fprintf(os.Stderr, "kwsdbgd: %d tuples, %d lattice nodes, serving on %s\n",
		eng.Database().TotalRows(), sys.Lattice().Len(), *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "kwsdbgd:", err)
		os.Exit(1)
	}
}

func loadDataset(dataset string, scale float64, seed int64) (*engine.Engine, error) {
	switch dataset {
	case "figure2":
		return figure2.Engine()
	case "dblife":
		return dblife.Generate(dblife.Config{Seed: seed, Scale: scale})
	default:
		script, err := os.ReadFile(dataset)
		if err != nil {
			return nil, fmt.Errorf("dataset %q: %w", dataset, err)
		}
		return engine.Load(string(script))
	}
}
