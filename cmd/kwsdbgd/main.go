// Command kwsdbgd serves the keyword search system and its non-answer
// debugger over HTTP (JSON):
//
//	kwsdbgd -dataset dblife -scale 0.02 -maxjoins 4 -addr :8080
//	curl 'localhost:8080/search?q=Widom+Trio&k=5'
//	curl 'localhost:8080/debug?q=DeRose+VLDB&strategy=SBH&trace=1'
//	curl 'localhost:8080/metrics'
//
// With -debug-addr a second listener exposes net/http/pprof under
// /debug/pprof/, expvar under /debug/vars, and a /metrics mirror, kept off
// the public address. SIGINT/SIGTERM trigger a graceful shutdown that drains
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/obs"
	"kwsdbg/internal/server"
)

func main() {
	dataset := flag.String("dataset", "figure2", "dataset: figure2 | dblife | a SQL script path")
	scale := flag.Float64("scale", 0.02, "dblife dataset scale factor")
	seed := flag.Int64("seed", 1, "dblife dataset seed")
	maxJoins := flag.Int("maxjoins", 2, "lattice join bound")
	slots := flag.Int("slots", 3, "maximum keywords per query")
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional second listen address for pprof/expvar/metrics (disabled when empty)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request probing budget")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	if err := run(logger, *dataset, *scale, *seed, *maxJoins, *slots, *addr, *debugAddr, *timeout); err != nil {
		logger.Error("fatal", slog.String("error", err.Error()))
		os.Exit(1)
	}
}

func run(logger *slog.Logger, dataset string, scale float64, seed int64, maxJoins, slots int, addr, debugAddr string, timeout time.Duration) error {
	eng, err := loadDataset(dataset, scale, seed)
	if err != nil {
		return err
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: maxJoins, KeywordSlots: slots})
	if err != nil {
		return err
	}
	srv := server.New(sys)
	srv.Timeout = timeout
	srv.Logger = logger

	// Expose the serving system's shape through expvar alongside the
	// runtime's memstats, for the /debug/vars listener.
	expvar.Publish("kwsdbg", expvar.Func(func() any {
		return map[string]any{
			"dataset":       dataset,
			"lattice_nodes": sys.Lattice().Len(),
			"levels":        sys.Lattice().Levels(),
			"tuples":        eng.Database().TotalRows(),
		}
	}))

	// Write timeout leaves headroom over the probing budget so a slow
	// traversal is cancelled by the request context, not cut off mid-body.
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      timeout + 10*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if debugAddr != "" {
		go serveDebug(logger, debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Info("serving",
		slog.String("addr", addr),
		slog.String("dataset", dataset),
		slog.Int("tuples", eng.Database().TotalRows()),
		slog.Int("lattice_nodes", sys.Lattice().Len()))

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately
	logger.Info("shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), timeout+5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("bye")
	return nil
}

// serveDebug runs the operator-only listener: pprof, expvar, and a metrics
// mirror. Failures are logged, not fatal — the main service keeps running.
func serveDebug(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", obs.Default.Handler())
	hs := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("debug listener", slog.String("addr", addr))
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("debug listener failed", slog.String("error", err.Error()))
	}
}

func loadDataset(dataset string, scale float64, seed int64) (*engine.Engine, error) {
	switch dataset {
	case "figure2":
		return figure2.Engine()
	case "dblife":
		return dblife.Generate(dblife.Config{Seed: seed, Scale: scale})
	default:
		script, err := os.ReadFile(dataset)
		if err != nil {
			return nil, fmt.Errorf("dataset %q: %w", dataset, err)
		}
		return engine.Load(string(script))
	}
}
