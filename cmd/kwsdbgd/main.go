// Command kwsdbgd serves the keyword search system and its non-answer
// debugger over HTTP (JSON):
//
//	kwsdbgd -dataset dblife -scale 0.02 -maxjoins 4 -addr :8080
//	curl 'localhost:8080/search?q=Widom+Trio&k=5'
//	curl 'localhost:8080/debug?q=DeRose+VLDB&strategy=SBH&trace=1'
//	curl 'localhost:8080/metrics'
//
// With -debug-addr a second listener exposes net/http/pprof under
// /debug/pprof/, expvar under /debug/vars, and a /metrics mirror, kept off
// the public address. SIGINT/SIGTERM trigger a graceful shutdown that drains
// in-flight requests before exiting.
//
// Resource governance: -max-inflight caps concurrent debug/search work
// (overflow is shed with 429), -request-timeout and -probe-budget bound one
// request's probing (exhaustion yields a partial, flagged result rather than
// an error), and -retry-max controls how often transient SQL failures are
// retried with exponential backoff.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/obs"
	"kwsdbg/internal/obs/flight"
	"kwsdbg/internal/probecache"
	"kwsdbg/internal/server"
)

func main() {
	dataset := flag.String("dataset", "figure2", "dataset: figure2 | dblife | a SQL script path")
	scale := flag.Float64("scale", 0.02, "dblife dataset scale factor")
	seed := flag.Int64("seed", 1, "dblife dataset seed")
	maxJoins := flag.Int("maxjoins", 2, "lattice join bound")
	slots := flag.Int("slots", 3, "maximum keywords per query")
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional second listen address for pprof/expvar/metrics (disabled when empty)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request probing time budget")
	flag.DurationVar(timeout, "request-timeout", 30*time.Second, "alias for -timeout")
	workers := flag.Int("workers", 1, "default probe concurrency per /debug request (1 = serial; requests override with ?workers=)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent /debug and /search requests; overflow is shed with 429 (0 = unlimited)")
	probeBudget := flag.Int("probe-budget", 0, "max SQL probes per /debug request; exhaustion yields a partial result (0 = unlimited)")
	retryMax := flag.Int("retry-max", engine.DefaultRetry.MaxAttempts, "SQL executions per probe on transient failures, including the first (1 = no retries)")
	cacheSize := flag.Int("probe-cache-size", probecache.DefaultMaxEntries, "cross-request probe cache entries (0 disables the cache, negative = unbounded)")
	cacheTTL := flag.Duration("probe-cache-ttl", 0, "probe cache entry lifetime (0 = no TTL)")
	planCacheSize := flag.Int("plan-cache-size", engine.DefaultPlanCacheSize, "compiled probe-plan cache entries, per path (0 disables, negative = unbounded)")
	ledgerDir := flag.String("ledger-dir", "", "directory for ?ledger=1 JSONL run ledgers (empty disables ledgers)")
	flightRing := flag.Int("flight-ring", 0, "flight recorder ring slots, rounded up to a power of two (0 = default)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	cfg := serveConfig{
		dataset: *dataset, scale: *scale, seed: *seed,
		maxJoins: *maxJoins, slots: *slots,
		addr: *addr, debugAddr: *debugAddr,
		timeout: *timeout, workers: *workers,
		cacheSize: *cacheSize, cacheTTL: *cacheTTL,
		maxInflight: *maxInflight, probeBudget: *probeBudget, retryMax: *retryMax,
		planCacheSize: *planCacheSize,
		ledgerDir:     *ledgerDir, flightRing: *flightRing,
	}
	if err := run(logger, cfg); err != nil {
		logger.Error("fatal", slog.String("error", err.Error()))
		os.Exit(1)
	}
}

type serveConfig struct {
	dataset         string
	scale           float64
	seed            int64
	maxJoins, slots int
	addr, debugAddr string
	timeout         time.Duration
	workers         int
	cacheSize       int
	cacheTTL        time.Duration
	maxInflight     int
	probeBudget     int
	retryMax        int
	planCacheSize   int
	ledgerDir       string
	flightRing      int
}

func run(logger *slog.Logger, cfg serveConfig) error {
	dataset, addr, debugAddr, timeout := cfg.dataset, cfg.addr, cfg.debugAddr, cfg.timeout
	eng, err := loadDataset(dataset, cfg.scale, cfg.seed)
	if err != nil {
		return err
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: cfg.maxJoins, KeywordSlots: cfg.slots})
	if err != nil {
		return err
	}
	if cfg.cacheSize != 0 {
		sys.SetProbeCache(probecache.New(probecache.Config{MaxEntries: cfg.cacheSize, TTL: cfg.cacheTTL}))
	}
	if cfg.retryMax > 0 {
		eng.SetRetryPolicy(engine.RetryPolicy{MaxAttempts: cfg.retryMax})
	}
	if cfg.planCacheSize != engine.DefaultPlanCacheSize {
		sys.SetPlanCacheSize(cfg.planCacheSize)
	}
	srv := server.New(sys)
	srv.Timeout = timeout
	srv.Workers = cfg.workers
	srv.Logger = logger
	srv.MaxInflight = cfg.maxInflight
	srv.ProbeBudget = cfg.probeBudget
	if cfg.flightRing > 0 {
		srv.Recorder = flight.NewRecorder(cfg.flightRing)
	}
	if cfg.ledgerDir != "" {
		if err := os.MkdirAll(cfg.ledgerDir, 0o755); err != nil {
			return fmt.Errorf("ledger dir: %w", err)
		}
		srv.LedgerDir = cfg.ledgerDir
	}

	// Expose the serving system's shape through expvar alongside the
	// runtime's memstats, for the /debug/vars listener.
	expvar.Publish("kwsdbg", expvar.Func(func() any {
		v := map[string]any{
			"dataset":       dataset,
			"lattice_nodes": sys.Lattice().Len(),
			"levels":        sys.Lattice().Levels(),
			"tuples":        eng.Database().TotalRows(),
			"workers":       cfg.workers,
		}
		if c := sys.ProbeCache(); c != nil {
			st := c.Snapshot()
			v["probe_cache"] = map[string]any{
				"entries": st.Entries, "hits": st.Hits,
				"misses": st.Misses, "evictions": st.Evictions,
			}
		}
		return v
	}))

	// Write timeout leaves headroom over the probing budget so a slow
	// traversal is cancelled by the request context, not cut off mid-body.
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      timeout + 10*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if debugAddr != "" {
		//lint:ignore kwslint/leakcheck process-lifetime debug listener; dies with the process
		go serveDebug(logger, debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Info("serving",
		slog.String("addr", addr),
		slog.String("dataset", dataset),
		slog.Int("tuples", eng.Database().TotalRows()),
		slog.Int("lattice_nodes", sys.Lattice().Len()))

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately
	logger.Info("shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), timeout+5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("bye")
	return nil
}

// serveDebug runs the operator-only listener: pprof, expvar, and a metrics
// mirror. Failures are logged, not fatal — the main service keeps running.
func serveDebug(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", obs.Default.Handler())
	hs := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("debug listener", slog.String("addr", addr))
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("debug listener failed", slog.String("error", err.Error()))
	}
}

func loadDataset(dataset string, scale float64, seed int64) (*engine.Engine, error) {
	switch dataset {
	case "figure2":
		return figure2.Engine()
	case "dblife":
		return dblife.Generate(dblife.Config{Seed: seed, Scale: scale})
	default:
		script, err := os.ReadFile(dataset)
		if err != nil {
			return nil, fmt.Errorf("dataset %q: %w", dataset, err)
		}
		return engine.Load(string(script))
	}
}
