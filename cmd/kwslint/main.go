// Command kwslint is the repo's multichecker: it runs the internal/lint
// analyzer suite over the module and fails the build on any diagnostic.
//
// The nine analyzers encode invariants that previously lived only in
// reviewers' heads (see DESIGN.md §10 and §14):
//
//	determinism  no wall-clock/randomness or map-order leaks in output paths
//	ctxflow      contexts are threaded, never dropped or re-minted
//	metricname   every kwsdbg_* metric is well-formed and registered
//	lockcheck    `guarded by mu` fields are only touched under their mutex
//	errwrap      error chains survive wrapping; sentinels use errors.Is
//	lockflow     CFG-based Lock/Unlock balance on every path; lock-order cycles
//	leakcheck    every `go` statement carries join or cancellation evidence
//	hotpath      //kws:hotpath functions avoid allocation-prone constructs
//	eventkind    flight Kind enum, kindNames, and registry stay in lockstep
//
// Usage:
//
//	kwslint [-run name,name] [-list] [packages...]
//
// Packages default to ./... relative to the working directory. Exit status
// is 0 when clean, 1 when diagnostics were reported, 2 on load failure.
// Diagnostics are suppressed line-by-line with
//
//	//lint:ignore kwslint/<name> reason
//
// where the reason is mandatory (see internal/lint/ignore).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"kwsdbg/internal/lint/analysis"
	"kwsdbg/internal/lint/ctxflow"
	"kwsdbg/internal/lint/determinism"
	"kwsdbg/internal/lint/errwrap"
	"kwsdbg/internal/lint/eventkind"
	"kwsdbg/internal/lint/hotpath"
	"kwsdbg/internal/lint/ignore"
	"kwsdbg/internal/lint/leakcheck"
	"kwsdbg/internal/lint/loadpkg"
	"kwsdbg/internal/lint/lockcheck"
	"kwsdbg/internal/lint/lockflow"
	"kwsdbg/internal/lint/metricname"
)

// suite is the full analyzer set, in stable display order.
var suite = []*analysis.Analyzer{
	ctxflow.Analyzer,
	determinism.Analyzer,
	errwrap.Analyzer,
	eventkind.Analyzer,
	hotpath.Analyzer,
	leakcheck.Analyzer,
	lockcheck.Analyzer,
	lockflow.Analyzer,
	metricname.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("kwslint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Parse(args)

	if *list {
		for _, a := range suite {
			fmt.Printf("%-22s %s\n", a.Check(), a.Doc)
		}
		return 0
	}

	analyzers := suite
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "kwslint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kwslint: %v\n", err)
		return 2
	}
	set, err := loadpkg.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kwslint: %v\n", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, pkg := range set.Packages() {
		dirs, malformed := ignore.Parse(pkg.Fset, pkg.Files)
		diags = append(diags, malformed...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "kwslint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
			diags = append(diags, ignore.Filter(pkg.Fset, dirs, pass.Diags)...)
		}
	}

	fset := set.Fset()
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Check < diags[j].Check
	})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := relPath(wd, name); err == nil {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kwslint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// relPath shortens filenames under the working directory.
func relPath(wd, name string) (string, error) {
	if !strings.HasPrefix(name, wd+string(os.PathSeparator)) {
		return "", fmt.Errorf("outside wd")
	}
	return name[len(wd)+1:], nil
}
