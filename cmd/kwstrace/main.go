// Command kwstrace analyzes the JSONL run ledgers written by kwsdbgd
// (-ledger-dir plus /debug?ledger=1): per-probe provenance for one run, the
// probes the run spent its SQL time on, and — the triage workhorse — a causal
// diff of two runs of the same query.
//
// Usage:
//
//	kwstrace summary run.jsonl        one run's digest: phases, cache hit
//	                                  rate, event tallies
//	kwstrace slow [-top N] run.jsonl  slowest probes by SQL time, with each
//	                                  probe's full event chain
//	kwstrace diff [-top N] a.jsonl b.jsonl
//	                                  what B did that A didn't: newly missed
//	                                  caches, replans, retries, new probes,
//	                                  and how much of the SQL-time delta
//	                                  they explain
//
// The diff reads A as the baseline (typically a warm run) and B as the run
// under investigation (typically cold or regressed). Probes are matched
// across runs by their cross-request probe-cache key, so the comparison
// survives lattice renumbering between builds.
//
// Exit status is 0 on success, 1 on bad usage, 2 when a ledger cannot be
// read.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kwsdbg/internal/obs/flight"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	if len(args) < 1 {
		usage()
		return 1
	}
	switch args[0] {
	case "summary":
		return summaryCmd(args[1:], out)
	case "slow":
		return slowCmd(args[1:], out)
	case "diff":
		return diffCmd(args[1:], out)
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "kwstrace: unknown subcommand %q\n", args[0])
		usage()
		return 1
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  kwstrace summary run.jsonl
  kwstrace slow [-top N] run.jsonl
  kwstrace diff [-top N] a.jsonl b.jsonl
`)
}

// load reads and digests one ledger, reporting errors itself so the
// subcommands share the exit-status convention.
func load(path string) (*flight.Analysis, bool) {
	led, err := flight.LoadLedger(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kwstrace: %v\n", err)
		return nil, false
	}
	return flight.Analyze(led), true
}

func summaryCmd(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("kwstrace summary", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		return 1
	}
	a, ok := load(fs.Arg(0))
	if !ok {
		return 2
	}
	a.RenderSummary(out)
	return 0
}

func slowCmd(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("kwstrace slow", flag.ExitOnError)
	top := fs.Int("top", 20, "how many probes to show")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		return 1
	}
	a, ok := load(fs.Arg(0))
	if !ok {
		return 2
	}
	a.RenderSlow(out, *top)
	return 0
}

func diffCmd(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("kwstrace diff", flag.ExitOnError)
	top := fs.Int("top", 20, "how many changed probes to show")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		return 1
	}
	a, ok := load(fs.Arg(0))
	if !ok {
		return 2
	}
	b, ok := load(fs.Arg(1))
	if !ok {
		return 2
	}
	flight.Diff(a, b).RenderDiff(out, fs.Arg(0), fs.Arg(1), *top)
	return 0
}
