package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kwsdbg/internal/obs/flight"
)

// writeLedger writes a small synthetic ledger and returns its path. warm runs
// answer every probe from the cache; cold runs miss and execute SQL.
func writeLedger(t *testing.T, dir, req string, warm bool) string {
	t.Helper()
	var events []flight.Event
	seq := uint64(0)
	emit := func(k flight.Kind, node int32, probe string, alive bool, dur time.Duration, cause string) {
		seq++
		events = append(events, flight.Event{
			Seq: seq, Req: req, Kind: k, Node: node, Probe: probe,
			Alive: alive, Dur: dur, Cause: cause,
		})
	}
	sum := flight.RunSummary{Req: req, Keywords: []string{"a", "b"}, Strategy: "SBH"}
	for node := int32(1); node <= 3; node++ {
		key := "R{a}" + string(rune('0'+node))
		emit(flight.Admit, node, "", false, 0, "")
		if warm {
			emit(flight.ProbeCacheHit, node, key, true, 0, "")
			sum.CacheHits++
		} else {
			emit(flight.ProbeCacheMiss, node, key, false, 0, "cold")
			emit(flight.Replan, node, key, false, 0, "cold")
			emit(flight.SQLExec, node, key, true, time.Duration(node)*time.Millisecond, "")
			sum.SQLMS += float64(node)
		}
		emit(flight.Verdict, node, "", true, 0, "")
		sum.Probes++
	}
	sum.Events = len(events)
	path, err := flight.WriteLedgerFile(dir, req, events, &sum)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarySlowDiff(t *testing.T) {
	dir := t.TempDir()
	warm := writeLedger(t, dir, "warm-run", true)
	cold := writeLedger(t, dir, "cold-run", false)

	var sb strings.Builder
	if code := run([]string{"summary", cold}, &sb); code != 0 {
		t.Fatalf("summary exit = %d", code)
	}
	for _, want := range []string{"cold-run", "probes", "sql"} {
		if !strings.Contains(strings.ToLower(sb.String()), want) {
			t.Errorf("summary missing %q:\n%s", want, sb.String())
		}
	}

	sb.Reset()
	if code := run([]string{"slow", "-top", "2", cold}, &sb); code != 0 {
		t.Fatalf("slow exit = %d", code)
	}
	// Node 3 carries the most SQL time; with -top 2 node 1 must be cut.
	if !strings.Contains(sb.String(), "3ms") {
		t.Errorf("slow omitted the slowest probe:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "1ms") {
		t.Errorf("slow -top 2 still shows the fastest probe:\n%s", sb.String())
	}

	sb.Reset()
	if code := run([]string{"diff", warm, cold}, &sb); code != 0 {
		t.Fatalf("diff exit = %d", code)
	}
	out := sb.String()
	// 1+2+3 ms of cold SQL, all newly missed, all attributed.
	for _, want := range []string{"sql delta (B-A): 6ms", "+3ms", "newly-missed", "(100%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}
}

func TestUsageAndReadErrors(t *testing.T) {
	var sb strings.Builder
	if code := run(nil, &sb); code != 1 {
		t.Errorf("no args: exit = %d, want 1", code)
	}
	if code := run([]string{"frobnicate"}, &sb); code != 1 {
		t.Errorf("unknown subcommand: exit = %d, want 1", code)
	}
	if code := run([]string{"summary"}, &sb); code != 1 {
		t.Errorf("summary with no file: exit = %d, want 1", code)
	}
	if code := run([]string{"diff", "only-one.jsonl"}, &sb); code != 1 {
		t.Errorf("diff with one file: exit = %d, want 1", code)
	}
	if code := run([]string{"help"}, &sb); code != 0 {
		t.Errorf("help: exit = %d, want 0", code)
	}

	if code := run([]string{"summary", filepath.Join(t.TempDir(), "absent.jsonl")}, &sb); code != 2 {
		t.Errorf("missing ledger: exit = %d, want 2", code)
	}
	garbage := filepath.Join(t.TempDir(), "garbage.jsonl")
	if err := os.WriteFile(garbage, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"summary", garbage}, &sb); code != 2 {
		t.Errorf("garbage ledger: exit = %d, want 2", code)
	}
	dir := t.TempDir()
	good := writeLedger(t, dir, "ok", true)
	if code := run([]string{"diff", good, filepath.Join(dir, "absent.jsonl")}, &sb); code != 2 {
		t.Errorf("diff with one unreadable ledger: exit = %d, want 2", code)
	}
}
