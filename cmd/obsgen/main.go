// Command obsgen generates the metric registry and its documentation.
//
// It scans every module package for internal/obs Registry factory calls
// (Counter, Gauge, Histogram and their Vec variants), collects the
// compile-time-constant family names with their types, labels, and help
// strings, and emits
//
//   - internal/obs/registry.go — the generated registry the kwslint
//     metricname analyzer checks declared names against,
//   - the metric table in DESIGN.md, rewritten in place between the
//     `begin/end generated metric table` HTML comment markers,
//   - internal/obs/flight/kinds_gen.go — the flight-event KindRegistry the
//     kwslint eventkind analyzer requires every Kind constant to appear in,
//     and
//   - internal/lint/hotpath/manifest_gen.go — the list of //kws:hotpath
//     functions, which the AllocsPerRun budget test in internal/core walks
//     so the static rule and the runtime budget pin each other.
//
// One scan feeds every output, which is the point: a metric cannot be
// registered without being documented, a flight kind cannot record without
// a registry row, a hot-path annotation cannot exist without a runtime
// budget, and kwslint refuses the stale state, so skipping
// `go generate ./internal/obs` fails the build rather than drifting.
//
// A non-constant metric name or help string is a fatal error here and a
// kwslint/metricname diagnostic in the analyzer; obsgen reports it with a
// position so either tool leads to the same fix.
package main

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/format"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"kwsdbg/internal/lint/hotpath"
	"kwsdbg/internal/lint/loadpkg"
)

// factoryType maps a Registry factory method to the metric type it creates
// and the argument index where labels start (-1 when unlabeled).
var factoryType = map[string]struct {
	typ        string
	labelsFrom int
}{
	"Counter":      {"counter", -1},
	"Gauge":        {"gauge", -1},
	"Histogram":    {"histogram", -1},
	"CounterVec":   {"counter", 2},
	"GaugeVec":     {"gauge", 2},
	"HistogramVec": {"histogram", 3},
}

var namePattern = regexp.MustCompile(`^kwsdbg_[a-z0-9_]+$`)

type metric struct {
	Name    string
	Type    string
	Labels  []string
	Help    string
	Package string
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obsgen:", err)
		os.Exit(1)
	}
}

func run() error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	set, err := loadpkg.Load(root, "./...")
	if err != nil {
		return err
	}
	metrics, err := collect(set)
	if err != nil {
		return err
	}
	if err := writeRegistry(filepath.Join(root, "internal", "obs", "registry.go"), metrics); err != nil {
		return err
	}
	if err := rewriteDesignTable(filepath.Join(root, "DESIGN.md"), metrics); err != nil {
		return err
	}
	kinds, err := collectKinds(set)
	if err != nil {
		return err
	}
	if err := writeKindRegistry(filepath.Join(root, "internal", "obs", "flight", "kinds_gen.go"), kinds); err != nil {
		return err
	}
	annotated := collectHotpath(set)
	if err := writeHotpathManifest(filepath.Join(root, "internal", "lint", "hotpath", "manifest_gen.go"), annotated); err != nil {
		return err
	}
	fmt.Printf("obsgen: %d metric families, %d flight kinds, %d hot-path functions\n",
		len(metrics), len(kinds), len(annotated))
	return nil
}

// moduleRoot walks up from the working directory to the nearest go.mod, so
// `go generate ./internal/obs` and a top-level invocation both work.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func collect(set *loadpkg.Set) ([]metric, error) {
	byName := make(map[string]*metric)
	for _, pkg := range set.Packages() {
		if pkg.ImportPath == "kwsdbg/internal/obs" {
			continue // the factories themselves, not declarations
		}
		var walkErr error
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if walkErr != nil {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				m, ok, err := metricFromCall(pkg, call)
				if err != nil {
					walkErr = err
					return false
				}
				if !ok {
					return true
				}
				if prev, dup := byName[m.Name]; dup {
					if prev.Type != m.Type || strings.Join(prev.Labels, ",") != strings.Join(m.Labels, ",") {
						walkErr = fmt.Errorf("%s: metric %q redeclared as %s%v (first seen as %s%v in %s)",
							pkg.Fset.Position(call.Pos()), m.Name, m.Type, m.Labels, prev.Type, prev.Labels, prev.Package)
						return false
					}
					if !strings.Contains(prev.Package, m.Package) {
						prev.Package += ", " + m.Package
					}
					return true
				}
				byName[m.Name] = &m
				return true
			})
		}
		if walkErr != nil {
			return nil, walkErr
		}
	}
	out := make([]metric, 0, len(byName))
	for _, m := range byName {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// metricFromCall recognizes an obs Registry factory call and extracts its
// declaration. ok is false for unrelated calls; err is a hard failure
// (non-constant name/help on a real factory call).
func metricFromCall(pkg *loadpkg.Package, call *ast.CallExpr) (metric, bool, error) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return metric{}, false, nil
	}
	ft, ok := factoryType[sel.Sel.Name]
	if !ok || len(call.Args) < 2 {
		return metric{}, false, nil
	}
	fn, ok := pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return metric{}, false, nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isObsRegistry(recv.Type()) {
		return metric{}, false, nil
	}

	pos := pkg.Fset.Position(call.Pos())
	name, ok := constString(pkg, call.Args[0])
	if !ok {
		return metric{}, false, fmt.Errorf("%s: metric name is not a compile-time constant", pos)
	}
	if !namePattern.MatchString(name) {
		return metric{}, false, fmt.Errorf("%s: metric name %q does not match %s", pos, name, namePattern)
	}
	help, ok := constString(pkg, call.Args[1])
	if !ok {
		return metric{}, false, fmt.Errorf("%s: help string of %q is not a compile-time constant", pos, name)
	}
	var labels []string
	if ft.labelsFrom >= 0 {
		for i, arg := range call.Args[ft.labelsFrom:] {
			l, ok := constString(pkg, arg)
			if !ok {
				return metric{}, false, fmt.Errorf("%s: label %d of %q is not a compile-time constant", pos, i, name)
			}
			labels = append(labels, l)
		}
	}
	return metric{Name: name, Type: ft.typ, Labels: labels, Help: help, Package: pkg.ImportPath}, true, nil
}

func constString(pkg *loadpkg.Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func isObsRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "kwsdbg/internal/obs" && obj.Name() == "Registry"
}

func writeRegistry(path string, metrics []metric) error {
	var b strings.Builder
	b.WriteString(`// Code generated by cmd/obsgen. DO NOT EDIT.
//
// This file is the single source of truth for the kwsdbg metric namespace:
// the kwslint metricname analyzer refuses metric names that are not listed
// here, and DESIGN.md's metric table is rendered from the same data.
// Regenerate with ` + "`go generate ./internal/obs`" + ` after adding or changing a
// metric declaration.
package obs

// RegisteredMetric describes one metric family declared somewhere in the
// module via a Registry factory call.
type RegisteredMetric struct {
	Name    string
	Type    string   // counter | gauge | histogram
	Labels  []string // nil when unlabeled
	Help    string
	Package string // declaring package import path
}

// Registered lists every metric family in the module, sorted by name.
var Registered = []RegisteredMetric{
`)
	for _, m := range metrics {
		labels := "nil"
		if len(m.Labels) > 0 {
			quoted := make([]string, len(m.Labels))
			for i, l := range m.Labels {
				quoted[i] = fmt.Sprintf("%q", l)
			}
			labels = "[]string{" + strings.Join(quoted, ", ") + "}"
		}
		fmt.Fprintf(&b, "\t{Name: %q, Type: %q, Labels: %s, Help: %q, Package: %q},\n",
			m.Name, m.Type, labels, m.Help, m.Package)
	}
	b.WriteString(`}

// RegisteredNames returns the set of declared metric family names.
func RegisteredNames() map[string]bool {
	m := make(map[string]bool, len(Registered))
	for _, r := range Registered {
		m[r.Name] = true
	}
	return m
}
`)
	src, err := format.Source([]byte(b.String()))
	if err != nil {
		return fmt.Errorf("formatting registry.go: %w", err)
	}
	return os.WriteFile(path, src, 0o644)
}

const (
	beginMarker = "<!-- begin generated metric table (cmd/obsgen) -->"
	endMarker   = "<!-- end generated metric table (cmd/obsgen) -->"
)

func rewriteDesignTable(path string, metrics []metric) error {
	doc, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	text := string(doc)
	begin := strings.Index(text, beginMarker)
	end := strings.Index(text, endMarker)
	if begin < 0 || end < 0 || end < begin {
		return fmt.Errorf("%s: missing %q / %q markers", path, beginMarker, endMarker)
	}

	var b strings.Builder
	b.WriteString(beginMarker)
	b.WriteString("\n| Metric | Type | Labels | Declared in | Meaning |\n|---|---|---|---|---|\n")
	for _, m := range metrics {
		labels := "—"
		if len(m.Labels) > 0 {
			quoted := make([]string, len(m.Labels))
			for i, l := range m.Labels {
				quoted[i] = "`" + l + "`"
			}
			labels = strings.Join(quoted, ", ")
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | `%s` | %s |\n",
			m.Name, m.Type, labels, strings.TrimPrefix(m.Package, "kwsdbg/"), escapeCell(m.Help))
	}
	out := text[:begin] + b.String() + text[end:]
	return os.WriteFile(path, []byte(out), 0o644)
}

// escapeCell keeps help text table-safe: pipes would split the row.
func escapeCell(s string) string {
	return strings.ReplaceAll(strings.TrimSpace(s), "|", `\|`)
}

const flightPath = "kwsdbg/internal/obs/flight"

// kindEntry is one flight Kind constant with its wire name and doc line.
type kindEntry struct {
	Const string // Go constant name, e.g. "Admit"
	Name  string // stable wire name from kindNames, e.g. "admit"
	Doc   string // declaration comment, collapsed to one line
}

// collectKinds reads the flight package's Kind enum and kindNames table.
func collectKinds(set *loadpkg.Set) ([]kindEntry, error) {
	var flight *loadpkg.Package
	for _, pkg := range set.Packages() {
		if pkg.ImportPath == flightPath {
			flight = pkg
			break
		}
	}
	if flight == nil {
		return nil, fmt.Errorf("package %s not found in module", flightPath)
	}

	names := kindWireNames(flight)
	var out []kindEntry
	for _, f := range flight.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					c, ok := flight.TypesInfo.Defs[id].(*types.Const)
					if !ok || !c.Exported() {
						continue
					}
					named, ok := c.Type().(*types.Named)
					if !ok || named.Obj().Name() != "Kind" {
						continue
					}
					wire, ok := names[id.Name]
					if !ok {
						return nil, fmt.Errorf("%s: flight Kind %s has no kindNames entry",
							flight.Fset.Position(id.Pos()), id.Name)
					}
					out = append(out, kindEntry{
						Const: id.Name,
						Name:  wire,
						Doc:   collapseDoc(vs.Doc, id.Name),
					})
				}
			}
		}
	}
	return out, nil
}

// kindWireNames maps Kind constant names to their wire strings by reading
// the kindNames composite literal.
func kindWireNames(pkg *loadpkg.Package) map[string]string {
	out := map[string]string{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, id := range vs.Names {
				if id.Name != "kindNames" || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, el := range cl.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if s, ok := constString(pkg, kv.Value); ok {
						out[key.Name] = s
					}
				}
			}
			return true
		})
	}
	return out
}

// collapseDoc flattens a declaration comment to one line, dropping the
// leading "Name:" convention the enum comments use.
func collapseDoc(cg *ast.CommentGroup, name string) string {
	text := strings.Join(strings.Fields(cg.Text()), " ")
	text = strings.TrimPrefix(text, name+":")
	return strings.TrimSpace(text)
}

func writeKindRegistry(path string, kinds []kindEntry) error {
	var b strings.Builder
	b.WriteString(`// Code generated by cmd/obsgen. DO NOT EDIT.
//
// KindRegistry is the machine-readable index of the flight recorder's event
// schema: one row per Kind constant, in enum order, with the stable wire
// name String() emits. The kwslint eventkind analyzer requires every Kind
// constant to appear here, so a new event kind cannot ship without
// regenerating (` + "`go generate ./internal/obs`" + `) — which also refreshes the
// metric registry and hot-path manifest from the same scan.
package flight

// RegisteredKind describes one probe-lifecycle event kind.
type RegisteredKind struct {
	Kind Kind
	Name string // stable wire name, as emitted by Kind.String
	Doc  string // declaration comment, one line
}

// KindRegistry lists every event kind, in enum order.
var KindRegistry = []RegisteredKind{
`)
	for _, k := range kinds {
		fmt.Fprintf(&b, "\t{%s, %q, %q},\n", k.Const, k.Name, k.Doc)
	}
	b.WriteString("}\n")
	src, err := format.Source([]byte(b.String()))
	if err != nil {
		return fmt.Errorf("formatting kinds_gen.go: %w", err)
	}
	return os.WriteFile(path, src, 0o644)
}

// collectHotpath lists every //kws:hotpath function in the module as
// "importpath.Func" / "importpath.(*Recv).Method", sorted.
func collectHotpath(set *loadpkg.Set) []string {
	var out []string
	for _, pkg := range set.Packages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hotpath.Annotated(fd) {
					continue
				}
				out = append(out, pkg.ImportPath+"."+funcName(fd))
			}
		}
	}
	sort.Strings(out)
	return out
}

// funcName renders a declaration's name with its receiver, go doc style.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		if id, ok := st.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func writeHotpathManifest(path string, annotated []string) error {
	var b strings.Builder
	b.WriteString(`// Code generated by cmd/obsgen. DO NOT EDIT.
//
// Manifest is the module's //kws:hotpath inventory. The static analyzer
// (this package) forbids allocation-prone constructs inside these
// functions; the AllocsPerRun budget test in internal/core walks this list
// to require a runtime allocation budget for each entry. Removing an
// annotation to silence the lint also removes the function from the
// runtime budget — visibly, in this generated diff.
package hotpath

// Manifest lists every //kws:hotpath function, "importpath.Func" or
// "importpath.(*Recv).Method", sorted.
var Manifest = []string{
`)
	for _, name := range annotated {
		fmt.Fprintf(&b, "\t%q,\n", name)
	}
	b.WriteString("}\n")
	src, err := format.Source([]byte(b.String()))
	if err != nil {
		return fmt.Errorf("formatting manifest_gen.go: %w", err)
	}
	return os.WriteFile(path, src, 0o644)
}
