// Package kwsdbg reproduces "On Debugging Non-Answers in Keyword Search
// Systems" (Baid, Wu, Sun, Doan, Naughton; EDBT 2015): a keyword-search-
// over-structured-data system that, instead of suppressing the "no results
// found" page, explains every non-answer query through its maximal nonempty
// sub-queries.
//
// The root package carries the repository-level benchmarks (one per table
// and figure of the paper's evaluation); the implementation lives under
// internal/:
//
//   - internal/core     — phases 1-3: pruning, MTNs, traversals, baselines
//   - internal/lattice  — phase 0: the offline query-template lattice
//   - internal/engine   — embedded SQL execution engine (the PostgreSQL stand-in)
//   - internal/sqltext  — SQL lexer/parser/printer for the engine's dialect
//   - internal/sqldriver — database/sql driver over the engine (the JDBC stand-in)
//   - internal/storage  — tables, rows, hash indexes
//   - internal/invidx   — inverted text index (the Lucene stand-in)
//   - internal/dblife   — synthetic DBLife dataset and the Table 2 workload
//   - internal/figure2  — the paper's toy product database
//   - internal/bench    — experiment harness behind cmd/experiments
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package kwsdbg
