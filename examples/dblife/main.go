// DBLife walkthrough: the paper's evaluation dataset and workload in one
// program. It generates the synthetic bibliography database, debugs the ten
// Table 2 queries, shows how a non-answer like "DeRose VLDB" becomes
// answerable when the lattice allows more joins (the paper's §3.2
// observation about Q4/Q6), and compares the SQL effort of all five
// traversal strategies on a three-keyword query.
//
// Run with: go run ./examples/dblife
package main

import (
	"fmt"
	"log"
	"strings"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/lattice"
)

func main() {
	eng, err := dblife.Generate(dblife.Config{Seed: 1, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic DBLife: %d tuples in 14 tables\n\n", eng.Database().TotalRows())

	sys3, err := core.Build(eng, lattice.Options{MaxJoins: 2, KeywordSlots: 3})
	if err != nil {
		log.Fatal(err)
	}
	sys5, err := core.Build(eng, lattice.Options{MaxJoins: 4, KeywordSlots: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== workload at lattice levels 3 and 5 ===")
	fmt.Printf("%-5s %-32s %10s %10s %10s %10s\n",
		"query", "keywords", "alive@L3", "dead@L3", "alive@L5", "dead@L5")
	for _, q := range dblife.Workload() {
		o3, err := sys3.Debug(q.Keywords, core.Options{Strategy: core.SBH})
		if err != nil {
			log.Fatal(err)
		}
		o5, err := sys5.Debug(q.Keywords, core.Options{Strategy: core.SBH})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %-32s %10d %10d %10d %10d\n",
			q.ID, strings.Join(q.Keywords, " "), len(o3.Answers), len(o3.NonAnswers),
			len(o5.Answers), len(o5.NonAnswers))
	}

	fmt.Println("\n=== explaining a non-answer: DeRose VLDB at level 3 ===")
	out, err := sys3.Debug([]string{"DeRose", "VLDB"}, core.Options{Strategy: core.SBH})
	if err != nil {
		log.Fatal(err)
	}
	for _, na := range out.NonAnswers {
		fmt.Printf("DEAD %s\n", na.Query.Tree)
		for _, p := range na.MPANs {
			fmt.Printf("     alive up to: %s\n", p.Tree)
		}
	}
	fmt.Println("\nat level 5 the coauthor path connects them:")
	out, err = sys5.Debug([]string{"DeRose", "VLDB"}, core.Options{Strategy: core.SBH})
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range out.Answers {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(out.Answers)-5)
			break
		}
		fmt.Printf("  ALIVE %s\n", a.Tree)
	}

	fmt.Println("\n=== strategy comparison on Q3 (Agrawal Chaudhuri Das) at level 5 ===")
	fmt.Printf("%-8s %12s %14s %12s\n", "strategy", "SQL probes", "inferred free", "sql time")
	for _, strat := range core.Strategies {
		o, err := sys5.Debug([]string{"Agrawal", "Chaudhuri", "Das"}, core.Options{Strategy: strat})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %12d %14d %12v\n", strat, o.Stats.SQLExecuted, o.Stats.Inferred, o.Stats.SQLTime)
	}

	// Ranked presentation of an answer-rich query: fewer joins first, more
	// result tuples first within a join count.
	fmt.Println("\n=== ranked answers for 'Probabilistic Data' at level 5 ===")
	out, err = sys5.Debug([]string{"Probabilistic", "Data"}, core.Options{Strategy: core.SBH})
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := sys5.RankAnswers(out)
	if err != nil {
		log.Fatal(err)
	}
	for i, ra := range ranked {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(ranked)-5)
			break
		}
		fmt.Printf("  %4d results  %s\n", ra.Results, ra.Query.Tree)
	}

	// Interactive what-if: pin the dead "serves" interpretation of
	// "DeRose VLDB" alive and watch the hypothetical output change without
	// a single extra SQL probe.
	fmt.Println("\n=== what-if session: assume DeRose served on the VLDB PC ===")
	sess, err := sys3.NewSession([]string{"DeRose", "VLDB"})
	if err != nil {
		log.Fatal(err)
	}
	base, err := sess.Run(core.Options{Strategy: core.SBH})
	if err != nil {
		log.Fatal(err)
	}
	if len(base.NonAnswers) > 0 {
		target := base.NonAnswers[0].Query
		sess.Pin(target.NodeID, true)
		whatIf, err := sess.Run(core.Options{Strategy: core.SBH})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  pinned %s alive: %d answers (was %d), %d extra probes\n",
			target.Tree, len(whatIf.Answers), len(base.Answers), whatIf.Stats.SQLExecuted)
	}
}
