// E-commerce SEO debugging: the workflow the paper's introduction describes.
//
// An online store's search box returns "no results" for a batch of queries
// from the search log. For each, the debugger distinguishes the three causes
// the paper enumerates — a keyword missing from the data entirely, a join
// that is empty although every keyword occurs, or genuinely disjoint
// inventory — and shows the maximal alive sub-queries a merchandiser would
// act on (add a synonym, fix a category link, or surface partial results).
//
// Run with: go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"strings"

	"kwsdbg/internal/core"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/lattice"
)

// storeScript is a small but multi-path store catalog: products join to
// brands, categories, and materials, so a keyword query can die in several
// structurally different ways.
const storeScript = `
CREATE TABLE Brand (id INT PRIMARY KEY, name TEXT, country TEXT);
CREATE TABLE Category (id INT PRIMARY KEY, name TEXT, aliases TEXT);
CREATE TABLE Material (id INT PRIMARY KEY, name TEXT, care TEXT);
CREATE TABLE Product (
	id INT PRIMARY KEY, title TEXT, brand INT, category INT, material INT,
	price FLOAT, blurb TEXT,
	FOREIGN KEY (brand) REFERENCES Brand(id),
	FOREIGN KEY (category) REFERENCES Category(id),
	FOREIGN KEY (material) REFERENCES Material(id));

INSERT INTO Brand VALUES
	(1, 'Northwind', 'Norway'),
	(2, 'Aurora Living', 'Sweden'),
	(3, 'Basalt & Pine', 'Canada'),
	(4, 'Meridian', 'Italy');
INSERT INTO Category VALUES
	(1, 'sofas', 'couch, settee'),
	(2, 'armchairs', 'reading chair'),
	(3, 'dining tables', 'kitchen table'),
	(4, 'floor lamps', 'standing lamp'),
	(5, 'rugs', 'carpet');
INSERT INTO Material VALUES
	(1, 'oak', 'wipe with damp cloth'),
	(2, 'walnut', 'oil twice a year'),
	(3, 'linen', 'machine wash cold'),
	(4, 'wool', 'dry clean'),
	(5, 'steel', 'dust only');
INSERT INTO Product VALUES
	(1, 'Fjord three-seat sofa', 1, 1, 3, 1299.0, 'deep seats, washable linen covers'),
	(2, 'Polar compact sofa', 2, 1, 4, 899.0, 'wool blend upholstery for cold evenings'),
	(3, 'Drift armchair', 1, 2, 3, 549.0, 'high back reading chair in natural linen'),
	(4, 'Ember dining table', 3, 3, 1, 1100.0, 'solid oak top with steel legs'),
	(5, 'Halo floor lamp', 4, 4, 5, 249.0, 'brushed steel with a linen shade'),
	(6, 'Tundra rug', 2, 5, 4, 420.0, 'hand woven wool, high pile'),
	(7, 'Glacier dining table', 4, 3, 2, 1680.0, 'walnut veneer, extends to ten seats');
`

// searchLog is the batch of zero-result queries pulled from analytics.
var searchLog = [][]string{
	{"velvet", "sofa"},     // "velvet" occurs nowhere: vocabulary gap
	{"oak", "sofa"},        // both keywords exist; no oak sofas: dead join
	{"walnut", "armchair"}, // walnut exists, armchairs exist, never together
	{"wool", "lamp"},       // wool exists, lamps exist, never together
	{"couch", "linen"},     // alive via the category alias "couch"
	{"steel", "dining"},    // alive: the Ember table
	{"swedish", "rug"},     // "swedish" missing; country says Sweden
}

func main() {
	eng, err := engine.Load(storeScript)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== pass 1: triage the zero-result search log ===")
	var vocabularyGaps [][]string
	for _, q := range searchLog {
		triage(sys, q, &vocabularyGaps)
	}

	// The merchandiser's fix for vocabulary gaps: extend alias/synonym
	// columns with the terms shoppers actually type.
	fmt.Println("\n=== applying vocabulary fixes ===")
	fixes := []string{
		"INSERT INTO Material VALUES (6, 'velvet', 'brush gently')",
		"INSERT INTO Product VALUES (8, 'Velour lounge sofa', 2, 1, 6, 1499.0, 'plush velvet three seater')",
		"INSERT INTO Brand VALUES (5, 'Hygge Swedish Design', 'Sweden')",
		"INSERT INTO Product VALUES (9, 'Stockholm flatweave rug', 5, 5, 4, 380.0, 'swedish wool flatweave')",
	}
	for _, f := range fixes {
		if _, err := eng.Exec(f); err != nil {
			log.Fatal(err)
		}
		short := f
		if len(short) > 60 {
			short = short[:57] + "..."
		}
		fmt.Println("  ", short)
	}

	fmt.Println("\n=== pass 2: re-run the vocabulary-gap queries ===")
	for _, q := range vocabularyGaps {
		triage(sys, q, nil)
	}
}

func triage(sys *core.System, q []string, gaps *[][]string) {
	out, err := sys.Debug(q, core.Options{Strategy: core.SBH})
	if err != nil {
		log.Fatal(err)
	}
	label := strings.Join(q, " ")
	switch {
	case len(out.NonKeywords) > 0:
		fmt.Printf("%-18s VOCABULARY GAP: %v never occurs in the catalog\n",
			label, out.NonKeywords)
		if gaps != nil {
			*gaps = append(*gaps, q)
		}
	case len(out.Answers) > 0:
		fmt.Printf("%-18s OK: %d live interpretation(s), e.g. %s\n",
			label, len(out.Answers), out.Answers[0].Tree)
	default:
		fmt.Printf("%-18s DEAD JOINS: every keyword exists, but the best the store can do is:\n", label)
		seen := map[string]bool{}
		for _, na := range out.NonAnswers {
			for _, p := range na.MPANs {
				// Frontiers repeat across dead interpretations; show the
				// keyword-bearing ones once each.
				if seen[p.Tree] || !strings.Contains(p.Tree, "#1") && !strings.Contains(p.Tree, "#2") {
					continue
				}
				seen[p.Tree] = true
				fmt.Printf("%-18s   alive up to: %s\n", "", p.Tree)
			}
		}
	}
}
