// Quickstart: the paper's Example 1 end to end.
//
// The Figure 2 product store returns nothing for "saffron scented candle".
// This program builds the lattice debugger, shows the two dead candidate
// networks and their maximal alive sub-queries (the frontier causes), then
// applies the paper's motivating fix — teaching the store that saffron is a
// shade of yellow — and shows the query coming alive.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"kwsdbg/internal/core"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
)

func main() {
	eng, err := figure2.Engine()
	if err != nil {
		log.Fatal(err)
	}
	// Phase 0: generate the offline lattice (up to 2 joins covers the
	// three-table candidate networks of this schema).
	sys, err := core.Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		log.Fatal(err)
	}

	query := []string{"saffron", "scented", "candle"}
	fmt.Printf("keyword query: %v\n\n", query)

	out, err := sys.Debug(query, core.Options{Strategy: core.SBH})
	if err != nil {
		log.Fatal(err)
	}
	report(out)

	// The q1 explanation — "the store has saffron (as a color) and it has
	// scented candles, but no scented candle in saffron" — tells the
	// merchandiser the fix: record saffron as a synonym shoppers use for
	// yellow, and the existing yellow scented candle starts matching.
	fmt.Println("\n--- applying fix: add 'saffron' to the synonyms of yellow ---")
	if err := addSaffronSynonym(sys); err != nil {
		log.Fatal(err)
	}

	out, err = sys.Debug(query, core.Options{Strategy: core.SBH})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	report(out)

	// The same machinery also serves the shopper directly: for a query that
	// stays dead, show the maximal sub-queries' products instead of "no
	// results found" — the paper's Figure 1.
	fmt.Println("\n--- what a shopper sees for the dead query 'saffron scented incense' ---")
	_, partial, _, err := sys.SearchPartial([]string{"saffron", "scented", "incense"}, 4)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range partial {
		fmt.Printf("  %d. covers [%s]: %s\n", i+1, strings.Join(p.Covered, ", "), p.SearchResult)
	}
}

func report(out *core.Output) {
	fmt.Printf("%d answer queries, %d non-answers (%d SQL probes)\n",
		len(out.Answers), len(out.NonAnswers), out.Stats.SQLExecuted)
	for _, a := range out.Answers {
		fmt.Printf("  ALIVE %s\n", a.Tree)
	}
	for _, na := range out.NonAnswers {
		fmt.Printf("  DEAD  %s\n", na.Query.Tree)
		for _, p := range na.MPANs {
			fmt.Printf("        frontier cause — this maximal sub-query is alive: %s\n", p.Tree)
		}
	}
}

// addSaffronSynonym extends the yellow color's synonym list in place, the
// data repair the paper's introduction motivates.
func addSaffronSynonym(sys *core.System) error {
	tbl, ok := sys.Engine().Database().Table("Color")
	if !ok {
		return fmt.Errorf("no Color table")
	}
	// The yellow row was inserted second (row ID 1).
	row := tbl.Row(1)
	if row[1].S != "yellow" {
		return fmt.Errorf("row 1 is %q, expected yellow", row[1].S)
	}
	updated := append(row[:0:0], row...)
	updated[2].S = row[2].S + ", saffron"
	if err := tbl.Update(1, updated); err != nil {
		return err
	}
	// In-place updates do not change table sizes, so tell the engine its
	// inverted index is stale.
	sys.Engine().InvalidateIndex()
	return nil
}
