module kwsdbg

go 1.22
