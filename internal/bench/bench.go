// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§3), each producing a rendered text table with
// the same rows and series the paper reports. The cmd/experiments binary and
// the repository-level benchmarks are thin wrappers around these runners.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/obs"
)

// Table is one rendered experiment artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	if t.Notes != "" {
		sb.WriteString("note: " + t.Notes + "\n")
	}
	return sb.String()
}

// Parallelism qualifies every BENCH_*.json artifact: the parallelism the
// harness asked for, the parallelism the runtime actually ran with, and the
// host's core count — without which a speedup column cannot be read. The
// JSON field names predate this struct (BENCH_probe.json carried gomaxprocs
// and num_cpu from the start), so they are preserved.
type Parallelism struct {
	// GOMAXPROCS is the effective value at measurement time.
	GOMAXPROCS int `json:"gomaxprocs"`
	// GOMAXPROCSRequested is what the harness was asked to set (the
	// -gomaxprocs flag); 0 means the runtime default was left alone.
	GOMAXPROCSRequested int `json:"gomaxprocs_requested,omitempty"`
	// NumCPU is the host's logical core count.
	NumCPU int `json:"num_cpu"`
	// Warning flags measurements whose parallel columns are unreliable —
	// set whenever NumCPU == 1, where worker counts beyond one can only
	// timeslice.
	Warning string `json:"warning,omitempty"`
}

// NoteWorkers extends the warning when a sweep's worker grid exceeds the
// host's logical cores: workers the host cannot run in parallel only
// timeslice, so the speedup columns at those counts measure scheduler
// overhead, not parallelism. The num_cpu==1 warning from CurrentParallelism
// already covers the degenerate case and is kept as the stronger statement.
func (p *Parallelism) NoteWorkers(maxWorkers int) {
	if p.Warning != "" || maxWorkers <= p.NumCPU {
		return
	}
	p.Warning = fmt.Sprintf("num_cpu == %d < max workers %d: speedup columns beyond %d workers reflect timeslicing, not parallelism",
		p.NumCPU, maxWorkers, p.NumCPU)
}

// TrustSpeedups reports whether a speedup measured at the given worker count
// is meaningful on this host — consumers (tests asserting speedup floors,
// report readers) must skip speedup assertions where this is false.
func (p Parallelism) TrustSpeedups(workers int) bool { return workers <= p.NumCPU }

// CurrentParallelism snapshots the runtime, recording the requested value
// alongside what actually took effect.
func CurrentParallelism(requested int) Parallelism {
	p := Parallelism{
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		GOMAXPROCSRequested: requested,
		NumCPU:              runtime.NumCPU(),
	}
	if p.NumCPU == 1 {
		p.Warning = "num_cpu == 1: worker counts beyond 1 only timeslice; treat speedup columns as noise"
	}
	return p
}

// Env is the shared experiment environment: one synthetic DBLife database
// plus lazily built debuggers per lattice depth. Slots are capped at the
// workload's three keywords, as discussed in DESIGN.md.
type Env struct {
	Cfg dblife.Config
	// CacheDir, when set, persists each level's lattice (lattice.Save) so
	// repeated experiment runs skip Phase 0 — the level-7 lattice takes
	// tens of seconds to generate and under two to load.
	CacheDir string
	// Procs is the GOMAXPROCS value the harness was asked to apply (0 =
	// untouched); it flows into every report's Parallelism block.
	Procs int
	eng   *engine.Engine

	mu      sync.Mutex
	systems map[int]*core.System // keyed by maxJoins
}

// NewEnv generates the dataset.
func NewEnv(cfg dblife.Config) (*Env, error) {
	eng, err := dblife.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Env{Cfg: cfg, eng: eng, systems: make(map[int]*core.System)}, nil
}

// Engine exposes the generated database.
func (e *Env) Engine() *engine.Engine { return e.eng }

// System returns (building on first use) the debugger whose lattice covers
// the given level (level = maxJoins + 1).
func (e *Env) System(level int) (*core.System, error) {
	if level < 1 {
		return nil, fmt.Errorf("bench: level must be >= 1, got %d", level)
	}
	maxJoins := level - 1
	e.mu.Lock()
	defer e.mu.Unlock()
	if sys, ok := e.systems[maxJoins]; ok {
		return sys, nil
	}
	lat, err := e.obtainLattice(maxJoins)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(e.eng, lat)
	if err != nil {
		return nil, err
	}
	e.systems[maxJoins] = sys
	return sys, nil
}

// obtainLattice loads the level's lattice from the cache directory when
// possible, generating (and caching) it otherwise.
func (e *Env) obtainLattice(maxJoins int) (*lattice.Lattice, error) {
	opts := lattice.Options{MaxJoins: maxJoins, KeywordSlots: 3}
	schema := e.eng.Database().Schema()
	if e.CacheDir == "" {
		return lattice.GenerateOpts(schema, opts)
	}
	path := filepath.Join(e.CacheDir, fmt.Sprintf("dblife-m%d-s3.gob", maxJoins))
	if f, err := os.Open(path); err == nil {
		defer f.Close()
		lat, err := lattice.Load(f, schema)
		if err != nil {
			return nil, fmt.Errorf("bench: lattice cache %s: %w", path, err)
		}
		return lat, nil
	}
	lat, err := lattice.GenerateOpts(schema, opts)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(e.CacheDir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := lat.Save(f); err != nil {
		return nil, fmt.Errorf("bench: lattice cache %s: %w", path, err)
	}
	return lat, nil
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// maxOf returns the largest element of a non-empty worker grid.
func maxOf(ws []int) int {
	m := ws[0]
	for _, w := range ws[1:] {
		if w > m {
			m = w
		}
	}
	return m
}

// MetricsTable snapshots the process-wide obs registry as a rendered table.
// The experiment harness prints it last, so the probe counts accumulated in
// kwsdbg_probe_total can be cross-checked against the per-figure tables —
// the same numbers a scrape of GET /metrics would report.
func MetricsTable() *Table {
	t := &Table{
		ID:      "metrics",
		Title:   "process metrics snapshot (as GET /metrics would report)",
		Columns: []string{"metric", "value"},
		Notes:   "histograms appear as their _count and _sum; counters accumulate across every experiment above",
	}
	for _, s := range obs.Default.Samples() {
		name := s.Name
		if s.Labels != "" {
			name += "{" + s.Labels + "}"
		}
		t.Rows = append(t.Rows, []string{name, strconv.FormatFloat(s.Value, 'g', -1, 64)})
	}
	return t
}
