package bench

import (
	"strings"
	"sync"
	"testing"

	"kwsdbg/internal/dblife"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

// testEnv shares one small environment across the package's tests.
func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(dblife.Config{Seed: 1, Scale: 0.01})
	})
	if envErr != nil {
		t.Fatalf("NewEnv: %v", envErr)
	}
	return envVal
}

func checkTable(t *testing.T, tab *Table, wantRows int) {
	t.Helper()
	if len(tab.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d", tab.ID, len(tab.Rows), wantRows)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s row %d: %d cells, %d columns", tab.ID, i, len(row), len(tab.Columns))
		}
	}
	r := tab.Render()
	if !strings.Contains(r, tab.ID) || !strings.Contains(r, tab.Columns[0]) {
		t.Errorf("%s: render missing header:\n%s", tab.ID, r)
	}
}

func TestFig9(t *testing.T) {
	env := testEnv(t)
	a, err := Fig9a(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, a, 3)
	b, err := Fig9b(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, b, 3)
	// Node counts grow with level.
	if a.Rows[2][3] <= a.Rows[1][3] && len(a.Rows[2][3]) <= len(a.Rows[1][3]) {
		t.Errorf("level 3 kept %s not above level 2 %s", a.Rows[2][3], a.Rows[1][3])
	}
}

func TestTable2(t *testing.T) {
	checkTable(t, Table2(), 10)
}

func TestPhase12AndFig10(t *testing.T) {
	env := testEnv(t)
	p, err := Phase12(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, p, 10)
	f, err := Fig10(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, f, 10)
}

func TestFig11And12(t *testing.T) {
	env := testEnv(t)
	f11, err := Fig11(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, f11, 10)
	f12, err := Fig12(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, f12, 10)
}

func TestTable3And4(t *testing.T) {
	env := testEnv(t)
	t3, err := Table3(env, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, t3, 10)
	t4, err := Table4(env, "Q3", []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, t4, 2)
	if _, err := Table4(env, "Q99", []int{2}); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestFig13(t *testing.T) {
	env := testEnv(t)
	f, err := Fig13(env, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, f, 10)
}

func TestAlternatives(t *testing.T) {
	env := testEnv(t)
	f, err := Alternatives(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, f, 10)
	if f.ID != "fig14" {
		t.Errorf("ID = %s", f.ID)
	}
}

func TestAblations(t *testing.T) {
	env := testEnv(t)
	pa, err := AblationPa(env, 3, []float64{0.25, 0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, pa, 10)
	cp, err := AblationCopies(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, cp, 3)
}

func TestEnvSystemErrors(t *testing.T) {
	env := testEnv(t)
	if _, err := env.System(0); err == nil {
		t.Error("level 0 accepted")
	}
	// Cached path returns the same instance.
	a, err := env.System(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.System(3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("System(3) not cached")
	}
}

func TestRNCoverage(t *testing.T) {
	env := testEnv(t)
	tab, err := RNCoverage(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 10)
}

func TestOnlineCN(t *testing.T) {
	env := testEnv(t)
	tab, err := OnlineCN(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 10)
}

func TestEnvLatticeCache(t *testing.T) {
	env, err := NewEnv(dblife.Config{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	env.CacheDir = t.TempDir()
	a, err := env.System(3)
	if err != nil {
		t.Fatalf("generate+save: %v", err)
	}
	// A fresh env with the same cache dir loads instead of regenerating.
	env2, err := NewEnv(dblife.Config{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	env2.CacheDir = env.CacheDir
	b, err := env2.System(3)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if a.Lattice().Len() != b.Lattice().Len() {
		t.Errorf("cached lattice differs: %d vs %d", a.Lattice().Len(), b.Lattice().Len())
	}
}

func TestAblationSkew(t *testing.T) {
	env := testEnv(t)
	tab, err := AblationSkew(env, 3, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 10)
}
