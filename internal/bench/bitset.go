package bench

import (
	"fmt"
	"math"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
)

// BitsetPoint is one worker count's bitset-path versus prepared-path probe
// cost over the workload. Costs are probe-servicing nanoseconds per executed
// probe — the oracle's SQLTime, which times handle+execute on the prepared
// path and the bitmap semi-join on the bitset path — so the comparison
// isolates probe evaluation from the phases and scheduler overhead both
// paths share.
type BitsetPoint struct {
	Workers int `json:"workers"`
	// Prepared path at steady state: compiled handles through the
	// probe-handle cache, the baseline the bitset engine is measured
	// against. Warm figures are the fastest of `rounds` passes.
	PreparedWarmNsPerProbe float64 `json:"prepared_warm_ns_per_probe"`
	// Bitset path: cold pays plan compilation and candidate-bitmap builds
	// (one inverted-index union per bound vertex); warm reuses plans,
	// bitmaps, and verdict memos and touches no SQL machinery at all.
	BitsetColdNsPerProbe float64 `json:"bitset_cold_ns_per_probe"`
	BitsetWarmNsPerProbe float64 `json:"bitset_warm_ns_per_probe"`
	// WarmSpeedup is PreparedWarmNsPerProbe / BitsetWarmNsPerProbe — the
	// headline number: how much faster a steady-state probe is once SQL
	// leaves the hot path entirely.
	WarmSpeedup float64 `json:"warm_speedup"`
	// ProbesPerOp is probes per Debug call; identical on both paths by the
	// equivalence property (the sweep fails if they ever diverge).
	ProbesPerOp float64 `json:"probes_per_op"`
	// BitsetHitRate is the fraction of executed probes the bitmap engine
	// answered itself rather than falling back to prepared SQL, measured on
	// the warm bitset passes.
	BitsetHitRate float64 `json:"bitset_hit_rate"`
	// SpeedupTrusted mirrors Parallelism.TrustSpeedups for this worker
	// count: false when the host cannot actually run this many workers in
	// parallel, in which case the speedup column must not be asserted on.
	SpeedupTrusted bool `json:"speedup_trusted"`
}

// BitsetReport is the machine-readable artifact behind BENCH_bitset.json.
type BitsetReport struct {
	Level           int    `json:"level"`
	Strategy        string `json:"strategy"`
	Rounds          int    `json:"rounds"`
	QueriesPerRound int    `json:"queries_per_round"`
	Parallelism
	Points []BitsetPoint `json:"points"`
}

// BitsetSweep compares the bitset probe engine against the warm prepared
// pipeline across worker counts. The verdict cache is bypassed throughout —
// every probe must actually execute, or the comparison would measure cache
// lookups. The prepared baseline is measured warm only (its cold behaviour
// is PlanSweep's subject); the bitset path is measured cold (plan, bitmap,
// and memo caches purged) and warm. RE is the probing strategy for the same
// reason the other probe sweeps use it: the largest independent batches, the
// most probes per op.
func BitsetSweep(env *Env, level int, workers []int, rounds int) (*Table, *BitsetReport, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, nil, err
	}
	queries := dblife.Workload()
	rep := &BitsetReport{
		Level:           level,
		Strategy:        core.RE.String(),
		Rounds:          rounds,
		QueriesPerRound: len(queries),
		Parallelism:     CurrentParallelism(env.Procs),
	}
	rep.NoteWorkers(maxOf(workers))

	// One pass over the workload on one path; returns mean ns per executed
	// probe, probes per op, and the fraction of probes the bitmap engine
	// served itself (always 0 on the prepared path).
	pass := func(w int, bitset bool, passes int) (nsPerProbe, probesPerOp, hitRate float64, err error) {
		var ops, probes, hits int
		var probeNanos time.Duration
		for p := 0; p < passes; p++ {
			for _, q := range queries {
				out, err := sys.Debug(q.Keywords, core.Options{
					Strategy: core.RE, Workers: w, BypassCache: true, BitsetProbes: bitset,
				})
				if err != nil {
					return 0, 0, 0, fmt.Errorf("bench: bitset sweep %s workers=%d: %w", q.ID, w, err)
				}
				ops++
				probes += out.Stats.SQLExecuted
				probeNanos += out.Stats.SQLTime
				hits += out.Stats.BitsetHits
			}
		}
		if probes == 0 {
			return 0, 0, 0, fmt.Errorf("bench: bitset sweep executed no probes")
		}
		return float64(probeNanos.Nanoseconds()) / float64(probes),
			float64(probes) / float64(ops), float64(hits) / float64(probes), nil
	}

	// warm keeps the fastest of `rounds` passes against populated caches:
	// the minimum is the standard low-variance estimator for a fixed
	// workload — any GC pause or scheduler burst can only slow a round
	// down, never speed it up.
	warm := func(w int, bitset bool) (nsPerProbe, probesPerOp, hitRate float64, err error) {
		best := math.Inf(1)
		for i := 0; i < rounds; i++ {
			ns, ppo, hr, err := pass(w, bitset, 1)
			if err != nil {
				return 0, 0, 0, err
			}
			if ns < best {
				best = ns
			}
			probesPerOp, hitRate = ppo, hr
		}
		return best, probesPerOp, hitRate, nil
	}

	// Untimed warmup: the inverted index builds lazily on the first Debug,
	// and its cost must not land in the first measured pass.
	if _, _, _, err := pass(workers[0], false, 1); err != nil {
		return nil, nil, err
	}

	for _, w := range workers {
		pt := BitsetPoint{Workers: w, SpeedupTrusted: rep.TrustSpeedups(w)}
		var prepProbes, bitProbes float64

		pt.PreparedWarmNsPerProbe, prepProbes, _, err = warm(w, false)
		if err != nil {
			return nil, nil, err
		}

		sys.PurgePlanCaches()
		sys.PurgeBitsetCaches()
		pt.BitsetColdNsPerProbe, _, _, err = pass(w, true, 1)
		if err != nil {
			return nil, nil, err
		}
		pt.BitsetWarmNsPerProbe, bitProbes, pt.BitsetHitRate, err = warm(w, true)
		if err != nil {
			return nil, nil, err
		}

		// The equivalence property, enforced where it is cheapest to check:
		// both paths must spend exactly the same probes on the same workload.
		if prepProbes != bitProbes {
			return nil, nil, fmt.Errorf("bench: probe counts diverged between paths at workers=%d: prepared %.1f, bitset %.1f",
				w, prepProbes, bitProbes)
		}
		pt.ProbesPerOp = bitProbes
		if pt.BitsetWarmNsPerProbe > 0 {
			pt.WarmSpeedup = pt.PreparedWarmNsPerProbe / pt.BitsetWarmNsPerProbe
		}
		rep.Points = append(rep.Points, pt)
	}

	t := &Table{
		ID:    "bitset",
		Title: fmt.Sprintf("bitset probe engine at level %d (%s, %d rounds x %d queries)", level, rep.Strategy, rounds, len(queries)),
		Columns: []string{"workers", "prep_warm", "bitset_cold", "bitset_warm",
			"warm_speedup", "bitset_hit_rate", "trusted"},
		Notes: fmt.Sprintf("probe-servicing ns per executed probe, verdict cache bypassed; cold = bitset plan/bitmap/memo caches purged, warm = steady state; speedup = prepared_warm / bitset_warm; GOMAXPROCS=%d NumCPU=%d",
			rep.GOMAXPROCS, rep.NumCPU),
	}
	for _, p := range rep.Points {
		t.Rows = append(t.Rows, []string{
			itoa(p.Workers),
			fmt.Sprintf("%.0f", p.PreparedWarmNsPerProbe),
			fmt.Sprintf("%.0f", p.BitsetColdNsPerProbe),
			fmt.Sprintf("%.0f", p.BitsetWarmNsPerProbe),
			fmt.Sprintf("%.2fx", p.WarmSpeedup),
			fmt.Sprintf("%.1f%%", 100*p.BitsetHitRate),
			fmt.Sprintf("%t", p.SpeedupTrusted),
		})
	}
	return t, rep, nil
}
