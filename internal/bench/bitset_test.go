package bench

import "testing"

func TestBitsetSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	env := testEnv(t)
	tab, rep, err := BitsetSweep(env, 3, []int{1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2)
	for _, p := range rep.Points {
		if p.ProbesPerOp <= 0 {
			t.Fatalf("workers=%d: probes_per_op = %v", p.Workers, p.ProbesPerOp)
		}
		if p.BitsetHitRate != 1 {
			t.Errorf("workers=%d: bitset hit rate %.2f, want 1.0 (DBLife probe shapes are all coverable)",
				p.Workers, p.BitsetHitRate)
		}
		if !p.SpeedupTrusted {
			continue // host cannot run this many workers; speedup is noise
		}
		// The acceptance floor is 10x on the committed BENCH_bitset.json run;
		// the in-test floor is looser to absorb CI timing variance while
		// still catching a bitset path that quietly fell back to SQL.
		if p.WarmSpeedup < 3 {
			t.Errorf("workers=%d: warm speedup %.2fx, want >= 3x over the warm prepared path",
				p.Workers, p.WarmSpeedup)
		}
	}
	// workers=1 is trusted on every host — the floor above must have run at
	// least once.
	if !rep.Points[0].SpeedupTrusted {
		t.Error("workers=1 point not trusted; TrustSpeedups broken")
	}
}

func TestParallelismNotes(t *testing.T) {
	p := Parallelism{NumCPU: 2}
	if !p.TrustSpeedups(1) || !p.TrustSpeedups(2) || p.TrustSpeedups(4) {
		t.Errorf("TrustSpeedups on 2 cores: got %t/%t/%t for 1/2/4 workers",
			p.TrustSpeedups(1), p.TrustSpeedups(2), p.TrustSpeedups(4))
	}
	p.NoteWorkers(2)
	if p.Warning != "" {
		t.Errorf("NoteWorkers(2) on 2 cores set a warning: %q", p.Warning)
	}
	p.NoteWorkers(8)
	if p.Warning == "" {
		t.Error("NoteWorkers(8) on 2 cores left no warning")
	}
	// The stronger num_cpu==1 warning is never overwritten.
	single := Parallelism{NumCPU: 1, Warning: "num_cpu == 1"}
	single.NoteWorkers(8)
	if single.Warning != "num_cpu == 1" {
		t.Errorf("NoteWorkers overwrote the num_cpu==1 warning: %q", single.Warning)
	}
}
