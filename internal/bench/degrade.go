package bench

import (
	"fmt"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
)

// DegradePoint is one budget fraction's micro-averaged quality over the
// workload: how much of the full run's explanation survives when the
// governor cuts probing short at that fraction of the serial probe count.
type DegradePoint struct {
	// BudgetFrac is the probe budget as a fraction of each query's full
	// (unbudgeted) serial probe count; the absolute budget is per query,
	// never below one probe.
	BudgetFrac float64 `json:"budget_frac"`
	// MPANRecall is the fraction of the full run's (non-answer, MPAN) pairs
	// the budgeted run still reports, micro-averaged over all pairs in the
	// workload. Soundness makes this a pure recall curve: a budgeted run
	// never reports a pair the full run lacks.
	MPANRecall float64 `json:"mpan_recall"`
	// MTNCoverage is the fraction of candidate networks classified
	// (answer or non-answer rather than unclassified).
	MTNCoverage float64 `json:"mtn_coverage"`
	// IncompleteRate is the fraction of queries whose output was flagged
	// incomplete at this budget.
	IncompleteRate float64 `json:"incomplete_rate"`
	// ProbeFrac is the probes actually spent over the full run's probes. It
	// tracks BudgetFrac but can sit above it at small fractions, where the
	// one-probe-minimum floor dominates queries with few probes.
	ProbeFrac float64 `json:"probe_frac"`
}

// DegradeReport is the machine-readable artifact behind BENCH_degrade.json:
// the budget-versus-recall degradation curve the resource governor promises
// ("partial answers degrade gracefully, they do not disappear").
type DegradeReport struct {
	Level    int    `json:"level"`
	Strategy string `json:"strategy"`
	Queries  int    `json:"queries"`
	// Parallelism records the measurement conditions, like every other
	// BENCH_*.json; the degradation curve itself is worker-independent.
	Parallelism
	Points []DegradePoint `json:"points"`
}

// DegradeSweep measures how explanation quality decays as the per-request
// probe budget shrinks. Each workload query is first debugged without a
// budget to fix the ground truth (its full MPAN set and serial probe count),
// then re-debugged at each budget fraction with the cache bypassed so the
// governor, not the cache, decides what gets classified. SBH is used because
// it is the paper's best strategy and the server's default.
func DegradeSweep(env *Env, level int, fracs []float64) (*Table, *DegradeReport, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, nil, err
	}
	queries := dblife.Workload()
	rep := &DegradeReport{Level: level, Strategy: core.SBH.String(), Queries: len(queries), Parallelism: CurrentParallelism(env.Procs)}

	type truth struct {
		keywords []string
		pairs    map[string]bool
		probes   int
		mtns     int
	}
	var full []truth
	for _, q := range queries {
		out, err := sys.Debug(q.Keywords, core.Options{Strategy: core.SBH, BypassCache: true})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: degrade full run %s: %w", q.ID, err)
		}
		tr := truth{keywords: q.Keywords, pairs: map[string]bool{}, probes: out.Stats.SQLExecuted, mtns: out.Stats.MTNs}
		for _, na := range out.NonAnswers {
			for _, p := range na.MPANs {
				tr.pairs[na.Query.Tree+"|"+p.Tree] = true
			}
		}
		full = append(full, tr)
	}

	for _, frac := range fracs {
		pt := DegradePoint{BudgetFrac: frac}
		var pairsTotal, pairsKept, mtnsTotal, mtnsDone, probesFull, probesSpent, incomplete int
		for _, tr := range full {
			budget := int(frac * float64(tr.probes))
			if budget < 1 {
				budget = 1
			}
			out, err := sys.Debug(tr.keywords, core.Options{
				Strategy: core.SBH, BypassCache: true, ProbeBudget: budget,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("bench: degrade budget=%d: %w", budget, err)
			}
			for _, na := range out.NonAnswers {
				for _, p := range na.MPANs {
					if !tr.pairs[na.Query.Tree+"|"+p.Tree] {
						return nil, nil, fmt.Errorf("bench: budgeted run reported pair %s|%s absent from the full run",
							na.Query.Tree, p.Tree)
					}
					pairsKept++
				}
			}
			pairsTotal += len(tr.pairs)
			mtnsTotal += tr.mtns
			mtnsDone += tr.mtns - len(out.Unclassified)
			probesFull += tr.probes
			probesSpent += out.Stats.SQLExecuted
			if out.Incomplete {
				incomplete++
			}
		}
		if pairsTotal > 0 {
			pt.MPANRecall = float64(pairsKept) / float64(pairsTotal)
		}
		if mtnsTotal > 0 {
			pt.MTNCoverage = float64(mtnsDone) / float64(mtnsTotal)
		}
		if probesFull > 0 {
			pt.ProbeFrac = float64(probesSpent) / float64(probesFull)
		}
		pt.IncompleteRate = float64(incomplete) / float64(len(full))
		rep.Points = append(rep.Points, pt)
	}

	t := &Table{
		ID:      "degrade",
		Title:   fmt.Sprintf("probe budget degradation at level %d (%s, %d queries)", level, rep.Strategy, len(queries)),
		Columns: []string{"budget_frac", "mpan_recall", "mtn_coverage", "incomplete_rate", "probe_frac"},
		Notes:   "budget is the given fraction of each query's unbudgeted serial probe count (min 1); recall is micro-averaged over (non-answer, MPAN) pairs; reported pairs are always a subset of the full run's",
	}
	for _, p := range rep.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", p.BudgetFrac),
			fmt.Sprintf("%.1f%%", 100*p.MPANRecall),
			fmt.Sprintf("%.1f%%", 100*p.MTNCoverage),
			fmt.Sprintf("%.1f%%", 100*p.IncompleteRate),
			fmt.Sprintf("%.2f", p.ProbeFrac),
		})
	}
	return t, rep, nil
}
