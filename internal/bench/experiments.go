package bench

import (
	"fmt"
	"strings"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/lattice"
)

// msf renders a duration as fractional milliseconds.
func msf(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// Fig9a reports the number of nodes generated per lattice level and the
// duplicates removed (Figure 9(a)). The lattice is generated once at the
// requested depth; Algorithm 1 records per-level statistics as it goes.
func Fig9a(env *Env, level int) (*Table, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9a",
		Title:   "lattice nodes generated and duplicates removed per level",
		Columns: []string{"level", "generated", "duplicates", "kept", "cumulative"},
		Notes:   "duplicate fraction reflects the paper's observation that different extension orders regenerate the same tree",
	}
	cum := 0
	for _, st := range sys.Lattice().Stats() {
		cum += st.Kept
		t.Rows = append(t.Rows, []string{
			itoa(st.Level), itoa(st.Generated), itoa(st.Duplicates), itoa(st.Kept), itoa(cum),
		})
	}
	return t, nil
}

// Fig9b reports lattice generation time per level (Figure 9(b)): both the
// per-level cost and the cumulative cost of generating a lattice of that
// depth, which is the paper's one-time offline cost.
func Fig9b(env *Env, level int) (*Table, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9b",
		Title:   "lattice generation time (offline, one-time)",
		Columns: []string{"level", "level_ms", "cumulative_ms"},
	}
	var cum time.Duration
	for _, st := range sys.Lattice().Stats() {
		cum += st.Elapsed
		t.Rows = append(t.Rows, []string{itoa(st.Level), msf(st.Elapsed), msf(cum)})
	}
	return t, nil
}

// Table2 lists the workload (the paper's Table 2).
func Table2() *Table {
	t := &Table{
		ID:      "tab2",
		Title:   "keyword query workload",
		Columns: []string{"id", "keywords"},
	}
	for _, q := range dblife.Workload() {
		t.Rows = append(t.Rows, []string{q.ID, strings.Join(q.Keywords, " ")})
	}
	return t
}

// Phase12 reports the §3.3 measurements per query: keyword-mapping time,
// nodes remaining after pruning (and the pruning percentage), MTN-finding
// time, and MTN count.
func Phase12(env *Env, level int) (*Table, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "phase12",
		Title: fmt.Sprintf("keyword mapping and pruning at level %d", level),
		Columns: []string{"query", "map_ms", "pruned_nodes", "pruned_pct",
			"mtn_ms", "mtns"},
	}
	for _, q := range dblife.Workload() {
		st, err := sys.Analyze(q.Keywords)
		if err != nil {
			return nil, err
		}
		pct := 100 * (1 - float64(st.PrunedNodes)/float64(st.LatticeNodes))
		t.Rows = append(t.Rows, []string{
			q.ID, msf(st.MapTime), itoa(st.PrunedNodes),
			fmt.Sprintf("%.1f%%", pct), msf(st.MTNTime), itoa(st.MTNs),
		})
	}
	return t, nil
}

// Fig10 reports, per query, the nodes remaining after pruning, the MTN
// count, and the MTNs' total and unique descendants (Figure 10).
func Fig10(env *Env, level int) (*Table, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig10",
		Title: fmt.Sprintf("pruning and MTN statistics at level %d", level),
		Columns: []string{"query", "nodes_after_pruning", "mtns",
			"descendants", "unique_descendants"},
	}
	for _, q := range dblife.Workload() {
		st, err := sys.Analyze(q.Keywords)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			q.ID, itoa(st.PrunedNodes), itoa(st.MTNs),
			itoa(st.DescTotal), itoa(st.DescUnique),
		})
	}
	return t, nil
}

// Fig11 reports the number of SQL queries executed per traversal strategy
// per workload query (Figure 11).
func Fig11(env *Env, level int) (*Table, error) {
	return strategyTable(env, level, "fig11",
		"SQL queries executed per traversal strategy",
		func(out *core.Output) string { return itoa(out.Stats.SQLExecuted) })
}

// Fig12 reports the time taken to execute the SQL queries per strategy
// (Figure 12).
func Fig12(env *Env, level int) (*Table, error) {
	return strategyTable(env, level, "fig12",
		"SQL execution time (ms) per traversal strategy",
		func(out *core.Output) string { return msf(out.Stats.SQLTime) })
}

func strategyTable(env *Env, level int, id, title string, metric func(*core.Output) string) (*Table, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s at level %d", title, level),
		Columns: []string{"query", "BU", "BUWR", "TD", "TDWR", "SBH"},
	}
	for _, q := range dblife.Workload() {
		row := []string{q.ID}
		for _, strat := range []core.Strategy{core.BU, core.BUWR, core.TD, core.TDWR, core.SBH} {
			out, err := sys.Debug(q.Keywords, core.Options{Strategy: strat})
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", q.ID, strat, err)
			}
			row = append(row, metric(out))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3 reports MTN and MPAN counts at lattice levels 3, 5, and 7 per
// query (the paper's Table 3). MPANs are counted from a single SBH run.
func Table3(env *Env, levels []int) (*Table, error) {
	t := &Table{
		ID:      "tab3",
		Title:   "distribution of MTNs and MPANs across lattice levels",
		Columns: []string{"query"},
	}
	for _, l := range levels {
		t.Columns = append(t.Columns, fmt.Sprintf("MTNs@L%d", l), fmt.Sprintf("MPANs@L%d", l))
	}
	rows := make(map[string][]string)
	for _, q := range dblife.Workload() {
		rows[q.ID] = []string{q.ID}
	}
	for _, l := range levels {
		sys, err := env.System(l)
		if err != nil {
			return nil, err
		}
		for _, q := range dblife.Workload() {
			out, err := sys.Debug(q.Keywords, core.Options{Strategy: core.SBH})
			if err != nil {
				return nil, fmt.Errorf("%s@L%d: %w", q.ID, l, err)
			}
			mpans := 0
			for _, na := range out.NonAnswers {
				mpans += len(na.MPANs)
			}
			rows[q.ID] = append(rows[q.ID], itoa(out.Stats.MTNs), itoa(mpans))
		}
	}
	for _, q := range dblife.Workload() {
		t.Rows = append(t.Rows, rows[q.ID])
	}
	return t, nil
}

// Table4 reports the number of SQL queries per strategy for one query at
// multiple lattice levels (the paper's Table 4, which uses Q3).
func Table4(env *Env, queryID string, levels []int) (*Table, error) {
	var target *dblife.Query
	for _, q := range dblife.Workload() {
		if q.ID == queryID {
			q := q
			target = &q
		}
	}
	if target == nil {
		return nil, fmt.Errorf("bench: unknown workload query %q", queryID)
	}
	t := &Table{
		ID:      "tab4",
		Title:   fmt.Sprintf("SQL queries executed for %s by lattice level", queryID),
		Columns: []string{"level", "BU", "BUWR", "TD", "TDWR", "SBH"},
	}
	for _, l := range levels {
		sys, err := env.System(l)
		if err != nil {
			return nil, err
		}
		row := []string{itoa(l)}
		for _, strat := range []core.Strategy{core.BU, core.BUWR, core.TD, core.TDWR, core.SBH} {
			out, err := sys.Debug(target.Keywords, core.Options{Strategy: strat})
			if err != nil {
				return nil, err
			}
			row = append(row, itoa(out.Stats.SQLExecuted))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig13 reports the reuse percentage 100*(1 - unique/total) over MTN
// descendants per query and level (Figure 13).
func Fig13(env *Env, levels []int) (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "percentage of reuse among MTN descendants",
		Columns: []string{"query"},
	}
	for _, l := range levels {
		t.Columns = append(t.Columns, fmt.Sprintf("L%d", l))
	}
	rows := make(map[string][]string)
	for _, q := range dblife.Workload() {
		rows[q.ID] = []string{q.ID}
	}
	for _, l := range levels {
		sys, err := env.System(l)
		if err != nil {
			return nil, err
		}
		for _, q := range dblife.Workload() {
			st, err := sys.Analyze(q.Keywords)
			if err != nil {
				return nil, err
			}
			rows[q.ID] = append(rows[q.ID], fmt.Sprintf("%.1f%%", st.ReusePercent()))
		}
	}
	for _, q := range dblife.Workload() {
		t.Rows = append(t.Rows, rows[q.ID])
	}
	return t, nil
}

// Alternatives reports the response-time comparison of §3.8: our approach
// (SBH over the lattice) versus the Return Nothing and Return Everything
// baselines, in terms of total SQL execution time (Figures 14 and 15).
func Alternatives(env *Env, level int) (*Table, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, err
	}
	id := "fig14"
	if level >= 7 {
		id = "fig15"
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("response time (ms) vs alternatives at level %d", level),
		Columns: []string{"query", "ours_SBH", "return_nothing", "return_everything", "ours_sql", "rn_sql", "re_sql"},
	}
	for _, q := range dblife.Workload() {
		ours, err := sys.Debug(q.Keywords, core.Options{Strategy: core.SBH})
		if err != nil {
			return nil, err
		}
		rn, err := sys.ReturnNothing(q.Keywords)
		if err != nil {
			return nil, err
		}
		re, err := sys.Debug(q.Keywords, core.Options{Strategy: core.RE})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			q.ID, msf(ours.Stats.SQLTime), msf(rn.SQLTime), msf(re.Stats.SQLTime),
			itoa(ours.Stats.SQLExecuted), itoa(rn.SQLExecuted), itoa(re.Stats.SQLExecuted),
		})
	}
	return t, nil
}

// AblationPa sweeps the score-based heuristic's aliveness prior, supporting
// the paper's claim that pa = 0.5 "works surprisingly well" (§2.5.3).
func AblationPa(env *Env, level int, pas []float64) (*Table, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-pa",
		Title:   fmt.Sprintf("SBH SQL queries by aliveness prior pa at level %d", level),
		Columns: []string{"query"},
	}
	for _, pa := range pas {
		t.Columns = append(t.Columns, fmt.Sprintf("pa=%.2f", pa))
	}
	for _, q := range dblife.Workload() {
		row := []string{q.ID}
		for _, pa := range pas {
			out, err := sys.Debug(q.Keywords, core.Options{Strategy: core.SBH, Pa: pa})
			if err != nil {
				return nil, err
			}
			row = append(row, itoa(out.Stats.SQLExecuted))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationCopies contrasts the default lattice (keyword copies only on
// text-bearing relations) with the literal Algorithm 1 (copies everywhere),
// quantifying why the pruning matters on a schema whose relationship tables
// carry no text.
func AblationCopies(env *Env, level int) (*Table, error) {
	t := &Table{
		ID:      "ablation-copies",
		Title:   fmt.Sprintf("lattice size: text-only copies vs literal Algorithm 1, up to level %d", level),
		Columns: []string{"level", "default_nodes", "literal_nodes"},
		Notes:   "literal Algorithm 1 keeps keyword copies of the nine text-less relationship tables; every such node is pruned by every query",
	}
	schema := env.Engine().Database().Schema()
	def, err := lattice.GenerateOpts(schema, lattice.Options{MaxJoins: level - 1, KeywordSlots: 3})
	if err != nil {
		return nil, err
	}
	lit, err := lattice.GenerateOpts(schema, lattice.Options{
		MaxJoins: level - 1, KeywordSlots: 3, CopiesForTextlessRelations: true,
	})
	if err != nil {
		return nil, err
	}
	for i := range def.Stats() {
		t.Rows = append(t.Rows, []string{
			itoa(def.Stats()[i].Level),
			itoa(def.Stats()[i].Kept),
			itoa(lit.Stats()[i].Kept),
		})
	}
	return t, nil
}

// RNCoverage quantifies the incompleteness argument of §3.8: a Return
// Nothing developer can only ever see candidate networks of keyword
// sub-queries, so MPANs with free or redundantly-covered leaves are
// unreachable no matter how many sub-queries they submit.
func RNCoverage(env *Env, level int) (*Table, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "rn-coverage",
		Title:   fmt.Sprintf("MPANs reachable by the Return Nothing workflow at level %d", level),
		Columns: []string{"query", "mpans", "rn_visible", "invisible_pct"},
		Notes:   "invisible MPANs contain a free tuple set or redundant keyword coverage at a leaf; no keyword sub-query has them as a candidate network",
	}
	for _, q := range dblife.Workload() {
		out, err := sys.Debug(q.Keywords, core.Options{Strategy: core.SBH})
		if err != nil {
			return nil, err
		}
		total, visible := 0, 0
		for _, na := range out.NonAnswers {
			for _, p := range na.MPANs {
				total++
				if sys.Lattice().Node(p.NodeID).IsCandidateNetwork() {
					visible++
				}
			}
		}
		pct := "n/a"
		if total > 0 {
			pct = fmt.Sprintf("%.1f%%", 100*float64(total-visible)/float64(total))
		}
		t.Rows = append(t.Rows, []string{q.ID, itoa(total), itoa(visible), pct})
	}
	return t, nil
}

// OnlineCN tests the paper's §2.2 claim (iii): the offline lattice bypasses
// the costly candidate-network generation phase. For each query it compares
// the lattice's online work (keyword mapping + pruning + MTN lookup) against
// generating the candidate networks from scratch at query time, the
// classical DISCOVER/DBXplorer approach. Both paths provably produce the
// same candidate networks (tested in internal/core).
func OnlineCN(env *Env, level int) (*Table, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "online-cn",
		Title:   fmt.Sprintf("lattice lookup vs online CN generation at level %d", level),
		Columns: []string{"query", "lattice_ms", "online_ms", "online_trees_generated", "mtns"},
	}
	for _, q := range dblife.Workload() {
		st, err := sys.Analyze(q.Keywords)
		if err != nil {
			return nil, err
		}
		online, err := sys.OnlineCandidateNetworks(q.Keywords)
		if err != nil {
			return nil, err
		}
		latticeTime := st.MapTime + st.PruneTime + st.MTNTime
		t.Rows = append(t.Rows, []string{
			q.ID, msf(latticeTime), msf(online.Elapsed),
			itoa(online.Generated), itoa(st.MTNs),
		})
	}
	return t, nil
}

// AblationSkew contrasts uniform relationship endpoints (the default the
// other experiments use) against Zipf-distributed ones (a real crawl's
// shape): same workload, same lattice level, SBH probes and MPAN counts
// side by side.
func AblationSkew(env *Env, level int, skew float64) (*Table, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, err
	}
	skewedEng, err := dblife.Generate(dblife.Config{Seed: env.Cfg.Seed, Scale: env.Cfg.Scale, Skew: skew})
	if err != nil {
		return nil, err
	}
	// The lattice is schema-bound, and each generated dataset carries its
	// own schema instance, so Phase 0 reruns for the skewed system (cheap
	// at the levels this ablation uses).
	skewedSys, err := core.Build(skewedEng, lattice.Options{MaxJoins: level - 1, KeywordSlots: 3})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-skew",
		Title:   fmt.Sprintf("uniform vs Zipf(%.1f) endpoint distribution at level %d", skew, level),
		Columns: []string{"query", "sql_uniform", "sql_zipf", "mpans_uniform", "mpans_zipf"},
		Notes:   "same schema, scale, and lattice; only the relationship endpoint distribution differs",
	}
	mpans := func(out *core.Output) int {
		n := 0
		for _, na := range out.NonAnswers {
			n += len(na.MPANs)
		}
		return n
	}
	for _, q := range dblife.Workload() {
		u, err := sys.Debug(q.Keywords, core.Options{Strategy: core.SBH})
		if err != nil {
			return nil, err
		}
		z, err := skewedSys.Debug(q.Keywords, core.Options{Strategy: core.SBH})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			q.ID, itoa(u.Stats.SQLExecuted), itoa(z.Stats.SQLExecuted),
			itoa(mpans(u)), itoa(mpans(z)),
		})
	}
	return t, nil
}
