package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/obs/flight"
)

// FlightPoint is one worker count's end-to-end Debug cost with the flight
// recorder detached versus attached (ring recording, no ledger capture — the
// always-on server configuration). Costs are wall nanoseconds per Debug call,
// each side's fastest sweep out of many interleaved off/on pairs.
type FlightPoint struct {
	Workers int `json:"workers"`
	// OffNsPerOp / OnNsPerOp are ns per Debug call without and with a
	// recording Log attached.
	OffNsPerOp float64 `json:"off_ns_per_op"`
	OnNsPerOp  float64 `json:"on_ns_per_op"`
	// Overhead is OnNsPerOp/OffNsPerOp - 1: the recorder's relative cost on
	// the interference-free fast path. The acceptance bar is 5%; see
	// TestFlightOverheadBudget.
	Overhead float64 `json:"overhead"`
	// EventsPerOp is how many flight events one Debug call emits.
	EventsPerOp float64 `json:"events_per_op"`
}

// FlightReport is the machine-readable artifact behind BENCH_flight.json.
type FlightReport struct {
	Level           int    `json:"level"`
	Strategy        string `json:"strategy"`
	Rounds          int    `json:"rounds"`
	QueriesPerRound int    `json:"queries_per_round"`
	RingSlots       int    `json:"ring_slots"`
	Parallelism
	Points []FlightPoint `json:"points"`
}

// FlightSweep measures the recorder's end-to-end overhead across worker
// counts. The verdict cache is bypassed so every probe runs its full
// lifecycle — admission, plan lookup, SQL, verdict — which is the event-dense
// worst case for the recorder; a cache-warm run emits fewer events and costs
// less. RE maximizes probes per op, same as the other sweeps.
func FlightSweep(env *Env, level int, workers []int, rounds int) (*Table, *FlightReport, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, nil, err
	}
	queries := dblife.Workload()
	rec := flight.NewRecorder(flight.DefaultRingSize)
	rep := &FlightReport{
		Level:           level,
		Strategy:        core.RE.String(),
		Rounds:          rounds,
		QueriesPerRound: len(queries),
		RingSlots:       flight.DefaultRingSize,
		Parallelism:     CurrentParallelism(env.Procs),
	}

	// One timed sweep over the workload, a few milliseconds of work.
	// record=true attaches a ring-recording Log to every Debug call, exactly
	// as the server does per request.
	sweep := func(w int, record bool) (elapsed time.Duration, events int, err error) {
		start := time.Now()
		for _, q := range queries {
			ctx := context.Background()
			var fl *flight.Log
			if record {
				fl = flight.NewLog(rec, "bench", false)
				ctx = flight.NewContext(ctx, fl)
			}
			_, err := sys.DebugContext(ctx, q.Keywords, core.Options{
				Strategy: core.RE, Workers: w, BypassCache: true,
			})
			if err != nil {
				return 0, 0, fmt.Errorf("bench: flight sweep %s workers=%d: %w", q.ID, w, err)
			}
			events += fl.Count()
		}
		return time.Since(start), events, nil
	}

	// Untimed warmup for the lazily built inverted index.
	if _, _, err := sweep(workers[0], false); err != nil {
		return nil, nil, err
	}

	// Each worker count runs many short off/on sweep pairs — alternating
	// which side of the pair goes first — and each side keeps its fastest
	// sweep. Interference (GC cycles, scheduler preemption, another tenant on
	// the host) only ever slows a sweep down, so the minimum is each side's
	// clean cost; and because the sweeps interleave, both minima are sampled
	// from the same fully-warm epoch of the process, which is what the
	// min-of-rounds estimators of the other sweeps cannot guarantee at this
	// signal size (the recorder costs ~1% of an op — order bias alone would
	// swamp it).
	// Deep minima are rare, so the floor needs many samples: at ~175 pairs
	// the two sides' minima still sit a few percent apart on pure noise,
	// which would swamp the ~1-2% signal; at ~700 they agree to well under a
	// percent. A sweep is under a millisecond, so this is still seconds.
	pairsPerRound := 100
	for _, w := range workers {
		pt := FlightPoint{Workers: w}
		offBest, onBest := math.Inf(1), math.Inf(1)
		var ops, events int
		for i := 0; i < rounds*pairsPerRound; i++ {
			for _, record := range [2]bool{i%2 == 0, i%2 != 0} {
				d, ev, err := sweep(w, record)
				if err != nil {
					return nil, nil, err
				}
				per := float64(d.Nanoseconds()) / float64(len(queries))
				if record {
					onBest = math.Min(onBest, per)
					ops += len(queries)
					events += ev
				} else {
					offBest = math.Min(offBest, per)
				}
			}
		}
		pt.OffNsPerOp, pt.OnNsPerOp = offBest, onBest
		pt.Overhead = onBest/offBest - 1
		pt.EventsPerOp = float64(events) / float64(ops)
		rep.Points = append(rep.Points, pt)
	}

	t := &Table{
		ID:    "flight",
		Title: fmt.Sprintf("flight recorder overhead at level %d (%s, %d rounds x %d queries)", level, rep.Strategy, rounds, len(queries)),
		Columns: []string{"workers", "off_ns_per_op", "on_ns_per_op", "overhead",
			"events_per_op"},
		Notes: fmt.Sprintf("end-to-end Debug ns/op, verdict cache bypassed (event-dense worst case); on = ring recording without ledger capture, ring %d slots; GOMAXPROCS=%d NumCPU=%d",
			flight.DefaultRingSize, rep.GOMAXPROCS, rep.NumCPU),
	}
	for _, p := range rep.Points {
		t.Rows = append(t.Rows, []string{
			itoa(p.Workers),
			fmt.Sprintf("%.0f", p.OffNsPerOp),
			fmt.Sprintf("%.0f", p.OnNsPerOp),
			fmt.Sprintf("%+.1f%%", 100*p.Overhead),
			fmt.Sprintf("%.1f", p.EventsPerOp),
		})
	}
	return t, rep, nil
}
