package bench

import (
	"runtime"
	"testing"
)

func TestFlightSweep(t *testing.T) {
	env := testEnv(t)
	tab, rep, err := FlightSweep(env, 3, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2)
	if len(rep.Points) != 2 {
		t.Fatalf("report has %d points, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.OffNsPerOp <= 0 || p.OnNsPerOp <= 0 {
			t.Errorf("workers=%d: non-positive timings %+v", p.Workers, p)
		}
		if p.EventsPerOp <= 0 {
			t.Errorf("workers=%d: recorded run emitted no events", p.Workers)
		}
	}
}

// TestFlightOverheadBudget enforces the recorder's acceptance bar in `make
// verify`: with ring recording attached to every run (the always-on server
// configuration), Debug throughput must stay within 5% of the recorder-off
// run at both serial and parallel worker counts.
//
// Wall-clock comparisons are noisy, so the sweep already takes the best of
// several rounds, and the test retries the whole measurement before
// declaring a regression: a real recorder slowdown shows up in every
// attempt, scheduler jitter does not.
func TestFlightOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement is slow")
	}
	env := testEnv(t)
	const budget = 0.05
	var worst float64
	for attempt := 0; attempt < 4; attempt++ {
		// Collect garbage left by whatever ran before the attempt: a GC
		// cycle landing inside one side of the comparison is the dominant
		// false-positive source on small hosts.
		runtime.GC()
		_, rep, err := FlightSweep(env, 3, []int{1, 8}, 7)
		if err != nil {
			t.Fatal(err)
		}
		worst = 0
		for _, p := range rep.Points {
			if p.Overhead > worst {
				worst = p.Overhead
			}
		}
		if worst <= budget {
			return
		}
		t.Logf("attempt %d: worst overhead %.1f%% over the %.0f%% budget, remeasuring", attempt+1, 100*worst, 100*budget)
	}
	t.Errorf("flight recorder overhead %.1f%% exceeds the %.0f%% budget in 4 consecutive measurements", 100*worst, 100*budget)
}
