package bench

import (
	"fmt"
	"math"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
)

// PlanPoint is one worker count's text-path versus prepared-path probe cost
// over the workload, cold (plan caches purged) and warm (caches populated by
// a full prior pass). Costs are probe-servicing nanoseconds per executed
// probe — the oracle's SQLTime, which times render+execute on the text path
// and handle+execute on the prepared path — so the comparison isolates the
// probe pipeline from the phases and scheduler overhead both paths share.
type PlanPoint struct {
	Workers int `json:"workers"`
	// Text path: rendered SQL through database/sql. Warm still benefits
	// from the engine's canonical-SQL plan cache (parse and resolve are
	// skipped); the per-probe render and driver round trip remain. Warm
	// figures are the fastest of `rounds` passes; cold is a single pass.
	TextColdNsPerProbe float64 `json:"text_cold_ns_per_probe"`
	TextWarmNsPerProbe float64 `json:"text_warm_ns_per_probe"`
	// Prepared path: compiled handles through the probe-handle cache plus
	// the per-run candidate-set cache. Cold pays one compile per distinct
	// probe shape; warm is the steady server state.
	PreparedColdNsPerProbe float64 `json:"prepared_cold_ns_per_probe"`
	PreparedWarmNsPerProbe float64 `json:"prepared_warm_ns_per_probe"`
	// WarmSpeedup is TextWarmNsPerProbe / PreparedWarmNsPerProbe — the
	// headline number: how much faster a steady-state probe is once the SQL
	// text path is skipped entirely.
	WarmSpeedup float64 `json:"warm_speedup"`
	// ProbesPerOp is probes per Debug call; identical on both paths by the
	// equivalence property (the sweep fails if they ever diverge).
	ProbesPerOp float64 `json:"probes_per_op"`
	// CandSetHitRate is the fraction of candidate-set lookups answered from
	// the run-shared cache, measured on the cold prepared pass — the pass
	// where planning happens. Warm handles keep their plans (they replan
	// only on a data-version bump), so a warm pass does no lookups at all.
	CandSetHitRate float64 `json:"candset_hit_rate"`
}

// PlanReport is the machine-readable artifact behind BENCH_plan.json.
type PlanReport struct {
	Level           int    `json:"level"`
	Strategy        string `json:"strategy"`
	Rounds          int    `json:"rounds"`
	QueriesPerRound int    `json:"queries_per_round"`
	Parallelism
	Points []PlanPoint `json:"points"`
}

// PlanSweep compares the two probe execution paths across worker counts. The
// verdict cache is bypassed throughout — every probe must actually execute,
// or the comparison would measure cache lookups — and the plan caches are
// purged before each cold pass and left populated for the warm ones. RE is
// the probing strategy for the same reason ProbeSweep uses it: the largest
// independent batches, the most probes per op.
func PlanSweep(env *Env, level int, workers []int, rounds int) (*Table, *PlanReport, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, nil, err
	}
	queries := dblife.Workload()
	rep := &PlanReport{
		Level:           level,
		Strategy:        core.RE.String(),
		Rounds:          rounds,
		QueriesPerRound: len(queries),
		Parallelism:     CurrentParallelism(env.Procs),
	}
	rep.NoteWorkers(maxOf(workers))

	// One pass over the workload on one path; returns mean ns per executed
	// probe, probes per op, and the candidate-set hit rate.
	pass := func(w int, text bool, passes int) (nsPerProbe, probesPerOp, candRate float64, err error) {
		var ops, probes, candHits, candMisses int
		var probeNanos time.Duration
		for p := 0; p < passes; p++ {
			for _, q := range queries {
				out, err := sys.Debug(q.Keywords, core.Options{
					Strategy: core.RE, Workers: w, BypassCache: true, TextProbes: text,
				})
				if err != nil {
					return 0, 0, 0, fmt.Errorf("bench: plan sweep %s workers=%d: %w", q.ID, w, err)
				}
				ops++
				probes += out.Stats.SQLExecuted
				probeNanos += out.Stats.SQLTime
				candHits += out.Stats.CandSetHits
				candMisses += out.Stats.CandSetMisses
			}
		}
		if probes == 0 {
			return 0, 0, 0, fmt.Errorf("bench: plan sweep executed no probes")
		}
		if lookups := candHits + candMisses; lookups > 0 {
			candRate = float64(candHits) / float64(lookups)
		}
		return float64(probeNanos.Nanoseconds()) / float64(probes), float64(probes) / float64(ops), candRate, nil
	}

	// warm repeats the pass `rounds` times against populated caches and keeps
	// the fastest round: the minimum is the standard low-variance estimator
	// for a fixed workload — any GC pause or scheduler burst can only slow a
	// round down, never speed it up.
	warm := func(w int, text bool) (nsPerProbe, probesPerOp float64, err error) {
		best := math.Inf(1)
		for i := 0; i < rounds; i++ {
			ns, ppo, _, err := pass(w, text, 1)
			if err != nil {
				return 0, 0, err
			}
			if ns < best {
				best = ns
			}
			probesPerOp = ppo
		}
		return best, probesPerOp, nil
	}

	// Untimed warmup: the inverted index builds lazily on the first Debug,
	// and its cost must not land in the first measured pass.
	if _, _, _, err := pass(workers[0], true, 1); err != nil {
		return nil, nil, err
	}

	for _, w := range workers {
		pt := PlanPoint{Workers: w}
		var textProbes, prepProbes float64

		sys.PurgePlanCaches()
		pt.TextColdNsPerProbe, _, _, err = pass(w, true, 1)
		if err != nil {
			return nil, nil, err
		}
		pt.TextWarmNsPerProbe, textProbes, err = warm(w, true)
		if err != nil {
			return nil, nil, err
		}

		sys.PurgePlanCaches()
		pt.PreparedColdNsPerProbe, _, pt.CandSetHitRate, err = pass(w, false, 1)
		if err != nil {
			return nil, nil, err
		}
		pt.PreparedWarmNsPerProbe, prepProbes, err = warm(w, false)
		if err != nil {
			return nil, nil, err
		}

		// The equivalence property, enforced where it is cheapest to check:
		// both paths must spend exactly the same probes on the same workload.
		if textProbes != prepProbes {
			return nil, nil, fmt.Errorf("bench: probe counts diverged between paths at workers=%d: text %.1f, prepared %.1f",
				w, textProbes, prepProbes)
		}
		pt.ProbesPerOp = prepProbes
		if pt.PreparedWarmNsPerProbe > 0 {
			pt.WarmSpeedup = pt.TextWarmNsPerProbe / pt.PreparedWarmNsPerProbe
		}
		rep.Points = append(rep.Points, pt)
	}

	t := &Table{
		ID:    "plan",
		Title: fmt.Sprintf("prepared-probe pipeline at level %d (%s, %d rounds x %d queries)", level, rep.Strategy, rounds, len(queries)),
		Columns: []string{"workers", "text_cold", "text_warm", "prep_cold", "prep_warm",
			"warm_speedup", "candset_hit_rate"},
		Notes: fmt.Sprintf("probe-servicing ns per executed probe (render/handle + execute), verdict cache bypassed; cold = plan caches purged (candset rate measured here, planning is cold-only), warm = steady state; GOMAXPROCS=%d NumCPU=%d",
			rep.GOMAXPROCS, rep.NumCPU),
	}
	for _, p := range rep.Points {
		t.Rows = append(t.Rows, []string{
			itoa(p.Workers),
			fmt.Sprintf("%.0f", p.TextColdNsPerProbe),
			fmt.Sprintf("%.0f", p.TextWarmNsPerProbe),
			fmt.Sprintf("%.0f", p.PreparedColdNsPerProbe),
			fmt.Sprintf("%.0f", p.PreparedWarmNsPerProbe),
			fmt.Sprintf("%.2fx", p.WarmSpeedup),
			fmt.Sprintf("%.1f%%", 100*p.CandSetHitRate),
		})
	}
	return t, rep, nil
}
