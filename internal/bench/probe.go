package bench

import (
	"fmt"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/probecache"
)

// ProbePoint is one worker count's measurements over the workload: uncached
// latency and probe volume, plus a warm-cache pass over the same queries.
type ProbePoint struct {
	Workers int `json:"workers"`
	// NsPerOp is the mean wall time of one Debug call with the cache
	// bypassed; ProbesPerOp the mean probes it spent.
	NsPerOp     float64 `json:"ns_per_op"`
	ProbesPerOp float64 `json:"probes_per_op"`
	// SpeedupVsSerial is NsPerOp(workers=1) / NsPerOp(this); meaningful only
	// relative to NumCPU — on a single-core host it hovers around 1.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// WarmNsPerOp is the mean Debug latency when every verdict is already in
	// the probe cache; WarmHitRate the fraction of probes the cache answered
	// (which is exactly the fraction of SQL avoided).
	WarmNsPerOp float64 `json:"warm_ns_per_op"`
	WarmHitRate float64 `json:"warm_cache_hit_rate"`
}

// ProbeReport is the machine-readable artifact behind BENCH_probe.json.
type ProbeReport struct {
	Level           int    `json:"level"`
	Strategy        string `json:"strategy"`
	Rounds          int    `json:"rounds"`
	QueriesPerRound int    `json:"queries_per_round"`
	// Parallelism qualifies the speedup column: worker counts beyond the
	// core count cannot shorten CPU-bound probe batches.
	Parallelism
	Points []ProbePoint `json:"points"`
}

// ProbeSweep measures the Phase 3 probe scheduler across worker counts: the
// full workload is debugged `rounds` times per worker count with the cache
// bypassed (latency and probe volume), then once cold and `rounds` times warm
// against a fresh probe cache (hit rate and warm latency). RE is used as the
// probing strategy because it issues the largest independent batches — the
// best case for the scheduler and the worst case for the database.
func ProbeSweep(env *Env, level int, workers []int, rounds int) (*Table, *ProbeReport, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, nil, err
	}
	queries := dblife.Workload()
	rep := &ProbeReport{
		Level:           level,
		Strategy:        core.RE.String(),
		Rounds:          rounds,
		QueriesPerRound: len(queries),
		Parallelism:     CurrentParallelism(env.Procs),
	}
	rep.NoteWorkers(maxOf(workers))

	sweep := func(w int, bypass bool) (nsPerOp, probesPerOp, hitRate float64, err error) {
		var ops, probes, hits int
		start := time.Now()
		for round := 0; round < rounds; round++ {
			for _, q := range queries {
				out, err := sys.Debug(q.Keywords, core.Options{
					Strategy: core.RE, Workers: w, BypassCache: bypass,
				})
				if err != nil {
					return 0, 0, 0, fmt.Errorf("bench: probe sweep %s workers=%d: %w", q.ID, w, err)
				}
				ops++
				probes += out.Stats.SQLExecuted
				hits += out.Stats.CacheHits
			}
		}
		elapsed := float64(time.Since(start).Nanoseconds())
		if probes == 0 {
			return elapsed / float64(ops), 0, 0, nil
		}
		return elapsed / float64(ops), float64(probes) / float64(ops), float64(hits) / float64(probes), nil
	}

	// One untimed pass first: the engine builds its inverted index lazily on
	// the first Debug, and without this the cost lands entirely in the first
	// worker point and masquerades as parallel speedup.
	if _, _, _, err := sweep(workers[0], true); err != nil {
		return nil, nil, err
	}

	var serialNs float64
	for i, w := range workers {
		p := ProbePoint{Workers: w}
		p.NsPerOp, p.ProbesPerOp, _, err = sweep(w, true)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			serialNs = p.NsPerOp
		}
		if p.NsPerOp > 0 {
			p.SpeedupVsSerial = serialNs / p.NsPerOp
		}

		// Fresh cache per point: one cold pass to warm it, then timed warm
		// rounds where (almost) every probe should hit.
		sys.SetProbeCache(probecache.New(probecache.Config{}))
		if _, _, _, err := sweep(w, false); err != nil {
			return nil, nil, err
		}
		p.WarmNsPerOp, _, p.WarmHitRate, err = sweep(w, false)
		sys.SetProbeCache(nil)
		if err != nil {
			return nil, nil, err
		}
		rep.Points = append(rep.Points, p)
	}

	t := &Table{
		ID:    "probe",
		Title: fmt.Sprintf("probe scheduler sweep at level %d (%s, %d rounds x %d queries)", level, rep.Strategy, rounds, len(queries)),
		Columns: []string{"workers", "ns_per_op", "probes_per_op", "speedup",
			"warm_ns_per_op", "warm_hit_rate"},
		Notes: fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d; speedup is relative to workers=%d; warm columns repeat the workload against a pre-warmed probe cache",
			rep.GOMAXPROCS, rep.NumCPU, workers[0]),
	}
	for _, p := range rep.Points {
		t.Rows = append(t.Rows, []string{
			itoa(p.Workers),
			fmt.Sprintf("%.0f", p.NsPerOp),
			fmt.Sprintf("%.1f", p.ProbesPerOp),
			fmt.Sprintf("%.2fx", p.SpeedupVsSerial),
			fmt.Sprintf("%.0f", p.WarmNsPerOp),
			fmt.Sprintf("%.1f%%", 100*p.WarmHitRate),
		})
	}
	return t, rep, nil
}
