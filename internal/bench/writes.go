package bench

import (
	"fmt"
	"strings"
	"time"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/core"
	"kwsdbg/internal/dblife"
	"kwsdbg/internal/probecache"
	"kwsdbg/internal/vervec"
)

// WritesPhase is one step of the write-churn sweep: an optional INSERT
// followed by a timed Debug run against the shared probe cache.
type WritesPhase struct {
	Label string `json:"label"`
	// Table and SQL describe the write preceding the run; both empty for
	// the baseline phases (cold, warm-up, steady-state).
	Table string `json:"table,omitempty"`
	SQL   string `json:"sql,omitempty"`
	// NsPerOp is the wall time of the Debug call; Probes the SQL that
	// reached the database (cache hits excluded).
	NsPerOp float64 `json:"ns_per_op"`
	Probes  int     `json:"probes"`
	Hits    int     `json:"cache_hits"`
	// Suspects/Repaired count dead verdicts the write downgraded and this
	// run re-proved; StaleEvictions is how many cache entries the write
	// flushed outright (the over-invalidation the version vector removes —
	// zero for every monotone INSERT).
	Suspects       int `json:"suspects"`
	Repaired       int `json:"repaired"`
	StaleEvictions int `json:"stale_evictions"`
}

// WritesReport is the machine-readable artifact behind BENCH_writes.json: the
// evidence that per-table/term version vectors stop cache over-invalidation
// under writes. The headline numbers are DisjointInvalidated (must be 0: a
// write into a table no cached verdict joins suspects nothing) and
// ProbeSavingsVsCold (a warm repaired run after an intersecting write issues
// at least 2x fewer probes than a cold run of the same changed data).
type WritesReport struct {
	Level    int      `json:"level"`
	Strategy string   `json:"strategy"`
	QueryID  string   `json:"query_id"`
	Keywords []string `json:"keywords"`
	Parallelism
	// Entries is the probe-cache population after warm-up — the verdicts at
	// stake under the write churn.
	Entries int `json:"entries"`
	// ColdProbes is the probe bill of a cacheless run; the denominator of
	// ProbeSavingsVsCold.
	ColdProbes int           `json:"cold_probes"`
	Phases     []WritesPhase `json:"phases"`
	// DisjointInvalidated = suspects + stale evictions caused by the
	// disjoint-table write. The pre-fix scalar DataVersion design scored
	// Entries here; the vector scores 0.
	DisjointInvalidated int     `json:"disjoint_invalidated"`
	ProbeSavingsVsCold  float64 `json:"probe_savings_vs_cold"`
}

// writeRowSQL builds a literal INSERT for rel: fresh large integers for int
// columns (keys stay collision-free against generated data), text for the
// rest. Padding the text with the given terms makes the write intersect (or
// stay disjoint from) cached term footprints by construction.
func writeRowSQL(rel *catalog.Relation, id int, text string) string {
	vals := make([]string, len(rel.Columns))
	for i, col := range rel.Columns {
		if col.Type == catalog.Text {
			vals[i] = "'" + text + "'"
		} else {
			vals[i] = fmt.Sprintf("%d", id)
		}
	}
	return fmt.Sprintf("INSERT INTO %s VALUES (%s)", rel.Name, strings.Join(vals, ", "))
}

// WritesSweep measures cache behaviour under write churn for the workload's
// canonical non-answer query (Q3 is fully dead — every verdict in the cache
// is a dead verdict, the kind a write can flip). Phases: cold baseline,
// warm-up, warm steady state, a write into a table outside every cached
// footprint (must invalidate nothing), and a write into the query's own
// tables and terms (must suspect and repair, never flush). Needs level >= 5:
// below that the lattice prunes Q3 without issuing SQL, so there is nothing
// to cache.
func WritesSweep(env *Env, level int) (*Table, *WritesReport, error) {
	sys, err := env.System(level)
	if err != nil {
		return nil, nil, err
	}
	q := dblife.Workload()[2] // Q3: Agrawal, Chaudhuri, Das
	rep := &WritesReport{
		Level:       level,
		Strategy:    core.SBH.String(),
		QueryID:     q.ID,
		Keywords:    q.Keywords,
		Parallelism: CurrentParallelism(env.Procs),
	}
	opts := core.Options{Strategy: core.SBH, Workers: 4}

	cache := probecache.New(probecache.Config{})
	sys.SetProbeCache(cache)
	defer sys.SetProbeCache(nil)

	run := func(label, table, sql string, bypass bool) (*WritesPhase, error) {
		if sql != "" {
			if _, err := env.Engine().Exec(sql); err != nil {
				return nil, fmt.Errorf("bench: writes sweep %s: %w", label, err)
			}
		}
		before := cache.Snapshot()
		o := opts
		o.BypassCache = bypass
		start := time.Now()
		out, err := sys.Debug(q.Keywords, o)
		if err != nil {
			return nil, fmt.Errorf("bench: writes sweep %s: %w", label, err)
		}
		after := cache.Snapshot()
		ph := WritesPhase{
			Label:          label,
			Table:          table,
			SQL:            sql,
			NsPerOp:        float64(time.Since(start).Nanoseconds()),
			Probes:         out.Stats.SQLIssued(),
			Hits:           out.Stats.CacheHits,
			Suspects:       out.Stats.Suspects,
			Repaired:       out.Stats.Repaired,
			StaleEvictions: int(after.EvictionsStale - before.EvictionsStale),
		}
		rep.Phases = append(rep.Phases, ph)
		return &ph, nil
	}

	cold, err := run("cold", "", "", true)
	if err != nil {
		return nil, nil, err
	}
	rep.ColdProbes = cold.Probes
	if _, err := run("warm-up", "", "", false); err != nil {
		return nil, nil, err
	}
	rep.Entries = cache.Snapshot().Entries
	if _, err := run("steady", "", "", false); err != nil {
		return nil, nil, err
	}

	// The disjoint write: the first schema relation no cached footprint
	// mentions. FootprintTables is the cache's own view, so the choice
	// stays correct if the lattice (and thus the footprints) changes shape.
	covered := map[string]bool{}
	for _, name := range cache.FootprintTables() {
		covered[name] = true
	}
	var disjoint *catalog.Relation
	for _, rel := range env.Engine().Database().Schema().Relations() {
		if !covered[vervec.TableKey(rel.Name)] {
			disjoint = rel
			break
		}
	}
	if disjoint == nil {
		return nil, nil, fmt.Errorf("bench: writes sweep: every table is in some cached footprint; no disjoint write possible at level %d", level)
	}
	dj, err := run("disjoint-write", disjoint.Name,
		writeRowSQL(disjoint, 9_000_001, "benchmark churn venue"), false)
	if err != nil {
		return nil, nil, err
	}
	rep.DisjointInvalidated = dj.Suspects + dj.StaleEvictions

	// The touching write: a Person row carrying the query's own first
	// keyword — inside both the table and term footprints of Q3's verdicts.
	person, _ := env.Engine().Database().Schema().Relation(dblife.Person)
	touch, err := run("touching-write", dblife.Person,
		writeRowSQL(person, 9_000_002, q.Keywords[0]+" benchmark churn"), false)
	if err != nil {
		return nil, nil, err
	}
	if touch.Probes > 0 {
		rep.ProbeSavingsVsCold = float64(rep.ColdProbes) / float64(touch.Probes)
	}

	t := &Table{
		ID: "writes",
		Title: fmt.Sprintf("write churn sweep at level %d (%s on %s: %s)",
			level, rep.Strategy, q.ID, strings.Join(q.Keywords, " ")),
		Columns: []string{"phase", "table", "probes", "hits", "suspects", "repaired", "stale_evictions", "ns_per_op"},
		Notes: fmt.Sprintf("%d cached verdicts; disjoint write invalidated %d; touching write repaired in-place at %.1fx fewer probes than cold",
			rep.Entries, rep.DisjointInvalidated, rep.ProbeSavingsVsCold),
	}
	for _, p := range rep.Phases {
		t.Rows = append(t.Rows, []string{
			p.Label, p.Table,
			itoa(p.Probes), itoa(p.Hits), itoa(p.Suspects), itoa(p.Repaired), itoa(p.StaleEvictions),
			fmt.Sprintf("%.0f", p.NsPerOp),
		})
	}
	return t, rep, nil
}
