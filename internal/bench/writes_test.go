package bench

import (
	"testing"

	"kwsdbg/internal/dblife"
)

// TestWritesSweep pins the acceptance numbers of the version-vector fix: the
// disjoint-table write invalidates zero probe-cache entries, every write-side
// effect on the cache is a suspect repaired in place (no stale evictions),
// and the warm repaired run after an intersecting write issues at least 2x
// fewer probes than the cold baseline.
func TestWritesSweep(t *testing.T) {
	env, err := NewEnv(dblife.Config{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	tbl, rep, err := WritesSweep(env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(tbl.Rows) != len(rep.Phases) {
		t.Fatalf("table rows = %d, phases = %d", len(tbl.Rows), len(rep.Phases))
	}
	if rep.ColdProbes == 0 || rep.Entries == 0 {
		t.Fatalf("sweep degenerated: cold_probes=%d entries=%d", rep.ColdProbes, rep.Entries)
	}
	if rep.DisjointInvalidated != 0 {
		t.Errorf("disjoint write invalidated %d entries, want 0", rep.DisjointInvalidated)
	}
	if rep.ProbeSavingsVsCold < 2 {
		t.Errorf("probe savings vs cold = %.2fx, want >= 2x", rep.ProbeSavingsVsCold)
	}
	byLabel := map[string]WritesPhase{}
	for _, p := range rep.Phases {
		byLabel[p.Label] = p
	}
	if p := byLabel["steady"]; p.Probes != 0 {
		t.Errorf("steady-state run issued %d probes with a warm cache", p.Probes)
	}
	if p := byLabel["disjoint-write"]; p.Suspects != 0 || p.StaleEvictions != 0 || p.Probes != 0 {
		t.Errorf("disjoint write disturbed the cache: %+v", p)
	}
	touch := byLabel["touching-write"]
	if touch.Suspects == 0 || touch.Repaired != touch.Suspects {
		t.Errorf("touching write: suspects=%d repaired=%d, want equal and nonzero",
			touch.Suspects, touch.Repaired)
	}
	if touch.StaleEvictions != 0 {
		t.Errorf("monotone touching write evicted %d entries as stale", touch.StaleEvictions)
	}
}
