package bitset

import "testing"

// BenchmarkBitsetOps times the container operations the probe evaluator
// leans on: intersections across the array/bitmap representation boundary
// and membership probes — the inner loop of a semi-join reduction.
func BenchmarkBitsetOps(b *testing.B) {
	sparse := make([]uint32, 0, 1024)
	for i := uint32(0); i < 1024; i++ {
		sparse = append(sparse, i*61) // stays in array containers
	}
	dense := make([]uint32, 0, 20000)
	for i := uint32(0); i < 20000; i++ {
		dense = append(dense, i*3) // promotes to bitmap containers
	}
	sp, de := FromSorted(sparse), FromSorted(dense)
	b.Run("and-sparse-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp.And(de).Release()
		}
	})
	b.Run("or-sparse-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp.Or(de).Release()
		}
	})
	b.Run("contains", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			de.Contains(uint32(i) % 60000)
		}
	})
	b.Run("iterate-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			sp.Iterate(func(uint32) bool { n++; return true })
			if n != sp.Cardinality() {
				b.Fatal("iterate miscounted")
			}
		}
	})
}
