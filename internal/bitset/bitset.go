// Package bitset implements roaring-style compressed bitmaps over uint32
// row IDs: the value space is chunked into 64Ki blocks keyed by the high 16
// bits, and each chunk is stored in whichever container representation is
// smallest — a sorted uint16 array (sparse), a 1024-word bitmap (dense), or
// run-length-encoded ranges (clustered). Containers promote from array to
// bitmap when an insertion would push them past ArrayMaxCard values and
// demote back when an intersection shrinks them to ArrayMaxCard or fewer,
// matching the classic roaring thresholds.
//
// The package is the set-algebra substrate of the bitset probe path
// (internal/core/bitprobe): candidate row sets and semi-join reductions are
// bitmaps here instead of tuple streams in the SQL engine. It is pure data
// structure — no clocks, no maps, no dependencies beyond the stdlib — so it
// sits inside the determinism lint scope, and the dense-container word
// arrays plus the array-container backing slices are pooled so the probe
// hot path allocates nothing in steady state.
//
// Bitmaps are not safe for concurrent mutation; a built bitmap is safe for
// concurrent readers. Release returns pooled storage and must only be called
// on bitmaps no reader can still observe.
package bitset

import (
	"math/bits"
	"sync"
)

// ArrayMaxCard is the array/bitmap boundary: an array container holds at
// most this many values, and an intersection result at or below it is
// demoted back to an array.
const ArrayMaxCard = 4096

// wordCount is the 64-bit word count of a dense container (65536 bits).
const wordCount = 1024

// Container representations.
const (
	typeArray uint8 = iota
	typeBitmap
	typeRun
)

// runPair is one RLE range, inclusive on both ends.
type runPair struct{ start, last uint16 }

// container is one 64Ki chunk in whichever representation it currently uses.
type container struct {
	typ uint8
	n   int32 // cardinality
	arr []uint16
	bm  *[wordCount]uint64
	rns []runPair
}

// Bitmap is a compressed set of uint32 values. keys holds the high-16-bit
// chunk keys in ascending order; cs[i] is the container for keys[i]. The
// invariant is that no container is empty.
type Bitmap struct {
	keys []uint16
	cs   []container
}

var wordPool = sync.Pool{New: func() any { return new([wordCount]uint64) }}
var arrPool = sync.Pool{New: func() any {
	s := make([]uint16, 0, ArrayMaxCard)
	return &s
}}

func getWords() *[wordCount]uint64 {
	w := wordPool.Get().(*[wordCount]uint64)
	*w = [wordCount]uint64{}
	return w
}

func getArr() []uint16 { return (*(arrPool.Get().(*[]uint16)))[:0] }

func putArr(s []uint16) {
	if cap(s) >= ArrayMaxCard {
		s = s[:0]
		arrPool.Put(&s)
	}
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// Release returns the bitmap's pooled storage and empties it. Only call it
// on bitmaps no concurrent reader can still observe; shared (cached) bitmaps
// are never released, they are dropped for the GC.
func (b *Bitmap) Release() {
	for i := range b.cs {
		c := &b.cs[i]
		if c.bm != nil {
			wordPool.Put(c.bm)
			c.bm = nil
		}
		if c.arr != nil {
			putArr(c.arr)
			c.arr = nil
		}
		c.rns = nil
	}
	b.keys = b.keys[:0]
	b.cs = b.cs[:0]
}

// FromSorted builds a bitmap from ascending, duplicate-free values, choosing
// the smallest container representation per chunk (the roaring size rule:
// arrays cost 2 bytes per value, runs 4 bytes per range, dense chunks 8 KiB).
func FromSorted(vals []uint32) *Bitmap {
	b := New()
	for i := 0; i < len(vals); {
		key := uint16(vals[i] >> 16)
		j := i
		for j < len(vals) && uint16(vals[j]>>16) == key {
			j++
		}
		b.keys = append(b.keys, key)
		b.cs = append(b.cs, buildContainer(vals[i:j]))
		i = j
	}
	return b
}

// buildContainer picks the cheapest representation for one chunk's sorted
// low-16-bit values (passed as full uint32s sharing one high half).
func buildContainer(vals []uint32) container {
	card := len(vals)
	runs := 1
	for i := 1; i < len(vals); i++ {
		if uint16(vals[i]) != uint16(vals[i-1])+1 {
			runs++
		}
	}
	runBytes, arrBytes, bmBytes := 4*runs+2, 2*card, 8192
	if card > ArrayMaxCard {
		arrBytes = 1 << 30 // arrays are capped; never pick one here
	}
	switch {
	case runBytes <= arrBytes && runBytes <= bmBytes:
		c := container{typ: typeRun, n: int32(card)}
		start := uint16(vals[0])
		prev := start
		for _, v := range vals[1:] {
			lo := uint16(v)
			if lo != prev+1 {
				c.rns = append(c.rns, runPair{start, prev})
				start = lo
			}
			prev = lo
		}
		c.rns = append(c.rns, runPair{start, prev})
		return c
	case arrBytes <= bmBytes:
		c := container{typ: typeArray, n: int32(card), arr: getArr()}
		for _, v := range vals {
			c.arr = append(c.arr, uint16(v))
		}
		return c
	default:
		c := container{typ: typeBitmap, n: int32(card), bm: getWords()}
		for _, v := range vals {
			lo := uint16(v)
			c.bm[lo>>6] |= 1 << (lo & 63)
		}
		return c
	}
}

// findKey returns the index of key in b.keys and whether it is present; when
// absent, the index is the insertion point.
func (b *Bitmap) findKey(key uint16) (int, bool) {
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(b.keys) && b.keys[lo] == key
}

// Add inserts x. An array container that would exceed ArrayMaxCard promotes
// to a dense bitmap; a run container mutates by first rewriting itself as an
// array or bitmap (runs are a read-optimized form produced by FromSorted).
func (b *Bitmap) Add(x uint32) {
	key, lo := uint16(x>>16), uint16(x)
	i, ok := b.findKey(key)
	if !ok {
		b.keys = append(b.keys, 0)
		copy(b.keys[i+1:], b.keys[i:])
		b.keys[i] = key
		b.cs = append(b.cs, container{})
		copy(b.cs[i+1:], b.cs[i:])
		b.cs[i] = container{typ: typeArray, arr: getArr()}
	}
	c := &b.cs[i]
	if c.typ == typeRun {
		c.unrun()
	}
	if c.typ == typeArray {
		p := searchU16(c.arr, lo)
		if p < len(c.arr) && c.arr[p] == lo {
			return
		}
		if int(c.n) >= ArrayMaxCard {
			c.promote()
		} else {
			c.arr = append(c.arr, 0)
			copy(c.arr[p+1:], c.arr[p:])
			c.arr[p] = lo
			c.n++
			return
		}
	}
	w, m := lo>>6, uint64(1)<<(lo&63)
	if c.bm[w]&m == 0 {
		c.bm[w] |= m
		c.n++
	}
}

// promote rewrites an array container as a dense bitmap.
func (c *container) promote() {
	bm := getWords()
	for _, lo := range c.arr {
		bm[lo>>6] |= 1 << (lo & 63)
	}
	putArr(c.arr)
	*c = container{typ: typeBitmap, n: c.n, bm: bm}
}

// unrun rewrites a run container as an array (small) or bitmap (large).
func (c *container) unrun() {
	if int(c.n) <= ArrayMaxCard {
		arr := getArr()
		for _, r := range c.rns {
			for v := int(r.start); v <= int(r.last); v++ {
				arr = append(arr, uint16(v))
			}
		}
		*c = container{typ: typeArray, n: c.n, arr: arr}
		return
	}
	bm := getWords()
	for _, r := range c.rns {
		for v := int(r.start); v <= int(r.last); v++ {
			bm[v>>6] |= 1 << (v & 63)
		}
	}
	*c = container{typ: typeBitmap, n: c.n, bm: bm}
}

// searchU16 is sort.Search specialized for the hot membership path.
func searchU16(a []uint16, x uint16) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports membership of x. A nil bitmap contains nothing.
//
//kws:hotpath
func (b *Bitmap) Contains(x uint32) bool {
	if b == nil {
		return false
	}
	i, ok := b.findKey(uint16(x >> 16))
	if !ok {
		return false
	}
	c := &b.cs[i]
	lo := uint16(x)
	switch c.typ {
	case typeArray:
		p := searchU16(c.arr, lo)
		return p < len(c.arr) && c.arr[p] == lo
	case typeBitmap:
		return c.bm[lo>>6]&(1<<(lo&63)) != 0
	default:
		lo2, hi := 0, len(c.rns)
		for lo2 < hi {
			mid := (lo2 + hi) / 2
			switch {
			case c.rns[mid].last < lo:
				lo2 = mid + 1
			case c.rns[mid].start > lo:
				hi = mid
			default:
				return true
			}
		}
		return false
	}
}

// Cardinality returns the number of values in the set.
func (b *Bitmap) Cardinality() int {
	n := 0
	for i := range b.cs {
		n += int(b.cs[i].n)
	}
	return n
}

// IsEmpty reports whether the set has no values. A nil bitmap is empty.
func (b *Bitmap) IsEmpty() bool { return b == nil || len(b.keys) == 0 }

// And returns the intersection as a new bitmap with pooled storage. Dense
// intersection results at or below ArrayMaxCard demote to array containers.
//
//kws:hotpath
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	for i < len(b.keys) && j < len(o.keys) {
		switch {
		case b.keys[i] < o.keys[j]:
			i++
		case b.keys[i] > o.keys[j]:
			j++
		default:
			if c := andContainers(&b.cs[i], &o.cs[j]); c.n > 0 {
				out.keys = append(out.keys, b.keys[i])
				out.cs = append(out.cs, c)
			}
			i++
			j++
		}
	}
	return out
}

// asBitmapView returns a dense view of the container, materializing runs and
// arrays into a pooled scratch bitmap; the second result says whether the
// words must be returned to the pool afterwards.
func (c *container) asBitmapView() (*[wordCount]uint64, bool) {
	if c.typ == typeBitmap {
		return c.bm, false
	}
	bm := getWords()
	if c.typ == typeArray {
		for _, lo := range c.arr {
			bm[lo>>6] |= 1 << (lo & 63)
		}
	} else {
		for _, r := range c.rns {
			for v := int(r.start); v <= int(r.last); v++ {
				bm[v>>6] |= 1 << (v & 63)
			}
		}
	}
	return bm, true
}

func andContainers(a, b *container) container {
	// Array on either side: scan the smaller array against the other.
	if a.typ != typeArray && b.typ == typeArray {
		a, b = b, a
	}
	if a.typ == typeArray {
		out := container{typ: typeArray, arr: getArr()}
		if b.typ == typeArray && len(b.arr) < len(a.arr) {
			a, b = b, a
		}
		for _, lo := range a.arr {
			if b.containsLow(lo) {
				out.arr = append(out.arr, lo)
			}
		}
		out.n = int32(len(out.arr))
		if out.n == 0 {
			putArr(out.arr)
			out.arr = nil
		}
		return out
	}
	// Dense x dense (runs materialize into pooled scratch words).
	wa, ta := a.asBitmapView()
	wb, tb := b.asBitmapView()
	res := getWords()
	n := 0
	for w := 0; w < wordCount; w++ {
		v := wa[w] & wb[w]
		res[w] = v
		n += bits.OnesCount64(v)
	}
	if ta {
		wordPool.Put(wa)
	}
	if tb {
		wordPool.Put(wb)
	}
	if n == 0 {
		wordPool.Put(res)
		return container{}
	}
	out := container{typ: typeBitmap, n: int32(n), bm: res}
	if n <= ArrayMaxCard {
		out.demote()
	}
	return out
}

// containsLow tests the low 16 bits against one container.
func (c *container) containsLow(lo uint16) bool {
	switch c.typ {
	case typeArray:
		p := searchU16(c.arr, lo)
		return p < len(c.arr) && c.arr[p] == lo
	case typeBitmap:
		return c.bm[lo>>6]&(1<<(lo&63)) != 0
	default:
		for _, r := range c.rns {
			if lo >= r.start && lo <= r.last {
				return true
			}
		}
		return false
	}
}

// demote rewrites a dense container of cardinality <= ArrayMaxCard as an
// array, returning the words to the pool.
func (c *container) demote() {
	arr := getArr()
	for w := 0; w < wordCount; w++ {
		word := c.bm[w]
		for word != 0 {
			t := bits.TrailingZeros64(word)
			arr = append(arr, uint16(w<<6+t))
			word &^= 1 << t
		}
	}
	wordPool.Put(c.bm)
	*c = container{typ: typeArray, n: int32(len(arr)), arr: arr}
}

// Or returns the union as a new bitmap. Array unions past ArrayMaxCard
// promote to dense containers.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	emit := func(key uint16, c container) {
		out.keys = append(out.keys, key)
		out.cs = append(out.cs, c)
	}
	for i < len(b.keys) || j < len(o.keys) {
		switch {
		case j >= len(o.keys) || (i < len(b.keys) && b.keys[i] < o.keys[j]):
			emit(b.keys[i], b.cs[i].clone())
			i++
		case i >= len(b.keys) || o.keys[j] < b.keys[i]:
			emit(o.keys[j], o.cs[j].clone())
			j++
		default:
			emit(b.keys[i], orContainers(&b.cs[i], &o.cs[j]))
			i++
			j++
		}
	}
	return out
}

// clone deep-copies a container into pooled storage so Or results own their
// memory and Release stays safe.
func (c *container) clone() container {
	out := container{typ: c.typ, n: c.n}
	switch c.typ {
	case typeArray:
		out.arr = append(getArr(), c.arr...)
	case typeBitmap:
		out.bm = getWords()
		*out.bm = *c.bm
	default:
		out.rns = append([]runPair(nil), c.rns...)
	}
	return out
}

func orContainers(a, b *container) container {
	if a.typ == typeArray && b.typ == typeArray && int(a.n)+int(b.n) <= ArrayMaxCard {
		out := container{typ: typeArray, arr: getArr()}
		i, j := 0, 0
		for i < len(a.arr) || j < len(b.arr) {
			switch {
			case j >= len(b.arr) || (i < len(a.arr) && a.arr[i] < b.arr[j]):
				out.arr = append(out.arr, a.arr[i])
				i++
			case i >= len(a.arr) || b.arr[j] < a.arr[i]:
				out.arr = append(out.arr, b.arr[j])
				j++
			default:
				out.arr = append(out.arr, a.arr[i])
				i++
				j++
			}
		}
		out.n = int32(len(out.arr))
		return out
	}
	wa, ta := a.asBitmapView()
	wb, tb := b.asBitmapView()
	res := getWords()
	n := 0
	for w := 0; w < wordCount; w++ {
		v := wa[w] | wb[w]
		res[w] = v
		n += bits.OnesCount64(v)
	}
	if ta {
		wordPool.Put(wa)
	}
	if tb {
		wordPool.Put(wb)
	}
	out := container{typ: typeBitmap, n: int32(n), bm: res}
	if n <= ArrayMaxCard {
		out.demote()
	}
	return out
}

// Iterate calls fn on every value in ascending order until fn returns false.
// It reports whether the iteration ran to completion.
func (b *Bitmap) Iterate(fn func(uint32) bool) bool {
	if b == nil {
		return true
	}
	for i := range b.keys {
		hi := uint32(b.keys[i]) << 16
		c := &b.cs[i]
		switch c.typ {
		case typeArray:
			for _, lo := range c.arr {
				if !fn(hi | uint32(lo)) {
					return false
				}
			}
		case typeBitmap:
			for w := 0; w < wordCount; w++ {
				word := c.bm[w]
				for word != 0 {
					t := bits.TrailingZeros64(word)
					if !fn(hi | uint32(w<<6+t)) {
						return false
					}
					word &^= 1 << t
				}
			}
		default:
			for _, r := range c.rns {
				for v := int(r.start); v <= int(r.last); v++ {
					if !fn(hi | uint32(v)) {
						return false
					}
				}
			}
		}
	}
	return true
}
