package bitset

import (
	"math/rand"
	"reflect"
	"testing"
)

// collect materializes a bitmap back into a sorted slice via Iterate.
func collect(b *Bitmap) []uint32 {
	var out []uint32
	b.Iterate(func(v uint32) bool {
		out = append(out, v)
		return true
	})
	return out
}

// ctype exposes the container representation holding x, for boundary tests.
func ctype(b *Bitmap, x uint32) string {
	i, ok := b.findKey(uint16(x >> 16))
	if !ok {
		return "none"
	}
	switch b.cs[i].typ {
	case typeArray:
		return "array"
	case typeBitmap:
		return "bitmap"
	default:
		return "run"
	}
}

func TestEmpty(t *testing.T) {
	// Empty postings: a term that occurs nowhere yields an empty bitmap on
	// every construction path, and set algebra over it stays empty.
	for name, b := range map[string]*Bitmap{
		"new":        New(),
		"fromSorted": FromSorted(nil),
		"nil":        nil,
	} {
		if !b.IsEmpty() {
			t.Errorf("%s: IsEmpty = false", name)
		}
		if b != nil && b.Cardinality() != 0 {
			t.Errorf("%s: Cardinality = %d", name, b.Cardinality())
		}
		if b != nil && b.Contains(0) {
			t.Errorf("%s: Contains(0) = true", name)
		}
	}
	e := New()
	full := FromSorted([]uint32{1, 2, 3})
	if got := e.And(full); !got.IsEmpty() {
		t.Errorf("empty AND full = %v", collect(got))
	}
	if got := full.And(e); !got.IsEmpty() {
		t.Errorf("full AND empty = %v", collect(got))
	}
	if got := collect(e.Or(full)); !reflect.DeepEqual(got, []uint32{1, 2, 3}) {
		t.Errorf("empty OR full = %v", got)
	}
}

func TestSingleValue(t *testing.T) {
	// Single-row terms: one posting must round-trip through every operation.
	b := FromSorted([]uint32{70000})
	if b.Cardinality() != 1 || !b.Contains(70000) || b.Contains(69999) {
		t.Fatalf("single-value bitmap misbehaves: card=%d", b.Cardinality())
	}
	if got := collect(b); !reflect.DeepEqual(got, []uint32{70000}) {
		t.Fatalf("Iterate = %v", got)
	}
	if got := collect(b.And(FromSorted([]uint32{1, 70000, 99999}))); !reflect.DeepEqual(got, []uint32{70000}) {
		t.Fatalf("And = %v", got)
	}
	if got := b.And(FromSorted([]uint32{70001})); !got.IsEmpty() {
		t.Fatalf("disjoint And = %v", collect(got))
	}
}

func TestAbsentTermIntersection(t *testing.T) {
	// A term absent from the index surfaces as an empty (or nil) bitmap;
	// intersecting any candidate set with it must yield empty, not panic.
	present := FromSorted([]uint32{5, 10, 1 << 20})
	absent := FromSorted(nil)
	if got := present.And(absent); !got.IsEmpty() {
		t.Fatalf("present AND absent = %v", collect(got))
	}
	var nilBM *Bitmap
	if nilBM.Contains(5) {
		t.Fatal("nil bitmap Contains = true")
	}
	if !nilBM.Iterate(func(uint32) bool { t.Fatal("nil bitmap iterated"); return false }) {
		t.Fatal("nil bitmap Iterate returned false")
	}
}

func TestPromotionBoundary(t *testing.T) {
	// Exactly ArrayMaxCard values stay an array; one more promotes the
	// container to a dense bitmap. Spacing by 2 keeps runs unattractive.
	b := New()
	for i := 0; i < ArrayMaxCard; i++ {
		b.Add(uint32(2 * i))
	}
	if got := ctype(b, 0); got != "array" {
		t.Fatalf("at %d values: container is %s, want array", ArrayMaxCard, got)
	}
	if b.Cardinality() != ArrayMaxCard {
		t.Fatalf("cardinality = %d", b.Cardinality())
	}
	b.Add(uint32(2*ArrayMaxCard + 1))
	if got := ctype(b, 0); got != "bitmap" {
		t.Fatalf("at %d values: container is %s, want bitmap", ArrayMaxCard+1, got)
	}
	if b.Cardinality() != ArrayMaxCard+1 || !b.Contains(2*ArrayMaxCard+1) || !b.Contains(0) {
		t.Fatal("promotion lost values")
	}
	// Duplicate adds around the boundary must not change cardinality.
	b.Add(0)
	if b.Cardinality() != ArrayMaxCard+1 {
		t.Fatalf("duplicate add changed cardinality to %d", b.Cardinality())
	}
}

func TestDemotionBoundary(t *testing.T) {
	// Intersecting two dense containers down to <= ArrayMaxCard values must
	// demote the result container back to an array.
	a := make([]uint32, 0, 3*ArrayMaxCard)
	bvals := make([]uint32, 0, 3*ArrayMaxCard)
	for i := 0; i < 3*ArrayMaxCard; i++ {
		a = append(a, uint32(2*i)) // evens
		bvals = append(bvals, uint32(3*i))
	}
	ba, bb := FromSorted(a), FromSorted(bvals)
	if ctype(ba, 0) != "bitmap" || ctype(bb, 0) != "bitmap" {
		t.Fatalf("inputs not dense: %s/%s", ctype(ba, 0), ctype(bb, 0))
	}
	got := ba.And(bb) // multiples of 6 below min(6*4096, 9*4096) in chunk 0
	if typ := ctype(got, 0); typ != "array" {
		t.Fatalf("demoted intersection container is %s, want array", typ)
	}
	want := []uint32{}
	for i := 0; i < 3*ArrayMaxCard; i++ {
		v := uint32(6 * i)
		if v < uint32(6*ArrayMaxCard) && v>>16 == 0 {
			want = append(want, v)
		}
	}
	wantIn := []uint32{}
	for _, v := range want {
		if ba.Contains(v) && bb.Contains(v) {
			wantIn = append(wantIn, v)
		}
	}
	gotVals := collect(got)
	var chunk0 []uint32
	for _, v := range gotVals {
		if v>>16 == 0 {
			chunk0 = append(chunk0, v)
		}
	}
	for _, v := range chunk0 {
		if !ba.Contains(v) || !bb.Contains(v) {
			t.Fatalf("intersection contains %d not in both inputs", v)
		}
	}
	if len(wantIn) > 0 && len(chunk0) == 0 {
		t.Fatal("intersection dropped chunk 0")
	}
}

func TestRunContainers(t *testing.T) {
	// A long contiguous range compresses to a run container; membership,
	// iteration, intersection, and mutation must all agree with the dense
	// answer.
	vals := make([]uint32, 0, 10000)
	for i := 0; i < 10000; i++ {
		vals = append(vals, uint32(i))
	}
	b := FromSorted(vals)
	if got := ctype(b, 0); got != "run" {
		t.Fatalf("contiguous range stored as %s, want run", got)
	}
	if b.Cardinality() != 10000 || !b.Contains(9999) || b.Contains(10000) {
		t.Fatal("run container membership wrong")
	}
	probe := FromSorted([]uint32{9999, 10000, 50000})
	if got := collect(b.And(probe)); !reflect.DeepEqual(got, []uint32{9999}) {
		t.Fatalf("run AND array = %v", got)
	}
	// Mutating a run container rewrites it (Add is array/bitmap-only).
	b.Add(20000)
	if !b.Contains(20000) || !b.Contains(5000) || b.Cardinality() != 10001 {
		t.Fatal("run container mutation lost values")
	}
}

func TestCrossChunk(t *testing.T) {
	// Values spanning several 64Ki chunks: keys stay sorted and operations
	// align the right containers.
	vals := []uint32{3, 65535, 65536, 131072, 1 << 30}
	b := FromSorted(vals)
	if got := collect(b); !reflect.DeepEqual(got, vals) {
		t.Fatalf("Iterate = %v", got)
	}
	other := FromSorted([]uint32{65536, 1 << 30})
	if got := collect(b.And(other)); !reflect.DeepEqual(got, []uint32{65536, 1 << 30}) {
		t.Fatalf("And = %v", got)
	}
	if got := collect(b.Or(FromSorted([]uint32{7}))); !reflect.DeepEqual(got, []uint32{3, 7, 65535, 65536, 131072, 1 << 30}) {
		t.Fatalf("Or = %v", got)
	}
}

func TestIterateEarlyExit(t *testing.T) {
	b := FromSorted([]uint32{1, 2, 3, 4, 5})
	var seen []uint32
	done := b.Iterate(func(v uint32) bool {
		seen = append(seen, v)
		return v < 3
	})
	if done || !reflect.DeepEqual(seen, []uint32{1, 2, 3}) {
		t.Fatalf("early exit: done=%t seen=%v", done, seen)
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	// Model check: random adds and intersections agree with a map-based
	// reference across the array/bitmap/run boundary.
	r := rand.New(rand.NewSource(20150806))
	ref := make(map[uint32]bool)
	b := New()
	for i := 0; i < 20000; i++ {
		v := uint32(r.Intn(3 * ArrayMaxCard))
		ref[v] = true
		b.Add(v)
	}
	if b.Cardinality() != len(ref) {
		t.Fatalf("cardinality %d, reference %d", b.Cardinality(), len(ref))
	}
	for v := uint32(0); v < uint32(3*ArrayMaxCard); v++ {
		if b.Contains(v) != ref[v] {
			t.Fatalf("Contains(%d) = %t, reference %t", v, b.Contains(v), ref[v])
		}
	}
	vals := collect(b)
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatalf("Iterate out of order at %d: %d then %d", i, vals[i-1], vals[i])
		}
	}
	rebuilt := FromSorted(vals)
	and := b.And(rebuilt)
	if and.Cardinality() != len(ref) {
		t.Fatalf("self-intersection cardinality %d, want %d", and.Cardinality(), len(ref))
	}
}

func TestReleaseReuse(t *testing.T) {
	// Release returns storage to the pools and empties the bitmap; the
	// emptied bitmap must be reusable.
	b := FromSorted([]uint32{1, 2, 3})
	b.Release()
	if !b.IsEmpty() {
		t.Fatal("released bitmap not empty")
	}
	b2 := FromSorted(seq(0, 2*ArrayMaxCard)) // dense: exercises word pool
	b2.Release()
	if !b2.IsEmpty() {
		t.Fatal("released dense bitmap not empty")
	}
}

func seq(lo, hi int) []uint32 {
	out := make([]uint32, 0, hi-lo)
	for i := lo; i < hi; i += 2 {
		out = append(out, uint32(i))
	}
	return out
}
