// Package catalog defines relational schemas and the key-foreign-key schema
// graph that keyword search over structured data (KWS-S) systems navigate.
//
// A Schema is a set of relations plus a set of join edges. Each join edge
// records one key-foreign-key association between two relations, exactly the
// arrows drawn in Figure 2 and Figure 8 of the paper. The lattice generator
// (package lattice) walks this graph to enumerate join-query templates, and
// the execution engine (package engine) uses the same edges to plan joins.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// ColType is the type of a column. The engine supports the three types the
// paper's datasets need: integers (keys), text, and floats (prices etc.).
type ColType int

// Supported column types.
const (
	Int ColType = iota
	Text
	Float
)

// String returns the SQL spelling of the type.
func (t ColType) String() string {
	switch t {
	case Int:
		return "INT"
	case Text:
		return "TEXT"
	case Float:
		return "FLOAT"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type ColType
	// PrimaryKey marks the relation's key column. At most one column per
	// relation may set it; composite keys are not needed for the paper's
	// schemas.
	PrimaryKey bool
}

// Relation describes one table: its name and ordered columns.
type Relation struct {
	Name    string
	Columns []Column

	byName map[string]int
}

// NewRelation builds a relation and validates its column list.
func NewRelation(name string, cols ...Column) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: relation name must be nonempty")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: relation %q must have at least one column", name)
	}
	r := &Relation{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	pk := 0
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("catalog: relation %q: column %d has empty name", name, i)
		}
		if _, dup := r.byName[c.Name]; dup {
			return nil, fmt.Errorf("catalog: relation %q: duplicate column %q", name, c.Name)
		}
		r.byName[c.Name] = i
		if c.PrimaryKey {
			pk++
			if c.Type != Int {
				return nil, fmt.Errorf("catalog: relation %q: primary key %q must be INT", name, c.Name)
			}
		}
	}
	if pk > 1 {
		return nil, fmt.Errorf("catalog: relation %q: more than one primary key column", name)
	}
	return r, nil
}

// MustRelation is NewRelation that panics on error, for static schemas.
func MustRelation(name string, cols ...Column) *Relation {
	r, err := NewRelation(name, cols...)
	if err != nil {
		panic(err)
	}
	return r
}

// ColumnIndex returns the position of the named column, or -1.
func (r *Relation) ColumnIndex(name string) int {
	if i, ok := r.byName[name]; ok {
		return i
	}
	return -1
}

// Column returns the named column and whether it exists.
func (r *Relation) Column(name string) (Column, bool) {
	i := r.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return r.Columns[i], true
}

// PrimaryKey returns the name of the primary key column, or "".
func (r *Relation) PrimaryKey() string {
	for _, c := range r.Columns {
		if c.PrimaryKey {
			return c.Name
		}
	}
	return ""
}

// TextColumns returns the names of all text-typed columns, in schema order.
// These are the columns the inverted index covers.
func (r *Relation) TextColumns() []string {
	var out []string
	for _, c := range r.Columns {
		if c.Type == Text {
			out = append(out, c.Name)
		}
	}
	return out
}

// Edge is one key-foreign-key association in the schema graph: From.FromCol
// references To.ToCol. Edges are undirected for the purpose of join
// enumeration; the direction only records which side holds the foreign key.
type Edge struct {
	From    string // relation holding the foreign key
	FromCol string
	To      string // relation holding the referenced key
	ToCol   string
}

// String renders the edge as "From.FromCol->To.ToCol".
func (e Edge) String() string {
	return e.From + "." + e.FromCol + "->" + e.To + "." + e.ToCol
}

// Other returns the relation on the opposite end from rel, and whether rel is
// actually an endpoint of the edge.
func (e Edge) Other(rel string) (string, bool) {
	switch rel {
	case e.From:
		return e.To, true
	case e.To:
		return e.From, true
	default:
		return "", false
	}
}

// Schema is a set of relations plus the key-foreign-key schema graph over
// them. It is immutable after Build; all lookups are safe for concurrent use.
type Schema struct {
	relations []*Relation
	byName    map[string]*Relation
	edges     []Edge
	// incident[rel] lists the indexes into edges of all edges touching rel.
	incident map[string][]int
}

// SchemaBuilder accumulates relations and edges and validates the result.
type SchemaBuilder struct {
	relations []*Relation
	edges     []Edge
	err       error
}

// NewSchemaBuilder returns an empty builder.
func NewSchemaBuilder() *SchemaBuilder { return &SchemaBuilder{} }

// AddRelation registers a relation. The first error encountered is retained
// and returned by Build.
func (b *SchemaBuilder) AddRelation(r *Relation) *SchemaBuilder {
	if b.err == nil && r == nil {
		b.err = fmt.Errorf("catalog: nil relation")
	}
	if b.err == nil {
		b.relations = append(b.relations, r)
	}
	return b
}

// AddEdge registers a key-foreign-key association from.fromCol -> to.toCol.
func (b *SchemaBuilder) AddEdge(from, fromCol, to, toCol string) *SchemaBuilder {
	if b.err == nil {
		b.edges = append(b.edges, Edge{From: from, FromCol: fromCol, To: to, ToCol: toCol})
	}
	return b
}

// Build validates the accumulated definition and returns the Schema.
func (b *SchemaBuilder) Build() (*Schema, error) {
	if b.err != nil {
		return nil, b.err
	}
	s := &Schema{
		relations: b.relations,
		byName:    make(map[string]*Relation, len(b.relations)),
		edges:     b.edges,
		incident:  make(map[string][]int),
	}
	for _, r := range b.relations {
		if _, dup := s.byName[r.Name]; dup {
			return nil, fmt.Errorf("catalog: duplicate relation %q", r.Name)
		}
		s.byName[r.Name] = r
	}
	seen := make(map[string]bool, len(b.edges))
	for i, e := range b.edges {
		for _, end := range []struct{ rel, col string }{{e.From, e.FromCol}, {e.To, e.ToCol}} {
			r, ok := s.byName[end.rel]
			if !ok {
				return nil, fmt.Errorf("catalog: edge %s refers to unknown relation %q", e, end.rel)
			}
			if r.ColumnIndex(end.col) < 0 {
				return nil, fmt.Errorf("catalog: edge %s refers to unknown column %s.%s", e, end.rel, end.col)
			}
		}
		if e.From == e.To && e.FromCol == e.ToCol {
			return nil, fmt.Errorf("catalog: edge %s is a self loop on a single column", e)
		}
		if seen[e.String()] {
			return nil, fmt.Errorf("catalog: duplicate edge %s", e)
		}
		seen[e.String()] = true
		s.incident[e.From] = append(s.incident[e.From], i)
		if e.To != e.From {
			s.incident[e.To] = append(s.incident[e.To], i)
		}
	}
	return s, nil
}

// MustBuild is Build that panics on error, for static schemas.
func (b *SchemaBuilder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// Relation returns the named relation and whether it exists.
func (s *Schema) Relation(name string) (*Relation, bool) {
	r, ok := s.byName[name]
	return r, ok
}

// Relations returns the relations in registration order. The slice must not
// be modified.
func (s *Schema) Relations() []*Relation { return s.relations }

// RelationNames returns the relation names sorted lexicographically.
func (s *Schema) RelationNames() []string {
	names := make([]string, 0, len(s.relations))
	for _, r := range s.relations {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names
}

// Edges returns all schema-graph edges. The slice must not be modified.
func (s *Schema) Edges() []Edge { return s.edges }

// EdgeID returns the index of e within Edges, or -1 if it is not part of the
// schema. Edge identity is by value.
func (s *Schema) EdgeID(e Edge) int {
	for i, have := range s.edges {
		if have == e {
			return i
		}
	}
	return -1
}

// Incident returns the edges touching the named relation, as indexes into
// Edges. The slice must not be modified.
func (s *Schema) Incident(rel string) []int { return s.incident[rel] }

// String renders a compact description of the schema, useful in logs.
func (s *Schema) String() string {
	var sb strings.Builder
	for _, r := range s.relations {
		sb.WriteString(r.Name)
		sb.WriteByte('(')
		for i, c := range r.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name)
			if c.PrimaryKey {
				sb.WriteByte('*')
			}
		}
		sb.WriteString(")\n")
	}
	for _, e := range s.edges {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
