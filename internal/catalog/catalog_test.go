package catalog

import (
	"strings"
	"testing"
)

func personRel(t *testing.T) *Relation {
	t.Helper()
	r, err := NewRelation("Person",
		Column{Name: "id", Type: Int, PrimaryKey: true},
		Column{Name: "name", Type: Text},
		Column{Name: "score", Type: Float},
	)
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	return r
}

func TestNewRelationValidation(t *testing.T) {
	tests := []struct {
		name    string
		relName string
		cols    []Column
		wantErr string
	}{
		{"empty name", "", []Column{{Name: "a", Type: Int}}, "name must be nonempty"},
		{"no columns", "R", nil, "at least one column"},
		{"empty column name", "R", []Column{{Name: "", Type: Int}}, "empty name"},
		{"duplicate column", "R", []Column{{Name: "a", Type: Int}, {Name: "a", Type: Text}}, "duplicate column"},
		{"two primary keys", "R", []Column{
			{Name: "a", Type: Int, PrimaryKey: true},
			{Name: "b", Type: Int, PrimaryKey: true},
		}, "more than one primary key"},
		{"text primary key", "R", []Column{{Name: "a", Type: Text, PrimaryKey: true}}, "must be INT"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewRelation(tc.relName, tc.cols...)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestRelationLookups(t *testing.T) {
	r := personRel(t)
	if got := r.ColumnIndex("name"); got != 1 {
		t.Errorf("ColumnIndex(name) = %d, want 1", got)
	}
	if got := r.ColumnIndex("missing"); got != -1 {
		t.Errorf("ColumnIndex(missing) = %d, want -1", got)
	}
	if c, ok := r.Column("score"); !ok || c.Type != Float {
		t.Errorf("Column(score) = %+v, %v", c, ok)
	}
	if _, ok := r.Column("nope"); ok {
		t.Error("Column(nope) unexpectedly found")
	}
	if pk := r.PrimaryKey(); pk != "id" {
		t.Errorf("PrimaryKey = %q, want id", pk)
	}
	if tc := r.TextColumns(); len(tc) != 1 || tc[0] != "name" {
		t.Errorf("TextColumns = %v, want [name]", tc)
	}
}

func TestRelationWithoutPrimaryKey(t *testing.T) {
	r := MustRelation("Edge", Column{Name: "a", Type: Int}, Column{Name: "b", Type: Int})
	if pk := r.PrimaryKey(); pk != "" {
		t.Errorf("PrimaryKey = %q, want empty", pk)
	}
	if tc := r.TextColumns(); tc != nil {
		t.Errorf("TextColumns = %v, want nil", tc)
	}
}

func TestMustRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRelation did not panic on invalid input")
		}
	}()
	MustRelation("")
}

func buildTwoTableSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchemaBuilder().
		AddRelation(MustRelation("R",
			Column{Name: "id", Type: Int, PrimaryKey: true},
			Column{Name: "b", Type: Int})).
		AddRelation(MustRelation("S",
			Column{Name: "c", Type: Int, PrimaryKey: true},
			Column{Name: "d", Type: Text})).
		AddEdge("R", "b", "S", "c").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

func TestSchemaBuild(t *testing.T) {
	s := buildTwoTableSchema(t)
	if _, ok := s.Relation("R"); !ok {
		t.Error("Relation(R) missing")
	}
	if _, ok := s.Relation("missing"); ok {
		t.Error("Relation(missing) unexpectedly found")
	}
	if got := len(s.Edges()); got != 1 {
		t.Fatalf("len(Edges) = %d, want 1", got)
	}
	e := s.Edges()[0]
	if e.String() != "R.b->S.c" {
		t.Errorf("edge = %q", e.String())
	}
	if id := s.EdgeID(e); id != 0 {
		t.Errorf("EdgeID = %d, want 0", id)
	}
	if id := s.EdgeID(Edge{From: "X"}); id != -1 {
		t.Errorf("EdgeID(unknown) = %d, want -1", id)
	}
	if got := s.RelationNames(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Errorf("RelationNames = %v", got)
	}
}

func TestSchemaIncident(t *testing.T) {
	s := buildTwoTableSchema(t)
	for _, rel := range []string{"R", "S"} {
		inc := s.Incident(rel)
		if len(inc) != 1 || inc[0] != 0 {
			t.Errorf("Incident(%s) = %v, want [0]", rel, inc)
		}
	}
	if inc := s.Incident("missing"); inc != nil {
		t.Errorf("Incident(missing) = %v, want nil", inc)
	}
}

func TestSchemaBuildErrors(t *testing.T) {
	r := MustRelation("R", Column{Name: "id", Type: Int, PrimaryKey: true}, Column{Name: "b", Type: Int})
	tests := []struct {
		name    string
		build   func() (*Schema, error)
		wantErr string
	}{
		{"duplicate relation", func() (*Schema, error) {
			return NewSchemaBuilder().AddRelation(r).AddRelation(r).Build()
		}, "duplicate relation"},
		{"unknown relation in edge", func() (*Schema, error) {
			return NewSchemaBuilder().AddRelation(r).AddEdge("R", "b", "S", "c").Build()
		}, "unknown relation"},
		{"unknown column in edge", func() (*Schema, error) {
			return NewSchemaBuilder().AddRelation(r).AddEdge("R", "zz", "R", "id").Build()
		}, "unknown column"},
		{"self loop", func() (*Schema, error) {
			return NewSchemaBuilder().AddRelation(r).AddEdge("R", "id", "R", "id").Build()
		}, "self loop"},
		{"duplicate edge", func() (*Schema, error) {
			return NewSchemaBuilder().AddRelation(r).
				AddEdge("R", "b", "R", "id").
				AddEdge("R", "b", "R", "id").Build()
		}, "duplicate edge"},
		{"nil relation", func() (*Schema, error) {
			return NewSchemaBuilder().AddRelation(nil).Build()
		}, "nil relation"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestSelfJoinEdgeAllowed(t *testing.T) {
	// A relationship table may reference the same relation twice (coauthor),
	// and a relation may have an edge to itself on distinct columns.
	s, err := NewSchemaBuilder().
		AddRelation(MustRelation("Person", Column{Name: "id", Type: Int, PrimaryKey: true})).
		AddRelation(MustRelation("coauthor", Column{Name: "p1", Type: Int}, Column{Name: "p2", Type: Int})).
		AddEdge("coauthor", "p1", "Person", "id").
		AddEdge("coauthor", "p2", "Person", "id").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := len(s.Incident("Person")); got != 2 {
		t.Errorf("Incident(Person) has %d edges, want 2", got)
	}
	if got := len(s.Incident("coauthor")); got != 2 {
		t.Errorf("Incident(coauthor) has %d edges, want 2", got)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{From: "R", FromCol: "b", To: "S", ToCol: "c"}
	if o, ok := e.Other("R"); !ok || o != "S" {
		t.Errorf("Other(R) = %q, %v", o, ok)
	}
	if o, ok := e.Other("S"); !ok || o != "R" {
		t.Errorf("Other(S) = %q, %v", o, ok)
	}
	if _, ok := e.Other("X"); ok {
		t.Error("Other(X) unexpectedly ok")
	}
}

func TestColTypeString(t *testing.T) {
	for want, ct := range map[string]ColType{"INT": Int, "TEXT": Text, "FLOAT": Float} {
		if got := ct.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(ct), got, want)
		}
	}
	if got := ColType(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown ColType string = %q", got)
	}
}

func TestSchemaString(t *testing.T) {
	s := buildTwoTableSchema(t)
	str := s.String()
	for _, want := range []string{"R(id*, b)", "S(c*, d)", "R.b->S.c"} {
		if !strings.Contains(str, want) {
			t.Errorf("Schema.String() missing %q:\n%s", want, str)
		}
	}
}
