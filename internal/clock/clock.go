// Package clock is the single sanctioned wall-clock entry point for the
// deterministic pipeline packages (core, lattice, report, sqltext).
//
// The paper's debugging guarantee rests on Phase 3 being a pure function of
// the data: the same lattice and keyword set must classify the same MTNs and
// report the same MPANs regardless of worker count, probe path, or cache
// state. Wall-clock reads are the easiest way to break that silently — a
// timestamp that leaks into a comparison, a hash, or an output struct makes
// two identical runs diverge. The kwslint determinism analyzer therefore
// forbids time.Now / time.Since (and math/rand) in the output-affecting
// packages; timing *measurement* — phase latencies, probe durations, the
// Stats fields the paper's figures are built from — goes through this
// package instead, which keeps every wall-clock read grep-able, reviewable,
// and confined to code whose results feed metrics rather than answers.
//
// The funcvar indirection also gives tests a seam: freezing the clock makes
// latency-derived output (reports that print elapsed milliseconds) fully
// reproducible.
package clock

import (
	"sync/atomic"
	"time"
)

// nowFn is the active time source. It is swapped atomically so a test
// overriding the clock races neither concurrent readers nor the restore.
var nowFn atomic.Pointer[func() time.Time]

func init() {
	f := time.Now
	nowFn.Store(&f)
}

// Now returns the current time from the active source.
func Now() time.Time { return (*nowFn.Load())() }

// Since returns the elapsed time since t, measured against the active
// source.
func Since(t time.Time) time.Duration { return Now().Sub(t) }

// SetForTest replaces the time source and returns a restore function.
// Intended for tests that need reproducible latency fields; production code
// must never call it.
func SetForTest(f func() time.Time) (restore func()) {
	prev := nowFn.Load()
	nowFn.Store(&f)
	return func() { nowFn.Store(prev) }
}
