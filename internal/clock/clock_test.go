package clock

import (
	"testing"
	"time"
)

func TestNowTracksRealClock(t *testing.T) {
	before := time.Now()
	got := Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestSetForTestFreezesAndRestores(t *testing.T) {
	frozen := time.Date(2015, 3, 23, 12, 0, 0, 0, time.UTC) // EDBT 2015
	restore := SetForTest(func() time.Time { return frozen })
	if got := Now(); !got.Equal(frozen) {
		t.Fatalf("Now() under frozen clock = %v, want %v", got, frozen)
	}
	if got := Since(frozen.Add(-time.Minute)); got != time.Minute {
		t.Fatalf("Since under frozen clock = %v, want 1m", got)
	}
	restore()
	if got := Since(time.Now()); got > time.Minute || got < -time.Minute {
		t.Fatalf("clock not restored: Since(now) = %v", got)
	}
}
