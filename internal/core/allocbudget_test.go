package core

import (
	"context"
	"testing"
	"time"

	roaring "kwsdbg/internal/bitset"
	"kwsdbg/internal/lint/hotpath"
	"kwsdbg/internal/obs/flight"
	"kwsdbg/internal/probecache"
)

// budgetEntry pins the runtime allocation budget for one //kws:hotpath
// function from the generated manifest. Most entries run a warm-path
// AllocsPerRun measurement here; an entry whose receiver is unexported in
// another package, or whose warm path is exercised through a caller in this
// table, names its covering harness instead.
type budgetEntry struct {
	budget    float64
	run       func(t *testing.T) float64
	coveredBy string
}

// TestHotpathAllocBudgets is the runtime half of the //kws:hotpath contract.
// The static analyzer (kwslint/hotpath) forbids allocation-prone constructs
// in annotated functions; this test walks the generated manifest and pins an
// actual warm-path allocation count for every entry, so an annotation cannot
// be added (or a hot path regressed) without this table noticing. Warm probe
// servicing and flight logging are pinned at zero.
func TestHotpathAllocBudgets(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"saffron", "scented", "candle"}
	ctx := context.Background()

	// The bitset harnesses need a node the bitset engine covers (node 0 is
	// the unanchored root, which always falls back to SQL).
	probeNode := -1
	for i := 0; i < sys.lat.Len(); i++ {
		node := sys.lat.Node(i)
		key := probecache.Key(node.Label, node.CopyMask, kws)
		if _, ok, _ := sys.bits.Probe(node, kws, key); ok {
			probeNode = i
			break
		}
	}
	if probeNode < 0 {
		t.Fatal("no bitset-coverable node in the product lattice")
	}

	harness := map[string]budgetEntry{
		"kwsdbg/internal/bitset.(*Bitmap).Contains": {budget: 0, run: func(t *testing.T) float64 {
			b := roaring.FromSorted([]uint32{1, 5, 9, 70000})
			return testing.AllocsPerRun(1000, func() {
				if !b.Contains(70000) || b.Contains(6) {
					t.Fatal("wrong membership")
				}
			})
		}},
		// And materializes a result bitmap; the budget covers the result
		// header and its key/container slices, with container storage coming
		// from the pool (Release returns it).
		"kwsdbg/internal/bitset.(*Bitmap).And": {budget: 8, run: func(t *testing.T) float64 {
			a := roaring.FromSorted([]uint32{1, 2, 3, 100, 70000, 70001})
			b := roaring.FromSorted([]uint32{2, 100, 200, 70001})
			return testing.AllocsPerRun(200, func() {
				c := a.And(b)
				if c.Cardinality() != 3 {
					t.Fatal("wrong intersection")
				}
				c.Release()
			})
		}},
		"kwsdbg/internal/core.(*bitsetOracle).IsAlive": {budget: 0, run: func(t *testing.T) float64 {
			o := newBitsetOracle(ctx, sys.lat, sys.eng, sys.prepared, kws, sys.bits)
			if _, err := o.IsAlive(probeNode); err != nil {
				t.Fatalf("warmup probe: %v", err)
			}
			return testing.AllocsPerRun(1000, func() {
				if _, err := o.IsAlive(probeNode); err != nil {
					t.Fatalf("warm probe: %v", err)
				}
			})
		}},
		"kwsdbg/internal/core.(*preparedOracle).IsAlive": {budget: 0, run: func(t *testing.T) float64 {
			o := newPreparedOracle(ctx, sys.lat, sys.eng, sys.prepared, kws)
			cache := probecache.New(probecache.Config{})
			o.view = cache.SyncVersions(sys.eng.Versions())
			o.cache = cache
			if _, err := o.IsAlive(0); err != nil { // miss: executes and stores the verdict
				t.Fatalf("warmup probe: %v", err)
			}
			return testing.AllocsPerRun(1000, func() {
				if _, err := o.IsAlive(0); err != nil {
					t.Fatalf("cached probe: %v", err)
				}
			})
		}},
		"kwsdbg/internal/core/bitprobe.(*Evaluator).Probe": {budget: 0, run: func(t *testing.T) float64 {
			node := sys.lat.Node(probeNode)
			key := probecache.Key(node.Label, node.CopyMask, kws)
			sys.bits.Warm(node, kws, key)
			if _, ok, cause := sys.bits.Probe(node, kws, key); !ok {
				t.Fatalf("probe declined: %s", cause)
			}
			return testing.AllocsPerRun(1000, func() {
				if _, ok, _ := sys.bits.Probe(node, kws, key); !ok {
					t.Fatal("warm probe declined")
				}
			})
		}},
		"kwsdbg/internal/core/bitprobe.(*Evaluator).evaluate": {
			coveredBy: "kwsdbg/internal/core/bitprobe.(*Evaluator).Probe",
		},
		"kwsdbg/internal/engine.(*PreparedCache).Get": {budget: 0, run: func(t *testing.T) float64 {
			o := newPreparedOracle(ctx, sys.lat, sys.eng, sys.prepared, kws)
			if _, err := o.handle(0); err != nil { // compiles and Puts the handle
				t.Fatalf("compile handle: %v", err)
			}
			key := o.probeKey(0)
			return testing.AllocsPerRun(1000, func() {
				if sys.prepared.Get(key) == nil {
					t.Fatal("warm handle missing")
				}
			})
		}},
		// record's receiver is unexported; its package-local harness is the
		// budget (TestLookupRecordAllocFree in internal/invidx).
		"kwsdbg/internal/invidx.lookupMetrics.record": {
			coveredBy: "kwsdbg/internal/invidx.TestLookupRecordAllocFree",
		},
		"kwsdbg/internal/obs/flight.(*Log).Emit": {budget: 0, run: func(t *testing.T) float64 {
			rec := flight.NewRecorder(64)
			l := flight.NewLog(rec, "alloc-budget", false)
			return testing.AllocsPerRun(1000, func() {
				l.Emit(flight.SQLExec, 1, "k", true, time.Millisecond, "")
			})
		}},
		"kwsdbg/internal/probecache.(*Cache).Get": {budget: 0, run: func(t *testing.T) float64 {
			c := probecache.New(probecache.Config{})
			c.Put("k", true)
			return testing.AllocsPerRun(1000, func() {
				if alive, ok := c.Get("k"); !ok || !alive {
					t.Fatal("expected cached hit")
				}
			})
		}},
		"kwsdbg/internal/probecache.(*Cache).Lookup": {budget: 0, run: func(t *testing.T) float64 {
			c := probecache.New(probecache.Config{})
			c.Put("k", true)
			return testing.AllocsPerRun(1000, func() {
				if alive, outcome := c.Lookup("k"); outcome != probecache.Hit || !alive {
					t.Fatal("expected cached hit")
				}
			})
		}},
	}

	seen := make(map[string]bool, len(harness))
	for _, name := range hotpath.Manifest {
		seen[name] = true
		e, ok := harness[name]
		if !ok {
			t.Errorf("//kws:hotpath function %s has no allocation harness; add a budgetEntry to this table", name)
			continue
		}
		if e.coveredBy != "" {
			if e.run != nil {
				t.Errorf("%s sets both run and coveredBy; pick one", name)
			}
			continue
		}
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			if got := e.run(t); got > e.budget {
				t.Errorf("%s allocates %v per warm call, budget %v", name, got, e.budget)
			}
		})
	}
	// A harness row whose function lost its annotation is stale: the static
	// lint no longer guards the function, so the budget is a lie.
	for name := range harness {
		if !seen[name] {
			t.Errorf("harness entry %s is not in the //kws:hotpath manifest; annotate the function or drop the row", name)
		}
	}
}
