package core

import (
	"context"
	"fmt"
	"time"
)

// RE is the Return Everything baseline of §3.8: probe every unique node in
// the non-answers' sub-query space with no lattice inference. It produces
// the same answers, non-answers, and MPANs as the five traversal strategies,
// at the cost of one SQL query per node.
const RE Strategy = 100

// RNStats measures the Return Nothing baseline of §3.8: the system returns
// nothing for non-answers, and a developer debugging the non-answer
// re-submits every sub-query of the keyword query ("k1 k2", "k1 k3", ...,
// "k3"), each of which runs the standard KWS-S pipeline that evaluates every
// candidate network.
type RNStats struct {
	KeywordQueries int           // keyword queries submitted (2^n - 1)
	SQLExecuted    int           // candidate-network probes across them
	SQLTime        time.Duration // time spent executing those probes
	MapTime        time.Duration // inverted-index lookups across them
}

// ReturnNothing simulates the developer's manual exploration and reports its
// cost. The result set it can surface is both incomplete and redundant (the
// paper's argument); only its cost is comparable, which Figures 14 and 15
// plot against the lattice-based approach.
func (sys *System) ReturnNothing(keywords []string) (RNStats, error) {
	if len(keywords) == 0 {
		return RNStats{}, fmt.Errorf("core: empty keyword query")
	}
	if len(keywords) > 20 {
		return RNStats{}, fmt.Errorf("core: %d keywords would need 2^%d sub-queries", len(keywords), len(keywords))
	}
	var stats RNStats
	n := len(keywords)
	for mask := (1 << n) - 1; mask >= 1; mask-- {
		var subset []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, keywords[i])
			}
		}
		ph, err := sys.phase12(subset)
		if err != nil {
			return stats, err
		}
		stats.KeywordQueries++
		stats.MapTime += ph.stats.MapTime
		if len(ph.nonKeywords) > 0 {
			continue
		}
		oracle := newSQLOracle(context.Background(), sys.lat, sys.db, subset)
		for _, id := range ph.mtnIDs {
			if _, err := oracle.IsAlive(id); err != nil {
				return stats, err
			}
		}
		stats.SQLExecuted += oracle.Stats().Executed
		stats.SQLTime += oracle.Stats().SQLTime
	}
	return stats, nil
}
