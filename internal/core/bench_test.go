package core

import (
	"testing"

	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
)

func benchSystem(b *testing.B) *System {
	b.Helper()
	eng, err := figure2.Engine()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkDebugStrategies measures the full online pipeline per strategy on
// the Figure 2 running example.
func BenchmarkDebugStrategies(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	for _, strat := range append(append([]Strategy{}, Strategies...), RE) {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.Debug(kws, Options{Strategy: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhase12 isolates keyword binding, pruning, and MTN discovery.
func BenchmarkPhase12(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Analyze(kws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSublatticeBuild isolates the Phase 2 closure construction.
func BenchmarkSublatticeBuild(b *testing.B) {
	sys := benchSystem(b)
	ph, err := sys.phase12([]string{"saffron", "scented", "candle"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sub := buildSublattice(sys.lat, ph.mtnIDs); sub.len() == 0 {
			b.Fatal("empty sublattice")
		}
	}
}
