package core

import (
	"context"
	"fmt"
	"testing"

	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/probecache"
)

func benchSystem(b *testing.B) *System {
	b.Helper()
	eng, err := figure2.Engine()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkDebugStrategies measures the full online pipeline per strategy on
// the Figure 2 running example.
func BenchmarkDebugStrategies(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	for _, strat := range append(append([]Strategy{}, Strategies...), RE) {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.Debug(kws, Options{Strategy: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhase12 isolates keyword binding, pruning, and MTN discovery.
func BenchmarkPhase12(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Analyze(kws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSublatticeBuild isolates the Phase 2 closure construction.
func BenchmarkSublatticeBuild(b *testing.B) {
	sys := benchSystem(b)
	ph, err := sys.phase12([]string{"saffron", "scented", "candle"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sub := buildSublattice(sys.lat, ph.mtnIDs); sub.len() == 0 {
			b.Fatal("empty sublattice")
		}
	}
}

// BenchmarkRenderSQL quantifies the per-run rendered-SQL memo: "cold"
// renders a node's probe query fresh every iteration (a new oracle each
// time, as every probe did before the memo existed); "memo" pays the render
// once and hits the sync.Map afterwards — the path BU/TD take when probing a
// shared descendant once per MTN.
func BenchmarkRenderSQL(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	ph, err := sys.phase12(kws)
	if err != nil {
		b.Fatal(err)
	}
	sub := buildSublattice(sys.lat, ph.mtnIDs)
	nodeID := sub.nodeID[sub.len()-1] // deepest node: the costliest render
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := newSQLOracle(context.Background(), sys.lat, sys.db, kws)
			if _, err := o.renderSQL(nodeID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memo", func(b *testing.B) {
		o := newSQLOracle(context.Background(), sys.lat, sys.db, kws)
		if _, err := o.renderSQL(nodeID); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.renderSQL(nodeID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDebugWorkers sweeps the probe scheduler's worker counts over the
// strategy with the largest independent batches (RE) and the paper's default
// (BUWR). On a single-core host the parallel runs mainly measure scheduler
// overhead; see BENCH_probe.json for the full sweep with cache effects.
func BenchmarkDebugWorkers(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	for _, strat := range []Strategy{RE, BUWR} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", strat, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sys.Debug(kws, Options{Strategy: strat, Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkProbeCacheWarm measures a Debug call when every verdict is served
// from the cross-request probe cache, against the same call bypassing it.
func BenchmarkProbeCacheWarm(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	sys.SetProbeCache(probecache.New(probecache.Config{}))
	defer sys.SetProbeCache(nil)
	if _, err := sys.Debug(kws, Options{Strategy: RE}); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Debug(kws, Options{Strategy: RE}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bypass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
