package core

import (
	"context"
	"fmt"
	"testing"

	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/probecache"
)

func benchSystem(b *testing.B) *System {
	b.Helper()
	eng, err := figure2.Engine()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkDebugStrategies measures the full online pipeline per strategy on
// the Figure 2 running example.
func BenchmarkDebugStrategies(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	for _, strat := range append(append([]Strategy{}, Strategies...), RE) {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.Debug(kws, Options{Strategy: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhase12 isolates keyword binding, pruning, and MTN discovery.
func BenchmarkPhase12(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Analyze(kws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSublatticeBuild isolates the Phase 2 closure construction.
func BenchmarkSublatticeBuild(b *testing.B) {
	sys := benchSystem(b)
	ph, err := sys.phase12([]string{"saffron", "scented", "candle"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sub := buildSublattice(sys.lat, ph.mtnIDs); sub.len() == 0 {
			b.Fatal("empty sublattice")
		}
	}
}

// BenchmarkProbeCompile quantifies the prepared pipeline's per-probe setup:
// "render" is the text path's per-probe cost of materializing the SQL string
// (what every probe paid before handles); "compile" resolves a fresh handle
// from the AST (the handle-cache miss path); "handle" looks a warm handle up
// through the per-run map — the cost every repeat probe actually pays.
func BenchmarkProbeCompile(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	ph, err := sys.phase12(kws)
	if err != nil {
		b.Fatal(err)
	}
	sub := buildSublattice(sys.lat, ph.mtnIDs)
	nodeID := sub.nodeID[sub.len()-1] // deepest node: the costliest render
	b.Run("render", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.lat.SQL(sys.lat.Node(nodeID), kws, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sel, err := sys.lat.Select(sys.lat.Node(nodeID), kws, true)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.eng.Prepare(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("handle", func(b *testing.B) {
		o := newPreparedOracle(context.Background(), sys.lat, sys.eng, sys.prepared, kws)
		if _, err := o.handle(nodeID); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.handle(nodeID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDebugWorkers sweeps the probe scheduler's worker counts over the
// strategy with the largest independent batches (RE) and the paper's default
// (BUWR). On a single-core host the parallel runs mainly measure scheduler
// overhead; see BENCH_probe.json for the full sweep with cache effects.
func BenchmarkDebugWorkers(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	for _, strat := range []Strategy{RE, BUWR} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", strat, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sys.Debug(kws, Options{Strategy: strat, Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBitsetProbe compares a full Debug call on the prepared path
// against the bitset path, cold (bitset plan/bitmap/memo caches purged every
// iteration) and warm (steady state: every probe is a stamped-memo read).
// The verdict cache is bypassed so every probe actually executes; see
// BENCH_bitset.json for the per-probe numbers on the DBLife sweep.
func BenchmarkBitsetProbe(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	b.Run("prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bitset-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.PurgeBitsetCaches()
			if _, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true, BitsetProbes: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bitset-warm", func(b *testing.B) {
		if _, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true, BitsetProbes: true}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true, BitsetProbes: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProbeCacheWarm measures a Debug call when every verdict is served
// from the cross-request probe cache, against the same call bypassing it.
func BenchmarkProbeCacheWarm(b *testing.B) {
	sys := benchSystem(b)
	kws := []string{"saffron", "scented", "candle"}
	sys.SetProbeCache(probecache.New(probecache.Config{}))
	defer sys.SetProbeCache(nil)
	if _, err := sys.Debug(kws, Options{Strategy: RE}); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Debug(kws, Options{Strategy: RE}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bypass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
