// Package bitprobe answers aliveness probes with bitmap semi-joins instead
// of SQL: "does this join tree yield at least one tuple?" is a set-algebra
// question, and every set it needs is already in the system — per-keyword
// candidate row sets from the inverted index, and foreign-key row lookups
// from the storage layer's int indexes.
//
// The evaluator compiles each probe's join tree once into a rooted plan
// (root = a keyword-bound vertex), materializes per-(table, keyword)
// candidate bitmaps from invidx postings exactly as the SQL predicate reads
// them (per column: every token present; across columns: OR), and reduces
// the tree bottom-up with semi-joins along the catalog's FK edges — the
// classic full reducer for acyclic joins. After the reduction, reduced[v]
// holds precisely the rows of v extendable to a full match of v's subtree,
// so the probe early-exits on the first root candidate whose children all
// have surviving partners.
//
// Every cached artifact — candidate bitmaps and per-probe reduction
// verdicts — is stamped against internal/vervec exactly like probe verdicts
// are: candidates stale on the table-AND-all-terms conjunction (an INSERT
// joins the set only if it carries every token), verdicts on their
// table-footprint stamp (any insert into a join-tree table can flip dead to
// alive). The warm path is therefore one version-vector Seq read; a write
// that intersects the footprint forces a fresh reduction, which is how the
// suspect -> re-probe -> repair machinery of the probe cache keeps working
// unchanged above this path.
//
// Shapes the evaluator cannot cover — no keyword-bound vertex, a missing
// table, non-INT join columns, a cyclic edge set, or candidate sets that
// churn faster than they can be stamped — report a fallback cause and the
// oracle sends the probe down the prepared-SQL path, which remains the
// oracle of record (the property tests compare the two byte for byte).
package bitprobe

import (
	"sort"
	"sync"
	"sync/atomic"

	"kwsdbg/internal/bitset"
	"kwsdbg/internal/catalog"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/invidx"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/obs"
	"kwsdbg/internal/storage"
	"kwsdbg/internal/vervec"
)

// maxBuildAttempts bounds how often a candidate bitmap is rebuilt when
// writes keep staling it mid-build, mirroring the engine's replan bound;
// past it the probe falls back to SQL for this attempt.
const maxBuildAttempts = 8

// Evaluator is the bitset probe engine for one System. It is safe for
// concurrent Probe calls and caches across requests: plans and verdict
// memos are keyed by probe identity (the probe-cache key), candidate
// bitmaps by (table, keyword).
type Evaluator struct {
	eng *engine.Engine

	// plans caches compiled probe plans and their verdict memos, keyed by
	// probe identity string.
	plans sync.Map
	// cands caches candidate bitmaps, keyed by "table\x00keyword"; values
	// are *candEntry, single-flighted through their once.
	cands sync.Map

	hits      atomic.Int64
	fallbacks atomic.Int64
}

// New builds an evaluator over the engine's storage, index, and versions.
func New(eng *engine.Engine) *Evaluator { return &Evaluator{eng: eng} }

// Purge drops every cached plan, memo, and candidate bitmap; benchmarks use
// it to measure the cold path. Dropped bitmaps are left to the GC — a
// concurrent probe may still be reading them.
func (e *Evaluator) Purge() {
	e.plans.Range(func(k, _ any) bool { e.plans.Delete(k); return true })
	e.cands.Range(func(k, _ any) bool { e.cands.Delete(k); return true })
}

// Stats reports probes served and fallbacks declined since construction.
func (e *Evaluator) Stats() (hits, fallbacks int64) {
	return e.hits.Load(), e.fallbacks.Load()
}

// pvert is one plan vertex: its table, keyword binding, and the join columns
// linking it to its parent in the rooted tree.
type pvert struct {
	rel     string
	tbl     *storage.Table
	keyword string // "" for a free vertex
	selfCol int    // column on this vertex joining to the parent
	parCol  int    // column on the parent joining to this vertex
	// bounded children have a keyword somewhere in their subtree and take
	// part in the semi-join reduction; free children are existence filters
	// checked per surviving parent row.
	bounded []int
	free    []int
}

// plan is a compiled probe: the rooted join tree plus the version-vector
// footprint its verdicts are stamped with.
type plan struct {
	ok    bool
	cause string // fallback cause when !ok
	// cFallback is the cause's pre-resolved fallback counter: a declined
	// plan is hit on every probe of its node, and CounterVec.With is too
	// slow for that path (lock + label-key build).
	cFallback *obs.Counter

	verts []pvert
	root  int
	// order is the bottom-up reduction order: every bounded non-root vertex,
	// children before parents.
	order []int
	// footTables is the sorted table-key footprint (vervec names) the
	// verdict memo is stamped with.
	footTables []string

	// memo is the latest reduction verdict with its stamp; nil until the
	// first successful evaluation.
	memo atomic.Pointer[verdictMemo]
}

// verdictMemo is one stamped reduction result. seq is the vector's Seq at
// stamp time: when it still matches, nothing anywhere has moved and the
// verdict is served with a single read; otherwise the per-name stamp decides.
type verdictMemo struct {
	seq   uint64
	stamp vervec.Stamp
	alive bool
}

// Probe answers the node's aliveness question on the bitset path. The key
// is the probe identity the oracle already computes (plans and memos are
// shared across isomorphic nodes through it). ok=false means the shape is
// not coverable — or churned too hard to stamp — and the caller must fall
// back to SQL; cause says why.
//
//kws:hotpath
func (e *Evaluator) Probe(node *lattice.Node, keywords []string, key string) (alive, ok bool, cause string) {
	p := e.plan(node, keywords, key)
	if !p.ok {
		e.fallbacks.Add(1)
		p.cFallback.Inc()
		return false, false, p.cause
	}
	vv := e.eng.Versions()
	if m := p.memo.Load(); m != nil {
		seq := vv.Seq()
		if m.seq == seq {
			e.hits.Add(1)
			cMemoHit.Inc()
			return m.alive, true, ""
		}
		if !vv.Stale(m.stamp) {
			// Something moved, but nothing in this probe's footprint:
			// refresh the fast-path seq so the next probe is one read again.
			p.memo.CompareAndSwap(m, &verdictMemo{seq: seq, stamp: m.stamp, alive: m.alive})
			e.hits.Add(1)
			cMemoHit.Inc()
			return m.alive, true, ""
		}
	}
	// Stamp before reading any data: a write landing mid-reduction makes
	// the stored memo stale on the next probe instead of being vouched for.
	seq := vv.Seq()
	stamp := vv.Stamp(p.footTables)
	alive, ok, cause = e.evaluate(p)
	if !ok {
		e.fallbacks.Add(1)
		cChurnFallback.Inc()
		return false, false, cause
	}
	p.memo.Store(&verdictMemo{seq: seq, stamp: stamp, alive: alive})
	e.hits.Add(1)
	cComputed.Inc()
	return alive, true, ""
}

// Warm compiles the node's plan and builds its candidate bitmaps without
// evaluating, so the scheduler's batch pre-warm keeps worker probes
// contention-free — the bitset analogue of pre-compiling prepared handles.
func (e *Evaluator) Warm(node *lattice.Node, keywords []string, key string) {
	p := e.plan(node, keywords, key)
	if !p.ok {
		return
	}
	for i := range p.verts {
		if kw := p.verts[i].keyword; kw != "" {
			e.candidate(p.verts[i].rel, kw)
		}
	}
}

// plan resolves (compiling on first use) the probe's plan.
func (e *Evaluator) plan(node *lattice.Node, keywords []string, key string) *plan {
	if v, loaded := e.plans.Load(key); loaded {
		return v.(*plan)
	}
	p := e.compile(node, keywords)
	if v, loaded := e.plans.LoadOrStore(key, p); loaded {
		return v.(*plan)
	}
	mPlans.Inc()
	return p
}

// compile roots the node's join tree at its first keyword-bound vertex and
// resolves every join edge to storage column indexes.
func (e *Evaluator) compile(node *lattice.Node, keywords []string) *plan {
	fail := func(cause string) *plan { return &plan{cause: cause, cFallback: mFallbacks.With(cause)} }
	n := len(node.Vertices)
	schema := e.eng.Database().Schema()
	p := &plan{verts: make([]pvert, n), root: -1}

	for i, v := range node.Vertices {
		pv := &p.verts[i]
		pv.rel = v.Rel
		pv.selfCol, pv.parCol = -1, -1
		tbl, okT := e.eng.Database().Table(v.Rel)
		if !okT {
			return fail("no_table")
		}
		pv.tbl = tbl
		if v.Copy >= 1 && v.Copy <= len(keywords) {
			rel, okR := schema.Relation(v.Rel)
			if !okR || len(rel.TextColumns()) == 0 {
				// The SQL path errors identically on render; falling back
				// keeps the two paths' error behavior byte-compatible.
				return fail("no_text_columns")
			}
			pv.keyword = keywords[v.Copy-1]
			if p.root < 0 {
				p.root = i
			}
		}
	}
	if p.root < 0 {
		return fail("unanchored")
	}
	if len(node.Edges) != n-1 {
		return fail("cyclic")
	}

	// Adjacency with per-endpoint column indexes resolved from the schema.
	type adj struct{ to, selfCol, toCol int }
	adjs := make([][]adj, n)
	for _, je := range node.Edges {
		edge := schema.Edges()[je.EdgeID]
		aCol, bCol := edge.FromCol, edge.ToCol
		if !je.AFrom {
			aCol, bCol = edge.ToCol, edge.FromCol
		}
		ai, bi, okCols := resolveIntCols(schema, node.Vertices[je.A].Rel, aCol, node.Vertices[je.B].Rel, bCol)
		if !okCols {
			return fail("join_type")
		}
		adjs[je.A] = append(adjs[je.A], adj{to: je.B, selfCol: ai, toCol: bi})
		adjs[je.B] = append(adjs[je.B], adj{to: je.A, selfCol: bi, toCol: ai})
	}

	// Root the tree with a BFS. With exactly n-1 edges, full reachability
	// proves the edge set is a tree; anything unreached means a cycle hides
	// elsewhere in a disconnected component.
	visited := make([]bool, n)
	visited[p.root] = true
	queue := []int{p.root}
	parentOrder := []int{}
	children := make([][]int, n)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		parentOrder = append(parentOrder, cur)
		for _, a := range adjs[cur] {
			if visited[a.to] {
				continue // the edge back to the parent
			}
			visited[a.to] = true
			cv := &p.verts[a.to]
			cv.selfCol, cv.parCol = a.toCol, a.selfCol
			children[cur] = append(children[cur], a.to)
			queue = append(queue, a.to)
		}
	}
	for i := 0; i < n; i++ {
		if !visited[i] {
			return fail("disconnected")
		}
	}

	// Classify subtrees: a subtree is bounded when it holds a keyword
	// anywhere; bounded children join the semi-join reduction, free ones
	// become per-row existence filters. parentOrder is BFS order, so
	// walking it backwards visits children before parents.
	subBounded := make([]bool, n)
	for i := len(parentOrder) - 1; i >= 0; i-- {
		vi := parentOrder[i]
		subBounded[vi] = p.verts[vi].keyword != ""
		for _, c := range children[vi] {
			if subBounded[c] {
				subBounded[vi] = true
			}
		}
	}
	for i := len(parentOrder) - 1; i >= 0; i-- {
		vi := parentOrder[i]
		for _, c := range children[vi] {
			if subBounded[c] {
				p.verts[vi].bounded = append(p.verts[vi].bounded, c)
			} else {
				p.verts[vi].free = append(p.verts[vi].free, c)
			}
		}
		if vi != p.root && subBounded[vi] {
			p.order = append(p.order, vi)
		}
	}

	// Footprint: every distinct table in the tree, sorted for determinism.
	seen := make(map[string]bool, n)
	for i := range p.verts {
		k := vervec.TableKey(p.verts[i].rel)
		if !seen[k] {
			seen[k] = true
			p.footTables = append(p.footTables, k)
		}
	}
	sort.Strings(p.footTables)

	p.ok = true
	return p
}

// resolveIntCols maps one join edge's column names to indexes in both
// relations and confirms both sides are INT (the storage layer's hash
// indexes only cover INT columns).
func resolveIntCols(schema *catalog.Schema, aRel, aCol, bRel, bCol string) (ai, bi int, ok bool) {
	ra, okA := schema.Relation(aRel)
	rb, okB := schema.Relation(bRel)
	if !okA || !okB {
		return 0, 0, false
	}
	ai, bi = ra.ColumnIndex(aCol), rb.ColumnIndex(bCol)
	if ai < 0 || bi < 0 {
		return 0, 0, false
	}
	if ra.Columns[ai].Type != catalog.Int || rb.Columns[bi].Type != catalog.Int {
		return 0, 0, false
	}
	return ai, bi, true
}

// candEntry is one cached candidate bitmap with its conjunction stamp: the
// set stales only when its table moved AND every keyword token moved,
// because a row joins the candidate set only if it carries all tokens.
type candEntry struct {
	once sync.Once
	bm   *bitset.Bitmap

	epoch    uint64
	tableKey string
	tableVal uint64
	termKeys []string
	termVals []uint64
}

// candidate resolves (building on first use) the bitmap of rows of rel whose
// text matches the keyword — per column all tokens, across columns OR —
// exactly the SQL CONTAINS disjunction the lattice renders. ok=false means
// the entry could not be kept fresh within maxBuildAttempts.
func (e *Evaluator) candidate(rel, keyword string) (*bitset.Bitmap, bool) {
	k := rel + "\x00" + keyword
	for attempt := 0; attempt < maxBuildAttempts; attempt++ {
		v, loaded := e.cands.LoadOrStore(k, &candEntry{})
		ent := v.(*candEntry)
		ent.once.Do(func() {
			ent.build(e.eng, rel, keyword)
			if loaded {
				mCandSets.With("rebuild").Inc()
			} else {
				mCandSets.With("build").Inc()
			}
		})
		if !ent.stale(e.eng.Versions()) {
			return ent.bm, true
		}
		// Stale: retire this entry and build a fresh one. CompareAndDelete
		// keeps a concurrent retirer from dropping the successor.
		e.cands.CompareAndDelete(k, v)
	}
	mCandSets.With("churn").Inc()
	return nil, false
}

// build stamps the entry, then reads the index. The stamp-before-read
// discipline means a write racing the read makes the entry stale rather
// than letting it vouch for postings it never saw.
func (ent *candEntry) build(eng *engine.Engine, rel, keyword string) {
	vv := eng.Versions()
	toks := invidx.Tokenize(keyword)
	ent.tableKey = vervec.TableKey(rel)
	names := make([]string, 0, 1+len(toks))
	names = append(names, ent.tableKey)
	ent.termKeys = make([]string, len(toks))
	for i, t := range toks {
		ent.termKeys[i] = vervec.TermKey(t)
		names = append(names, ent.termKeys[i])
	}
	st := vv.Stamp(names)
	ent.epoch = st.Epoch
	ent.tableVal = st.Vals[0]
	ent.termVals = st.Vals[1:]

	ix := eng.Index()
	var ids []storage.RowID
	if relMeta, ok := eng.Database().Schema().Relation(rel); ok {
		for _, col := range relMeta.TextColumns() {
			ids = invidx.UnionRowIDs(ids, ix.Rows(rel, col, keyword))
		}
	}
	vals := make([]uint32, len(ids))
	for i, id := range ids {
		vals[i] = uint32(id)
	}
	ent.bm = bitset.FromSorted(vals)
}

// stale mirrors the engine candidate cache's conjunction rule: epoch moves
// always stale; a table bump stales only when every token term also moved
// (an insert lacking some token cannot join this candidate set). A
// tokenless keyword cannot be attributed, so any table movement stales it.
func (ent *candEntry) stale(vv *vervec.Vector) bool {
	if vv.EpochChanged(ent.epoch) {
		return true
	}
	if !vv.Advanced(ent.tableKey, ent.tableVal) {
		return false
	}
	if len(ent.termKeys) == 0 {
		return true
	}
	for i, tk := range ent.termKeys {
		if !vv.Advanced(tk, ent.termVals[i]) {
			return false
		}
	}
	return true
}

// evalScratch pools the per-evaluation working state.
type evalScratch struct {
	cands   []*bitset.Bitmap
	reduced []*bitset.Bitmap
	owned   []*bitset.Bitmap
	ids     []uint32
}

var scratchPool = sync.Pool{New: func() any { return &evalScratch{} }}

func (s *evalScratch) reset(n int) {
	if cap(s.cands) < n {
		s.cands = make([]*bitset.Bitmap, n)
		s.reduced = make([]*bitset.Bitmap, n)
	}
	s.cands = s.cands[:n]
	s.reduced = s.reduced[:n]
	for i := 0; i < n; i++ {
		s.cands[i], s.reduced[i] = nil, nil
	}
	s.owned = s.owned[:0]
	s.ids = s.ids[:0]
}

func (s *evalScratch) release() {
	for _, b := range s.owned {
		b.Release()
	}
	s.owned = s.owned[:0]
	scratchPool.Put(s)
}

// evaluate runs the semi-join full reduction and answers the root existence
// question. Correctness: by induction over the bottom-up order, reduced[v]
// is exactly the set of rows of v extendable to a complete match of v's
// subtree (candidate membership for v itself, a surviving partner in every
// bounded child, an existing chain in every free child). The node is alive
// iff some root candidate row has that property — which the final loop
// checks with an early exit on the first survivor.
//
//kws:hotpath
func (e *Evaluator) evaluate(p *plan) (alive, ok bool, cause string) {
	sc := scratchPool.Get().(*evalScratch)
	sc.reset(len(p.verts))
	defer sc.release()

	for i := range p.verts {
		kw := p.verts[i].keyword
		if kw == "" {
			continue
		}
		bm, fresh := e.candidate(p.verts[i].rel, kw)
		if !fresh {
			return false, false, "candset_churn"
		}
		if bm.IsEmpty() {
			// A bound vertex with no matching rows kills the whole tree.
			return false, true, ""
		}
		sc.cands[i] = bm
	}

	for _, vi := range p.order {
		v := &p.verts[vi]
		cur := sc.cands[vi] // nil = universe (free vertex with bounded subtree)
		for _, c := range v.bounded {
			next := e.semijoin(sc, v, cur, &p.verts[c], sc.reduced[c])
			cur = next
			sc.owned = append(sc.owned, next)
			if cur.IsEmpty() {
				return false, true, ""
			}
		}
		for _, c := range v.free {
			// cur is non-nil here: a bounded vertex starts from its
			// candidate set, and a free-but-bounded vertex has at least one
			// bounded child reduced first.
			next := e.filterFree(sc, cur, v, p, c)
			cur = next
			sc.owned = append(sc.owned, next)
			if cur.IsEmpty() {
				return false, true, ""
			}
		}
		sc.reduced[vi] = cur
	}

	rv := &p.verts[p.root]
	found := false
	sc.cands[p.root].Iterate(func(id uint32) bool {
		row := rv.tbl.Row(storage.RowID(id))
		for _, c := range rv.bounded {
			cv := &p.verts[c]
			if !anyIn(cv.tbl.LookupInt(cv.selfCol, row[cv.parCol].I), sc.reduced[c]) {
				return true // next root candidate
			}
		}
		for _, c := range rv.free {
			if !freeMatch(p, c, rv.tbl, id) {
				return true
			}
		}
		found = true
		return false
	})
	return found, true, ""
}

// semijoin reduces the parent's row set to the rows with at least one join
// partner in the child's reduced set. cur == nil means the parent is still
// unbounded (universe); the result is then built from the child side.
func (e *Evaluator) semijoin(sc *evalScratch, v *pvert, cur *bitset.Bitmap, cv *pvert, red *bitset.Bitmap) *bitset.Bitmap {
	if cur == nil || red.Cardinality() < cur.Cardinality() {
		// Build candidate parents from the child side: the union of parent
		// rows matching each surviving child row's join value.
		sc.ids = sc.ids[:0]
		red.Iterate(func(cid uint32) bool {
			val := cv.tbl.Row(storage.RowID(cid))[cv.selfCol].I
			for _, pid := range v.tbl.LookupInt(cv.parCol, val) {
				sc.ids = append(sc.ids, uint32(pid))
			}
			return true
		})
		built := fromUnsorted(sc.ids)
		if cur == nil {
			return built
		}
		out := built.And(cur)
		built.Release()
		return out
	}
	// Probe the child from the parent side.
	out := bitset.New()
	cur.Iterate(func(pid uint32) bool {
		val := v.tbl.Row(storage.RowID(pid))[cv.parCol].I
		if anyIn(cv.tbl.LookupInt(cv.selfCol, val), red) {
			out.Add(pid)
		}
		return true
	})
	return out
}

// filterFree keeps the parent rows whose free child subtree ci has at least
// one complete chain.
func (e *Evaluator) filterFree(sc *evalScratch, cur *bitset.Bitmap, v *pvert, p *plan, ci int) *bitset.Bitmap {
	out := bitset.New()
	cur.Iterate(func(pid uint32) bool {
		if freeMatch(p, ci, v.tbl, pid) {
			out.Add(pid)
		}
		return true
	})
	return out
}

// freeMatch reports whether the free vertex ci has a row joining the given
// parent row that itself completes ci's (entirely free) subtree. Depth is
// bounded by the lattice level; every descendant of an unbounded vertex is
// unbounded, so only the free lists recurse.
func freeMatch(p *plan, ci int, parentTbl *storage.Table, parentID uint32) bool {
	cv := &p.verts[ci]
	val := parentTbl.Row(storage.RowID(parentID))[cv.parCol].I
	for _, cid := range cv.tbl.LookupInt(cv.selfCol, val) {
		matched := true
		for _, g := range cv.free {
			if !freeMatch(p, g, cv.tbl, uint32(cid)) {
				matched = false
				break
			}
		}
		if matched {
			return true
		}
	}
	return false
}

// anyIn reports whether any looked-up row ID is in the reduced set.
func anyIn(ids []storage.RowID, b *bitset.Bitmap) bool {
	for _, id := range ids {
		if b.Contains(uint32(id)) {
			return true
		}
	}
	return false
}

// fromUnsorted sorts and dedupes ids in place, then builds a bitmap.
func fromUnsorted(ids []uint32) *bitset.Bitmap {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w := 0
	for i, v := range ids {
		if i == 0 || v != ids[w-1] {
			ids[w] = v
			w++
		}
	}
	return bitset.FromSorted(ids[:w])
}
