package bitprobe_test

import (
	"fmt"
	"testing"

	"kwsdbg/internal/core/bitprobe"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
)

// TestProbeAgreesWithSQL sweeps every node of the figure2 lattice whose
// keyword copies the query binds and checks the bitset verdict against the
// rendered existence SQL — the oracle of record. Nodes the evaluator
// declines must decline for a stated cause.
func TestProbeAgreesWithSQL(t *testing.T) {
	eng, err := figure2.Engine()
	if err != nil {
		t.Fatalf("figure2.Engine: %v", err)
	}
	lat, err := lattice.GenerateOpts(eng.Database().Schema(), lattice.Options{MaxJoins: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ev := bitprobe.New(eng)
	queries := [][]string{
		{"saffron"},
		{"saffron", "scented"},
		{"saffron", "scented", "candle"},
		{"candle", "saffron"},
		{"acme"},
		{"nosuchtoken"},
	}
	probed, declined := 0, 0
	for _, kws := range queries {
		for id := 0; id < lat.Len(); id++ {
			node := lat.Node(id)
			if tooManyCopies(node, len(kws)) {
				continue
			}
			key := fmt.Sprintf("%s|%v", node.Label, kws)
			alive, ok, cause := ev.Probe(node, kws, key)
			if !ok {
				if cause == "" {
					t.Fatalf("node %d %v: declined without a cause", id, kws)
				}
				declined++
				continue
			}
			probed++
			sql, err := lat.SQL(node, kws, true)
			if err != nil {
				t.Fatalf("node %d %v: render: %v", id, kws, err)
			}
			res, err := eng.Query(sql)
			if err != nil {
				t.Fatalf("node %d %v: query: %v", id, kws, err)
			}
			if want := len(res.Rows) > 0; alive != want {
				t.Errorf("node %d (%s) %v: bitset says alive=%t, SQL says %t", id, node.Label, kws, alive, want)
			}
		}
	}
	if probed == 0 {
		t.Fatal("evaluator declined every node; fixture broken")
	}
	t.Logf("probed=%d declined=%d", probed, declined)
}

// tooManyCopies reports whether the node binds a keyword copy the query does
// not supply (lattice.SQL would error on it).
func tooManyCopies(n *lattice.Node, nk int) bool {
	for _, v := range n.Vertices {
		if v.Copy > nk {
			return true
		}
	}
	return false
}

// TestUnanchoredFallback: a node with no keyword-bound vertex has no
// candidate set to anchor the semi-join reduction; the evaluator must
// decline it with the "unanchored" cause.
func TestUnanchoredFallback(t *testing.T) {
	eng, err := figure2.Engine()
	if err != nil {
		t.Fatalf("figure2.Engine: %v", err)
	}
	lat, err := lattice.GenerateOpts(eng.Database().Schema(), lattice.Options{MaxJoins: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ev := bitprobe.New(eng)
	for id := 0; id < lat.Len(); id++ {
		node := lat.Node(id)
		if hasBoundVertex(node, 1) {
			continue
		}
		_, ok, cause := ev.Probe(node, []string{"saffron"}, node.Label)
		if ok || cause != "unanchored" {
			t.Fatalf("free-only node %d (%s): ok=%t cause=%q, want unanchored fallback", id, node.Label, ok, cause)
		}
		return
	}
	t.Fatal("lattice has no free-only nodes; fixture broken")
}

// hasBoundVertex reports whether some vertex binds a keyword the nk-keyword
// query supplies.
func hasBoundVertex(n *lattice.Node, nk int) bool {
	for _, v := range n.Vertices {
		if v.Copy >= 1 && v.Copy <= nk {
			return true
		}
	}
	return false
}

// TestMemoInvalidatesOnInsert: a memoized dead verdict must flip after an
// INSERT that gives the tree its first matching row, and the repeat probe
// must serve from the refreshed memo.
func TestMemoInvalidatesOnInsert(t *testing.T) {
	eng, err := figure2.Engine()
	if err != nil {
		t.Fatalf("figure2.Engine: %v", err)
	}
	lat, err := lattice.GenerateOpts(eng.Database().Schema(), lattice.Options{MaxJoins: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ev := bitprobe.New(eng)
	kws := []string{"lilac"}
	node, okN := lat.NodeByLabel("Item^1")
	if !okN {
		for id := 0; id < lat.Len(); id++ {
			n := lat.Node(id)
			if len(n.Vertices) == 1 && n.Vertices[0].Rel == "Item" && n.Vertices[0].Copy == 1 {
				node = n
				break
			}
		}
	}
	if node == nil {
		t.Fatal("no Item^1 node in lattice")
	}
	probe := func() bool {
		alive, ok, cause := ev.Probe(node, kws, "memo-test")
		if !ok {
			t.Fatalf("declined: %s", cause)
		}
		return alive
	}
	if probe() {
		t.Fatal("lilac already matches Item; fixture broken")
	}
	// Repeat probe exercises the memo fast path and must agree.
	if probe() {
		t.Fatal("memoized probe diverged")
	}
	if _, err := eng.Exec("INSERT INTO Item VALUES (9, 'lilac candle', 2, 3, 2, 6.0, 'fresh')"); err != nil {
		t.Fatalf("Exec(INSERT): %v", err)
	}
	if !probe() {
		t.Fatal("memo survived an intersecting INSERT")
	}
	if !probe() {
		t.Fatal("refreshed memo diverged")
	}
}

// TestWarmAndPurge: warming compiles plans and candidate bitmaps; purging
// drops them; both leave verdicts unchanged.
func TestWarmAndPurge(t *testing.T) {
	eng, err := figure2.Engine()
	if err != nil {
		t.Fatalf("figure2.Engine: %v", err)
	}
	lat, err := lattice.GenerateOpts(eng.Database().Schema(), lattice.Options{MaxJoins: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ev := bitprobe.New(eng)
	kws := []string{"saffron", "scented", "candle"}
	var verdicts []bool
	for id := 0; id < lat.Len(); id++ {
		node := lat.Node(id)
		if tooManyCopies(node, len(kws)) || !hasBoundVertex(node, len(kws)) {
			continue
		}
		key := node.Label
		ev.Warm(node, kws, key)
		alive, ok, _ := ev.Probe(node, kws, key)
		if ok {
			verdicts = append(verdicts, alive)
		}
	}
	ev.Purge()
	i := 0
	for id := 0; id < lat.Len(); id++ {
		node := lat.Node(id)
		if tooManyCopies(node, len(kws)) || !hasBoundVertex(node, len(kws)) {
			continue
		}
		alive, ok, _ := ev.Probe(node, kws, node.Label)
		if !ok {
			continue
		}
		if alive != verdicts[i] {
			t.Fatalf("node %d: verdict changed across Purge: %t -> %t", id, verdicts[i], alive)
		}
		i++
	}
	if i != len(verdicts) {
		t.Fatalf("coverable node set changed across Purge: %d -> %d", len(verdicts), i)
	}
}
