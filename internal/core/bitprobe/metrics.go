package bitprobe

import "kwsdbg/internal/obs"

// Bitset probe path metrics. Probes split by how they were served —
// "memo_hit" is the stamped-verdict fast path, "computed" a fresh semi-join
// reduction — while fallbacks carry the cause that sent the probe back to
// the prepared-SQL path, so operators can see which shapes the bitset
// engine declines.
var (
	mProbes = obs.Default.CounterVec("kwsdbg_bitset_probes_total",
		"Probes served on the bitset path, by outcome (memo_hit, computed).", "outcome")
	mFallbacks = obs.Default.CounterVec("kwsdbg_bitset_fallback_total",
		"Probes declined to the prepared-SQL path, by cause.", "cause")
	mCandSets = obs.Default.CounterVec("kwsdbg_bitset_candset_total",
		"Candidate bitmap events, by kind (build, rebuild, churn).", "kind")
	mPlans = obs.Default.Counter("kwsdbg_bitset_plans_total",
		"Probe join trees compiled into bitset plans.")
)

// The probe counters sit on the per-probe hot path; CounterVec.With resolves
// its child through a lock and a label-key build, so the fixed outcomes are
// resolved once here and the hot path pays a single atomic add.
var (
	cMemoHit  = mProbes.With("memo_hit")
	cComputed = mProbes.With("computed")

	// cChurnFallback is the one fallback cause Probe can hit after planning
	// succeeded (evaluate's only decline is candidate-set churn); plan-time
	// causes are resolved per-plan at compile (see plan.cFallback).
	cChurnFallback = mFallbacks.With("candset_churn")
)
