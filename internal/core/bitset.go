package core

import "math/bits"

// bitset is a fixed-capacity bit vector over sub-lattice node indexes.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << uint(i&63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// empty reports whether no bit is set.
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEach calls fn for every set bit in ascending order.
func (b bitset) forEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
