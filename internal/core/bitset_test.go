package core

import (
	"math/rand"
	"reflect"
	"testing"

	"kwsdbg/internal/probecache"
)

// The bitset engine's standing property: routing probes through bitmap
// semi-joins is an execution-strategy change, not a semantics change. Across
// random schemas, data, and queries, a bitset-path run at any worker count
// must produce an Output identical to the prepared-path run — answers,
// non-answers, MPAN sets, and the logical probe counts — with or without the
// verdict cache, across all four probing strategies.
func TestBitsetPreparedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep is slow")
	}
	r := rand.New(rand.NewSource(20260807))
	vocab := []string{"amber", "birch", "cedar", "dune", "ember", "flint", "grove", "haze", "missing"}
	strategies := []Strategy{BUWR, TDWR, SBH, RE}
	for trial := 0; trial < 4; trial++ {
		sys, _ := randomSystem(t, r)
		sys.SetProbeCache(probecache.New(probecache.Config{}))
		for q := 0; q < 3; q++ {
			nk := 1 + r.Intn(3)
			kws := make([]string, nk)
			for i := range kws {
				kws[i] = vocab[r.Intn(len(vocab))]
			}
			for _, strat := range strategies {
				ref, err := sys.Debug(kws, Options{Strategy: strat, BypassCache: true})
				if err != nil {
					t.Fatalf("trial %d %v %v prepared: %v", trial, kws, strat, err)
				}
				want := normalized(ref)
				for _, workers := range []int{1, 4, 8} {
					for _, bypass := range []bool{true, false} {
						out, err := sys.Debug(kws, Options{Strategy: strat, Workers: workers, BypassCache: bypass, BitsetProbes: true})
						if err != nil {
							t.Fatalf("trial %d %v %v bitset workers=%d: %v", trial, kws, strat, workers, err)
						}
						if got := normalized(out); !reflect.DeepEqual(got, want) {
							t.Fatalf("trial %d %v %v: bitset workers=%d cache=%v diverges from prepared path\ngot:  %+v\nwant: %+v",
								trial, kws, strat, workers, !bypass, got, want)
						}
					}
				}
			}
		}
	}
}

// The bitset engine must actually serve probes on shapes it claims to cover:
// a product-schema run answers every probe on the bitset path, never falling
// back, and still matches the prepared run byte for byte.
func TestBitsetServesAllProbes(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"saffron", "scented", "candle"}
	for _, strat := range []Strategy{BUWR, TDWR, SBH, RE} {
		ref, err := sys.Debug(kws, Options{Strategy: strat, BypassCache: true})
		if err != nil {
			t.Fatalf("%v prepared: %v", strat, err)
		}
		out, err := sys.Debug(kws, Options{Strategy: strat, BypassCache: true, BitsetProbes: true})
		if err != nil {
			t.Fatalf("%v bitset: %v", strat, err)
		}
		if got, want := normalized(out), normalized(ref); !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: bitset diverges from prepared\ngot:  %+v\nwant: %+v", strat, got, want)
		}
		if out.Stats.BitsetHits == 0 {
			t.Fatalf("%v: bitset run served no probes on the bitset path", strat)
		}
		if out.Stats.BitsetFallbacks != 0 {
			t.Fatalf("%v: bitset run fell back %d times on a fully coverable schema", strat, out.Stats.BitsetFallbacks)
		}
		if out.Stats.BitsetHits != out.Stats.SQLExecuted {
			t.Fatalf("%v: BitsetHits=%d but SQLExecuted=%d (cache disabled, so every probe should be a bitset hit)",
				strat, out.Stats.BitsetHits, out.Stats.SQLExecuted)
		}
	}
}

// An INSERT between two bitset runs must invalidate the evaluator's memos
// and candidate bitmaps: the second run must match a fresh prepared run
// executed after the insert, not the pre-insert state it had bitmaps for.
func TestBitsetInvalidatesOnInsert(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"lilac"}
	before, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true, BitsetProbes: true})
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	if len(before.Answers) != 0 {
		t.Fatalf("pre-insert answers = %d, want 0", len(before.Answers))
	}
	if _, err := sys.Engine().Exec("INSERT INTO Item VALUES (9, 'lilac candle', 2, 3, 2, 6.0, 'fresh')"); err != nil {
		t.Fatalf("Exec(INSERT): %v", err)
	}
	fresh, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true})
	if err != nil {
		t.Fatalf("Debug prepared: %v", err)
	}
	after, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true, BitsetProbes: true})
	if err != nil {
		t.Fatalf("Debug bitset: %v", err)
	}
	if len(after.Answers) == 0 {
		t.Fatal("post-insert bitset run still reports no answers (stale memo or candidate bitmap)")
	}
	got, want := normalized(after), normalized(fresh)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-insert bitset run diverges from fresh prepared run\ngot:  %+v\nwant: %+v", got, want)
	}
}

// The acceptance scenario: with the cross-request verdict cache on, a warm
// bitset run after an intersecting INSERT must flow suspect -> re-probe ->
// repair entirely through the bitset path, and still match a fresh prepared
// run at every worker count.
func TestBitsetRepairAfterIntersectingInsert(t *testing.T) {
	sys := productSystem(t)
	sys.SetProbeCache(probecache.New(probecache.Config{}))
	kws := []string{"saffron", "scented", "candle"}
	// Seed the verdict cache from a bitset run; the query has dead nodes
	// whose footprints the insert below intersects.
	if _, err := sys.Debug(kws, Options{Strategy: SBH, BitsetProbes: true}); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	if _, err := sys.Engine().Exec(
		"INSERT INTO Item VALUES (9, 'saffron scented candle', 2, 4, 4, 9.5, 'new stock')"); err != nil {
		t.Fatalf("Exec(INSERT): %v", err)
	}
	fresh, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true})
	if err != nil {
		t.Fatalf("fresh prepared run: %v", err)
	}
	want := normalized(fresh)
	for _, workers := range []int{1, 4, 8} {
		// The first warm run repairs the cache for the later ones, so only
		// workers=1 sees suspects; the others must still match byte for
		// byte off the repaired verdicts.
		out, err := sys.Debug(kws, Options{Strategy: SBH, Workers: workers, BitsetProbes: true})
		if err != nil {
			t.Fatalf("warm bitset workers=%d: %v", workers, err)
		}
		if got := normalized(out); !reflect.DeepEqual(got, want) {
			t.Fatalf("warm bitset workers=%d diverges from fresh prepared run\ngot:  %+v\nwant: %+v", workers, got, want)
		}
		if workers == 1 {
			if out.Stats.Suspects == 0 {
				t.Fatal("intersecting INSERT produced no suspects (footprint not stamped?)")
			}
			if out.Stats.Repaired == 0 {
				t.Fatal("suspects were not repaired")
			}
			if out.Stats.BitsetHits == 0 {
				t.Fatal("repair re-probes did not flow through the bitset path")
			}
		}
	}
}

// TextProbes and BitsetProbes select different execution paths for the same
// probe; asking for both is a caller bug and must fail loudly.
func TestBitsetTextMutuallyExclusive(t *testing.T) {
	sys := productSystem(t)
	_, err := sys.Debug([]string{"lilac"}, Options{Strategy: SBH, TextProbes: true, BitsetProbes: true})
	if err == nil {
		t.Fatal("TextProbes+BitsetProbes was accepted")
	}
}
