package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"kwsdbg/internal/probecache"
)

// TestChaosBitsetWriteStorm is TestChaosWriteStorm routed through the bitset
// probe path (run under -race by `make race` and `make chaos-writes`):
// concurrent INSERTs hammer the engine while warm cached bitset runs are in
// flight. Mid-storm runs must stay error-free — candidate bitmaps and
// verdict memos stale out rather than vouch for rows they never saw, and
// suspect verdicts repair through the bitset path. Once the storm quiesces,
// warm bitset runs at every worker count must match a cold prepared run of
// the final data exactly.
func TestChaosBitsetWriteStorm(t *testing.T) {
	sys := productSystem(t)
	sys.SetProbeCache(probecache.New(probecache.Config{}))
	kws := []string{"saffron", "scented", "candle"}
	if _, err := sys.Debug(kws, Options{Strategy: SBH, BitsetProbes: true}); err != nil {
		t.Fatalf("warm-up: %v", err)
	}

	const writers, perWriter = 4, 12
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := 300 + w*perWriter + i
				var stmt string
				switch i % 3 {
				case 0:
					stmt = fmt.Sprintf(
						"INSERT INTO Item VALUES (%d, 'saffron scented candle %d', 2, 4, 1, 5.0, 'storm')", id, id)
				case 1:
					stmt = fmt.Sprintf("INSERT INTO Attr VALUES (%d, 'scent', 'storm%d')", id, id)
				default:
					stmt = fmt.Sprintf("INSERT INTO PType VALUES (%d, 'storm%d')", id, id)
				}
				if _, err := sys.Engine().Exec(stmt); err != nil {
					errs <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	stormDone := make(chan struct{})
	go func() { wg.Wait(); close(stormDone) }()
	for running := true; running; {
		select {
		case <-stormDone:
			running = false
		default:
			if _, err := sys.Debug(kws, Options{Strategy: SBH, Workers: 4, BitsetProbes: true}); err != nil {
				t.Fatalf("mid-storm bitset debug: %v", err)
			}
		}
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cold, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true})
	if err != nil {
		t.Fatalf("cold prepared run at quiesce: %v", err)
	}
	want := normalized(cold)
	for _, workers := range []int{1, 4, 8} {
		warm, err := sys.Debug(kws, Options{Strategy: SBH, Workers: workers, BitsetProbes: true})
		if err != nil {
			t.Fatalf("warm bitset run workers=%d at quiesce: %v", workers, err)
		}
		if got := normalized(warm); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: warm bitset run diverges from cold prepared run after storm\ngot:  %+v\nwant: %+v",
				workers, got, want)
		}
	}
}
