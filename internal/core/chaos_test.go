package core

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"kwsdbg/internal/engine"
)

// TestChaosTransientFaultIdentity proves the retry layer end to end: with a
// deterministic fault injector failing every Nth execution attempt (down to
// every 5th — a 20% transient fault rate), every strategy and worker count
// still produces an Output identical to the fault-free run. The injector
// counts *attempts*, so a failed execution's immediate retry lands on a
// non-faulting count and succeeds — the chaos is aggressive but never
// unrecoverable, which is exactly the transient-fault model.
func TestChaosTransientFaultIdentity(t *testing.T) {
	sys := productSystem(t)
	sys.Engine().SetRetryPolicy(engine.RetryPolicy{
		MaxAttempts: 3, BaseDelay: 50 * time.Microsecond, MaxDelay: 200 * time.Microsecond,
	})
	kws := []string{"saffron", "scented", "candle"}
	allStrategies := append(append([]Strategy{}, Strategies...), RE)
	for _, every := range []int64{10, 5} { // 10% and 20% fault rates
		for _, strat := range allStrategies {
			for _, workers := range []int{1, 8} {
				want, err := sys.Debug(kws, Options{Strategy: strat, Workers: workers, BypassCache: true})
				if err != nil {
					t.Fatalf("%v workers=%d fault-free: %v", strat, workers, err)
				}
				var attempts atomic.Int64
				sys.Engine().SetFaultInjector(func() error {
					if attempts.Add(1)%every == 0 {
						return engine.Transient(fmt.Errorf("chaos: injected transient fault"))
					}
					return nil
				})
				out, err := sys.Debug(kws, Options{Strategy: strat, Workers: workers, BypassCache: true})
				sys.Engine().SetFaultInjector(nil)
				if err != nil {
					t.Fatalf("%v workers=%d rate=1/%d: transient faults leaked: %v", strat, workers, every, err)
				}
				if got := normalized(out); !reflect.DeepEqual(got, normalized(want)) {
					t.Fatalf("%v workers=%d rate=1/%d: output diverged under injected faults\ngot:  %+v\nwant: %+v",
						strat, workers, every, got, normalized(want))
				}
			}
		}
	}
}
