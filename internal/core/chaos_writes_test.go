package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"kwsdbg/internal/probecache"
)

// TestChaosWriteStorm hammers the debugger with concurrent INSERTs while
// warm cached runs are in flight (run under -race by `make chaos-writes`).
// Mid-storm runs must stay error-free — each sees some consistent prefix of
// the writes, with intersecting verdicts suspected and repaired rather than
// trusted stale. Once the storm quiesces, warm repaired runs at every worker
// count must match a cold run of the final data exactly.
func TestChaosWriteStorm(t *testing.T) {
	sys := productSystem(t)
	sys.SetProbeCache(probecache.New(probecache.Config{}))
	kws := []string{"saffron", "scented", "candle"}
	if _, err := sys.Debug(kws, Options{Strategy: SBH}); err != nil {
		t.Fatalf("warm-up: %v", err)
	}

	const writers, perWriter = 4, 12
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := 100 + w*perWriter + i
				var stmt string
				switch i % 3 {
				case 0:
					stmt = fmt.Sprintf(
						"INSERT INTO Item VALUES (%d, 'saffron scented candle %d', 2, 4, 1, 5.0, 'storm')", id, id)
				case 1:
					stmt = fmt.Sprintf("INSERT INTO Attr VALUES (%d, 'scent', 'storm%d')", id, id)
				default:
					stmt = fmt.Sprintf("INSERT INTO PType VALUES (%d, 'storm%d')", id, id)
				}
				if _, err := sys.Engine().Exec(stmt); err != nil {
					errs <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	// Debug continuously while the storm runs: correctness mid-storm is
	// "no error, no panic, no race"; output identity is checked at quiesce.
	stormDone := make(chan struct{})
	go func() { wg.Wait(); close(stormDone) }()
	for running := true; running; {
		select {
		case <-stormDone:
			running = false
		default:
			if _, err := sys.Debug(kws, Options{Strategy: SBH, Workers: 4}); err != nil {
				t.Fatalf("mid-storm debug: %v", err)
			}
		}
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cold, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true})
	if err != nil {
		t.Fatalf("cold run at quiesce: %v", err)
	}
	want := normalized(cold)
	for _, workers := range []int{1, 4, 8} {
		warm, err := sys.Debug(kws, Options{Strategy: SBH, Workers: workers})
		if err != nil {
			t.Fatalf("warm run workers=%d at quiesce: %v", workers, err)
		}
		if got := normalized(warm); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: repaired warm run diverges from cold run after storm\ngot:  %+v\nwant: %+v",
				workers, got, want)
		}
	}
}
