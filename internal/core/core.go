// Package core implements the paper's online phases on top of the offline
// lattice: keyword binding and pruning (Phase 1), discovery of the Minimal
// Total Nodes that play the role of candidate networks (Phase 2), and the
// lattice traversals that classify each MTN as an answer or non-answer and
// explain every non-answer through its Maximal Partially Alive Nodes
// (Phase 3). It also provides the paper's two comparison baselines,
// Return Nothing and Return Everything (§3.8).
package core

import (
	"context"
	"database/sql"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"kwsdbg/internal/clock"
	"kwsdbg/internal/core/bitprobe"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/obs"
	"kwsdbg/internal/obs/flight"
	"kwsdbg/internal/probecache"
	"kwsdbg/internal/sqldriver"
	"kwsdbg/internal/storage"
)

// durMillis renders a duration as fractional milliseconds for span
// attributes, matching the report package's JSON convention.
func durMillis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// Strategy selects the Phase 3 lattice traversal.
type Strategy int

// The five traversal strategies of §2.5.
const (
	BU   Strategy = iota // bottom-up, one MTN at a time
	TD                   // top-down, one MTN at a time
	BUWR                 // bottom-up with reuse across MTNs (Algorithm 3)
	TDWR                 // top-down with reuse across MTNs
	SBH                  // score-based greedy heuristic (§2.5.3)
)

// String returns the paper's abbreviation for the strategy.
func (s Strategy) String() string {
	switch s {
	case BU:
		return "BU"
	case TD:
		return "TD"
	case BUWR:
		return "BUWR"
	case TDWR:
		return "TDWR"
	case SBH:
		return "SBH"
	case RE:
		return "RE"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all five traversals in the paper's presentation order.
var Strategies = []Strategy{BU, BUWR, TD, TDWR, SBH}

// System is a keyword-search-over-structured-data debugger: an engine, its
// inverted index, and the offline lattice of Phase 0. Safe for concurrent
// Debug calls.
type System struct {
	eng *engine.Engine
	lat *lattice.Lattice
	db  *sql.DB

	// cache, when set, carries aliveness verdicts across Debug calls; see
	// SetProbeCache. Atomic because servers install or swap it while
	// concurrent Debug calls are running.
	cache atomic.Pointer[probecache.Cache]

	// prepared is the cross-request cache of compiled probe handles, keyed
	// by probe identity (canonical node label + keyword binding). A handle
	// found here skips render, parse, resolve, and — unless the data
	// version moved — planning; entries self-revalidate, so the cache
	// never needs flushing on INSERT.
	prepared *engine.PreparedCache

	// bits is the bitset probe engine: cross-request compiled join-tree
	// plans, candidate bitmaps, and stamped verdict memos. Like prepared,
	// entries self-revalidate against the engine's version vector, so the
	// evaluator never needs flushing on INSERT.
	bits *bitprobe.Evaluator
}

// NewSystem wires an engine and a pre-generated lattice together. The lattice
// must have been generated from the engine's schema.
func NewSystem(eng *engine.Engine, lat *lattice.Lattice) (*System, error) {
	if eng.Database().Schema() != lat.Schema() {
		return nil, fmt.Errorf("core: lattice was generated from a different schema")
	}
	return &System{
		eng: eng, lat: lat, db: sqldriver.OpenDB(eng),
		prepared: engine.NewPreparedCache(engine.DefaultPlanCacheSize, "prepared"),
		bits:     bitprobe.New(eng),
	}, nil
}

// Build performs Phase 0 for an engine: generate the lattice and construct
// the system.
func Build(eng *engine.Engine, opts lattice.Options) (*System, error) {
	lat, err := lattice.GenerateOpts(eng.Database().Schema(), opts)
	if err != nil {
		return nil, err
	}
	return NewSystem(eng, lat)
}

// Lattice returns the offline lattice.
func (sys *System) Lattice() *lattice.Lattice { return sys.lat }

// Engine returns the underlying execution engine.
func (sys *System) Engine() *engine.Engine { return sys.eng }

// DB returns the database/sql handle the debugger issues its probes through.
func (sys *System) DB() *sql.DB { return sys.db }

// SetProbeCache installs (or, with nil, removes) a cross-request aliveness
// cache. Verdicts learned by one Debug call then answer identical probes in
// later calls — different strategies, different keyword queries binding the
// same sub-queries, repeated requests — without executing SQL. The cache's
// generation is synced to the engine's DataVersion before each run, so
// verdicts never survive a data change. Probe *counts* (Stats.SQLExecuted)
// are unaffected: a cache hit is a probe the strategy spent, just one the
// database did not have to answer; the savings show up in Stats.CacheHits.
func (sys *System) SetProbeCache(c *probecache.Cache) { sys.cache.Store(c) }

// ProbeCache returns the installed cross-request cache, or nil.
func (sys *System) ProbeCache() *probecache.Cache { return sys.cache.Load() }

// PreparedCache returns the cross-request probe-handle cache, for health
// stats and benchmarks.
func (sys *System) PreparedCache() *engine.PreparedCache { return sys.prepared }

// SetPlanCacheSize rebounds both plan caches — the System's probe-handle
// cache and the engine's text-path cache — to max entries each; 0 disables
// them, negative means unbounded.
func (sys *System) SetPlanCacheSize(max int) {
	sys.prepared.Resize(max)
	sys.eng.PlanCache().Resize(max)
}

// PurgePlanCaches empties both plan caches without changing their bounds;
// benchmarks use it to measure cold-path compile costs.
func (sys *System) PurgePlanCaches() {
	sys.prepared.Purge()
	sys.eng.PlanCache().Purge()
}

// PurgeBitsetCaches drops the bitset engine's compiled plans, verdict memos,
// and candidate bitmaps; benchmarks use it to measure the cold bitset path.
func (sys *System) PurgeBitsetCaches() { sys.bits.Purge() }

// Stats aggregates the measurements of one debugging run — every quantity
// §3 of the paper reports.
type Stats struct {
	// Phase 1.
	MapTime      time.Duration // keyword -> relation binding via the inverted index
	PruneTime    time.Duration // lattice pruning
	LatticeNodes int           // nodes in the offline lattice
	PrunedNodes  int           // nodes surviving keyword pruning

	// Phase 2.
	MTNTime    time.Duration
	MTNs       int
	SubNodes   int         // nodes in the MTNs' descendant closure
	DescTotal  int         // descendants of MTNs, with multiplicity
	DescUnique int         // unique descendants
	MTNLevels  map[int]int // MTN count per lattice level
	MPANLevels map[int]int // MPAN count per lattice level (after Phase 3)

	// Phase 3.
	Strategy     Strategy
	SQLExecuted  int
	SQLTime      time.Duration
	TraverseTime time.Duration
	Inferred     int // nodes classified without executing SQL
	// CacheHits is how many of SQLExecuted were answered by the
	// cross-request probe cache instead of the database. Unlike the counts
	// above it depends on execution state (what earlier requests warmed),
	// not just the query.
	CacheHits int

	// Prepared-pipeline accounting. Like CacheHits these depend on
	// execution state — what earlier requests compiled and what this run's
	// probes shared — never on the query, so they are excluded from the
	// report JSON and from output-identity comparisons. All three are zero
	// on the text path.
	PlanCompiles  int // probe handles compiled this run (handle-cache misses)
	CandSetHits   int // candidate-set lookups shared from the run's cache
	CandSetMisses int // candidate-set lookups computed from the index

	// Verdict-repair accounting, execution-dependent like the block above:
	// Suspects is how many probes found their cached dead verdict
	// downgraded by an intervening write, Repaired how many fresh
	// verdicts this run stored back for them.
	Suspects int
	Repaired int

	// Bitset-path accounting, execution-dependent like the blocks above:
	// BitsetHits counts probes answered by bitmap semi-joins without SQL,
	// BitsetFallbacks probes the bitset engine declined to the prepared
	// path. Both are zero unless Options.BitsetProbes was set.
	BitsetHits      int
	BitsetFallbacks int
}

// SQLIssued is the number of probes that actually reached the database:
// SQLExecuted minus the cache hits.
func (s Stats) SQLIssued() int { return s.SQLExecuted - s.CacheHits }

// ReusePercent is Figure 13's metric: 100 * (1 - unique/total) over MTN
// descendants; zero when MTNs have no descendants.
func (s Stats) ReusePercent() float64 {
	if s.DescTotal == 0 {
		return 0
	}
	return 100 * (1 - float64(s.DescUnique)/float64(s.DescTotal))
}

// QueryInfo describes one lattice node as a user-facing query.
type QueryInfo struct {
	NodeID int
	Level  int
	// Tree is the human-readable join tree, e.g. "Person#1-writes#0-Publication#2".
	Tree string
	// SQL is the instantiated query that returns the node's tuples.
	SQL string
}

// NonAnswer is a dead MTN together with its explanation.
type NonAnswer struct {
	Query QueryInfo
	// MPANs are the maximal alive sub-queries: the frontier causes of the
	// non-answer.
	MPANs []QueryInfo
	// Incomplete marks an explanation cut short by deadline or probe-budget
	// exhaustion: every MPAN listed is guaranteed (it is an MPAN of the
	// unbudgeted run too), but more may exist.
	Incomplete bool
}

// Output is the full result of debugging one keyword query: the paper's
// O(K) = A(K) u N(K) u M(K), plus measurements.
type Output struct {
	Keywords []string
	// NonKeywords lists keywords that occur nowhere in the database; when
	// non-empty the system reports them and stops (§2.3).
	NonKeywords []string
	Answers     []QueryInfo
	NonAnswers  []NonAnswer
	Stats       Stats

	// Incomplete reports that the run exhausted its Options.Deadline or
	// ProbeBudget before classifying everything. Everything present is still
	// valid — answers and non-answers are true classifications and every
	// listed MPAN is an MPAN of the unbudgeted run — but Unclassified MTNs
	// and per-NonAnswer Incomplete flags mark what the frontier left open.
	// IncompleteReason is ReasonProbeBudget or ReasonDeadline.
	Incomplete       bool
	IncompleteReason string
	// Unclassified lists the candidate networks the exhausted run never
	// settled: each could be an answer or a non-answer.
	Unclassified []QueryInfo
}

// Options tunes a Debug run.
type Options struct {
	Strategy Strategy
	// Pa is the aliveness prior of the score-based heuristic; the paper's
	// default 0.5 is used when zero.
	Pa float64
	// Workers bounds the probe scheduler's concurrency: <= 1 (the default)
	// probes serially, exactly as before; larger values probe independent
	// lattice nodes — same-level batch members, or whole per-MTN runs for
	// BU/TD — from that many goroutines. Any worker count produces the same
	// Output and the same SQLExecuted as the serial run; SBH ignores the
	// setting because its probe order is inherently sequential. Values above
	// 64 are clamped.
	Workers int
	// BypassCache disables the System's cross-request probe cache for this
	// run: no lookups, no stores. Useful for measuring true probe costs and
	// for forcing fresh verdicts.
	BypassCache bool
	// TextProbes forces Phase 3 probes through the rendered-SQL +
	// database/sql text path instead of compiled engine handles. The two
	// paths produce byte-identical Output and probe counts (property-tested
	// at several worker counts); the text path exists as the reference
	// implementation, for benchmark comparison, and for backends reachable
	// only through a database/sql driver.
	TextProbes bool
	// BitsetProbes routes Phase 3 probes through the bitset engine: bitmap
	// semi-joins over inverted-index candidate sets, falling back to the
	// prepared path per probe for shapes the engine cannot cover. Output is
	// byte-identical to the prepared path (property-tested at several
	// worker counts). Mutually exclusive with TextProbes.
	BitsetProbes bool
	// Deadline bounds the wall time Phase 3 may spend probing; zero means
	// unlimited. Unlike cancelling the DebugContext context — which aborts
	// the run with an error — an expired Deadline degrades gracefully: the
	// run stops probing, keeps every verdict already committed, and returns
	// a partial Output flagged Incomplete.
	Deadline time.Duration
	// ProbeBudget caps the number of probes the run may spend, counted
	// exactly like Stats.SQLExecuted (cache hits included); <= 0 means
	// unlimited. A budget of at least the serial run's probe count never
	// trips for any worker count; a smaller one yields a partial, Incomplete
	// Output whose reported MPANs are a subset of the unbudgeted run's.
	ProbeBudget int
	// Filter, when non-nil, restricts the candidate networks considered:
	// MTNs for which it returns false are dropped after Phase 2, before any
	// probing. This is the paper's §5 future-work hook ("pushing
	// user-defined constraints into the search procedure might greatly
	// prune the search space") — e.g. exclude interpretations through a
	// noisy relation, or cap the number of free tuple sets.
	Filter func(n *lattice.Node) bool
}

// Debug runs phases 1-3 for a keyword query and explains every non-answer.
func (sys *System) Debug(keywords []string, opts Options) (*Output, error) {
	return sys.debugWith(context.Background(), keywords, opts, nil)
}

// DebugContext is Debug with cancellation: the context is checked before
// every SQL probe, so a level-7 Return-Everything run can be abandoned
// mid-traversal.
func (sys *System) DebugContext(ctx context.Context, keywords []string, opts Options) (*Output, error) {
	return sys.debugWith(ctx, keywords, opts, nil)
}

// debugWith is the shared pipeline behind Debug and Session.Run; sess, when
// non-nil, layers the session's pins and memo over both the SQL oracle and
// the base-level classification rule. It reports into the obs layer: one
// span per phase when the context carries a trace, and the probe/inference
// counters always.
func (sys *System) debugWith(ctx context.Context, keywords []string, opts Options, sess *Session) (out *Output, err error) {
	defer func() {
		status := "ok"
		switch {
		case err != nil:
			status = "error"
		case out != nil && out.Incomplete:
			status = "incomplete"
		}
		mDebugTotal.With(opts.Strategy.String(), status).Inc()
	}()
	if opts.Pa == 0 {
		opts.Pa = 0.5
	}
	if opts.Pa < 0 || opts.Pa >= 1 {
		return nil, fmt.Errorf("core: pa must be in [0, 1), got %v", opts.Pa)
	}
	if opts.TextProbes && opts.BitsetProbes {
		return nil, fmt.Errorf("core: TextProbes and BitsetProbes are mutually exclusive")
	}
	_, sp12 := obs.StartSpan(ctx, "phase12")
	ph, err := sys.phase12(keywords)
	if err != nil {
		sp12.End()
		return nil, err
	}
	out = &Output{Keywords: keywords, NonKeywords: ph.nonKeywords, Stats: ph.stats}
	out.Stats.Strategy = opts.Strategy
	mtnIDs := ph.mtnIDs
	if opts.Filter != nil {
		kept := mtnIDs[:0:0]
		for _, id := range mtnIDs {
			if opts.Filter(sys.lat.Node(id)) {
				kept = append(kept, id)
			}
		}
		mtnIDs = kept
		out.Stats.MTNs = len(mtnIDs)
	}
	sp12.SetAttr("lattice_nodes", ph.stats.LatticeNodes)
	sp12.SetAttr("pruned_nodes", ph.stats.PrunedNodes)
	sp12.SetAttr("mtns", out.Stats.MTNs)
	sp12.SetAttr("map_ms", durMillis(ph.stats.MapTime))
	sp12.SetAttr("prune_ms", durMillis(ph.stats.PruneTime))
	sp12.SetAttr("mtn_ms", durMillis(ph.stats.MTNTime))
	if len(ph.nonKeywords) > 0 {
		sp12.SetAttr("non_keywords", ph.nonKeywords)
	}
	sp12.End()
	mMTNs.Observe(float64(out.Stats.MTNs))
	if len(ph.nonKeywords) > 0 || len(mtnIDs) == 0 {
		return out, nil
	}

	sub := buildSublattice(sys.lat, mtnIDs)
	out.Stats.SubNodes = sub.len()
	out.Stats.DescTotal, out.Stats.DescUnique = sub.descendantStats()
	mReusePercent.Set(out.Stats.ReusePercent())

	// The governor meters Phase 3: probes run under probeCtx (the caller's
	// context plus the optional Deadline) so an expired deadline interrupts
	// even an in-flight SQL probe, while the caller's own cancellation stays
	// a hard error.
	probeCtx, cancelProbes := ctx, func() {}
	if opts.Deadline > 0 {
		probeCtx, cancelProbes = context.WithTimeout(ctx, opts.Deadline)
	}
	defer cancelProbes()
	gov := newGovernor(ctx, probeCtx, opts.ProbeBudget)

	// The flight log is resolved from the context exactly once per run and
	// handed to every hot-path participant as a field; probes never walk the
	// context chain, so an unrecorded run pays one nil check per emission
	// point and nothing else.
	fl := flight.FromContext(ctx)
	gov.fl = fl

	// The probe oracle: compiled engine handles by default, rendered SQL
	// through database/sql when the caller asks for the text path. Both
	// share the verdict cache and produce identical Output.
	var base Oracle
	var prepOr *preparedOracle
	switch {
	case opts.TextProbes:
		sqlOr := newSQLOracle(probeCtx, sys.lat, sys.db, keywords)
		if cache := sys.ProbeCache(); cache != nil && !opts.BypassCache {
			// Sync the cache's version view before the first probe could
			// read a verdict: writes that landed since the last run turn
			// intersecting dead verdicts into suspects (re-probed below)
			// while disjoint and alive verdicts keep serving hits. The
			// returned view is this run's stamp for stored verdicts.
			sqlOr.view = cache.SyncVersions(sys.eng.Versions())
			sqlOr.cache = cache
		}
		sqlOr.fl = fl
		base = sqlOr
	case opts.BitsetProbes:
		bitOr := newBitsetOracle(probeCtx, sys.lat, sys.eng, sys.prepared, keywords, sys.bits)
		if cache := sys.ProbeCache(); cache != nil && !opts.BypassCache {
			bitOr.view = cache.SyncVersions(sys.eng.Versions())
			bitOr.cache = cache
		}
		bitOr.setFlight(fl)
		// The embedded prepared oracle serves fallbacks, so its candidate
		// cache and compile stats flow into the run's accounting as usual.
		prepOr = bitOr.preparedOracle
		base = bitOr
	default:
		prepOr = newPreparedOracle(probeCtx, sys.lat, sys.eng, sys.prepared, keywords)
		if cache := sys.ProbeCache(); cache != nil && !opts.BypassCache {
			prepOr.view = cache.SyncVersions(sys.eng.Versions())
			prepOr.cache = cache
		}
		prepOr.setFlight(fl)
		base = prepOr
	}
	oracle := base
	sd := seed{baseAlive: sys.baseAliveFunc()}
	if sess != nil {
		oracle = &sessionOracle{inner: base, s: sess}
		sd.pins = sess.pinned
	}
	workers := ClampWorkers(opts.Workers)
	_, sp3 := obs.StartSpan(ctx, "phase3")
	start := clock.Now()
	res, inferred, err := sys.traverse(ctx, sub, oracle, sd, opts, workers, gov, fl)
	if err == nil {
		// A caller cancellation that lands after the last commit must not
		// let the run masquerade as completed: check before any stats or
		// counters are recorded.
		err = ctx.Err()
	}
	if err != nil {
		sp3.End()
		return nil, err
	}
	if reason, tripped := gov.exhausted(); tripped {
		out.Incomplete = true
		out.IncompleteReason = reason
	}
	out.Stats.TraverseTime = clock.Since(start)
	ost := base.Stats()
	out.Stats.SQLExecuted = ost.Executed
	out.Stats.SQLTime = ost.SQLTime
	out.Stats.Inferred = inferred
	out.Stats.CacheHits = ost.CacheHits
	out.Stats.PlanCompiles = ost.Compiled
	out.Stats.Suspects = ost.Suspects
	out.Stats.Repaired = ost.Repaired
	out.Stats.BitsetHits = ost.BitsetHits
	out.Stats.BitsetFallbacks = ost.BitsetFallbacks
	if prepOr != nil {
		ch, cm := prepOr.candStats()
		out.Stats.CandSetHits, out.Stats.CandSetMisses = int(ch), int(cm)
	}
	strat := opts.Strategy.String()
	mPhaseSeconds.With("traverse").Observe(out.Stats.TraverseTime.Seconds())
	mProbes.With(strat).Add(float64(out.Stats.SQLExecuted))
	mInferred.With(strat).Add(float64(out.Stats.Inferred))
	sp3.SetAttr("strategy", strat)
	sp3.SetAttr("workers", workers)
	sp3.SetAttr("probes", out.Stats.SQLExecuted)
	sp3.SetAttr("cache_hits", out.Stats.CacheHits)
	sp3.SetAttr("inferred", out.Stats.Inferred)
	sp3.SetAttr("sql_ms", durMillis(out.Stats.SQLTime))
	sp3.SetAttr("sub_nodes", out.Stats.SubNodes)
	sp3.SetAttr("reuse_percent", out.Stats.ReusePercent())
	sp3.End()

	out.Stats.MPANLevels = make(map[int]int)
	for _, m := range res.aliveMTNs {
		out.Answers = append(out.Answers, sys.queryInfo(sub.nodeID[m], keywords))
	}
	for _, m := range res.deadMTNs {
		na := NonAnswer{Query: sys.queryInfo(sub.nodeID[m], keywords), Incomplete: res.partial[m]}
		for _, p := range res.mpans[m] {
			na.MPANs = append(na.MPANs, sys.queryInfo(sub.nodeID[p], keywords))
			out.Stats.MPANLevels[sub.level[p]]++
		}
		// Present the most specific explanations first: an MPAN covering
		// more of the query (higher level) is usually the actionable one.
		sort.SliceStable(na.MPANs, func(i, j int) bool {
			if na.MPANs[i].Level != na.MPANs[j].Level {
				return na.MPANs[i].Level > na.MPANs[j].Level
			}
			return na.MPANs[i].Tree < na.MPANs[j].Tree
		})
		out.NonAnswers = append(out.NonAnswers, na)
	}
	sort.Ints(res.unresolved)
	for _, m := range res.unresolved {
		out.Unclassified = append(out.Unclassified, sys.queryInfo(sub.nodeID[m], keywords))
	}
	return out, nil
}

// Analyze runs phases 1 and 2 only — keyword binding, pruning, MTN
// discovery, and the descendant-overlap statistics — without probing any
// node. The experiment harness uses it for the measurements of Figure 10 and
// Figure 13, which are traversal-independent.
func (sys *System) Analyze(keywords []string) (Stats, error) {
	ph, err := sys.phase12(keywords)
	if err != nil {
		return Stats{}, err
	}
	stats := ph.stats
	if len(ph.nonKeywords) > 0 || len(ph.mtnIDs) == 0 {
		return stats, nil
	}
	sub := buildSublattice(sys.lat, ph.mtnIDs)
	stats.SubNodes = sub.len()
	stats.DescTotal, stats.DescUnique = sub.descendantStats()
	return stats, nil
}

// queryInfo renders a node for user consumption.
func (sys *System) queryInfo(nodeID int, keywords []string) QueryInfo {
	n := sys.lat.Node(nodeID)
	sqlText, err := sys.lat.SQL(n, keywords, false)
	if err != nil {
		// Unreachable for nodes that survived Phase 1; keep the tree view.
		sqlText = "-- " + err.Error()
	}
	return QueryInfo{NodeID: nodeID, Level: n.Level, Tree: n.String(), SQL: sqlText}
}

// phase12 holds the outcome of phases 1 and 2 for one keyword query.
type phase12Result struct {
	keywords    []string
	nonKeywords []string
	// bindings[j] is the set of relations containing keyword j+1.
	bindings []map[string]bool
	// surviving lattice node IDs (Phase 1) and the MTNs among them (Phase 2).
	surviving []int
	mtnIDs    []int
	stats     Stats
}

// phase12 binds keywords to relations, prunes the lattice, and finds MTNs.
func (sys *System) phase12(keywords []string) (*phase12Result, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("core: empty keyword query")
	}
	if len(keywords) > sys.lat.KeywordSlots() {
		return nil, fmt.Errorf("core: query has %d keywords; lattice supports %d",
			len(keywords), sys.lat.KeywordSlots())
	}
	ph := &phase12Result{keywords: keywords}
	ph.stats.LatticeNodes = sys.lat.Len()

	// Phase 1a: keyword -> relation binding via the inverted index.
	start := clock.Now()
	ix := sys.eng.Index()
	for _, kw := range keywords {
		tables := ix.Tables(kw)
		if len(tables) == 0 {
			ph.nonKeywords = append(ph.nonKeywords, kw)
			continue
		}
		set := make(map[string]bool, len(tables))
		for _, t := range tables {
			set[t] = true
		}
		ph.bindings = append(ph.bindings, set)
	}
	ph.stats.MapTime = clock.Since(start)
	mPhaseSeconds.With("map").Observe(ph.stats.MapTime.Seconds())
	if len(ph.nonKeywords) > 0 {
		// "And" semantics: a keyword absent from the data means the whole
		// query has no answers; report the missing keywords and stop.
		return ph, nil
	}

	// Phase 1b: prune nodes with unbindable keyword copies.
	start = clock.Now()
	n := len(keywords)
	for id := 0; id < sys.lat.Len(); id++ {
		node := sys.lat.Node(id)
		ok := true
		for _, v := range node.Vertices {
			if v.Copy == 0 {
				continue
			}
			if v.Copy > n || !ph.bindings[v.Copy-1][v.Rel] {
				ok = false
				break
			}
		}
		if ok {
			ph.surviving = append(ph.surviving, id)
		}
	}
	ph.stats.PruneTime = clock.Since(start)
	ph.stats.PrunedNodes = len(ph.surviving)
	mPhaseSeconds.With("prune").Observe(ph.stats.PruneTime.Seconds())

	// Phase 2: minimal total nodes. A surviving node is total when every
	// keyword index occurs among its copies; it is minimal when no
	// leaf-removed child is total. (Children of survivors always survive:
	// pruning is downward closed.)
	start = clock.Now()
	ph.stats.MTNLevels = make(map[int]int)
	for _, id := range ph.surviving {
		node := sys.lat.Node(id)
		if !node.IsTotal(n) {
			continue
		}
		minimal := true
		for _, c := range node.Children {
			if sys.lat.Node(c).IsTotal(n) {
				minimal = false
				break
			}
		}
		if minimal {
			ph.mtnIDs = append(ph.mtnIDs, id)
			ph.stats.MTNLevels[node.Level]++
		}
	}
	ph.stats.MTNTime = clock.Since(start)
	ph.stats.MTNs = len(ph.mtnIDs)
	mPhaseSeconds.With("mtn").Observe(ph.stats.MTNTime.Seconds())
	sort.Ints(ph.mtnIDs)
	return ph, nil
}

// baseAliveFunc returns the level-1 aliveness rule: keyword-bound base nodes
// are alive by construction (Phase 1 verified the keyword occurs in the
// relation via the inverted index), and free base nodes are alive iff their
// table is non-empty. No SQL is executed for base nodes, matching
// Algorithm 3, which skips execSQL for the nodes in B.
func (sys *System) baseAliveFunc() func(nodeID int) bool {
	return func(nodeID int) bool {
		node := sys.lat.Node(nodeID)
		v := node.Vertices[0]
		if v.Copy != 0 {
			return true
		}
		tbl, ok := sys.eng.Database().Table(v.Rel)
		return ok && tbl.RowCount() > 0
	}
}

// Results executes a node's full (non-existence) query and returns its
// tuples, for presenting answer queries and MPAN contents to the developer.
func (sys *System) Results(nodeID int, keywords []string, limit int) ([]string, [][]storage.Value, error) {
	n := sys.lat.Node(nodeID)
	sel, err := sys.lat.Select(n, keywords, false)
	if err != nil {
		return nil, nil, err
	}
	sel.Limit = limit
	res, err := sys.eng.Select(sel)
	if err != nil {
		return nil, nil, err
	}
	return res.Columns, res.Rows, nil
}

// Bindings exposes Phase 1's keyword->relations mapping for tools.
func (sys *System) Bindings(keywords []string) (map[string][]string, error) {
	ix := sys.eng.Index()
	out := make(map[string][]string, len(keywords))
	for _, kw := range keywords {
		out[kw] = ix.Tables(kw)
	}
	return out, nil
}
