package core

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
)

// productSystem builds the Figure 2 debugger with a 2-join lattice, enough
// for the paper's Example 1.
func productSystem(t *testing.T) *System {
	t.Helper()
	eng, err := figure2.Engine()
	if err != nil {
		t.Fatalf("figure2.Engine: %v", err)
	}
	sys, err := Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sys
}

// trees extracts the sorted tree renderings of a query list.
func trees(qs []QueryInfo) []string {
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.Tree
	}
	sort.Strings(out)
	return out
}

// TestExample1 reproduces the paper's running example end to end: the query
// "saffron scented candle" has exactly the two candidate networks q1 and q2,
// both dead, with exactly the MPANs the paper says the system displays.
func TestExample1(t *testing.T) {
	sys := productSystem(t)
	for _, strat := range append(append([]Strategy{}, Strategies...), RE) {
		t.Run(strat.String(), func(t *testing.T) {
			out, err := sys.Debug([]string{"saffron", "scented", "candle"}, Options{Strategy: strat})
			if err != nil {
				t.Fatalf("Debug: %v", err)
			}
			if len(out.NonKeywords) != 0 {
				t.Fatalf("NonKeywords = %v", out.NonKeywords)
			}
			// Besides the paper's q1 and q2, the system discovers the other
			// candidate networks of this keyword query: items matching
			// "saffron" and items matching "scented" can also connect
			// through a shared product type, color, or attribute with items
			// matching "candle". Exactly one of those is alive.
			if got := trees(out.Answers); !reflect.DeepEqual(got, []string{"Item#1-Item#2-PType#3"}) {
				t.Fatalf("Answers = %v", got)
			}
			if got := len(out.NonAnswers); got != 4 {
				t.Fatalf("NonAnswers = %d (%v)", got, out.NonAnswers)
			}
			byTree := map[string][]string{}
			for _, na := range out.NonAnswers {
				byTree[na.Query.Tree] = trees(na.MPANs)
			}
			// q1: find scented candles whose color is saffron. The paper
			// says its MPANs are "P_candle JOIN I_scented" and "C_saffron".
			q1 := "Color#1-Item#2-PType#3"
			if got, want := byTree[q1], []string{"Color#1", "Item#2-PType#3"}; !reflect.DeepEqual(got, want) {
				t.Errorf("MPANs(q1) = %v, want %v (have %v)", got, want, byTree)
			}
			// q2: find scented candles whose scent is saffron; MPANs are
			// "P_candle JOIN I_scented" and "I_scented JOIN A_saffron".
			q2 := "Attr#1-Item#2-PType#3"
			if got, want := byTree[q2], []string{"Attr#1-Item#2", "Item#2-PType#3"}; !reflect.DeepEqual(got, want) {
				t.Errorf("MPANs(q2) = %v, want %v", got, want)
			}
			// The color-shared and attribute-shared interpretations die too.
			q3 := "Color#1-Item#2-Item#3"
			if got, want := byTree[q3], []string{"Color#1", "Item#2", "Item#3"}; !reflect.DeepEqual(got, want) {
				t.Errorf("MPANs(q3) = %v, want %v", got, want)
			}
			q4 := "Attr#1-Item#2-Item#3"
			if got, want := byTree[q4], []string{"Attr#1-Item#2", "Item#3"}; !reflect.DeepEqual(got, want) {
				t.Errorf("MPANs(q4) = %v, want %v", got, want)
			}
			if out.Stats.MTNs != 5 {
				t.Errorf("MTNs = %d, want 5", out.Stats.MTNs)
			}
			if out.Stats.SQLExecuted == 0 && strat != BU {
				t.Errorf("no SQL executed")
			}
		})
	}
}

// TestExample1AfterSynonymFix applies the paper's motivating repair — add
// "saffron" as a synonym of yellow — and checks that q1 comes alive.
func TestExample1AfterSynonymFix(t *testing.T) {
	sys := productSystem(t)
	if _, err := sys.Engine().Exec(
		"INSERT INTO Color VALUES (5, 'sunset yellow', 'saffron, gold')"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	// Make the vanilla scented candle sunset-yellow so the join succeeds.
	if _, err := sys.Engine().Exec(
		"INSERT INTO Item VALUES (5, 'marigold scented candle', 2, 5, 2, 6.49, 'hand-poured.')"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	out, err := sys.Debug([]string{"saffron", "scented", "candle"}, Options{Strategy: SBH})
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	var answers []string
	for _, a := range out.Answers {
		answers = append(answers, a.Tree)
	}
	found := false
	for _, a := range answers {
		if a == "Color#1-Item#2-PType#3" {
			found = true
		}
	}
	if !found {
		t.Errorf("q1 still dead after synonym fix; answers = %v, non-answers = %d",
			answers, len(out.NonAnswers))
	}
}

func TestTwoKeywordQuery(t *testing.T) {
	sys := productSystem(t)
	out, err := sys.Debug([]string{"red", "candle"}, Options{Strategy: TDWR})
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	// red binds to Color and Item; candle binds to PType and Item. The MTNs
	// include the paper's C_red JOIN I_0 JOIN P_candle at level 3 and the
	// direct level-2 interpretations.
	at := trees(out.Answers)
	wantAlive := []string{
		"Color#1-Item#0-PType#2", // red color, any item, candle type: items 3, 4
		"Color#1-Item#2",         // red-colored items whose text has candle
		"Item#1-PType#2",         // items with red in text that are candles
	}
	for _, w := range wantAlive {
		found := false
		for _, a := range at {
			if a == w {
				found = true
			}
		}
		if !found {
			t.Errorf("expected answer %s missing; answers = %v", w, at)
		}
	}
	if len(out.NonAnswers) == 0 {
		t.Log("no dead MTNs for red candle (acceptable: all interpretations alive)")
	}
}

func TestSingleKeyword(t *testing.T) {
	sys := productSystem(t)
	out, err := sys.Debug([]string{"saffron"}, Options{Strategy: BUWR})
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	// saffron occurs in Color, Attr, and Item: three level-1 MTNs, all alive.
	if got := trees(out.Answers); !reflect.DeepEqual(got, []string{"Attr#1", "Color#1", "Item#1"}) {
		t.Errorf("answers = %v", got)
	}
	if len(out.NonAnswers) != 0 {
		t.Errorf("non-answers = %v", out.NonAnswers)
	}
	if out.Stats.SQLExecuted != 0 {
		t.Errorf("single-keyword run executed %d SQL queries; base nodes need none", out.Stats.SQLExecuted)
	}
}

func TestNonKeyword(t *testing.T) {
	sys := productSystem(t)
	out, err := sys.Debug([]string{"zzz", "candle"}, Options{Strategy: SBH})
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	if !reflect.DeepEqual(out.NonKeywords, []string{"zzz"}) {
		t.Errorf("NonKeywords = %v", out.NonKeywords)
	}
	if len(out.Answers) != 0 || len(out.NonAnswers) != 0 {
		t.Error("results produced despite missing keyword")
	}
}

func TestDebugErrors(t *testing.T) {
	sys := productSystem(t)
	if _, err := sys.Debug(nil, Options{}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := sys.Debug([]string{"a", "b", "c", "d"}, Options{}); err == nil {
		t.Error("4 keywords accepted with 3 slots")
	}
	if _, err := sys.Debug([]string{"candle"}, Options{Pa: 1.5}); err == nil {
		t.Error("pa=1.5 accepted")
	}
	if _, err := sys.Debug([]string{"candle"}, Options{Strategy: Strategy(42)}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{BU: "BU", TD: "TD", BUWR: "BUWR", TDWR: "TDWR", SBH: "SBH"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if !strings.Contains(Strategy(9).String(), "9") {
		t.Errorf("unknown strategy = %q", Strategy(9).String())
	}
}

// canonical reduces an Output to a comparable structure.
func canonical(out *Output) map[string][]string {
	m := map[string][]string{}
	for _, a := range out.Answers {
		m["alive:"+a.Tree] = nil
	}
	for _, na := range out.NonAnswers {
		m["dead:"+na.Query.Tree] = trees(na.MPANs)
	}
	return m
}

// TestStrategyEquivalence is the paper's implicit correctness claim: all
// five traversal strategies and the Return Everything baseline compute the
// same answers, non-answers, and MPAN sets; they differ only in SQL effort.
func TestStrategyEquivalence(t *testing.T) {
	sys := productSystem(t)
	queries := [][]string{
		{"saffron", "scented", "candle"},
		{"red", "candle"},
		{"scented", "candle"},
		{"saffron", "candle"},
		{"saffron", "scented"},
		{"vanilla", "oil"},
		{"pink", "incense"},
		{"checkered", "scent"},
		{"crimson"},
		{"orange", "burns"},
		{"floral", "pattern", "oil"},
		{"2pck", "candle"},
		{"yellow", "scented", "oil"},
	}
	for _, kws := range queries {
		t.Run(strings.Join(kws, "_"), func(t *testing.T) {
			ref, err := sys.Debug(kws, Options{Strategy: RE})
			if err != nil {
				t.Fatalf("RE: %v", err)
			}
			want := canonical(ref)
			counts := map[Strategy]int{RE: ref.Stats.SQLExecuted}
			for _, strat := range Strategies {
				out, err := sys.Debug(kws, Options{Strategy: strat})
				if err != nil {
					t.Fatalf("%v: %v", strat, err)
				}
				if got := canonical(out); !reflect.DeepEqual(got, want) {
					t.Errorf("%v diverges:\ngot:  %v\nwant: %v", strat, got, want)
				}
				counts[strat] = out.Stats.SQLExecuted
			}
			// Reuse never increases effort, and no strategy probes a node
			// twice that RE probes once — except the no-reuse pair, which
			// re-probe shared descendants.
			if counts[BUWR] > counts[BU] {
				t.Errorf("BUWR executed %d > BU %d", counts[BUWR], counts[BU])
			}
			if counts[TDWR] > counts[TD] {
				t.Errorf("TDWR executed %d > TD %d", counts[TDWR], counts[TD])
			}
			for _, s := range []Strategy{BUWR, TDWR, SBH} {
				if counts[s] > counts[RE] {
					t.Errorf("%v executed %d > RE %d", s, counts[s], counts[RE])
				}
			}
		})
	}
}

// TestMPANSemantics checks Phase 3 against a from-scratch reference: probe
// every node directly, then compute maximal alive descendants set-wise.
func TestMPANSemantics(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"saffron", "scented", "candle"}
	out, err := sys.Debug(kws, Options{Strategy: SBH})
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	lat := sys.Lattice()
	// Reference aliveness: run every node's existence query directly.
	aliveMemo := map[int]bool{}
	var isAlive func(id int) bool
	isAlive = func(id int) bool {
		if v, ok := aliveMemo[id]; ok {
			return v
		}
		sel, err := lat.Select(lat.Node(id), kws, true)
		if err != nil {
			t.Fatalf("Select: %v", err)
		}
		res, err := sys.Engine().Select(sel)
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		aliveMemo[id] = len(res.Rows) > 0
		return aliveMemo[id]
	}
	var descOf func(id int, acc map[int]bool)
	descOf = func(id int, acc map[int]bool) {
		for _, c := range lat.Node(id).Children {
			if !acc[c] {
				acc[c] = true
				descOf(c, acc)
			}
		}
	}
	for _, na := range out.NonAnswers {
		m := na.Query.NodeID
		if isAlive(m) {
			t.Errorf("reported non-answer %s is alive", na.Query.Tree)
		}
		desc := map[int]bool{}
		descOf(m, desc)
		var wantMPANs []string
		for d := range desc {
			if !isAlive(d) {
				continue
			}
			// Maximal: no alive strict ancestor within desc.
			maximal := true
			anc := map[int]bool{}
			for e := range desc {
				da := map[int]bool{}
				descOf(e, da)
				if da[d] {
					anc[e] = true
				}
			}
			for a := range anc {
				if isAlive(a) {
					maximal = false
				}
			}
			if maximal {
				wantMPANs = append(wantMPANs, lat.Node(d).String())
			}
		}
		sort.Strings(wantMPANs)
		if got := trees(na.MPANs); !reflect.DeepEqual(got, wantMPANs) {
			t.Errorf("MPANs(%s) = %v, want %v", na.Query.Tree, got, wantMPANs)
		}
	}
	for _, a := range out.Answers {
		if !isAlive(a.NodeID) {
			t.Errorf("reported answer %s is dead", a.Tree)
		}
	}
}

func TestReturnNothingBaseline(t *testing.T) {
	sys := productSystem(t)
	stats, err := sys.ReturnNothing([]string{"saffron", "scented", "candle"})
	if err != nil {
		t.Fatalf("ReturnNothing: %v", err)
	}
	if stats.KeywordQueries != 7 {
		t.Errorf("KeywordQueries = %d, want 7", stats.KeywordQueries)
	}
	if stats.SQLExecuted == 0 {
		t.Error("RN executed no SQL")
	}
	if _, err := sys.ReturnNothing(nil); err == nil {
		t.Error("empty RN accepted")
	}
	if _, err := sys.ReturnNothing(make([]string, 25)); err == nil {
		t.Error("25-keyword RN accepted")
	}
	// A query with a missing keyword still submits the sub-queries that
	// omit it.
	stats, err = sys.ReturnNothing([]string{"zzz", "candle"})
	if err != nil {
		t.Fatalf("ReturnNothing: %v", err)
	}
	if stats.KeywordQueries != 3 {
		t.Errorf("KeywordQueries = %d, want 3", stats.KeywordQueries)
	}
}

func TestResultsFetch(t *testing.T) {
	sys := productSystem(t)
	out, err := sys.Debug([]string{"scented", "candle"}, Options{Strategy: SBH})
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	if len(out.Answers) == 0 {
		t.Fatal("no answers")
	}
	cols, rows, err := sys.Results(out.Answers[0].NodeID, out.Keywords, 10)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if len(cols) == 0 || len(rows) == 0 {
		t.Errorf("cols=%v rows=%d", cols, len(rows))
	}
}

func TestBindings(t *testing.T) {
	sys := productSystem(t)
	b, err := sys.Bindings([]string{"saffron", "zzz"})
	if err != nil {
		t.Fatalf("Bindings: %v", err)
	}
	if got := b["saffron"]; !reflect.DeepEqual(got, []string{"Attr", "Color", "Item"}) {
		t.Errorf("saffron -> %v", got)
	}
	if len(b["zzz"]) != 0 {
		t.Errorf("zzz -> %v", b["zzz"])
	}
}

func TestStatsReusePercent(t *testing.T) {
	s := Stats{DescTotal: 100, DescUnique: 40}
	if got := s.ReusePercent(); got != 60 {
		t.Errorf("ReusePercent = %v", got)
	}
	if got := (Stats{}).ReusePercent(); got != 0 {
		t.Errorf("empty ReusePercent = %v", got)
	}
}

func TestBuildSchemaMismatch(t *testing.T) {
	eng1, _ := figure2.Engine()
	eng2, _ := figure2.Engine()
	lat, err := lattice.Generate(eng1.Database().Schema(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(eng2, lat); err == nil {
		t.Error("cross-schema system accepted")
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.set(i)
	}
	if b.count() != 4 {
		t.Errorf("count = %d", b.count())
	}
	if !b.has(64) || b.has(65) {
		t.Error("membership broken")
	}
	b.clear(64)
	if b.has(64) || b.count() != 3 {
		t.Error("clear broken")
	}
	var got []int
	b.forEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, []int{0, 63, 129}) {
		t.Errorf("forEach = %v", got)
	}
	if b.empty() {
		t.Error("empty() on non-empty set")
	}
	if !newBitset(10).empty() {
		t.Error("fresh set not empty")
	}
}

func TestSublatticeShape(t *testing.T) {
	sys := productSystem(t)
	ph, err := sys.phase12([]string{"saffron", "scented", "candle"})
	if err != nil {
		t.Fatal(err)
	}
	sub := buildSublattice(sys.lat, ph.mtnIDs)
	if len(sub.mtns) != 5 {
		t.Fatalf("mtns = %d", len(sub.mtns))
	}
	// Index order is level order.
	for i := 1; i < sub.len(); i++ {
		if sub.level[i] < sub.level[i-1] {
			t.Fatalf("levels not monotone at %d", i)
		}
	}
	// desc/asc are mutually consistent.
	for x := 0; x < sub.len(); x++ {
		for _, d := range sub.desc[x] {
			found := false
			for _, a := range sub.asc[d] {
				if int(a) == x {
					found = true
				}
			}
			if !found {
				t.Fatalf("asc(%d) missing %d", d, x)
			}
		}
	}
	// Owners cover exactly Desc+ membership.
	for x := 0; x < sub.len(); x++ {
		for _, mi := range sub.owners[x] {
			m := sub.mtns[mi]
			if m == x {
				continue
			}
			found := false
			for _, d := range sub.desc[m] {
				if int(d) == x {
					found = true
				}
			}
			if !found {
				t.Fatalf("owners(%d) wrongly includes MTN %d", x, m)
			}
		}
	}
	total, unique := sub.descendantStats()
	if total < unique || unique == 0 {
		t.Errorf("descendantStats = %d, %d", total, unique)
	}
}

// TestInferenceSavesSQL asserts the with-reuse property the paper measures:
// shared descendants across the two Example 1 MTNs are probed once.
func TestInferenceSavesSQL(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"saffron", "scented", "candle"}
	bu, err := sys.Debug(kws, Options{Strategy: BU})
	if err != nil {
		t.Fatal(err)
	}
	buwr, err := sys.Debug(kws, Options{Strategy: BUWR})
	if err != nil {
		t.Fatal(err)
	}
	// Both MTNs share the descendant Item#2-PType#3 (scented candles): BU
	// probes it twice, BUWR once.
	if bu.Stats.SQLExecuted <= buwr.Stats.SQLExecuted {
		t.Errorf("BU=%d BUWR=%d: reuse saved nothing on overlapping MTNs",
			bu.Stats.SQLExecuted, buwr.Stats.SQLExecuted)
	}
}

func TestOracleErrorPropagates(t *testing.T) {
	sys := productSystem(t)
	ph, err := sys.phase12([]string{"saffron", "scented", "candle"})
	if err != nil {
		t.Fatal(err)
	}
	sub := buildSublattice(sys.lat, ph.mtnIDs)
	oracle := &failingOracle{}
	for _, strat := range []Strategy{BU, TD, BUWR, TDWR, SBH, RE} {
		gov := newGovernor(context.Background(), context.Background(), 0)
		_, _, err := sys.traverse(context.Background(), sub, oracle, seed{baseAlive: sys.baseAliveFunc()}, Options{Strategy: strat, Pa: 0.5}, 1, gov, nil)
		if err == nil {
			t.Errorf("%v swallowed the oracle error", strat)
		}
	}
}

type failingOracle struct{}

func (f *failingOracle) IsAlive(int) (bool, error) { return false, fmt.Errorf("boom") }
func (f *failingOracle) Stats() OracleStats        { return OracleStats{} }

func TestFilterConstraint(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"saffron", "scented", "candle"}
	// The paper's S5 future-work hook: push a user constraint into the
	// search. Exclude every interpretation that goes through Attr.
	noAttr := func(n *lattice.Node) bool {
		return !n.HasVertex("Attr", 1)
	}
	out, err := sys.Debug(kws, Options{Strategy: SBH, Filter: noAttr})
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	if out.Stats.MTNs != 3 {
		t.Errorf("filtered MTNs = %d, want 3", out.Stats.MTNs)
	}
	for _, na := range out.NonAnswers {
		if strings.Contains(na.Query.Tree, "Attr") {
			t.Errorf("filtered-out MTN reported: %s", na.Query.Tree)
		}
	}
	// Filtering everything yields a clean empty output.
	out, err = sys.Debug(kws, Options{Strategy: SBH, Filter: func(*lattice.Node) bool { return false }})
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	if len(out.Answers)+len(out.NonAnswers) != 0 || out.Stats.MTNs != 0 {
		t.Errorf("filter-all produced output: %+v", out.Stats)
	}
}

func TestMPANPresentationOrder(t *testing.T) {
	sys := productSystem(t)
	out, err := sys.Debug([]string{"saffron", "scented", "candle"}, Options{Strategy: SBH})
	if err != nil {
		t.Fatal(err)
	}
	for _, na := range out.NonAnswers {
		for i := 1; i < len(na.MPANs); i++ {
			if na.MPANs[i].Level > na.MPANs[i-1].Level {
				t.Errorf("%s: MPANs not sorted most-specific-first: %v then %v",
					na.Query.Tree, na.MPANs[i-1], na.MPANs[i])
			}
		}
	}
}

func TestRankAnswers(t *testing.T) {
	sys := productSystem(t)
	out, err := sys.Debug([]string{"scented", "candle"}, Options{Strategy: SBH})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := sys.RankAnswers(out)
	if err != nil {
		t.Fatalf("RankAnswers: %v", err)
	}
	if len(ranked) != len(out.Answers) {
		t.Fatalf("ranked %d of %d answers", len(ranked), len(out.Answers))
	}
	for i := 1; i < len(ranked); i++ {
		prev, cur := ranked[i-1], ranked[i]
		if cur.Query.Level < prev.Query.Level {
			t.Errorf("rank %d: level %d after %d", i, cur.Query.Level, prev.Query.Level)
		}
		if cur.Query.Level == prev.Query.Level && cur.Results > prev.Results {
			t.Errorf("rank %d: results %d after %d at same level", i, cur.Results, prev.Results)
		}
	}
	for _, r := range ranked {
		if r.Results == 0 {
			t.Errorf("answer %s ranked with zero results", r.Query.Tree)
		}
	}
}

// TestOnlineCNsMatchLattice cross-validates phases 1-2 against classical
// online candidate-network generation: both must produce exactly the same
// candidate networks (by canonical label).
func TestOnlineCNsMatchLattice(t *testing.T) {
	sys := productSystem(t)
	queries := [][]string{
		{"saffron", "scented", "candle"},
		{"red", "candle"},
		{"saffron"},
		{"vanilla", "oil"},
		{"floral", "pattern", "oil"},
	}
	for _, kws := range queries {
		online, err := sys.OnlineCandidateNetworks(kws)
		if err != nil {
			t.Fatalf("%v: %v", kws, err)
		}
		ph, err := sys.phase12(kws)
		if err != nil {
			t.Fatal(err)
		}
		var latticeLabels []string
		for _, id := range ph.mtnIDs {
			latticeLabels = append(latticeLabels, sys.lat.Node(id).Label)
		}
		sort.Strings(latticeLabels)
		if !reflect.DeepEqual(online.MTNLabels, latticeLabels) {
			t.Errorf("%v: online CNs differ from lattice MTNs\nonline:  %v\nlattice: %v",
				kws, online.MTNLabels, latticeLabels)
		}
		if online.Generated == 0 && len(online.MTNLabels) > 0 {
			t.Errorf("%v: no generation work recorded", kws)
		}
	}
	// Missing keywords short-circuit.
	res, err := sys.OnlineCandidateNetworks([]string{"zzz", "candle"})
	if err != nil || len(res.MTNLabels) != 0 {
		t.Errorf("missing keyword: %v, %v", res, err)
	}
}

func TestDebugContextCancellation(t *testing.T) {
	sys := productSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sys.DebugContext(ctx, []string{"saffron", "scented", "candle"}, Options{Strategy: RE})
	if err == nil {
		t.Fatal("cancelled context did not abort the traversal")
	}
	// An un-cancelled context behaves like Debug.
	out, err := sys.DebugContext(context.Background(), []string{"saffron", "scented", "candle"}, Options{Strategy: SBH})
	if err != nil || len(out.NonAnswers) != 4 {
		t.Fatalf("plain context run: %v, %d non-answers", err, len(out.NonAnswers))
	}
}

func TestConcurrentDebug(t *testing.T) {
	sys := productSystem(t)
	queries := [][]string{
		{"saffron", "scented", "candle"},
		{"red", "candle"},
		{"vanilla", "oil"},
		{"crimson"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				kws := queries[(g+i)%len(queries)]
				if _, err := sys.Debug(kws, Options{Strategy: Strategies[(g+i)%len(Strategies)]}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Debug: %v", err)
	}
}
