package core_test

import (
	"fmt"
	"log"

	"kwsdbg/internal/core"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
)

// Example reproduces the paper's Example 1: the keyword query
// "saffron scented candle" over the Figure 2 product store, with every
// non-answer explained by its maximal alive sub-queries.
func Example() {
	eng, err := figure2.Engine()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sys.Debug([]string{"saffron", "scented", "candle"},
		core.Options{Strategy: core.SBH})
	if err != nil {
		log.Fatal(err)
	}
	for _, na := range out.NonAnswers {
		fmt.Println("dead:", na.Query.Tree)
		for _, p := range na.MPANs {
			fmt.Println("  alive up to:", p.Tree)
		}
	}
	// Output:
	// dead: Attr#1-Item#2-Item#3
	//   alive up to: Attr#1-Item#2
	//   alive up to: Item#3
	// dead: Attr#1-Item#2-PType#3
	//   alive up to: Attr#1-Item#2
	//   alive up to: Item#2-PType#3
	// dead: Color#1-Item#2-Item#3
	//   alive up to: Color#1
	//   alive up to: Item#2
	//   alive up to: Item#3
	// dead: Color#1-Item#2-PType#3
	//   alive up to: Item#2-PType#3
	//   alive up to: Color#1
}

// ExampleSystem_Search shows the end-user side: ranked joined tuples.
func ExampleSystem_Search() {
	eng, err := figure2.Engine()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: 1})
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := sys.Search([]string{"checkered", "candle"}, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%.1f %s\n", r.Score, r.Query.Tree)
	}
	// The checkered candle connects through its pattern attribute (the
	// keyword occurs in both the item text and the attribute value) and
	// directly through its product type.
	// Output:
	// 1.5 Attr#1-Item#2
	// 1.5 Item#1-PType#2
}
