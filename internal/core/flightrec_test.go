package core_test

// Race-mode tests for the flight recorder's two integration promises:
//
//  1. Recording does not perturb the pipeline. A workers=8 run with the
//     recorder on must render the byte-identical report of the same run with
//     the recorder off — the recorder observes the run, it never steers it.
//  2. The event stream is causally ordered per probe. For every probed node,
//     the globally monotonic sequence numbers must show admission before
//     execution before the committed verdict, no matter how the worker pool
//     interleaved the probes.
//
// These run in the ordinary suite and, more importantly, under `go test
// -race`, where the per-slot ring mutexes and the capture buffer are
// exercised by eight concurrent probe workers.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"kwsdbg/internal/clock"
	"kwsdbg/internal/core"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/obs/flight"
	"kwsdbg/internal/report"
)

func buildSystem(t *testing.T) *core.System {
	t.Helper()
	eng, err := figure2.Engine()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// renderDebug runs one debug call and renders its full JSON report.
func renderDebug(t *testing.T, sys *core.System, ctx context.Context, opts core.Options) []byte {
	t.Helper()
	out, err := sys.DebugContext(ctx, []string{"saffron", "scented", "candle"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.JSONOpts(&buf, out, report.JSONOptions{ShowSQL: true}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRecorderDoesNotPerturbOutput(t *testing.T) {
	// Freeze the clock so latency-derived report fields (sql_ms) are zero in
	// both runs: any remaining byte difference is then a real perturbation.
	restore := clock.SetForTest(func() time.Time { return time.Unix(1438560000, 0) })
	defer restore()

	sys := buildSystem(t)
	for _, strat := range []core.Strategy{core.BUWR, core.TDWR, core.SBH, core.BU} {
		opts := core.Options{Strategy: strat, Workers: 8, BypassCache: true}
		off := renderDebug(t, sys, context.Background(), opts)

		rec := flight.NewRecorder(1024)
		fl := flight.NewLog(rec, "test-run", true)
		on := renderDebug(t, sys, flight.NewContext(context.Background(), fl), opts)

		if !bytes.Equal(off, on) {
			t.Errorf("%v: recorder-on report differs from recorder-off\noff: %s\non:  %s", strat, off, on)
		}
		if fl.Count() == 0 {
			t.Errorf("%v: recorder-on run emitted no events", strat)
		}
	}
}

func TestEventOrderPerProbe(t *testing.T) {
	sys := buildSystem(t)
	// BUWR at workers=8 drives the dispatch/commit scheduler: probes race in
	// the pool, verdicts commit in serial order. Each pending node is probed
	// exactly once, so each node's chain must be admit < exec < verdict.
	fl := flight.NewLog(flight.NewRecorder(1024), "order", true)
	ctx := flight.NewContext(context.Background(), fl)
	if _, err := sys.DebugContext(ctx, []string{"saffron", "scented", "candle"},
		core.Options{Strategy: core.BUWR, Workers: 8, BypassCache: true}); err != nil {
		t.Fatal(err)
	}

	type chain struct{ admit, exec, verdict uint64 } // first seq of each stage
	chains := map[int32]*chain{}
	for _, ev := range fl.Events() {
		if ev.Node < 0 {
			continue
		}
		c := chains[ev.Node]
		if c == nil {
			c = &chain{}
			chains[ev.Node] = c
		}
		switch ev.Kind {
		case flight.Admit:
			if c.admit == 0 {
				c.admit = ev.Seq
			}
		case flight.SQLExec, flight.ProbeCacheHit:
			if c.exec == 0 {
				c.exec = ev.Seq
			}
		case flight.Verdict:
			if c.verdict == 0 {
				c.verdict = ev.Seq
			}
		}
	}
	if len(chains) == 0 {
		t.Fatal("no per-node chains recorded")
	}
	for node, c := range chains {
		if c.admit == 0 || c.exec == 0 || c.verdict == 0 {
			t.Errorf("node %d: incomplete chain admit=%d exec=%d verdict=%d", node, c.admit, c.exec, c.verdict)
			continue
		}
		if !(c.admit < c.exec && c.exec < c.verdict) {
			t.Errorf("node %d: order violated: admit=%d exec=%d verdict=%d (want admit < exec < verdict)",
				node, c.admit, c.exec, c.verdict)
		}
	}
}
