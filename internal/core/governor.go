package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"kwsdbg/internal/obs/flight"
)

// Exhaustion reasons, surfaced in Output.IncompleteReason, the report JSON,
// and the server's kwsdbg_probe_budget_exhausted_total metric label.
const (
	ReasonProbeBudget = "probe_budget"
	ReasonDeadline    = "deadline"
)

// errExhausted is the sentinel wrapped by every graceful-exhaustion error.
// Traversals match it with errors.Is to separate "the run's allowance ran
// out" (degrade to a partial result) from genuine failures (propagate).
var errExhausted = errors.New("core: probe allowance exhausted")

// exhaustedError records which allowance ran out first for this probe.
type exhaustedError struct{ reason string }

func (e *exhaustedError) Error() string {
	return "core: probe allowance exhausted (" + e.reason + ")"
}

func (e *exhaustedError) Is(target error) bool { return target == errExhausted }

// governor enforces one Debug run's probe allowances: the caller's context
// (whose cancellation is a real error), the run's own Options.Deadline (whose
// expiry degrades the run to a partial result), and the probe budget. Probes
// are charged on admission — one per Oracle.IsAlive call, cache hits included
// — which is exactly the Stats.SQLExecuted metric, so a budget of at least
// the serial run's probe count can never trip for any worker count: the
// scheduler probes precisely the serial probe set.
type governor struct {
	parent   context.Context // caller's context: its errors abort the run
	probeCtx context.Context // parent plus Options.Deadline: its expiry is graceful

	limited   bool
	remaining atomic.Int64

	// fl records the exhaustion event; set once by debugWith before any
	// probe, nil when the run is not recorded.
	fl *flight.Log

	mu sync.Mutex
	// reason is the first allowance to run out; "" while none has.
	// guarded by mu.
	reason string
}

func newGovernor(parent, probeCtx context.Context, budget int) *governor {
	g := &governor{parent: parent, probeCtx: probeCtx}
	if budget > 0 {
		g.limited = true
		g.remaining.Store(int64(budget))
	}
	return g
}

// admit charges one probe against the allowances. It returns nil when the
// probe may run, the parent context's error verbatim on cancellation, and an
// exhaustedError when the deadline or budget has run out.
func (g *governor) admit() error {
	if err := g.parent.Err(); err != nil {
		return err
	}
	if g.probeCtx.Err() != nil {
		return g.trip(ReasonDeadline)
	}
	if g.limited && g.remaining.Add(-1) < 0 {
		return g.trip(ReasonProbeBudget)
	}
	return nil
}

// graceful converts a probe failure caused by the run's own deadline into the
// exhaustion sentinel: probe SQL executes under probeCtx, so expiry mid-query
// surfaces as a wrapped context error rather than through admit. It returns
// nil when err is a genuine failure the traversal must propagate — including
// cancellation of the caller's own context.
func (g *governor) graceful(err error) error {
	if g.parent.Err() != nil || g.probeCtx.Err() == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return g.trip(ReasonDeadline)
	}
	return nil
}

func (g *governor) trip(reason string) error {
	g.mu.Lock()
	first := g.reason == ""
	if first {
		g.reason = reason
	}
	g.mu.Unlock()
	if first {
		// Only the transition is recorded: every admit after exhaustion
		// trips again, and a ring full of identical exhaustion events would
		// bury the run's actual history.
		g.fl.Emit(flight.Exhausted, -1, "", false, 0, reason)
	}
	return &exhaustedError{reason: reason}
}

// exhausted reports whether any allowance ran out, and which one tripped
// first.
func (g *governor) exhausted() (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reason, g.reason != ""
}
