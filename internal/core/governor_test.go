package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// mpanPairs flattens an Output's explanations into (dead query tree, MPAN
// tree) pairs, the unit of the partial-result subset guarantee.
func mpanPairs(out *Output) map[string]bool {
	set := make(map[string]bool)
	for _, na := range out.NonAnswers {
		for _, p := range na.MPANs {
			set[na.Query.Tree+"|"+p.Tree] = true
		}
	}
	return set
}

// TestProbeBudgetDegradation is the governance contract as a property test:
// across random systems and queries, (a) any ProbeBudget at least the serial
// probe count leaves every strategy's Output byte-identical to the
// unbudgeted run for any worker count, and (b) any smaller budget yields a
// partial Output that is flagged Incomplete, never overspends, and only
// claims things the full run also claims — answers, non-answers, and MPANs
// are all subsets, with the unclassified remainder listed.
func TestProbeBudgetDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep is slow")
	}
	r := rand.New(rand.NewSource(77))
	vocab := []string{"amber", "birch", "cedar", "dune", "ember", "flint", "grove", "haze"}
	allStrategies := append(append([]Strategy{}, Strategies...), RE)
	for trial := 0; trial < 3; trial++ {
		sys, _ := randomSystem(t, r)
		for q := 0; q < 3; q++ {
			kws := make([]string, 1+r.Intn(3))
			for i := range kws {
				kws[i] = vocab[r.Intn(len(vocab))]
			}
			for _, strat := range allStrategies {
				full, err := sys.Debug(kws, Options{Strategy: strat, BypassCache: true})
				if err != nil {
					t.Fatalf("trial %d %v %v full: %v", trial, kws, strat, err)
				}
				serial := full.Stats.SQLExecuted

				for _, opts := range []Options{
					{Strategy: strat, BypassCache: true, ProbeBudget: serial},
					{Strategy: strat, BypassCache: true, ProbeBudget: serial + 3, Workers: 8},
				} {
					if opts.ProbeBudget == 0 {
						continue // serial == 0: budget 0 means unlimited, not "no probes"
					}
					out, err := sys.Debug(kws, opts)
					if err != nil {
						t.Fatalf("trial %d %v %v budget=%d workers=%d: %v",
							trial, kws, strat, opts.ProbeBudget, opts.Workers, err)
					}
					if out.Incomplete {
						t.Fatalf("trial %d %v %v: budget %d >= serial %d tripped",
							trial, kws, strat, opts.ProbeBudget, serial)
					}
					if got, want := normalized(out), normalized(full); !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d %v %v budget=%d workers=%d diverges from unbudgeted run\ngot:  %+v\nwant: %+v",
							trial, kws, strat, opts.ProbeBudget, opts.Workers, got, want)
					}
				}

				if serial == 0 {
					continue
				}
				fullPairs := mpanPairs(full)
				fullAlive := make(map[string]bool)
				for _, a := range full.Answers {
					fullAlive[a.Tree] = true
				}
				fullDead := make(map[string]bool)
				for _, na := range full.NonAnswers {
					fullDead[na.Query.Tree] = true
				}
				for _, budget := range []int{serial - 1, (serial + 1) / 2, 1} {
					if budget < 1 || budget >= serial {
						continue
					}
					for _, workers := range []int{1, 8} {
						out, err := sys.Debug(kws, Options{
							Strategy: strat, BypassCache: true,
							ProbeBudget: budget, Workers: workers,
						})
						if err != nil {
							t.Fatalf("trial %d %v %v budget=%d: exhaustion must degrade, not fail: %v",
								trial, kws, strat, budget, err)
						}
						if !out.Incomplete || out.IncompleteReason != ReasonProbeBudget {
							t.Fatalf("trial %d %v %v: budget %d < serial %d but Incomplete=%v reason=%q",
								trial, kws, strat, budget, serial, out.Incomplete, out.IncompleteReason)
						}
						if out.Stats.SQLExecuted > budget {
							t.Fatalf("trial %d %v %v: spent %d probes over budget %d",
								trial, kws, strat, out.Stats.SQLExecuted, budget)
						}
						for _, a := range out.Answers {
							if !fullAlive[a.Tree] {
								t.Fatalf("trial %d %v %v budget=%d: invented answer %s",
									trial, kws, strat, budget, a.Tree)
							}
						}
						for _, na := range out.NonAnswers {
							if !fullDead[na.Query.Tree] {
								t.Fatalf("trial %d %v %v budget=%d: invented non-answer %s",
									trial, kws, strat, budget, na.Query.Tree)
							}
						}
						for pair := range mpanPairs(out) {
							if !fullPairs[pair] {
								t.Fatalf("trial %d %v %v budget=%d: MPAN %q is not an MPAN of the full run",
									trial, kws, strat, budget, pair)
							}
						}
						if got, want := len(out.Answers)+len(out.NonAnswers)+len(out.Unclassified), full.Stats.MTNs; got != want {
							t.Fatalf("trial %d %v %v budget=%d: classified+unclassified = %d MTNs, want %d",
								trial, kws, strat, budget, got, want)
						}
					}
				}
			}
		}
	}
}

// TestDeadlineGraceful: an already-expired Deadline degrades to an
// Incomplete partial result, and a generous one changes nothing.
func TestDeadlineGraceful(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"saffron", "scented", "candle"}
	full, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true})
	if err != nil {
		t.Fatal(err)
	}

	out, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true, Deadline: time.Nanosecond})
	if err != nil {
		t.Fatalf("an expired deadline must degrade, not fail: %v", err)
	}
	if !out.Incomplete || out.IncompleteReason != ReasonDeadline {
		t.Fatalf("Incomplete=%v reason=%q, want deadline exhaustion", out.Incomplete, out.IncompleteReason)
	}
	fullPairs := mpanPairs(full)
	for pair := range mpanPairs(out) {
		if !fullPairs[pair] {
			t.Fatalf("deadline-partial MPAN %q is not an MPAN of the full run", pair)
		}
	}

	relaxed, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Incomplete {
		t.Fatal("a generous deadline tripped")
	}
	if got, want := normalized(relaxed), normalized(full); !reflect.DeepEqual(got, want) {
		t.Fatalf("generous deadline changed the output\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestCancelMidSchedulerClean is the regression test for cancellation
// between batch-probe and commit: the fault hook cancels the caller's
// context from inside Phase 3, and the run must end in a clean
// context.Canceled — no Output, no probe counters recorded as a completed
// request, and no goroutines left behind.
func TestCancelMidSchedulerClean(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"saffron", "scented", "candle"}
	// One warm-up run: lets the engine build its index and the sql.DB pool
	// reach steady state, so the goroutine baseline below is stable.
	if _, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true, Workers: 8}); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	probesBefore := mProbes.With(RE.String()).Value()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var execs atomic.Int64
	sys.Engine().SetFaultInjector(func() error {
		if execs.Add(1) == 2 {
			cancel() // mid-scheduler: between one batch's probes
		}
		return nil
	})
	defer sys.Engine().SetFaultInjector(nil)

	out, err := sys.DebugContext(ctx, kws, Options{Strategy: RE, BypassCache: true, Workers: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got out=%v err=%v", out, err)
	}
	if out != nil {
		t.Fatal("cancelled run returned an Output")
	}
	if got := mProbes.With(RE.String()).Value(); got != probesBefore {
		t.Errorf("cancelled run recorded %v probes as a completed request", got-probesBefore)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutine leak after cancellation: %d before, %d after", before, g)
	}
}
