package core

import "kwsdbg/internal/obs"

// Pipeline metrics. The paper's whole argument is probe accounting — the
// Phase 3 strategies are all correct, they differ only in how many SQL
// probes they spend and how much classification they infer for free — so
// probes and inferences are counted per strategy, and every phase gets a
// latency histogram.
var (
	mDebugTotal = obs.Default.CounterVec("kwsdbg_debug_requests_total",
		"Debug runs, by Phase 3 strategy and outcome.", "strategy", "status")
	mProbes = obs.Default.CounterVec("kwsdbg_probe_total",
		"SQL existence probes executed in Phase 3, by strategy.", "strategy")
	mInferred = obs.Default.CounterVec("kwsdbg_inferred_total",
		"Nodes classified without executing SQL (rules R1/R2), by strategy.", "strategy")
	mPhaseSeconds = obs.Default.HistogramVec("kwsdbg_phase_seconds",
		"Wall time per pipeline phase: map (keyword binding), prune, mtn (Phase 2), traverse (Phase 3).",
		nil, "phase")
	mReusePercent = obs.Default.Gauge("kwsdbg_reuse_percent",
		"Descendant-overlap reuse percentage of the last debug run (Figure 13 metric).")
	mMTNs = obs.Default.Histogram("kwsdbg_mtns",
		"Minimal total nodes (candidate networks) per debug run.",
		[]float64{0, 1, 2, 5, 10, 20, 50, 100, 250, 1000})
)
