package core

import (
	"fmt"
	"sort"
	"time"

	"kwsdbg/internal/clock"
	"kwsdbg/internal/lattice"
)

// OnlineCNResult is what a classical KWS-S system's candidate-network
// generation phase produces at query time, for comparison against the
// lattice's Phase 1 + 2.
type OnlineCNResult struct {
	// MTNLabels are the canonical labels of the generated candidate
	// networks, comparable against the lattice path's nodes.
	MTNLabels []string
	// Generated counts every join tree the online expansion produced,
	// the work the lattice precomputes offline.
	Generated int
	Elapsed   time.Duration
}

// OnlineCandidateNetworks runs candidate-network generation the classical
// way — DISCOVER and DBXplorer expand join trees over the schema graph *at
// query time*, restricted to the tuple sets the current keywords bind — and
// returns the resulting candidate networks. The lattice pipeline must find
// exactly the same set through lookup and pruning (property-tested), and the
// comparison of Elapsed against Phase 1+2 time is the paper's §2.2 claim
// (iii): the offline structure "bypasses the costly candidate network
// generation phase".
func (sys *System) OnlineCandidateNetworks(keywords []string) (*OnlineCNResult, error) {
	ph, err := sys.phase12(keywords)
	if err != nil {
		return nil, err
	}
	if len(ph.nonKeywords) > 0 {
		return &OnlineCNResult{}, nil
	}
	start := clock.Now()
	allow := func(rel string, copy int) bool {
		return copy <= len(keywords) && ph.bindings[copy-1][rel]
	}
	mini, err := lattice.GenerateRestricted(sys.lat.Schema(), lattice.Options{
		MaxJoins:     sys.lat.MaxJoins(),
		KeywordSlots: sys.lat.KeywordSlots(),
	}, allow)
	if err != nil {
		return nil, fmt.Errorf("core: online CN generation: %w", err)
	}
	res := &OnlineCNResult{Elapsed: 0}
	for _, st := range mini.Stats() {
		res.Generated += st.Generated
	}
	n := len(keywords)
	for id := 0; id < mini.Len(); id++ {
		node := mini.Node(id)
		if !node.IsTotal(n) {
			continue
		}
		minimal := true
		for _, c := range node.Children {
			if mini.Node(c).IsTotal(n) {
				minimal = false
				break
			}
		}
		if minimal {
			res.MTNLabels = append(res.MTNLabels, node.Label)
		}
	}
	sort.Strings(res.MTNLabels)
	res.Elapsed = clock.Since(start)
	return res, nil
}
