package core

import (
	"context"
	"database/sql"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kwsdbg/internal/clock"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/invidx"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/obs/flight"
	"kwsdbg/internal/probecache"
	"kwsdbg/internal/vervec"
)

// Oracle answers aliveness probes for lattice nodes: does the node's
// instantiated query return at least one tuple? Implementations count every
// probe — the number of probes issued is the quantity the paper's evaluation
// compares across traversal strategies — and must be safe for concurrent
// IsAlive calls, because the Phase 3 scheduler probes independent nodes from
// Options.Workers goroutines at once.
type Oracle interface {
	// IsAlive resolves the node's existence query.
	IsAlive(nodeID int) (bool, error)
	// Stats reports the accumulated execution counts and time.
	Stats() OracleStats
}

// OracleStats accumulates the execution effort of one debugging run.
type OracleStats struct {
	// Executed counts the probes the traversal strategy issued — the
	// paper's metric. A probe answered by the cross-request cache still
	// counts here (the strategy spent it), so Executed is identical for
	// any worker count and any cache state.
	Executed int
	// CacheHits counts the subset of Executed answered by the
	// cross-request aliveness cache without touching the engine; the SQL
	// actually run is Executed - CacheHits.
	CacheHits int
	// Compiled counts the probe handles compiled this run: the prepared
	// oracle's misses of the cross-request handle cache. The text oracle,
	// which compiles nothing, always reports zero. Like CacheHits this
	// depends on execution state (what earlier requests warmed), never on
	// the query.
	Compiled int
	// SQLTime is wall time spent executing probe SQL (cache hits cost none).
	SQLTime time.Duration
	// Suspects counts probes whose cached dead verdict a write had
	// downgraded: the lookup could not be trusted and the probe re-ran.
	// Repaired counts the fresh verdicts stored back for them. Both depend
	// on cross-request cache state, never on the query.
	Suspects int
	Repaired int
	// BitsetHits counts probes the bitset engine answered with bitmap
	// semi-joins (no SQL ran); BitsetFallbacks counts probes it declined to
	// the prepared path. Both depend on data shape and warm state, never on
	// the query's answer set.
	BitsetHits      int
	BitsetFallbacks int
}

// nodeFootprint is the version-vector footprint of a node's existence query:
// the distinct relations its join tree reads (suspect trigger set) plus the
// inverted-index tokens of its bound keywords (provenance). Slices are sorted
// so the footprint — which reaches ledgers through cache internals — is
// deterministic regardless of vertex order.
func nodeFootprint(lat *lattice.Lattice, nodeID int, keywords []string) probecache.Footprint {
	node := lat.Node(nodeID)
	tabs := make(map[string]struct{}, len(node.Vertices))
	terms := make(map[string]struct{}, len(node.Vertices))
	for _, v := range node.Vertices {
		tabs[vervec.TableKey(v.Rel)] = struct{}{}
		if v.Copy >= 1 && v.Copy <= len(keywords) {
			for _, tok := range invidx.Tokenize(keywords[v.Copy-1]) {
				terms[vervec.TermKey(tok)] = struct{}{}
			}
		}
	}
	tabList := make([]string, 0, len(tabs))
	for t := range tabs {
		tabList = append(tabList, t)
	}
	sort.Strings(tabList)
	termList := make([]string, 0, len(terms))
	for t := range terms {
		termList = append(termList, t)
	}
	sort.Strings(termList)
	return probecache.Footprint{Tables: tabList, Terms: termList}
}

// batchPreparer is implemented by oracles that benefit from compiling a
// probe batch's handles before the worker pool starts: the scheduler calls
// warmBatch with the nodes of each dispatch, so concurrent workers find
// their handles already resolved instead of racing to compile them.
type batchPreparer interface {
	warmBatch(nodeIDs []int)
}

// preparedOracle is the default probe path: each node's existence query is
// compiled once into an engine.Prepared handle — no SQL text is rendered, no
// parse happens — and the handle is reused for the session through two
// layers: a per-run map (the no-reuse strategies BU/TD probe shared
// descendants once per MTN) and the System's cross-request LRU keyed by
// probe identity, where a handle survives until evicted and revalidates
// itself against the engine's data version on every execution. All indexed
// candidate sets the handles' plans need are shared through the run's
// CandidateCache.
type preparedOracle struct {
	ctx      context.Context
	lat      *lattice.Lattice
	eng      *engine.Engine
	keywords []string

	// cache, when non-nil, is the cross-request aliveness cache; verdicts
	// are looked up by (canonical label, keyword binding) before any SQL
	// and stored after. Its version view is synced with the engine's
	// vector by debugWith, never here.
	cache *probecache.Cache
	// view is this run's version-vector snapshot, taken by debugWith before
	// the first probe. Verdicts are stamped against it so a write this
	// run's probes did not see cannot be vouched for.
	view *vervec.View

	// handles is the System-level cross-request handle cache; local holds
	// this run's resolved handles (nodeID -> *engine.Prepared) so repeat
	// probes skip even the LRU lock.
	handles *engine.PreparedCache
	local   sync.Map
	// keys memoizes probe identities (nodeID -> string); see probeKey.
	keys sync.Map
	// fps memoizes probe footprints (nodeID -> probecache.Footprint).
	fps sync.Map

	// cands shares indexed candidate row sets across this run's probes.
	cands *engine.CandidateCache

	// fl records probe provenance (cache hits/misses, SQL latency); set
	// once via setFlight before the run starts, nil when not recording.
	fl *flight.Log

	executed  atomic.Int64
	cacheHits atomic.Int64
	compiled  atomic.Int64
	sqlNanos  atomic.Int64
	suspects  atomic.Int64
	repaired  atomic.Int64
}

func newPreparedOracle(ctx context.Context, lat *lattice.Lattice, eng *engine.Engine, handles *engine.PreparedCache, keywords []string) *preparedOracle {
	return &preparedOracle{
		ctx: ctx, lat: lat, eng: eng, keywords: keywords,
		handles: handles, cands: engine.NewCandidateCache(),
	}
}

// setFlight attaches the run's flight log to the oracle and to its
// candidate-set cache (the engine's planning layer emits through the cache).
func (o *preparedOracle) setFlight(fl *flight.Log) {
	o.fl = fl
	o.cands.SetFlight(fl)
}

// probeKey is the node's probe identity: canonical label plus keyword
// binding — the same identity the verdict cache uses, because two nodes
// sharing it have isomorphic existence queries with identical outcomes.
// Keys are memoized per node: warmBatch builds them while pre-compiling, so
// the probe itself — which needs the key for the cache lookup and for every
// flight event — gets a map hit instead of a string build.
func (o *preparedOracle) probeKey(nodeID int) string {
	if v, ok := o.keys.Load(nodeID); ok {
		return v.(string)
	}
	node := o.lat.Node(nodeID)
	key := probecache.Key(node.Label, node.CopyMask, o.keywords)
	o.keys.Store(nodeID, key)
	return key
}

// footprint memoizes the node's version-vector footprint, mirroring probeKey.
func (o *preparedOracle) footprint(nodeID int) probecache.Footprint {
	if v, ok := o.fps.Load(nodeID); ok {
		return v.(probecache.Footprint)
	}
	fp := nodeFootprint(o.lat, nodeID, o.keywords)
	o.fps.Store(nodeID, fp)
	return fp
}

// handle resolves the node's Prepared handle: per-run map, then the
// cross-request LRU, then compile. Concurrent probes of one node may both
// compile; the duplicate handle is equivalent and the last store wins, so
// correctness never depends on winning the race.
func (o *preparedOracle) handle(nodeID int) (*engine.Prepared, error) {
	if v, ok := o.local.Load(nodeID); ok {
		return v.(*engine.Prepared), nil
	}
	key := o.probeKey(nodeID)
	if h := o.handles.Get(key); h != nil {
		o.local.Store(nodeID, h)
		return h, nil
	}
	sel, err := o.lat.Select(o.lat.Node(nodeID), o.keywords, true)
	if err != nil {
		return nil, fmt.Errorf("core: instantiate node %d: %w", nodeID, err)
	}
	h, err := o.eng.Prepare(sel)
	if err != nil {
		return nil, fmt.Errorf("core: prepare node %d: %w", nodeID, err)
	}
	o.compiled.Add(1)
	o.handles.Put(key, h)
	o.local.Store(nodeID, h)
	return h, nil
}

// warmBatch implements batchPreparer: compiling is cheap (resolve only; the
// plan is lazy), so doing it serially before dispatch keeps the workers'
// handle lookups contention-free.
func (o *preparedOracle) warmBatch(nodeIDs []int) {
	for _, id := range nodeIDs {
		// Errors are deliberately dropped: the probe itself will hit the
		// same error and report it through the scheduler's ordered commit.
		_, _ = o.handle(id)
	}
}

// IsAlive implements Oracle.
//
//kws:hotpath
func (o *preparedOracle) IsAlive(nodeID int) (bool, error) {
	var key string
	if o.cache != nil || o.fl != nil {
		key = o.probeKey(nodeID)
	}
	suspect := false
	if o.cache != nil {
		alive, outcome := o.cache.Lookup(key)
		if outcome == probecache.Hit {
			o.executed.Add(1)
			o.cacheHits.Add(1)
			o.fl.Emit(flight.ProbeCacheHit, nodeID, key, alive, 0, "")
			return alive, nil
		}
		if outcome == probecache.Suspect {
			// A write touched a footprint table since the dead verdict was
			// proved; re-probe to repair it (an INSERT can only flip
			// dead -> alive, so the alive branch above stays trustworthy).
			suspect = true
			o.suspects.Add(1)
			o.fl.Emit(flight.Suspect, nodeID, key, false, 0, outcome.Cause())
		} else {
			o.fl.Emit(flight.ProbeCacheMiss, nodeID, key, false, 0, outcome.Cause())
		}
	}
	// The timer covers full probe servicing — handle lookup (or compile)
	// plus execution — mirroring the text path, which times render plus
	// execution; SQLTime is therefore comparable across the two paths.
	start := clock.Now()
	h, err := o.handle(nodeID)
	if err != nil {
		return false, err
	}
	res, err := h.ExecFlight(o.ctx, o.cands, o.fl, nodeID, key)
	if err != nil {
		return false, fmt.Errorf("core: probe node %d: %w", nodeID, err)
	}
	alive := len(res.Rows) > 0
	o.executed.Add(1)
	dur := clock.Since(start)
	o.sqlNanos.Add(int64(dur))
	o.fl.Emit(flight.SQLExec, nodeID, key, alive, dur, "")
	if o.cache != nil {
		o.cache.PutFP(key, alive, o.footprint(nodeID), o.view)
		if suspect {
			o.repaired.Add(1)
			o.fl.Emit(flight.Repair, nodeID, key, alive, 0, repairCause(alive))
		}
	}
	return alive, nil
}

// repairCause labels a Repair event: "flipped" when the write the suspect
// feared really did resurrect the query, "confirmed" when the re-probe proved
// the dead verdict still holds.
func repairCause(alive bool) string {
	if alive {
		return "flipped"
	}
	return "confirmed"
}

// Stats implements Oracle.
func (o *preparedOracle) Stats() OracleStats {
	return OracleStats{
		Executed:  int(o.executed.Load()),
		CacheHits: int(o.cacheHits.Load()),
		Compiled:  int(o.compiled.Load()),
		SQLTime:   time.Duration(o.sqlNanos.Load()),
		Suspects:  int(o.suspects.Load()),
		Repaired:  int(o.repaired.Load()),
	}
}

// candStats reports the run's candidate-set cache traffic.
func (o *preparedOracle) candStats() (hits, misses int64) { return o.cands.Stats() }

// sqlOracle is the fallback text path: each node's "SELECT 1 ... LIMIT 1"
// probe is rendered to SQL and run through database/sql, exactly as the
// paper's Java implementation issued probes through JDBC. It exists for any
// backend reachable only through a database/sql driver, and as the reference
// the prepared path is property-tested against. Rendering is recomputed per
// probe — the per-run memo it once carried is gone, since the default path
// no longer renders at all — but the engine's canonical-SQL plan cache still
// spares repeated probes the parse and resolve.
type sqlOracle struct {
	ctx      context.Context
	lat      *lattice.Lattice
	db       *sql.DB
	keywords []string

	// cache is the cross-request aliveness cache, as in preparedOracle;
	// view the run's version-vector snapshot verdicts are stamped against.
	cache *probecache.Cache
	view  *vervec.View

	// fl records probe provenance, as in preparedOracle. Plan and retry
	// events on this path come from the engine via the context instead
	// (database/sql hides the call chain), tagged with node -1.
	fl *flight.Log

	executed  atomic.Int64
	cacheHits atomic.Int64
	sqlNanos  atomic.Int64
	suspects  atomic.Int64
	repaired  atomic.Int64
}

func newSQLOracle(ctx context.Context, lat *lattice.Lattice, db *sql.DB, keywords []string) *sqlOracle {
	return &sqlOracle{ctx: ctx, lat: lat, db: db, keywords: keywords}
}

// IsAlive implements Oracle.
func (o *sqlOracle) IsAlive(nodeID int) (bool, error) {
	var key string
	if o.cache != nil || o.fl != nil {
		node := o.lat.Node(nodeID)
		key = probecache.Key(node.Label, node.CopyMask, o.keywords)
	}
	suspect := false
	if o.cache != nil {
		alive, outcome := o.cache.Lookup(key)
		if outcome == probecache.Hit {
			o.executed.Add(1)
			o.cacheHits.Add(1)
			o.fl.Emit(flight.ProbeCacheHit, nodeID, key, alive, 0, "")
			return alive, nil
		}
		if outcome == probecache.Suspect {
			suspect = true
			o.suspects.Add(1)
			o.fl.Emit(flight.Suspect, nodeID, key, false, 0, outcome.Cause())
		} else {
			o.fl.Emit(flight.ProbeCacheMiss, nodeID, key, false, 0, outcome.Cause())
		}
	}
	// Rendering is inside the timer: it is part of servicing a text-path
	// probe, and skipping it is precisely what the prepared path is for.
	start := clock.Now()
	query, err := o.lat.SQL(o.lat.Node(nodeID), o.keywords, true)
	if err != nil {
		return false, fmt.Errorf("core: render node %d: %w", nodeID, err)
	}
	rows, err := o.db.QueryContext(o.ctx, query)
	if err != nil {
		return false, fmt.Errorf("core: execute %q: %w", query, err)
	}
	alive := rows.Next()
	closeErr := rows.Close()
	if err := rows.Err(); err != nil {
		return false, err
	}
	if closeErr != nil {
		return false, closeErr
	}
	o.executed.Add(1)
	dur := clock.Since(start)
	o.sqlNanos.Add(int64(dur))
	o.fl.Emit(flight.SQLExec, nodeID, key, alive, dur, "")
	if o.cache != nil {
		o.cache.PutFP(key, alive, nodeFootprint(o.lat, nodeID, o.keywords), o.view)
		if suspect {
			o.repaired.Add(1)
			o.fl.Emit(flight.Repair, nodeID, key, alive, 0, repairCause(alive))
		}
	}
	return alive, nil
}

// Stats implements Oracle.
func (o *sqlOracle) Stats() OracleStats {
	return OracleStats{
		Executed:  int(o.executed.Load()),
		CacheHits: int(o.cacheHits.Load()),
		SQLTime:   time.Duration(o.sqlNanos.Load()),
		Suspects:  int(o.suspects.Load()),
		Repaired:  int(o.repaired.Load()),
	}
}
