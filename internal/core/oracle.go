package core

import (
	"context"
	"database/sql"
	"fmt"
	"time"

	"kwsdbg/internal/lattice"
)

// Oracle answers aliveness probes for lattice nodes: does the node's
// instantiated query return at least one tuple? Implementations count every
// probe — the number of SQL queries executed is the quantity the paper's
// evaluation compares across traversal strategies.
type Oracle interface {
	// IsAlive executes the node's existence query.
	IsAlive(nodeID int) (bool, error)
	// Stats reports the accumulated execution counts and time.
	Stats() OracleStats
}

// OracleStats accumulates the execution effort of one debugging run.
type OracleStats struct {
	Executed int           // SQL queries issued
	SQLTime  time.Duration // wall time spent executing them
}

// sqlOracle renders each node's "SELECT 1 ... LIMIT 1" probe and runs it
// through database/sql, exactly as the paper's Java implementation issued
// probes through JDBC.
type sqlOracle struct {
	ctx      context.Context
	lat      *lattice.Lattice
	db       *sql.DB
	keywords []string
	stats    OracleStats
}

func newSQLOracle(ctx context.Context, lat *lattice.Lattice, db *sql.DB, keywords []string) *sqlOracle {
	return &sqlOracle{ctx: ctx, lat: lat, db: db, keywords: keywords}
}

// IsAlive implements Oracle.
func (o *sqlOracle) IsAlive(nodeID int) (bool, error) {
	query, err := o.lat.SQL(o.lat.Node(nodeID), o.keywords, true)
	if err != nil {
		return false, fmt.Errorf("core: render node %d: %w", nodeID, err)
	}
	start := time.Now()
	rows, err := o.db.QueryContext(o.ctx, query)
	if err != nil {
		return false, fmt.Errorf("core: execute %q: %w", query, err)
	}
	alive := rows.Next()
	closeErr := rows.Close()
	if err := rows.Err(); err != nil {
		return false, err
	}
	if closeErr != nil {
		return false, closeErr
	}
	o.stats.Executed++
	o.stats.SQLTime += time.Since(start)
	return alive, nil
}

// Stats implements Oracle.
func (o *sqlOracle) Stats() OracleStats { return o.stats }
