package core

import (
	"context"
	"database/sql"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kwsdbg/internal/lattice"
	"kwsdbg/internal/probecache"
)

// Oracle answers aliveness probes for lattice nodes: does the node's
// instantiated query return at least one tuple? Implementations count every
// probe — the number of probes issued is the quantity the paper's evaluation
// compares across traversal strategies — and must be safe for concurrent
// IsAlive calls, because the Phase 3 scheduler probes independent nodes from
// Options.Workers goroutines at once.
type Oracle interface {
	// IsAlive resolves the node's existence query.
	IsAlive(nodeID int) (bool, error)
	// Stats reports the accumulated execution counts and time.
	Stats() OracleStats
}

// OracleStats accumulates the execution effort of one debugging run.
type OracleStats struct {
	// Executed counts the probes the traversal strategy issued — the
	// paper's metric. A probe answered by the cross-request cache still
	// counts here (the strategy spent it), so Executed is identical for
	// any worker count and any cache state.
	Executed int
	// CacheHits counts the subset of Executed answered by the
	// cross-request aliveness cache without touching the engine; the SQL
	// actually run is Executed - CacheHits.
	CacheHits int
	// SQLTime is wall time spent executing probe SQL (cache hits cost none).
	SQLTime time.Duration
}

// sqlOracle renders each node's "SELECT 1 ... LIMIT 1" probe and runs it
// through database/sql, exactly as the paper's Java implementation issued
// probes through JDBC. All state is synchronized: counts are atomic, and the
// per-run rendered-SQL memo is a sync.Map, so concurrent probes of distinct
// nodes proceed without contention.
type sqlOracle struct {
	ctx      context.Context
	lat      *lattice.Lattice
	db       *sql.DB
	keywords []string

	// cache, when non-nil, is the cross-request aliveness cache; verdicts
	// are looked up by (canonical label, keyword binding) before any SQL
	// and stored after. Its generation is synced with the engine's data
	// version by debugWith, never here.
	cache *probecache.Cache

	// sqlText memoizes rendered probe SQL per node ID for the run's
	// lifetime. The no-reuse strategies (BU, TD) probe shared descendants
	// once per MTN, and rendering — tree walk plus predicate expansion —
	// was measurably recomputed on every one of those probes.
	sqlText sync.Map // int -> string

	executed  atomic.Int64
	cacheHits atomic.Int64
	sqlNanos  atomic.Int64
}

func newSQLOracle(ctx context.Context, lat *lattice.Lattice, db *sql.DB, keywords []string) *sqlOracle {
	return &sqlOracle{ctx: ctx, lat: lat, db: db, keywords: keywords}
}

// renderSQL returns the node's existence query, rendering it at most once
// per run.
func (o *sqlOracle) renderSQL(nodeID int) (string, error) {
	if v, ok := o.sqlText.Load(nodeID); ok {
		return v.(string), nil
	}
	query, err := o.lat.SQL(o.lat.Node(nodeID), o.keywords, true)
	if err != nil {
		return "", fmt.Errorf("core: render node %d: %w", nodeID, err)
	}
	o.sqlText.Store(nodeID, query)
	return query, nil
}

// IsAlive implements Oracle.
func (o *sqlOracle) IsAlive(nodeID int) (bool, error) {
	var key string
	if o.cache != nil {
		node := o.lat.Node(nodeID)
		key = probecache.Key(node.Label, node.CopyMask, o.keywords)
		if alive, ok := o.cache.Get(key); ok {
			o.executed.Add(1)
			o.cacheHits.Add(1)
			return alive, nil
		}
	}
	query, err := o.renderSQL(nodeID)
	if err != nil {
		return false, err
	}
	start := time.Now()
	rows, err := o.db.QueryContext(o.ctx, query)
	if err != nil {
		return false, fmt.Errorf("core: execute %q: %w", query, err)
	}
	alive := rows.Next()
	closeErr := rows.Close()
	if err := rows.Err(); err != nil {
		return false, err
	}
	if closeErr != nil {
		return false, closeErr
	}
	o.executed.Add(1)
	o.sqlNanos.Add(int64(time.Since(start)))
	if o.cache != nil {
		o.cache.Put(key, alive)
	}
	return alive, nil
}

// Stats implements Oracle.
func (o *sqlOracle) Stats() OracleStats {
	return OracleStats{
		Executed:  int(o.executed.Load()),
		CacheHits: int(o.cacheHits.Load()),
		SQLTime:   time.Duration(o.sqlNanos.Load()),
	}
}
