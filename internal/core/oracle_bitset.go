package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"kwsdbg/internal/clock"
	"kwsdbg/internal/core/bitprobe"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/obs/flight"
	"kwsdbg/internal/probecache"
)

// bitsetOracle answers probes with bitmap semi-joins first and falls back to
// the embedded prepared oracle for shapes the bitset engine declines. The
// prepared-SQL path stays the oracle of record: the two are property-tested
// byte-identical, and every fallback runs exactly the prepared IsAlive flow.
//
// Probe-cache interaction is unchanged from the prepared path — same lookup,
// same suspect handling, same PutFP stamping — so the monotone verdict
// repair machinery works identically no matter which engine proves the
// verdict. The bitset engine's own memos carry their own vervec stamps and
// need no per-run synchronization.
type bitsetOracle struct {
	*preparedOracle
	eval *bitprobe.Evaluator

	bitsetHits      atomic.Int64
	bitsetFallbacks atomic.Int64
}

func newBitsetOracle(ctx context.Context, lat *lattice.Lattice, eng *engine.Engine, handles *engine.PreparedCache, keywords []string, eval *bitprobe.Evaluator) *bitsetOracle {
	return &bitsetOracle{
		preparedOracle: newPreparedOracle(ctx, lat, eng, handles, keywords),
		eval:           eval,
	}
}

// warmBatch implements batchPreparer: the bitset analogue warms compiled
// probe plans and candidate bitmaps. Prepared handles are deliberately not
// pre-compiled — most probes never fall back, and a fallback compiles its
// handle on first need exactly like a cold prepared probe.
func (o *bitsetOracle) warmBatch(nodeIDs []int) {
	for _, id := range nodeIDs {
		o.eval.Warm(o.lat.Node(id), o.keywords, o.probeKey(id))
	}
}

// IsAlive implements Oracle.
//
//kws:hotpath
func (o *bitsetOracle) IsAlive(nodeID int) (bool, error) {
	key := o.probeKey(nodeID)
	suspect := false
	if o.cache != nil {
		alive, outcome := o.cache.Lookup(key)
		if outcome == probecache.Hit {
			o.executed.Add(1)
			o.cacheHits.Add(1)
			o.fl.Emit(flight.ProbeCacheHit, nodeID, key, alive, 0, "")
			return alive, nil
		}
		if outcome == probecache.Suspect {
			suspect = true
			o.suspects.Add(1)
			o.fl.Emit(flight.Suspect, nodeID, key, false, 0, outcome.Cause())
		} else {
			o.fl.Emit(flight.ProbeCacheMiss, nodeID, key, false, 0, outcome.Cause())
		}
	}
	// The prepared path observes cancellation through the engine; the bitset
	// path never enters the engine, so check here to keep deadline and
	// cancellation behavior equivalent.
	if err := o.ctx.Err(); err != nil {
		return false, fmt.Errorf("core: probe node %d: %w", nodeID, err)
	}
	// One timer spans the whole probe: a declined bitset attempt stays
	// inside the fallback's measured duration, so SQLTime remains "time
	// spent servicing probes" on every path.
	start := clock.Now()
	alive, served, cause := o.eval.Probe(o.lat.Node(nodeID), o.keywords, key)
	if served {
		o.executed.Add(1)
		o.bitsetHits.Add(1)
		dur := clock.Since(start)
		o.sqlNanos.Add(int64(dur))
		o.fl.Emit(flight.BitsetHit, nodeID, key, alive, dur, "")
		if o.cache != nil {
			o.cache.PutFP(key, alive, o.footprint(nodeID), o.view)
			if suspect {
				o.repaired.Add(1)
				o.fl.Emit(flight.Repair, nodeID, key, alive, 0, repairCause(alive))
			}
		}
		return alive, nil
	}
	o.bitsetFallbacks.Add(1)
	o.fl.Emit(flight.BitsetFallback, nodeID, key, false, 0, cause)
	h, err := o.handle(nodeID)
	if err != nil {
		return false, err
	}
	res, err := h.ExecFlight(o.ctx, o.cands, o.fl, nodeID, key)
	if err != nil {
		return false, fmt.Errorf("core: probe node %d: %w", nodeID, err)
	}
	alive = len(res.Rows) > 0
	o.executed.Add(1)
	dur := clock.Since(start)
	o.sqlNanos.Add(int64(dur))
	o.fl.Emit(flight.SQLExec, nodeID, key, alive, dur, "")
	if o.cache != nil {
		o.cache.PutFP(key, alive, o.footprint(nodeID), o.view)
		if suspect {
			o.repaired.Add(1)
			o.fl.Emit(flight.Repair, nodeID, key, alive, 0, repairCause(alive))
		}
	}
	return alive, nil
}

// Stats implements Oracle.
func (o *bitsetOracle) Stats() OracleStats {
	return OracleStats{
		Executed:        int(o.executed.Load()),
		CacheHits:       int(o.cacheHits.Load()),
		Compiled:        int(o.compiled.Load()),
		SQLTime:         time.Duration(o.sqlNanos.Load()),
		Suspects:        int(o.suspects.Load()),
		Repaired:        int(o.repaired.Load()),
		BitsetHits:      int(o.bitsetHits.Load()),
		BitsetFallbacks: int(o.bitsetFallbacks.Load()),
	}
}
