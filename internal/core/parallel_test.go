package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"kwsdbg/internal/probecache"
)

// normalized strips the execution-dependent fields from an Output — wall
// times and cache hits — leaving exactly what the determinism guarantee
// covers: answers, non-answers, MPAN sets (with ordering), keyword sets, and
// the probe/inference counts.
func normalized(out *Output) Output {
	n := *out
	n.Stats.MapTime = 0
	n.Stats.PruneTime = 0
	n.Stats.MTNTime = 0
	n.Stats.SQLTime = 0
	n.Stats.TraverseTime = 0
	n.Stats.CacheHits = 0
	// Prepared-pipeline accounting depends on what earlier runs warmed
	// (handle cache, candidate sets), not on the query — and is zero by
	// definition on the text path.
	n.Stats.PlanCompiles = 0
	n.Stats.CandSetHits = 0
	n.Stats.CandSetMisses = 0
	// Verdict-repair traffic likewise depends on which writes landed
	// between runs, never on the query.
	n.Stats.Suspects = 0
	n.Stats.Repaired = 0
	// Bitset-path accounting depends on the chosen probe path and its warm
	// state, never on the query's answer set.
	n.Stats.BitsetHits = 0
	n.Stats.BitsetFallbacks = 0
	return n
}

// TestParallelDeterminism is the scheduler's contract as a property test:
// across random schemas, data, and keyword queries, every strategy run with
// Workers 2 and 8 — cache bypassed and cache enabled — produces an Output
// identical to the serial, uncached run, including SQLExecuted and Inferred.
// The only fields allowed to differ are wall times and CacheHits.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep is slow")
	}
	r := rand.New(rand.NewSource(20150806))
	vocabPlus := []string{"amber", "birch", "cedar", "dune", "ember", "flint", "grove", "haze", "missing"}
	allStrategies := append(append([]Strategy{}, Strategies...), RE)
	for trial := 0; trial < 6; trial++ {
		sys, _ := randomSystem(t, r)
		sys.SetProbeCache(probecache.New(probecache.Config{}))
		for q := 0; q < 4; q++ {
			nk := 1 + r.Intn(3)
			kws := make([]string, nk)
			for i := range kws {
				kws[i] = vocabPlus[r.Intn(len(vocabPlus))]
			}
			for _, strat := range allStrategies {
				base, err := sys.Debug(kws, Options{Strategy: strat, BypassCache: true})
				if err != nil {
					t.Fatalf("trial %d %v %v serial: %v", trial, kws, strat, err)
				}
				want := normalized(base)
				variants := []Options{
					{Strategy: strat, Workers: 2, BypassCache: true},
					{Strategy: strat, Workers: 8, BypassCache: true},
					{Strategy: strat, Workers: 1},
					{Strategy: strat, Workers: 2},
					{Strategy: strat, Workers: 8},
				}
				for _, opts := range variants {
					out, err := sys.Debug(kws, opts)
					if err != nil {
						t.Fatalf("trial %d %v %v workers=%d cache=%v: %v",
							trial, kws, strat, opts.Workers, !opts.BypassCache, err)
					}
					if got := normalized(out); !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d %v: %v workers=%d cache=%v diverges from serial\ngot:  %+v\nwant: %+v",
							trial, kws, strat, opts.Workers, !opts.BypassCache, got, want)
					}
					if out.Stats.CacheHits > out.Stats.SQLExecuted {
						t.Fatalf("trial %d %v %v: CacheHits %d > SQLExecuted %d",
							trial, kws, strat, out.Stats.CacheHits, out.Stats.SQLExecuted)
					}
				}
			}
		}
	}
}

// TestParallelSessionProbeCount pins down the single-flight guarantee: a
// session running BU with Workers=8 — parallel per-MTN runs sharing the
// memo — must execute exactly as many probes as a serial session, because
// concurrent duplicate probes of a shared descendant coalesce just like the
// serial memo hit they replace.
func TestParallelSessionProbeCount(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"saffron", "scented", "candle"}
	for _, strat := range []Strategy{BU, TD, BUWR, TDWR} {
		serial, err := sys.NewSession(kws)
		if err != nil {
			t.Fatal(err)
		}
		outS, err := serial.Run(Options{Strategy: strat})
		if err != nil {
			t.Fatalf("%v serial: %v", strat, err)
		}
		par, err := sys.NewSession(kws)
		if err != nil {
			t.Fatal(err)
		}
		outP, err := par.Run(Options{Strategy: strat, Workers: 8})
		if err != nil {
			t.Fatalf("%v parallel: %v", strat, err)
		}
		if serial.Probes() != par.Probes() {
			t.Errorf("%v: serial session executed %d probes, parallel %d",
				strat, serial.Probes(), par.Probes())
		}
		if !reflect.DeepEqual(canonical(outS), canonical(outP)) {
			t.Errorf("%v: parallel session output diverges", strat)
		}
	}
}

// TestConcurrentDebugWithCache hammers one System from many goroutines with
// mixed strategies, worker counts, and cache modes. Run under -race: it
// exercises concurrent probe-cache access, concurrent engine Selects, and
// concurrent scheduler pools sharing one process.
func TestConcurrentDebugWithCache(t *testing.T) {
	sys := productSystem(t)
	sys.SetProbeCache(probecache.New(probecache.Config{MaxEntries: 128, TTL: time.Minute}))
	kws := []string{"saffron", "scented", "candle"}
	ref, err := sys.Debug(kws, Options{Strategy: RE, BypassCache: true})
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(ref)
	strategies := []Strategy{BU, TD, BUWR, TDWR, SBH, RE}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				opts := Options{
					Strategy:    strategies[(g+i)%len(strategies)],
					Workers:     []int{1, 2, 8}[(g+i)%3],
					BypassCache: (g+i)%4 == 0,
				}
				out, err := sys.Debug(kws, opts)
				if err != nil {
					errCh <- err
					return
				}
				if got := canonical(out); !reflect.DeepEqual(got, want) {
					errCh <- fmt.Errorf("%v workers=%d diverged under concurrency", opts.Strategy, opts.Workers)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestWorkersClamped verifies the Options.Workers normalization contract —
// the exported clamp is the single authority the server reuses too.
func TestWorkersClamped(t *testing.T) {
	for in, want := range map[int]int{-3: 1, 0: 1, 1: 1, 8: 8, MaxWorkers: MaxWorkers, 1000: MaxWorkers} {
		if got := ClampWorkers(in); got != want {
			t.Errorf("ClampWorkers(%d) = %d, want %d", in, got, want)
		}
	}
}
