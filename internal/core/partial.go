package core

import (
	"sort"

	"kwsdbg/internal/invidx"
)

// PartialResult is one tuple from a maximal alive sub-query, returned when
// the full keyword query has no answers: the paper's Figure 1, where
// buy.com answers "saffron scented candle" with saffron-scented products and
// scented candles instead of an empty page.
type PartialResult struct {
	// Covered lists the keywords this sub-query does satisfy, in query
	// order. The missing ones are exactly what the result row lacks.
	Covered []string
	SearchResult
}

// SearchPartial is the end-user fallback behind "no results found": when the
// keyword query has alive candidate networks it behaves exactly like Search
// (full results, empty partials); when every candidate network is dead, it
// evaluates the maximal alive sub-queries (the same MPANs the debugger
// reports to developers) and returns their top rows, ranked by keyword
// coverage first and relevance second. One lattice traversal serves both the
// developer-facing explanation and the user-facing partial results — the
// symmetry the paper's introduction points out.
func (sys *System) SearchPartial(keywords []string, topK int) (full []SearchResult, partial []PartialResult, missing []string, err error) {
	full, missing, err = sys.Search(keywords, topK)
	if err != nil || len(missing) > 0 || len(full) > 0 {
		return full, nil, missing, err
	}
	out, err := sys.Debug(keywords, Options{Strategy: SBH})
	if err != nil {
		return nil, nil, nil, err
	}
	var kwTokens []string
	for _, kw := range keywords {
		kwTokens = append(kwTokens, invidx.Tokenize(kw)...)
	}
	seen := make(map[int]bool)
	for _, na := range out.NonAnswers {
		for _, p := range na.MPANs {
			if seen[p.NodeID] {
				continue
			}
			seen[p.NodeID] = true
			node := sys.lat.Node(p.NodeID)
			covered := coveredKeywords(node.CopyMask, keywords)
			if len(covered) == 0 {
				continue // a free-only frontier carries nothing to show
			}
			sel, err := sys.lat.Select(node, keywords, false)
			if err != nil {
				return nil, nil, nil, err
			}
			sel.Limit = topK
			res, err := sys.eng.Select(sel)
			if err != nil {
				return nil, nil, nil, err
			}
			info := sys.queryInfo(p.NodeID, keywords)
			textCols := sys.textColumnIndexes(node)
			for _, row := range res.Rows {
				tf := 0
				for _, ci := range textCols {
					tf += tokenHits(row[ci].S, kwTokens)
				}
				partial = append(partial, PartialResult{
					Covered: covered,
					SearchResult: SearchResult{
						Query:   info,
						Columns: res.Columns,
						Tuple:   row,
						Score:   float64(tf) / float64(node.Level),
					},
				})
			}
		}
	}
	sort.SliceStable(partial, func(i, j int) bool {
		if len(partial[i].Covered) != len(partial[j].Covered) {
			return len(partial[i].Covered) > len(partial[j].Covered)
		}
		if partial[i].Score != partial[j].Score {
			return partial[i].Score > partial[j].Score
		}
		return partial[i].Query.Tree < partial[j].Query.Tree
	})
	if len(partial) > topK {
		partial = partial[:topK]
	}
	return nil, partial, nil, nil
}

// coveredKeywords maps a node's copy mask back to the keywords it covers.
func coveredKeywords(mask uint64, keywords []string) []string {
	var out []string
	for i := range keywords {
		if mask&(1<<uint(i+1)) != 0 {
			out = append(out, keywords[i])
		}
	}
	return out
}
