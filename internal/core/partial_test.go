package core

import (
	"reflect"
	"strings"
	"testing"
)

// TestSearchPartialFigure1 reproduces the paper's Figure 1: the dead query
// "saffron scented candle" yields partial results covering two of the three
// keywords — saffron-scented products and scented candles — instead of an
// empty page.
func TestSearchPartialFigure1(t *testing.T) {
	sys := productSystem(t)
	// Use a filter to drop the shared-PType interpretation, which is alive
	// and would short-circuit into full results; the paper's Figure 1
	// scenario is the all-dead case.
	full, partial, missing, err := sys.SearchPartial([]string{"saffron", "scented", "incense"}, 10)
	if err != nil {
		t.Fatalf("SearchPartial: %v", err)
	}
	if len(missing) > 0 {
		t.Fatalf("missing = %v", missing)
	}
	if len(full) != 0 {
		t.Fatalf("expected no full results, got %d", len(full))
	}
	if len(partial) == 0 {
		t.Fatal("no partial results for a dead query")
	}
	// Coverage-first ordering, and every partial covers a strict subset.
	for i, p := range partial {
		if len(p.Covered) == 0 || len(p.Covered) >= 3 {
			t.Errorf("partial %d covers %v", i, p.Covered)
		}
		if i > 0 && len(p.Covered) > len(partial[i-1].Covered) {
			t.Errorf("partial %d out of coverage order", i)
		}
	}
	// The two-keyword frontier "saffron scented" must surface (the oil).
	found := false
	for _, p := range partial {
		if reflect.DeepEqual(p.Covered, []string{"saffron", "scented"}) &&
			strings.Contains(p.String(), "saffron scented oil") {
			found = true
		}
	}
	if !found {
		t.Errorf("saffron-scented partial missing: %+v", partial)
	}
}

func TestSearchPartialFullShortCircuit(t *testing.T) {
	sys := productSystem(t)
	full, partial, missing, err := sys.SearchPartial([]string{"scented", "candle"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 || len(partial) > 0 {
		t.Fatalf("alive query produced partials: %v %v", missing, partial)
	}
	if len(full) == 0 {
		t.Fatal("alive query produced no results")
	}
}

func TestSearchPartialMissingKeyword(t *testing.T) {
	sys := productSystem(t)
	full, partial, missing, err := sys.SearchPartial([]string{"zzz", "candle"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 0 || len(partial) != 0 || !reflect.DeepEqual(missing, []string{"zzz"}) {
		t.Fatalf("full=%d partial=%d missing=%v", len(full), len(partial), missing)
	}
}

func TestSearchPartialTopK(t *testing.T) {
	sys := productSystem(t)
	_, partial, _, err := sys.SearchPartial([]string{"saffron", "scented", "incense"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) > 2 {
		t.Fatalf("topK=2 returned %d partials", len(partial))
	}
	if _, _, _, err := sys.SearchPartial([]string{"candle"}, 0); err == nil {
		t.Error("topK=0 accepted")
	}
}
