package core

import (
	"math/rand"
	"reflect"
	"testing"

	"kwsdbg/internal/probecache"
)

// The tentpole's standing property: the prepared-probe pipeline is an
// execution-strategy change, not a semantics change. Across random schemas,
// data, and queries, a prepared-path run at any worker count must produce an
// Output identical to the text-path run — answers, non-answers, MPAN sets,
// and the logical probe counts (SQLExecuted, Inferred) — with or without the
// verdict cache.
func TestPreparedTextEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep is slow")
	}
	r := rand.New(rand.NewSource(20260806))
	vocab := []string{"amber", "birch", "cedar", "dune", "ember", "flint", "grove", "haze", "missing"}
	strategies := []Strategy{SBH, BUWR, RE}
	for trial := 0; trial < 4; trial++ {
		sys, _ := randomSystem(t, r)
		sys.SetProbeCache(probecache.New(probecache.Config{}))
		for q := 0; q < 3; q++ {
			nk := 1 + r.Intn(3)
			kws := make([]string, nk)
			for i := range kws {
				kws[i] = vocab[r.Intn(len(vocab))]
			}
			for _, strat := range strategies {
				ref, err := sys.Debug(kws, Options{Strategy: strat, BypassCache: true, TextProbes: true})
				if err != nil {
					t.Fatalf("trial %d %v %v text: %v", trial, kws, strat, err)
				}
				want := normalized(ref)
				for _, workers := range []int{1, 4, 8} {
					for _, bypass := range []bool{true, false} {
						out, err := sys.Debug(kws, Options{Strategy: strat, Workers: workers, BypassCache: bypass})
						if err != nil {
							t.Fatalf("trial %d %v %v prepared workers=%d: %v", trial, kws, strat, workers, err)
						}
						if got := normalized(out); !reflect.DeepEqual(got, want) {
							t.Fatalf("trial %d %v %v: prepared workers=%d cache=%v diverges from text path\ngot:  %+v\nwant: %+v",
								trial, kws, strat, workers, !bypass, got, want)
						}
					}
				}
			}
		}
	}
}

// An INSERT between two debug runs must invalidate every layer of the
// prepared pipeline: the second prepared run must match a text-path run
// executed after the insert, not the pre-insert state it had handles for.
func TestPreparedInvalidatesOnInsert(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"lilac"}
	before, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true})
	if err != nil {
		t.Fatalf("Debug: %v", err)
	}
	if len(before.Answers) != 0 {
		t.Fatalf("pre-insert answers = %d, want 0", len(before.Answers))
	}
	if _, err := sys.Engine().Exec("INSERT INTO Item VALUES (9, 'lilac candle', 2, 3, 2, 6.0, 'fresh')"); err != nil {
		t.Fatalf("Exec(INSERT): %v", err)
	}
	fresh, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true, TextProbes: true})
	if err != nil {
		t.Fatalf("Debug text: %v", err)
	}
	after, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true})
	if err != nil {
		t.Fatalf("Debug prepared: %v", err)
	}
	if len(after.Answers) == 0 {
		t.Fatal("post-insert prepared run still reports no answers (stale plan or candidate set)")
	}
	got, want := normalized(after), normalized(fresh)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-insert prepared run diverges from fresh text run\ngot:  %+v\nwant: %+v", got, want)
	}
}
