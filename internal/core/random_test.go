package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/storage"
)

// randomSystem builds a debugger over a randomly shaped schema with random
// data: 3-6 relations, each with a text column (sometimes two), random
// key-foreign-key edges forming a connected graph plus extras, and 10-60
// rows per table drawn from a small vocabulary so keyword queries hit a mix
// of alive and dead interpretations.
func randomSystem(t *testing.T, r *rand.Rand) (*System, []string) {
	t.Helper()
	vocab := []string{"amber", "birch", "cedar", "dune", "ember", "flint", "grove", "haze"}
	nRel := 3 + r.Intn(4)
	b := catalog.NewSchemaBuilder()
	names := make([]string, nRel)
	twoText := make([]bool, nRel)
	for i := range names {
		names[i] = fmt.Sprintf("R%d", i)
		cols := []catalog.Column{
			{Name: "id", Type: catalog.Int, PrimaryKey: true},
			{Name: "txt", Type: catalog.Text},
		}
		for j := 0; j < i; j++ {
			cols = append(cols, catalog.Column{Name: fmt.Sprintf("fk%d", j), Type: catalog.Int})
		}
		if r.Intn(3) == 0 {
			twoText[i] = true
			cols = append(cols, catalog.Column{Name: "extra", Type: catalog.Text})
		}
		b.AddRelation(catalog.MustRelation(names[i], cols...))
	}
	// Connect relation i to one random earlier relation through column fk_j
	// (guarantees a connected schema graph), then occasionally wire one of
	// its remaining fk columns to a second relation, giving branchier
	// schema graphs and parallel join paths.
	for i := 1; i < nRel; i++ {
		j := r.Intn(i)
		b.AddEdge(names[i], fmt.Sprintf("fk%d", j), names[j], "id")
		if i >= 2 && r.Intn(2) == 0 {
			j2 := (j + 1 + r.Intn(i-1)) % i
			if j2 != j {
				b.AddEdge(names[i], fmt.Sprintf("fk%d", j2), names[j2], "id")
			}
		}
	}
	schema := b.MustBuild()
	db := storage.NewDatabase(schema)
	for i, name := range names {
		tbl, _ := db.Table(name)
		rows := 10 + r.Intn(50)
		for id := 1; id <= rows; id++ {
			row := storage.Row{storage.IntV(int64(id))}
			row = append(row, storage.TextV(vocab[r.Intn(len(vocab))]+" "+vocab[r.Intn(len(vocab))]))
			for j := 0; j < i; j++ {
				row = append(row, storage.IntV(int64(1+r.Intn(40))))
			}
			if twoText[i] {
				row = append(row, storage.TextV(vocab[r.Intn(len(vocab))]))
			}
			tbl.MustInsert(row)
		}
	}
	eng := engine.New(db)
	sys, err := Build(eng, lattice.Options{MaxJoins: 2, KeywordSlots: 3, Workers: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sys, vocab
}

// TestRandomSchemaStrategyEquivalence is the heavyweight correctness sweep:
// across random schemas, random data, and random keyword queries, every
// traversal strategy must agree with the Return Everything oracle on
// answers, non-answers, and MPAN sets.
func TestRandomSchemaStrategyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep is slow")
	}
	r := rand.New(rand.NewSource(20150327))
	vocabPlus := []string{"amber", "birch", "cedar", "dune", "ember", "flint", "grove", "haze", "missing"}
	for trial := 0; trial < 12; trial++ {
		sys, _ := randomSystem(t, r)
		for q := 0; q < 6; q++ {
			nk := 1 + r.Intn(3)
			kws := make([]string, nk)
			for i := range kws {
				kws[i] = vocabPlus[r.Intn(len(vocabPlus))]
			}
			ref, err := sys.Debug(kws, Options{Strategy: RE})
			if err != nil {
				t.Fatalf("trial %d %v RE: %v", trial, kws, err)
			}
			want := canonical(ref)
			for _, strat := range Strategies {
				out, err := sys.Debug(kws, Options{Strategy: strat})
				if err != nil {
					t.Fatalf("trial %d %v %v: %v", trial, kws, strat, err)
				}
				if got := canonical(out); !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %v: %v diverges from RE\ngot:  %v\nwant: %v",
						trial, kws, strat, got, want)
				}
				if out.Stats.SQLExecuted > ref.Stats.SQLExecuted &&
					(strat == BUWR || strat == TDWR || strat == SBH) {
					t.Errorf("trial %d %v: %v executed %d > RE %d",
						trial, kws, strat, out.Stats.SQLExecuted, ref.Stats.SQLExecuted)
				}
			}
			// Random pa values must not change the outcome either.
			pa := 0.05 + 0.9*r.Float64()
			out, err := sys.Debug(kws, Options{Strategy: SBH, Pa: pa})
			if err != nil {
				t.Fatalf("trial %d %v SBH(pa=%v): %v", trial, kws, pa, err)
			}
			if got := canonical(out); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v: SBH(pa=%v) diverges", trial, kws, pa)
			}
		}
	}
}
