package core

import (
	"fmt"
	"sort"

	"kwsdbg/internal/sqltext"
)

// RankedAnswer pairs an answer query with its result cardinality.
type RankedAnswer struct {
	Query   QueryInfo
	Results int64
}

// RankAnswers orders a run's answer queries for presentation: fewer joins
// first (the size normalization used throughout the KWS-S literature —
// DISCOVER and Hristidis et al. both prefer smaller candidate networks),
// and more results first within a join count. It executes one COUNT(*) per
// answer, which is why it is a separate opt-in step rather than part of
// Debug: the paper is explicit that debugging must report *all* causes, so
// ranking is presentation only (§1).
func (sys *System) RankAnswers(out *Output) ([]RankedAnswer, error) {
	ranked := make([]RankedAnswer, 0, len(out.Answers))
	for _, a := range out.Answers {
		n := sys.lat.Node(a.NodeID)
		sel, err := sys.lat.Select(n, out.Keywords, false)
		if err != nil {
			return nil, fmt.Errorf("core: rank %s: %w", a.Tree, err)
		}
		sel.Projection = sqltext.Projection{Count: true}
		res, err := sys.eng.Select(sel)
		if err != nil {
			return nil, fmt.Errorf("core: rank %s: %w", a.Tree, err)
		}
		ranked = append(ranked, RankedAnswer{Query: a, Results: res.Rows[0][0].I})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Query.Level != ranked[j].Query.Level {
			return ranked[i].Query.Level < ranked[j].Query.Level
		}
		if ranked[i].Results != ranked[j].Results {
			return ranked[i].Results > ranked[j].Results
		}
		return ranked[i].Query.Tree < ranked[j].Query.Tree
	})
	return ranked, nil
}
