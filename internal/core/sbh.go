package core

import "container/heap"

// scoreBased is the greedy traversal of §2.5.3. Each unclassified node x is
// scored by the expected shrinkage of the per-MTN search spaces if x were
// probed:
//
//	gain(x) = pa * sum_{y in Desc+(x)} W(y) + (1-pa) * sum_{y in Asc+(x)} W(y)
//
// where W(y) counts the active search spaces still containing y. Minimizing
// the paper's expected-remaining-space score is equivalent to maximizing this
// gain (the paper's Equation 1 rearranged over the current search spaces).
// Because W only decreases as the run progresses, gains are monotonically
// non-increasing, which makes the classic lazy-greedy evaluation exact: pop
// the stale maximum, recompute its gain, and re-insert unless it still beats
// the runner-up.
func (r *run) scoreBased(sd seed, pa float64) error {
	r.enableSearchSpaces()
	r.init(sd)

	gain := func(x int) float64 {
		sumD := float64(r.W[x])
		for _, d := range r.sub.desc[x] {
			sumD += float64(r.W[d])
		}
		sumA := float64(r.W[x])
		for _, a := range r.sub.asc[x] {
			sumA += float64(r.W[a])
		}
		return pa*sumD + (1-pa)*sumA
	}

	h := &gainHeap{}
	for x := 0; x < r.sub.len(); x++ {
		if r.status[x] == stUnknown && r.W[x] > 0 {
			heap.Push(h, gainItem{x: x, gain: gain(x)})
		}
	}
	const eps = 1e-9
	for h.Len() > 0 {
		top := heap.Pop(h).(gainItem)
		if r.status[top.x] != stUnknown || r.W[top.x] == 0 {
			continue
		}
		g := gain(top.x)
		if h.Len() > 0 && g+eps < (*h)[0].gain {
			heap.Push(h, gainItem{x: top.x, gain: g})
			continue
		}
		if err := r.evaluate(top.x); err != nil {
			return err
		}
	}
	return nil
}

// gainItem is one heap entry; stale gains are revalidated on pop.
type gainItem struct {
	x    int
	gain float64
}

// gainHeap is a max-heap on gain with ascending node index as tie-breaker,
// which keeps runs deterministic.
type gainHeap []gainItem

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].x < h[j].x
}
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(v any)   { *h = append(*h, v.(gainItem)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
