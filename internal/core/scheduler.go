package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kwsdbg/internal/obs/flight"
)

// This file is the Phase 3 probe scheduler: a bounded worker pool that
// resolves independent lattice nodes concurrently while keeping every
// observable output byte-identical to the serial traversal.
//
// The correctness argument rests on one structural fact: the classification
// rules only ever cross levels. Rule R1 (alive => descendants alive) walks
// strictly downward and rule R2 (dead descendant => dead) strictly upward,
// and a lattice level is the node's vertex count, so probing a node can
// never change the status of another node on the same level. The level
// buckets of bottomUp/topDown are also final before their level starts
// (parents sit one level up, children one level down). Together that means
// the set of nodes a serial traversal would probe at level L is known the
// moment level L begins — and a pool can probe them in any interleaving,
// as long as the resulting classifications are *committed* in the serial
// order. That replay is what keeps the MPAN candidate sets, the inferred
// counts, and Stats.SQLExecuted exactly equal to the Workers=1 run.
//
// SBH is inherently sequential — every probe choice depends on all previous
// verdicts through the search-space weights — so it ignores the worker
// bound; BU and TD parallelize across their independent per-MTN runs
// instead, which is where their redundant probing makes concurrency pay.

// MaxWorkers caps Options.Workers; beyond this the scheduler is goroutine
// churn, not throughput. It is exported so callers that surface a workers
// knob (the HTTP server, CLIs) share the single authoritative bound instead
// of hard-coding their own.
const MaxWorkers = 64

// ClampWorkers normalizes an Options.Workers value: <= 0 selects serial
// probing (the default behavior), and MaxWorkers bounds resource use. Debug
// applies it internally; callers validating user input should use it too so
// their accepted range can never drift from the scheduler's.
func ClampWorkers(w int) int {
	if w <= 0 {
		return 1
	}
	if w > MaxWorkers {
		return MaxWorkers
	}
	return w
}

// probeOutcome is one node's resolved verdict. done distinguishes "probed"
// from "skipped because the batch was already failing or cancelled".
type probeOutcome struct {
	alive bool
	err   error
	done  bool
}

// dispatch probes xs through the worker pool and returns outcomes aligned
// with xs. Workers claim indexes from an atomic cursor, so the pool stays
// busy regardless of per-probe skew; once any probe fails (or the context
// is cancelled) the remaining unclaimed work is skipped. A skipped index is
// always preceded by a failed one (claims are monotonic), which is what
// lets the caller resolve errors in deterministic, serial order.
func (r *run) dispatch(xs []int) []probeOutcome {
	r.warmHandles(xs)
	outcomes := make([]probeOutcome, len(xs))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	workers := min(r.workers, len(xs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(xs) {
					return
				}
				if failed.Load() || r.ctx.Err() != nil {
					return
				}
				alive, err := r.probe(xs[i])
				outcomes[i] = probeOutcome{alive: alive, err: err, done: true}
				if err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return outcomes
}

// commit replays a batch's outcomes in slice order — the order the serial
// traversal would have applied them — so classifications, MPAN candidate
// sets, and inferred counts evolve identically to Workers=1. The first real
// error in order is returned, matching where a serial run would have
// stopped. Graceful-exhaustion outcomes are different: every verdict the
// pool did land is still committed (they are true database answers, and
// partialResult only reports what the committed set can guarantee), and the
// exhaustion sentinel is returned at the end so the caller degrades to a
// partial result instead of discarding the batch.
func (r *run) commit(xs []int, outcomes []probeOutcome) error {
	var exhausted error
	for i, x := range xs {
		oc := outcomes[i]
		if !oc.done {
			if exhausted != nil {
				// The pool stopped claiming after a lower-index exhaustion;
				// later indexes may still carry verdicts, so keep scanning.
				continue
			}
			// Skips happen only after a failure at a lower index (already
			// returned above) or on cancellation.
			if err := r.ctx.Err(); err != nil {
				return err
			}
			return fmt.Errorf("core: probe of %s skipped without cause", r.sub.node(x))
		}
		if oc.err != nil {
			if errors.Is(oc.err, errExhausted) {
				if exhausted == nil {
					exhausted = oc.err
				}
				continue
			}
			return oc.err
		}
		r.fl.Emit(flight.Verdict, r.sub.nodeID[x], "", oc.alive, 0, "")
		r.classify(x, oc.alive, false)
	}
	return exhausted
}

// resolveLevel settles one traversal level: the still-unknown nodes of xs
// (which is sorted) are probed — concurrently when the run has workers —
// and their verdicts committed in serial order. Nodes already classified by
// cross-level inference cost nothing, exactly as in the serial loop.
func (r *run) resolveLevel(xs []int) error {
	// The probe set is final the moment the level starts (classification
	// rules only cross levels), so the batch's handles can be compiled up
	// front on the serial path too.
	pending := make([]int, 0, len(xs))
	for _, x := range xs {
		if r.status[x] == stUnknown {
			pending = append(pending, x)
		}
	}
	if r.workers <= 1 || len(pending) <= 1 {
		r.warmHandles(pending)
		for _, x := range xs {
			if err := r.evaluate(x); err != nil {
				return err
			}
		}
		return nil
	}
	return r.commit(pending, r.dispatch(pending))
}

// warmHandles pre-compiles the probe handles for a batch when the oracle
// supports it: resolve-only, so it is cheap, and it keeps the probes' handle
// lookups contention-free (and, on the worker pool, free of compile races).
func (r *run) warmHandles(xs []int) {
	p, ok := r.oracle.(batchPreparer)
	if !ok || len(xs) == 0 {
		return
	}
	ids := make([]int, len(xs))
	for i, x := range xs {
		ids[i] = r.sub.nodeID[x]
	}
	p.warmBatch(ids)
}

// runMTNsParallel executes the independent single-MTN runs of the no-reuse
// strategies (BU, TD) concurrently: each MTN gets a private run (private
// statuses, private MPAN candidates — re-probing shared descendants is the
// point of these baselines), the pool is bounded by workers, and results
// merge in MTN order afterwards, so the accumulated Output and the summed
// probe/inferred counts match the serial loop exactly.
func (sys *System) runMTNsParallel(ctx context.Context, sub *sublattice, oracle Oracle, sd seed, strategy Strategy, workers int, gov *governor, fl *flight.Log) (traverseResult, int, error) {
	n := len(sub.mtns)
	results := make([]traverseResult, n)
	inferredBy := make([]int, n)
	errs := make([]error, n)
	done := make([]bool, n)

	runOne := func(mi int) {
		r := newRun(sub, oracle, []int{mi})
		r.ctx, r.workers, r.gov, r.fl = ctx, 1, gov, fl // parallel across MTNs, serial within
		var err error
		if strategy == BU {
			err = r.bottomUp(sd)
		} else {
			err = r.topDown(sd)
		}
		if err == nil {
			results[mi], err = r.result()
		} else if errors.Is(err, errExhausted) {
			// The shared governor ran dry mid-run: keep the guarantees this
			// MTN's run established and let the remaining runs proceed — with
			// no budget left they settle probe-free knowledge (base levels,
			// pins) and report partial results of their own.
			results[mi], err = r.partialResult(), nil
		}
		inferredBy[mi] = r.inferred
		errs[mi] = err
		done[mi] = true
	}

	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < min(workers, n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mi := int(next.Add(1)) - 1
				if mi >= n {
					return
				}
				if failed.Load() || ctx.Err() != nil {
					return
				}
				runOne(mi)
				if errs[mi] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	acc := traverseResult{mpans: make(map[int][]int)}
	inferred := 0
	for mi := 0; mi < n; mi++ {
		if errs[mi] != nil {
			return traverseResult{}, 0, errs[mi]
		}
		if !done[mi] {
			if err := ctx.Err(); err != nil {
				return traverseResult{}, 0, err
			}
			return traverseResult{}, 0, fmt.Errorf("core: MTN run %d skipped without cause", mi)
		}
		acc.merge(results[mi])
		inferred += inferredBy[mi]
	}
	sort.Ints(acc.aliveMTNs)
	sort.Ints(acc.deadMTNs)
	return acc, inferred, nil
}
