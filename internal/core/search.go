package core

import (
	"fmt"
	"sort"
	"strings"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/invidx"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/storage"
)

// perNetworkFactor bounds how many tuples Search fetches per candidate
// network, as a multiple of topK.
const perNetworkFactor = 50

// SearchResult is one joined tuple tree returned to an end user: a row of
// one candidate network's join, with the usual KWS-S relevance score.
type SearchResult struct {
	// Query identifies the candidate network that produced the tuple.
	Query QueryInfo
	// Columns and Tuple are the join's output row ("alias.column" names).
	Columns []string
	Tuple   []storage.Value
	// Score is keyword-frequency over join size (see Search).
	Score float64
}

// Search is the user-facing keyword-search operation of a KWS-S system in
// the DISCOVER tradition: map the keywords to candidate networks (phases 1-2
// of the lattice pipeline), evaluate them, and return the topK joined tuples
// ranked by
//
//	score = (total keyword-token occurrences in the tuple's text columns)
//	        / (number of relations in the join),
//
// the size normalization the literature uses so that tighter connections
// rank above long join chains. Non-answers contribute nothing here — they
// are the debugger's department (Debug) — but a query whose keywords are
// absent from the data reports them via the returned missing slice, the same
// "and" semantics cut-off as Debug.
func (sys *System) Search(keywords []string, topK int) (results []SearchResult, missing []string, err error) {
	if topK <= 0 {
		return nil, nil, fmt.Errorf("core: topK must be positive, got %d", topK)
	}
	ph, err := sys.phase12(keywords)
	if err != nil {
		return nil, nil, err
	}
	if len(ph.nonKeywords) > 0 {
		return nil, ph.nonKeywords, nil
	}
	var kwTokens []string
	for _, kw := range keywords {
		kwTokens = append(kwTokens, invidx.Tokenize(kw)...)
	}
	for _, id := range ph.mtnIDs {
		node := sys.lat.Node(id)
		sel, err := sys.lat.Select(node, keywords, false)
		if err != nil {
			return nil, nil, err
		}
		// Rows come back in join-enumeration order, not score order, so a
		// bounded per-network fetch is needed for safety but must leave
		// headroom: the top-k is exact unless one network yields more than
		// perNetworkFactor*topK tuples (joins over free tuple sets can
		// explode combinatorially).
		sel.Limit = topK * perNetworkFactor
		res, err := sys.eng.Select(sel)
		if err != nil {
			return nil, nil, err
		}
		if len(res.Rows) == 0 {
			continue
		}
		info := sys.queryInfo(id, keywords)
		textCols := sys.textColumnIndexes(node)
		for _, row := range res.Rows {
			tf := 0
			for _, ci := range textCols {
				tf += tokenHits(row[ci].S, kwTokens)
			}
			results = append(results, SearchResult{
				Query:   info,
				Columns: res.Columns,
				Tuple:   row,
				Score:   float64(tf) / float64(node.Level),
			})
		}
	}
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		if results[i].Query.Level != results[j].Query.Level {
			return results[i].Query.Level < results[j].Query.Level
		}
		return results[i].Query.Tree < results[j].Query.Tree
	})
	if len(results) > topK {
		results = results[:topK]
	}
	return results, nil, nil
}

// textColumnIndexes returns the positions of text columns within a node's
// SELECT * output (aliases are emitted in vertex order, columns in schema
// order).
func (sys *System) textColumnIndexes(node *lattice.Node) []int {
	var out []int
	pos := 0
	for _, v := range node.Vertices {
		rel, _ := sys.lat.Schema().Relation(v.Rel)
		for _, c := range rel.Columns {
			if c.Type == catalog.Text {
				out = append(out, pos)
			}
			pos++
		}
	}
	return out
}

// tokenHits counts how many keyword tokens occur in the cell (each distinct
// occurrence of each token counts once per token).
func tokenHits(cell string, kwTokens []string) int {
	if cell == "" {
		return 0
	}
	have := make(map[string]int)
	for _, tok := range invidx.Tokenize(cell) {
		have[tok]++
	}
	hits := 0
	for _, tok := range kwTokens {
		hits += have[tok]
	}
	return hits
}

// String renders a search result compactly for CLIs.
func (r SearchResult) String() string {
	var parts []string
	for i, v := range r.Tuple {
		if v.Kind == catalog.Text && v.S != "" {
			parts = append(parts, r.Columns[i]+"="+v.S)
		}
	}
	return fmt.Sprintf("%.2f %s [%s]", r.Score, r.Query.Tree, strings.Join(parts, " "))
}
