package core

import (
	"reflect"
	"strings"
	"testing"
)

func TestSearchBasic(t *testing.T) {
	sys := productSystem(t)
	results, missing, err := sys.Search([]string{"scented", "candle"}, 10)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	if len(results) == 0 {
		t.Fatal("no results for scented candle")
	}
	// Every result tuple actually contains matches, and scores are sorted.
	for i, r := range results {
		if r.Score <= 0 {
			t.Errorf("result %d has score %v", i, r.Score)
		}
		if i > 0 && r.Score > results[i-1].Score {
			t.Errorf("result %d out of order: %v after %v", i, r.Score, results[i-1].Score)
		}
		if len(r.Columns) != len(r.Tuple) {
			t.Errorf("result %d: %d columns, %d values", i, len(r.Columns), len(r.Tuple))
		}
	}
	// The top results come from the tightest joins.
	if results[0].Query.Level > results[len(results)-1].Query.Level {
		t.Errorf("loosest join ranked above tightest: %+v", results[0].Query)
	}
	// The candle items themselves must surface.
	found := false
	for _, r := range results {
		if strings.Contains(r.String(), "vanilla scented candle") ||
			strings.Contains(r.String(), "crimson scented candle") {
			found = true
		}
	}
	if !found {
		t.Error("scented candles missing from search results")
	}
}

func TestSearchTopK(t *testing.T) {
	sys := productSystem(t)
	all, _, err := sys.Search([]string{"scented", "candle"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	two, _, err := sys.Search([]string{"scented", "candle"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("topK=2 returned %d", len(two))
	}
	if len(all) <= 2 {
		t.Fatalf("expected more than 2 total results, got %d", len(all))
	}
	// The top-2 of the full list match the truncated call.
	for i := range two {
		if two[i].Score != all[i].Score || two[i].Query.Tree != all[i].Query.Tree {
			t.Errorf("topK result %d differs: %+v vs %+v", i, two[i], all[i])
		}
	}
}

func TestSearchMissingKeyword(t *testing.T) {
	sys := productSystem(t)
	results, missing, err := sys.Search([]string{"zzz", "candle"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || !reflect.DeepEqual(missing, []string{"zzz"}) {
		t.Errorf("results=%d missing=%v", len(results), missing)
	}
}

func TestSearchNonAnswerIsEmpty(t *testing.T) {
	sys := productSystem(t)
	// All interpretations of this phrase are... one is alive (the shared
	// product-type network), so use a genuinely dead combination.
	results, missing, err := sys.Search([]string{"pink", "checkered"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	// pink items do not exist; the keyword binds only to Color. Whatever
	// comes back must genuinely contain both keywords somewhere.
	for _, r := range results {
		s := strings.ToLower(r.String())
		if !strings.Contains(s, "pink") && !strings.Contains(s, "checkered") {
			t.Errorf("result without any keyword: %s", r.String())
		}
	}
}

func TestSearchErrors(t *testing.T) {
	sys := productSystem(t)
	if _, _, err := sys.Search([]string{"candle"}, 0); err == nil {
		t.Error("topK=0 accepted")
	}
	if _, _, err := sys.Search(nil, 5); err == nil {
		t.Error("empty query accepted")
	}
}
