package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Session supports the interactive debugging loop the paper's conclusion
// calls out as future work ("debugging is often an interactive process and
// it is worth studying how to combine the search for MPANs with user
// intervention"): repeated runs over one keyword query where
//
//   - probe results are memoized, so a re-run after narrowing the question
//     costs no SQL for anything already learned, and
//   - the developer can pin aliveness facts ("assume this sub-query is
//     alive — I just fixed the data" / "treat this branch as dead") and see
//     the hypothetical answers, non-answers, and MPANs without touching the
//     database.
//
// Pinned facts are injected as knowledge before any probing and propagate
// through the classification rules: pinning a node alive implies its whole
// sub-query tree alive (rule R1), pinning it dead kills its ancestors
// (rule R2). They take precedence over both the memo and the database, which
// makes the output *hypothetical* — exactly their point. After a real data
// change call Reset to drop the memo (and let the engine rebuild its
// inverted index).
type Session struct {
	sys      *System
	keywords []string
	pinned   map[int]bool // lattice node ID -> assumed aliveness
	memo     map[int]bool // probe results learned in previous runs
	probes   int          // SQL probes across the session's lifetime
}

// NewSession starts an interactive session for one keyword query.
func (sys *System) NewSession(keywords []string) (*Session, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("core: empty keyword query")
	}
	if len(keywords) > sys.lat.KeywordSlots() {
		return nil, fmt.Errorf("core: query has %d keywords; lattice supports %d",
			len(keywords), sys.lat.KeywordSlots())
	}
	return &Session{
		sys:      sys,
		keywords: keywords,
		pinned:   make(map[int]bool),
		memo:     make(map[int]bool),
	}, nil
}

// Keywords returns the session's keyword query.
func (s *Session) Keywords() []string { return s.keywords }

// Pin asserts a node's aliveness for subsequent runs.
func (s *Session) Pin(nodeID int, alive bool) { s.pinned[nodeID] = alive }

// Unpin removes an assertion.
func (s *Session) Unpin(nodeID int) { delete(s.pinned, nodeID) }

// Pins lists the currently pinned node IDs, sorted.
func (s *Session) Pins() []int {
	out := make([]int, 0, len(s.pinned))
	for id := range s.pinned {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Reset drops the memoized probe results (call after editing the data) while
// keeping the pins.
func (s *Session) Reset() { s.memo = make(map[int]bool) }

// Probes reports the total SQL probes the session has executed.
func (s *Session) Probes() int { return s.probes }

// Run executes phases 1-3 under the session's pins and memo.
func (s *Session) Run(opts Options) (*Output, error) {
	out, err := s.sys.debugWith(context.Background(), s.keywords, opts, s)
	if err != nil {
		return nil, err
	}
	s.probes += out.Stats.SQLExecuted
	return out, nil
}

// sessionOracle layers pins and the memo over the SQL oracle. Concurrent
// probes of the same node (parallel BU/TD runs share descendants) are
// single-flighted: one caller executes, the rest wait for its verdict. That
// is not just an optimization — it keeps the probe count identical to the
// serial run, where the first traversal pays for a shared node and every
// later one hits the memo.
type sessionOracle struct {
	inner Oracle
	s     *Session

	mu       sync.Mutex
	inflight map[int]*probeCall
}

// probeCall is one in-flight probe; done closes when alive/err are final.
type probeCall struct {
	done  chan struct{}
	alive bool
	err   error
}

// IsAlive implements Oracle.
func (o *sessionOracle) IsAlive(nodeID int) (bool, error) {
	// Pins are written only between runs; reading without the lock is safe.
	if alive, ok := o.s.pinned[nodeID]; ok {
		return alive, nil
	}
	o.mu.Lock()
	if alive, ok := o.s.memo[nodeID]; ok {
		o.mu.Unlock()
		return alive, nil
	}
	if c, ok := o.inflight[nodeID]; ok {
		o.mu.Unlock()
		<-c.done
		return c.alive, c.err
	}
	if o.inflight == nil {
		o.inflight = make(map[int]*probeCall)
	}
	c := &probeCall{done: make(chan struct{})}
	o.inflight[nodeID] = c
	o.mu.Unlock()

	c.alive, c.err = o.inner.IsAlive(nodeID)

	o.mu.Lock()
	if c.err == nil {
		o.s.memo[nodeID] = c.alive
	}
	delete(o.inflight, nodeID)
	o.mu.Unlock()
	close(c.done)
	return c.alive, c.err
}

// Stats implements Oracle.
func (o *sessionOracle) Stats() OracleStats { return o.inner.Stats() }

// warmBatch forwards batch pre-compilation to the inner oracle when it
// supports it, skipping nodes the session has already settled — their
// probes will be answered from pins or the memo without a handle.
func (o *sessionOracle) warmBatch(nodeIDs []int) {
	p, ok := o.inner.(batchPreparer)
	if !ok {
		return
	}
	need := make([]int, 0, len(nodeIDs))
	o.mu.Lock()
	for _, id := range nodeIDs {
		if _, pinned := o.s.pinned[id]; pinned {
			continue
		}
		if _, known := o.s.memo[id]; known {
			continue
		}
		need = append(need, id)
	}
	o.mu.Unlock()
	p.warmBatch(need)
}
