package core

import (
	"reflect"
	"testing"
)

func TestSessionMemoSavesSQL(t *testing.T) {
	sys := productSystem(t)
	sess, err := sys.NewSession([]string{"saffron", "scented", "candle"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	// Seed the memo with RE, which probes every node the strategies can
	// ever touch; afterwards any traversal order re-runs for free.
	first, err := sess.Run(Options{Strategy: RE})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first.Stats.SQLExecuted == 0 {
		t.Fatal("first run executed no SQL")
	}
	for _, strat := range []Strategy{SBH, BUWR, TDWR, BU, TD, RE} {
		again, err := sess.Run(Options{Strategy: strat})
		if err != nil {
			t.Fatalf("re-run %v: %v", strat, err)
		}
		if again.Stats.SQLExecuted != 0 {
			t.Errorf("%v re-run executed %d SQL probes, want 0", strat, again.Stats.SQLExecuted)
		}
		if got, want := canonical(again), canonical(first); !reflect.DeepEqual(got, want) {
			t.Errorf("%v re-run diverged", strat)
		}
	}
	if sess.Probes() != first.Stats.SQLExecuted {
		t.Errorf("Probes() = %d, want %d", sess.Probes(), first.Stats.SQLExecuted)
	}
}

func TestSessionPinWhatIf(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"saffron", "scented", "candle"}
	sess, err := sys.NewSession(kws)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sess.Run(Options{Strategy: SBH})
	if err != nil {
		t.Fatal(err)
	}
	// Find q1 (Color#1-Item#2-PType#3), dead in the base run.
	var q1 QueryInfo
	for _, na := range base.NonAnswers {
		if na.Query.Tree == "Color#1-Item#2-PType#3" {
			q1 = na.Query
		}
	}
	if q1.NodeID == 0 && q1.Tree == "" {
		t.Fatalf("q1 not among non-answers: %+v", base.NonAnswers)
	}
	// What if the color join were fixed? Pin q1 alive and re-run.
	sess.Pin(q1.NodeID, true)
	if got := sess.Pins(); !reflect.DeepEqual(got, []int{q1.NodeID}) {
		t.Errorf("Pins = %v", got)
	}
	whatIf, err := sess.Run(Options{Strategy: SBH})
	if err != nil {
		t.Fatal(err)
	}
	foundAlive := false
	for _, a := range whatIf.Answers {
		if a.Tree == "Color#1-Item#2-PType#3" {
			foundAlive = true
		}
	}
	if !foundAlive {
		t.Errorf("pinned-alive q1 not reported as answer; answers = %v", trees(whatIf.Answers))
	}
	if whatIf.Stats.SQLExecuted != 0 {
		t.Errorf("what-if run executed %d probes", whatIf.Stats.SQLExecuted)
	}
	// Unpin restores the real state.
	sess.Unpin(q1.NodeID)
	restored, err := sess.Run(Options{Strategy: SBH})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(restored), canonical(base); !reflect.DeepEqual(got, want) {
		t.Error("unpin did not restore the base output")
	}
}

func TestSessionPinBaseNode(t *testing.T) {
	sys := productSystem(t)
	sess, err := sys.NewSession([]string{"saffron"})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sess.Run(Options{Strategy: SBH})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Answers) != 3 {
		t.Fatalf("answers = %v", trees(base.Answers))
	}
	// Pin the Color#1 base node dead: "ignore the Color interpretation".
	var colorID int
	for _, a := range base.Answers {
		if a.Tree == "Color#1" {
			colorID = a.NodeID
		}
	}
	sess.Pin(colorID, false)
	out, err := sess.Run(Options{Strategy: SBH})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out.Answers {
		if a.Tree == "Color#1" {
			t.Error("pinned-dead base node still reported alive")
		}
	}
	if len(out.NonAnswers) == 0 {
		t.Error("pinned-dead interpretation not reported as non-answer")
	}
}

func TestSessionResetAfterDataChange(t *testing.T) {
	sys := productSystem(t)
	kws := []string{"scented", "incense"}
	sess, err := sys.NewSession(kws)
	if err != nil {
		t.Fatal(err)
	}
	before, err := sess.Run(Options{Strategy: SBH})
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Answers) != 0 {
		t.Fatalf("no scented incense expected; answers = %v", trees(before.Answers))
	}
	// The merchant starts stocking scented incense.
	if _, err := sys.Engine().Exec(
		"INSERT INTO Item VALUES (6, 'cedar scented incense stick', 3, 3, 2, 2.49, 'slow burn')"); err != nil {
		t.Fatal(err)
	}
	// Without Reset the memo would keep reporting the stale result.
	sess.Reset()
	after, err := sess.Run(Options{Strategy: SBH})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Answers) == 0 {
		t.Error("new inventory not visible after Reset")
	}
}

func TestSessionErrors(t *testing.T) {
	sys := productSystem(t)
	if _, err := sys.NewSession(nil); err == nil {
		t.Error("empty session accepted")
	}
	if _, err := sys.NewSession([]string{"a", "b", "c", "d"}); err == nil {
		t.Error("oversized session accepted")
	}
	sess, err := sys.NewSession([]string{"candle"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(Options{Pa: 2}); err == nil {
		t.Error("bad pa accepted")
	}
	if got := sess.Keywords(); !reflect.DeepEqual(got, []string{"candle"}) {
		t.Errorf("Keywords = %v", got)
	}
}
