package core

import (
	"sort"

	"kwsdbg/internal/lattice"
)

// sublattice is the Phase 2 restriction of the pruned lattice: the MTNs of a
// keyword query plus all of their descendants, reindexed densely so traversal
// state fits in flat arrays and bitsets.
//
// Index 0..n-1 are sub-node indexes; nodeID maps back to lattice node IDs.
// desc/asc are the strict descendant/ancestor index lists of each sub-node
// (descendants within the sub-lattice are complete, because descendant sets
// are downward closed; ancestors are restricted to the sub-lattice, which is
// the scope MPAN maximality is defined over).
type sublattice struct {
	lat    *lattice.Lattice
	nodeID []int       // sub index -> lattice node ID
	subIdx map[int]int // lattice node ID -> sub index
	level  []int       // sub index -> lattice level

	children [][]int32 // sub index -> child sub indexes
	parents  [][]int32 // sub index -> parent sub indexes (within sub)

	desc [][]int32 // strict descendants, sorted
	asc  [][]int32 // strict ancestors within sub, sorted

	mtns []int // sub indexes of the MTNs, sorted

	// owners[x] lists positions into mtns of the MTNs whose Desc+ contains x.
	owners [][]int32

	maxLevel int
}

// buildSublattice collects Desc+(m) for every MTN (given as lattice node IDs)
// and precomputes the navigation arrays.
func buildSublattice(lat *lattice.Lattice, mtnIDs []int) *sublattice {
	s := &sublattice{lat: lat, subIdx: make(map[int]int)}

	// BFS down from the MTNs over lattice children links.
	var stack []int
	push := func(id int) {
		if _, ok := s.subIdx[id]; ok {
			return
		}
		s.subIdx[id] = len(s.nodeID)
		s.nodeID = append(s.nodeID, id)
		stack = append(stack, id)
	}
	for _, id := range mtnIDs {
		push(id)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range lat.Node(id).Children {
			push(c)
		}
	}

	// Reorder sub indexes by (level, label) so that index order is a
	// topological order from the base upward — handy for DP and determinism.
	order := make([]int, len(s.nodeID))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := lat.Node(s.nodeID[order[a]]), lat.Node(s.nodeID[order[b]])
		if na.Level != nb.Level {
			return na.Level < nb.Level
		}
		return na.Label < nb.Label
	})
	ids := make([]int, len(order))
	for newIdx, oldIdx := range order {
		ids[newIdx] = s.nodeID[oldIdx]
	}
	s.nodeID = ids
	s.subIdx = make(map[int]int, len(ids))
	for i, id := range ids {
		s.subIdx[id] = i
	}

	n := len(s.nodeID)
	s.level = make([]int, n)
	s.children = make([][]int32, n)
	s.parents = make([][]int32, n)
	s.desc = make([][]int32, n)
	s.asc = make([][]int32, n)
	for i, id := range s.nodeID {
		node := lat.Node(id)
		s.level[i] = node.Level
		if node.Level > s.maxLevel {
			s.maxLevel = node.Level
		}
		for _, c := range node.Children {
			s.children[i] = append(s.children[i], int32(s.subIdx[c]))
		}
		for _, p := range node.Parents {
			if pi, ok := s.subIdx[p]; ok {
				s.parents[i] = append(s.parents[i], int32(pi))
			}
		}
	}

	// Strict descendants, bottom-up: desc(x) = U_c ({c} U desc(c)).
	for i := 0; i < n; i++ { // index order is level order
		set := make(map[int32]bool)
		for _, c := range s.children[i] {
			set[c] = true
			for _, d := range s.desc[c] {
				set[d] = true
			}
		}
		s.desc[i] = sortedKeys(set)
	}
	// Strict ancestors, top-down.
	for i := n - 1; i >= 0; i-- {
		set := make(map[int32]bool)
		for _, p := range s.parents[i] {
			set[p] = true
			for _, a := range s.asc[p] {
				set[a] = true
			}
		}
		s.asc[i] = sortedKeys(set)
	}

	for _, id := range mtnIDs {
		s.mtns = append(s.mtns, s.subIdx[id])
	}
	sort.Ints(s.mtns)

	s.owners = make([][]int32, n)
	for mi, m := range s.mtns {
		s.owners[m] = append(s.owners[m], int32(mi))
		for _, d := range s.desc[m] {
			s.owners[d] = append(s.owners[d], int32(mi))
		}
	}
	return s
}

func sortedKeys(set map[int32]bool) []int32 {
	if len(set) == 0 {
		return nil
	}
	out := make([]int32, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// len returns the number of sub-lattice nodes.
func (s *sublattice) len() int { return len(s.nodeID) }

// node returns the lattice node behind a sub index.
func (s *sublattice) node(i int) *lattice.Node { return s.lat.Node(s.nodeID[i]) }

// descendantStats returns the total (with multiplicity across MTNs) and
// unique descendant counts of the MTN set — the quantities behind Figure 10
// and the reuse percentage of Figure 13.
func (s *sublattice) descendantStats() (total, unique int) {
	seen := newBitset(s.len())
	for _, m := range s.mtns {
		total += len(s.desc[m])
		for _, d := range s.desc[m] {
			seen.set(int(d))
		}
	}
	return total, seen.count()
}
