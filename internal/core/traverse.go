package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"kwsdbg/internal/obs/flight"
)

// status is the classification state of a sub-lattice node.
type status uint8

const (
	stUnknown status = iota
	stAlive
	stDead
)

// traverseResult is what every Phase 3 strategy must produce — and, by the
// paper's correctness argument, produce identically: only the number of SQL
// probes differs between strategies.
type traverseResult struct {
	aliveMTNs []int         // sub indexes, sorted
	deadMTNs  []int         // sub indexes, sorted
	mpans     map[int][]int // dead MTN sub index -> sorted MPAN sub indexes

	// Exhaustion bookkeeping, empty for complete runs: unresolved lists the
	// MTN sub indexes the run never classified, and partial marks dead MTNs
	// whose MPAN list is guaranteed-but-possibly-incomplete.
	unresolved []int
	partial    map[int]bool
}

// run carries the shared classification state of one traversal: node
// statuses, the per-MTN candidate-MPAN sets (Algorithm 3's MP), and — for
// the score-based heuristic — the per-MTN search spaces S and the membership
// counters W.
type run struct {
	sub    *sublattice
	oracle Oracle
	// active marks which MTN positions (into sub.mtns) this run maintains;
	// the no-reuse strategies run one position at a time.
	active bitset

	// ctx and workers drive the probe scheduler (scheduler.go): workers > 1
	// lets resolveLevel probe a level's unknown nodes concurrently, and ctx
	// cancellation abandons in-flight batches between probes.
	ctx     context.Context
	workers int

	// gov meters every oracle probe (see probe); runs sharing a Debug call
	// share one governor, so budget and deadline are per-request, not
	// per-MTN.
	gov *governor

	// fl records admissions, budget charges, and verdict commits; nil when
	// the run is not recorded. The oracle and governor carry their own
	// references, set by debugWith alongside this one.
	fl *flight.Log

	status   []status
	inferred int // classifications that did not execute SQL

	// mp[mi] is the candidate MPAN set of MTN position mi (nil when inactive).
	mp []bitset

	// S and W are only allocated by the score-based heuristic: S[mi] is the
	// unresolved search space of MTN position mi and W[x] counts how many
	// active search spaces still contain x.
	S []bitset
	W []int32
}

func newRun(sub *sublattice, oracle Oracle, positions []int) *run {
	r := &run{
		sub:     sub,
		oracle:  oracle,
		active:  newBitset(len(sub.mtns)),
		status:  make([]status, sub.len()),
		mp:      make([]bitset, len(sub.mtns)),
		ctx:     context.Background(),
		workers: 1,
		gov:     newGovernor(context.Background(), context.Background(), 0),
	}
	for _, mi := range positions {
		r.active.set(mi)
		m := sub.mtns[mi]
		r.mp[mi] = newBitset(sub.len())
		for _, d := range sub.desc[m] {
			r.mp[mi].set(int(d))
		}
	}
	return r
}

// enableSearchSpaces allocates the SBH state (S and W) for the active MTNs.
// Must be called before any classification.
func (r *run) enableSearchSpaces() {
	r.S = make([]bitset, len(r.sub.mtns))
	r.W = make([]int32, r.sub.len())
	r.active.forEach(func(mi int) {
		m := r.sub.mtns[mi]
		s := newBitset(r.sub.len())
		s.set(m)
		r.W[m]++
		for _, d := range r.sub.desc[m] {
			s.set(int(d))
			r.W[d]++
		}
		r.S[mi] = s
	})
}

// removeFromS drops x from MTN position mi's search space.
func (r *run) removeFromS(mi, x int) {
	if r.S == nil || r.S[mi] == nil {
		return
	}
	if r.S[mi].has(x) {
		r.S[mi].clear(x)
		r.W[x]--
	}
}

// classify records a node's aliveness and applies the paper's two node
// classification rules: R1 (alive => all descendants alive) downward and
// R2 (a node with a dead descendant is dead) upward, maintaining the MPAN
// candidate sets and search spaces along the way. Re-classification of an
// already-known node is a no-op; classifications triggered recursively are
// the "inferred" ones that save SQL probes.
func (r *run) classify(x int, isAlive, inferred bool) {
	if r.status[x] != stUnknown {
		return
	}
	if inferred {
		r.inferred++
	}
	if isAlive {
		r.status[x] = stAlive
		for _, mi := range r.sub.owners[x] {
			if !r.active.has(int(mi)) {
				continue
			}
			// x stays a candidate MPAN; its strict descendants cannot be
			// maximal, and the whole Desc+(x) needs no further probing.
			for _, d := range r.sub.desc[x] {
				r.mp[mi].clear(int(d))
				r.removeFromS(int(mi), int(d))
			}
			r.removeFromS(int(mi), x)
		}
		for _, d := range r.sub.desc[x] {
			r.classify(int(d), true, true)
		}
		return
	}
	r.status[x] = stDead
	for _, mi := range r.sub.owners[x] {
		if !r.active.has(int(mi)) {
			continue
		}
		r.mp[mi].clear(x)
		r.removeFromS(int(mi), x)
	}
	for _, a := range r.sub.asc[x] {
		r.classify(int(a), false, true)
	}
}

// probe resolves one node through the oracle under the run's governor:
// cancellation and exhaustion are checked (and the budget charged) before
// the oracle is consulted, and a failure caused by the run's own deadline is
// converted to the graceful exhaustion sentinel.
func (r *run) probe(x int) (bool, error) {
	if err := r.gov.admit(); err != nil {
		return false, err
	}
	r.fl.Emit(flight.Admit, r.sub.nodeID[x], "", false, 0, "")
	if r.gov.limited {
		r.fl.Emit(flight.BudgetCharged, r.sub.nodeID[x], "", false, 0, "")
	}
	alive, err := r.oracle.IsAlive(r.sub.nodeID[x])
	if err != nil {
		if gerr := r.gov.graceful(err); gerr != nil {
			return false, gerr
		}
		return false, err
	}
	return alive, nil
}

// evaluate resolves a node's status with an oracle probe (unless known).
func (r *run) evaluate(x int) error {
	if r.status[x] != stUnknown {
		return nil
	}
	alive, err := r.probe(x)
	if err != nil {
		return err
	}
	r.fl.Emit(flight.Verdict, r.sub.nodeID[x], "", alive, 0, "")
	r.classify(x, alive, false)
	return nil
}

// seed carries the probe-free knowledge a traversal starts from: the
// base-level classification rule and any pinned hypothetical facts from an
// interactive session.
type seed struct {
	baseAlive func(nodeID int) bool
	// pins maps lattice node IDs to assumed aliveness; pins are applied
	// before anything else and propagate through rules R1/R2, so a
	// pinned-alive node implies its whole sub-query tree alive.
	pins map[int]bool
}

// init applies the seed: pins first (in ascending node order, so conflicts
// resolve deterministically), then the level-1 rule. Base nodes are
// classified without SQL: keyword-bound base nodes are alive by Phase 1's
// index check; free base nodes are alive iff their table is non-empty. This
// matches Algorithm 3, which skips execSQL for the nodes in B.
func (r *run) init(sd seed) {
	if len(sd.pins) > 0 {
		ids := make([]int, 0, len(sd.pins))
		for id := range sd.pins {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if x, ok := r.sub.subIdx[id]; ok {
				r.classify(x, sd.pins[id], true)
			}
		}
	}
	for x := 0; x < r.sub.len() && r.sub.level[x] == 1; x++ {
		r.classify(x, sd.baseAlive(r.sub.nodeID[x]), true)
	}
}

// region returns the Desc+ closure of the active MTNs as a bitset.
func (r *run) region() bitset {
	reg := newBitset(r.sub.len())
	r.active.forEach(func(mi int) {
		m := r.sub.mtns[mi]
		reg.set(m)
		for _, d := range r.sub.desc[m] {
			reg.set(int(d))
		}
	})
	return reg
}

// isActiveMTN reports whether sub node x is one of the run's active MTNs.
func (r *run) isActiveMTN(x int) bool {
	for _, mi := range r.sub.owners[x] {
		if r.active.has(int(mi)) && r.sub.mtns[mi] == x {
			return true
		}
	}
	return false
}

// bottomUp is Algorithm 3 (BUWR) restricted to the active MTNs; with a
// single active MTN and a fresh run it is plain BU. Levels are processed
// upward; the next level holds the in-region parents of alive non-MTN nodes.
func (r *run) bottomUp(sd seed) error {
	reg := r.region()
	buckets := make([][]int, r.sub.maxLevel+1)
	queued := newBitset(r.sub.len())

	r.init(sd)
	enqueueParents := func(x int) {
		if r.isActiveMTN(x) {
			return
		}
		for _, p := range r.sub.parents[x] {
			pi := int(p)
			if reg.has(pi) && !queued.has(pi) {
				queued.set(pi)
				buckets[r.sub.level[pi]] = append(buckets[r.sub.level[pi]], pi)
			}
		}
	}
	for x := 0; x < r.sub.len() && r.sub.level[x] == 1; x++ {
		if reg.has(x) && r.status[x] == stAlive {
			enqueueParents(x)
		}
	}
	for level := 2; level <= r.sub.maxLevel; level++ {
		// The bucket is complete before its level starts (alive nodes only
		// ever enqueue one level up), and the classification rules never act
		// within a level, so resolveLevel may probe its unknown nodes
		// concurrently and replay the verdicts in this sorted order.
		sort.Ints(buckets[level])
		if err := r.resolveLevel(buckets[level]); err != nil {
			return err
		}
		for _, x := range buckets[level] {
			if r.status[x] == stAlive {
				enqueueParents(x)
			}
		}
	}
	return nil
}

// topDown descends from the active MTNs: children of dead nodes are probed,
// sub-trees of alive nodes are inferred alive wholesale (rule R1).
func (r *run) topDown(sd seed) error {
	buckets := make([][]int, r.sub.maxLevel+1)
	queued := newBitset(r.sub.len())
	enqueue := func(x int) {
		if !queued.has(x) {
			queued.set(x)
			buckets[r.sub.level[x]] = append(buckets[r.sub.level[x]], x)
		}
	}
	r.init(sd)
	r.active.forEach(func(mi int) { enqueue(r.sub.mtns[mi]) })
	for level := r.sub.maxLevel; level >= 2; level-- {
		// Mirror image of bottomUp: dead nodes only enqueue one level down,
		// so this bucket is final and its unknowns mutually independent.
		sort.Ints(buckets[level])
		if err := r.resolveLevel(buckets[level]); err != nil {
			return err
		}
		for _, x := range buckets[level] {
			if r.status[x] == stDead {
				for _, c := range r.sub.children[x] {
					enqueue(int(c))
				}
			}
		}
	}
	return nil
}

// returnEverything is the RE baseline of §3.8: probe every unique node in
// the MTNs' descendant closure (level >= 2), with no lattice inference at
// all — the aliveness of every node is established by its own SQL query.
func (r *run) returnEverything(sd seed) error {
	r.init(sd)
	// Snapshot what the seed (pins + base rule) already settled: those nodes
	// have no database truth to fetch. Everything else is probed even when
	// rules R1/R2 could have inferred it — that is RE's defining waste.
	seeded := make([]status, len(r.status))
	copy(seeded, r.status)
	pending := make([]int, 0, r.sub.len())
	for x := 0; x < r.sub.len(); x++ {
		if r.sub.level[x] >= 2 && seeded[x] == stUnknown {
			pending = append(pending, x)
		}
	}
	// The probe set is fixed by the seed snapshot — RE never consults what it
	// has learned — so the whole traversal is one embarrassingly-parallel
	// batch when the run has workers.
	if r.workers > 1 && len(pending) > 1 {
		return r.commit(pending, r.dispatch(pending))
	}
	r.warmHandles(pending)
	for _, x := range pending {
		alive, err := r.probe(x)
		if err != nil {
			return err
		}
		r.fl.Emit(flight.Verdict, r.sub.nodeID[x], "", alive, 0, "")
		r.classify(x, alive, false)
	}
	return nil
}

// result assembles the strategy-independent outcome for the active MTNs.
func (r *run) result() (traverseResult, error) {
	res := traverseResult{mpans: make(map[int][]int)}
	var err error
	r.active.forEach(func(mi int) {
		m := r.sub.mtns[mi]
		switch r.status[m] {
		case stAlive:
			res.aliveMTNs = append(res.aliveMTNs, m)
		case stDead:
			res.deadMTNs = append(res.deadMTNs, m)
			var ps []int
			r.mp[mi].forEach(func(p int) { ps = append(ps, p) })
			res.mpans[m] = ps
		default:
			err = fmt.Errorf("core: MTN %s left unclassified", r.sub.node(m))
		}
	})
	sort.Ints(res.aliveMTNs)
	sort.Ints(res.deadMTNs)
	return res, err
}

// inRegionOf reports whether sub node x belongs to MTN position mi's region
// (the MTN and its descendant closure).
func (r *run) inRegionOf(mi, x int) bool {
	for _, o := range r.sub.owners[x] {
		if int(o) == mi {
			return true
		}
	}
	return false
}

// partialResult assembles what an exhausted traversal can still guarantee.
// Classified MTNs are reported normally; unclassified ones are listed as
// unresolved. For a dead MTN, a candidate-MPAN x is reported only when it is
// *guaranteed* maximal: x itself is classified alive and every strict
// ancestor of x inside the MTN's region is classified too. (An alive
// ancestor would already have removed x from the candidate set via rule R1,
// so a classified ancestor is necessarily dead; an unknown one could still
// turn out alive and demote x.) Anything excluded marks the MTN partial.
// Every reported MPAN is therefore also an MPAN of the unbudgeted run — the
// subset guarantee the degradation property test asserts.
func (r *run) partialResult() traverseResult {
	res := traverseResult{mpans: make(map[int][]int), partial: make(map[int]bool)}
	r.active.forEach(func(mi int) {
		m := r.sub.mtns[mi]
		switch r.status[m] {
		case stAlive:
			res.aliveMTNs = append(res.aliveMTNs, m)
		case stDead:
			res.deadMTNs = append(res.deadMTNs, m)
			var ps []int
			incomplete := false
			r.mp[mi].forEach(func(p int) {
				if r.status[p] != stAlive {
					incomplete = true
					return
				}
				for _, a := range r.sub.asc[p] {
					if r.status[a] == stUnknown && r.inRegionOf(mi, int(a)) {
						incomplete = true
						return
					}
				}
				ps = append(ps, p)
			})
			res.mpans[m] = ps
			if incomplete {
				res.partial[m] = true
			}
		default:
			res.unresolved = append(res.unresolved, m)
		}
	})
	sort.Ints(res.aliveMTNs)
	sort.Ints(res.deadMTNs)
	sort.Ints(res.unresolved)
	return res
}

// merge folds a single-MTN result into an accumulated one (for the
// strategies without reuse).
func (res *traverseResult) merge(one traverseResult) {
	res.aliveMTNs = append(res.aliveMTNs, one.aliveMTNs...)
	res.deadMTNs = append(res.deadMTNs, one.deadMTNs...)
	for m, ps := range one.mpans {
		res.mpans[m] = ps
	}
	res.unresolved = append(res.unresolved, one.unresolved...)
	if len(one.partial) > 0 {
		if res.partial == nil {
			res.partial = make(map[int]bool)
		}
		for m := range one.partial {
			res.partial[m] = true
		}
	}
}

// traverse dispatches a Phase 3 strategy over the sub-lattice. workers > 1
// engages the probe scheduler: within-run level batches for the with-reuse
// strategies and RE, across-MTN runs for the no-reuse baselines. SBH stays
// serial regardless — its probe choices depend on every previous verdict.
// Exhaustion of the governor's deadline or budget is not an error: the
// traversal degrades to whatever partialResult can guarantee.
func (sys *System) traverse(ctx context.Context, sub *sublattice, oracle Oracle, sd seed, opts Options, workers int, gov *governor, fl *flight.Log) (traverseResult, int, error) {
	inferred := 0

	switch opts.Strategy {
	case BU, TD:
		// One traversal per MTN with private knowledge: shared descendants
		// are re-probed for every MTN, which is exactly the redundancy the
		// with-reuse variants eliminate.
		if workers > 1 && len(sub.mtns) > 1 {
			return sys.runMTNsParallel(ctx, sub, oracle, sd, opts.Strategy, workers, gov, fl)
		}
		acc := traverseResult{mpans: make(map[int][]int)}
		for mi := range sub.mtns {
			r := newRun(sub, oracle, []int{mi})
			r.ctx, r.workers, r.gov, r.fl = ctx, workers, gov, fl
			var err error
			if opts.Strategy == BU {
				err = r.bottomUp(sd)
			} else {
				err = r.topDown(sd)
			}
			if err != nil {
				if !errors.Is(err, errExhausted) {
					return traverseResult{}, 0, err
				}
				// Graceful exhaustion: keep what this MTN's run established
				// and report the MTNs never reached as unresolved.
				part := r.partialResult()
				part.unresolved = append(part.unresolved, sub.mtns[mi+1:]...)
				acc.merge(part)
				inferred += r.inferred
				break
			}
			one, err := r.result()
			if err != nil {
				return traverseResult{}, 0, err
			}
			acc.merge(one)
			inferred += r.inferred
		}
		sort.Ints(acc.aliveMTNs)
		sort.Ints(acc.deadMTNs)
		return acc, inferred, nil

	case BUWR, TDWR, SBH, RE:
		all := make([]int, len(sub.mtns))
		for i := range all {
			all[i] = i
		}
		r := newRun(sub, oracle, all)
		r.ctx, r.workers, r.gov, r.fl = ctx, workers, gov, fl
		var err error
		switch opts.Strategy {
		case BUWR:
			err = r.bottomUp(sd)
		case TDWR:
			err = r.topDown(sd)
		case RE:
			err = r.returnEverything(sd)
		default:
			err = r.scoreBased(sd, opts.Pa)
		}
		if err != nil {
			if !errors.Is(err, errExhausted) {
				return traverseResult{}, 0, err
			}
			return r.partialResult(), r.inferred, nil
		}
		res, err := r.result()
		return res, r.inferred, err

	default:
		return traverseResult{}, 0, fmt.Errorf("core: unknown strategy %v", opts.Strategy)
	}
}
