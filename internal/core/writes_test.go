package core

import (
	"reflect"
	"testing"

	"kwsdbg/internal/probecache"
)

// TestRepairFrontierOnlyReprobesSuspects is the tentpole's core-level claim:
// after a write, a warm run re-issues SQL only for the suspect frontier —
// dead verdicts whose footprints the write intersected — and repairs them.
// Alive verdicts and disjoint dead verdicts keep answering from the cache,
// and the repaired output matches a cold run after the same write exactly.
func TestRepairFrontierOnlyReprobesSuspects(t *testing.T) {
	sys := productSystem(t)
	sys.SetProbeCache(probecache.New(probecache.Config{}))
	kws := []string{"saffron", "scented", "candle"}

	warm1, err := sys.Debug(kws, Options{Strategy: SBH})
	if err != nil {
		t.Fatalf("warm-up run: %v", err)
	}
	if warm1.Stats.SQLIssued() == 0 {
		t.Fatal("warm-up run issued no SQL; fixture broken")
	}

	if _, err := sys.Engine().Exec(
		"INSERT INTO Item VALUES (5, 'saffron scented candle', 2, 4, 4, 9.5, 'new stock')"); err != nil {
		t.Fatalf("Exec(INSERT): %v", err)
	}

	cold, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true})
	if err != nil {
		t.Fatalf("cold run after insert: %v", err)
	}
	preWarm := sys.ProbeCache().Snapshot()
	warm2, err := sys.Debug(kws, Options{Strategy: SBH})
	if err != nil {
		t.Fatalf("warm run after insert: %v", err)
	}
	postWarm := sys.ProbeCache().Snapshot()

	if warm2.Stats.Suspects == 0 {
		t.Fatalf("write flipped the answer set but suspected nothing: %+v", warm2.Stats)
	}
	if warm2.Stats.Repaired != warm2.Stats.Suspects {
		t.Errorf("Repaired = %d, Suspects = %d; every suspect this run probed must be repaired",
			warm2.Stats.Repaired, warm2.Stats.Suspects)
	}
	// The over-invalidation fix itself: the write evicted nothing. Dead
	// verdicts it touched were downgraded to suspects (and repaired in
	// place); alive and disjoint verdicts kept serving. Any SQL beyond the
	// suspect re-probes is for nodes this traversal reaches for the first
	// time — the insert changed the answer set, so the probe frontier
	// moved — never a flushed verdict recomputed.
	if postWarm.EvictionsStale != preWarm.EvictionsStale {
		t.Errorf("monotone insert evicted %d entries as stale; suspects must repair in place",
			postWarm.EvictionsStale-preWarm.EvictionsStale)
	}
	if warm2.Stats.SQLIssued() < warm2.Stats.Suspects {
		t.Errorf("warm run issued %d SQL probes but reports %d suspects",
			warm2.Stats.SQLIssued(), warm2.Stats.Suspects)
	}
	if warm2.Stats.SQLIssued() >= cold.Stats.SQLIssued() {
		t.Errorf("repair run issued %d probes, cold run %d; repair saved nothing",
			warm2.Stats.SQLIssued(), cold.Stats.SQLIssued())
	}
	if got, want := normalized(warm2), normalized(cold); !reflect.DeepEqual(got, want) {
		t.Errorf("repaired warm run diverges from cold run\ngot:  %+v\nwant: %+v", got, want)
	}
	// The insert resurrected the canonical Example 1 query: answers exist.
	if len(warm2.Answers) == 0 {
		t.Error("post-insert run still reports no answers")
	}
}

// TestRepairAcrossWorkerCounts interleaves INSERTs with warm runs at several
// worker counts: every repaired run must equal the cold run after the same
// prefix of writes, regardless of concurrency — the serial-order scheduler's
// guarantee extended to the repair path.
func TestRepairAcrossWorkerCounts(t *testing.T) {
	inserts := []string{
		"INSERT INTO Item VALUES (5, 'saffron scented candle', 2, 4, 4, 9.5, 'new stock')",
		"INSERT INTO Attr VALUES (5, 'scent', 'saffron')",
		"INSERT INTO Item VALUES (6, 'plain candle', 2, 2, 2, 2.5, 'unscented')",
		"INSERT INTO PType VALUES (4, 'soap')",
	}
	for _, workers := range []int{1, 4, 8} {
		sys := productSystem(t)
		sys.SetProbeCache(probecache.New(probecache.Config{}))
		kws := []string{"saffron", "scented", "candle"}
		if _, err := sys.Debug(kws, Options{Strategy: SBH, Workers: workers}); err != nil {
			t.Fatalf("workers=%d warm-up: %v", workers, err)
		}
		for i, ins := range inserts {
			if _, err := sys.Engine().Exec(ins); err != nil {
				t.Fatalf("workers=%d insert %d: %v", workers, i, err)
			}
			cold, err := sys.Debug(kws, Options{Strategy: SBH, Workers: workers, BypassCache: true})
			if err != nil {
				t.Fatalf("workers=%d cold after insert %d: %v", workers, i, err)
			}
			warm, err := sys.Debug(kws, Options{Strategy: SBH, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d warm after insert %d: %v", workers, i, err)
			}
			if got, want := normalized(warm), normalized(cold); !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d insert %d: repaired run diverges from cold run\ngot:  %+v\nwant: %+v",
					workers, i, got, want)
			}
		}
	}
}

// TestBypassCacheSeesNoRepairTraffic: with the cache bypassed there is no
// verdict to suspect, so the repair counters must stay zero.
func TestBypassCacheSeesNoRepairTraffic(t *testing.T) {
	sys := productSystem(t)
	sys.SetProbeCache(probecache.New(probecache.Config{}))
	kws := []string{"saffron", "scented", "candle"}
	if _, err := sys.Debug(kws, Options{Strategy: SBH}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Engine().Exec(
		"INSERT INTO Item VALUES (5, 'saffron scented candle', 2, 4, 4, 9.5, 'new stock')"); err != nil {
		t.Fatal(err)
	}
	out, err := sys.Debug(kws, Options{Strategy: SBH, BypassCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Suspects != 0 || out.Stats.Repaired != 0 {
		t.Errorf("bypassed run reported repair traffic: %+v", out.Stats)
	}
}
