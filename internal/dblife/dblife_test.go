package dblife

import (
	"strings"
	"testing"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/core"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/storage"
)

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if got := len(s.Relations()); got != 14 {
		t.Fatalf("relations = %d, want 14", got)
	}
	if got := len(s.Edges()); got != 18 {
		t.Fatalf("edges = %d, want 18", got)
	}
	// Exactly the five entity tables carry text.
	textTables := 0
	for _, r := range s.Relations() {
		if len(r.TextColumns()) > 0 {
			textTables++
		}
	}
	if textTables != 5 {
		t.Errorf("text-bearing tables = %d, want 5", textTables)
	}
	// Person is the star center: 8 incident edge endpoints.
	if got := len(s.Incident(Person)); got != 8 {
		t.Errorf("Person incident edges = %d, want 8", got)
	}
	for _, rel := range []string{Person, Publication, Conference, Organization, Topic} {
		r, ok := s.Relation(rel)
		if !ok || r.PrimaryKey() != "id" {
			t.Errorf("entity %s malformed", rel)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(Config{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Database().TotalRows() != b.Database().TotalRows() {
		t.Fatalf("row totals differ: %d vs %d", a.Database().TotalRows(), b.Database().TotalRows())
	}
	ta, _ := a.Database().Table(Publication)
	tb, _ := b.Database().Table(Publication)
	for i := 0; i < ta.RowCount(); i += 97 {
		if ta.Row(storage.RowID(i))[1].S != tb.Row(storage.RowID(i))[1].S {
			t.Fatalf("row %d differs: %q vs %q", i, ta.Row(storage.RowID(i))[1].S, tb.Row(storage.RowID(i))[1].S)
		}
	}
	c, err := Generate(Config{Seed: 2, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	tc, _ := c.Database().Table(Publication)
	for i := len(plantedPubs); i < 50 && i < tc.RowCount(); i++ {
		if ta.Row(storage.RowID(i))[1].S != tc.Row(storage.RowID(i))[1].S {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical publications")
	}
}

func TestGenerateScale(t *testing.T) {
	small, err := Generate(Config{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Generate(Config{Seed: 1, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if small.Database().TotalRows() >= large.Database().TotalRows() {
		t.Errorf("scale 0.01 rows %d >= scale 0.03 rows %d",
			small.Database().TotalRows(), large.Database().TotalRows())
	}
	if _, err := Generate(Config{Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
	// Default scale kicks in at zero.
	def, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if def.Database().TotalRows() < 20_000 {
		t.Errorf("default scale rows = %d, suspiciously small", def.Database().TotalRows())
	}
}

func TestWorkloadKeywordsBind(t *testing.T) {
	eng, err := Generate(Config{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ix := eng.Index()
	for _, q := range Workload() {
		for _, kw := range q.Keywords {
			if tables := ix.Tables(kw); len(tables) == 0 {
				t.Errorf("%s: keyword %q occurs nowhere", q.ID, kw)
			}
		}
	}
	// Q8's "Washington" must have the paper's three interpretations.
	tables := ix.Tables("Washington")
	want := map[string]bool{Person: true, Publication: true, Organization: true}
	for _, tb := range tables {
		delete(want, tb)
	}
	if len(want) != 0 {
		t.Errorf("Washington missing from %v (bound to %v)", want, tables)
	}
}

func TestWorkloadShape(t *testing.T) {
	ws := Workload()
	if len(ws) != 10 {
		t.Fatalf("workload has %d queries", len(ws))
	}
	threeKw := map[string]bool{"Q2": true, "Q3": true, "Q8": true, "Q10": true}
	for _, q := range ws {
		want := 2
		if threeKw[q.ID] {
			want = 3
		}
		if len(q.Keywords) != want {
			t.Errorf("%s has %d keywords, want %d", q.ID, len(q.Keywords), want)
		}
	}
}

// TestWorkloadEndToEnd runs the full pipeline on the synthetic dataset at a
// small lattice level and checks the qualitative properties the paper
// reports, including strategy agreement on real workload queries.
func TestWorkloadEndToEnd(t *testing.T) {
	eng, err := Generate(Config{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: 2, KeywordSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Workload() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			ref, err := sys.Debug(q.Keywords, core.Options{Strategy: core.RE})
			if err != nil {
				t.Fatalf("RE: %v", err)
			}
			if len(ref.NonKeywords) > 0 {
				t.Fatalf("missing keywords: %v", ref.NonKeywords)
			}
			for _, strat := range core.Strategies {
				out, err := sys.Debug(q.Keywords, core.Options{Strategy: strat})
				if err != nil {
					t.Fatalf("%v: %v", strat, err)
				}
				if got, want := outputKey(out), outputKey(ref); got != want {
					t.Errorf("%v diverges from RE:\n%s\nvs\n%s", strat, got, want)
				}
			}
		})
	}
}

func outputKey(out *core.Output) string {
	var sb strings.Builder
	for _, a := range out.Answers {
		sb.WriteString("A " + a.Tree + "\n")
	}
	for _, na := range out.NonAnswers {
		sb.WriteString("N " + na.Query.Tree + " [")
		for _, p := range na.MPANs {
			sb.WriteString(p.Tree + ";")
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// TestQ4MultiHop checks the paper's observation about Q4/Q6: dead at the
// two-table level, alive via relationships with more hops.
func TestQ4MultiHop(t *testing.T) {
	eng, err := Generate(Config{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	low, err := core.Build(eng, lattice.Options{MaxJoins: 2, KeywordSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := low.Debug([]string{"DeRose", "VLDB"}, core.Options{Strategy: core.SBH})
	if err != nil {
		t.Fatal(err)
	}
	lowAnswers := len(out.Answers)

	high, err := core.Build(eng, lattice.Options{MaxJoins: 4, KeywordSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err = high.Debug([]string{"DeRose", "VLDB"}, core.Options{Strategy: core.SBH})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) <= lowAnswers {
		t.Errorf("Q4 answers: level3=%d level5=%d; expected more at higher levels",
			lowAnswers, len(out.Answers))
	}
}

func TestSchemaIsCatalogValid(t *testing.T) {
	// Rebuilding must not panic and must produce a fresh value each time.
	a, b := Schema(), Schema()
	if a == b {
		t.Error("Schema() returned a shared instance")
	}
	var _ *catalog.Schema = a
}

func TestGenerateSkew(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, Scale: 0.01, Skew: 0.5}); err == nil {
		t.Error("skew 0.5 accepted")
	}
	uniform, err := Generate(Config{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Generate(Config{Seed: 1, Scale: 0.01, Skew: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	// Under Zipf, the most prolific author holds far more writes rows.
	maxAuthor := func(eng interface {
		Database() *storage.Database
	}) int {
		tbl, _ := eng.Database().Table(Writes)
		counts := map[int64]int{}
		best := 0
		tbl.Scan(func(_ storage.RowID, row storage.Row) bool {
			counts[row[0].I]++
			if counts[row[0].I] > best {
				best = counts[row[0].I]
			}
			return true
		})
		return best
	}
	if mu, ms := maxAuthor(uniform), maxAuthor(skewed); ms <= 2*mu {
		t.Errorf("skewed max author %d not >> uniform %d", ms, mu)
	}
	// The workload still binds and the strategies still agree.
	ix := skewed.Index()
	for _, q := range Workload() {
		for _, kw := range q.Keywords {
			if len(ix.Tables(kw)) == 0 {
				t.Errorf("%s: %q unbound on skewed data", q.ID, kw)
			}
		}
	}
	sys, err := core.Build(skewed, lattice.Options{MaxJoins: 2, KeywordSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sys.Debug([]string{"Probabilistic", "Data"}, core.Options{Strategy: core.RE})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Debug([]string{"Probabilistic", "Data"}, core.Options{Strategy: core.SBH})
	if err != nil {
		t.Fatal(err)
	}
	if outputKey(out) != outputKey(ref) {
		t.Error("SBH diverges from RE on skewed data")
	}
}
