package dblife

import (
	"fmt"
	"math/rand"

	"kwsdbg/internal/engine"
	"kwsdbg/internal/storage"
)

// Config controls the synthetic DBLife generator.
type Config struct {
	// Seed drives the deterministic PRNG; the same seed always produces the
	// same database.
	Seed int64
	// Scale multiplies the full-size tuple counts. Scale 1.0 produces about
	// 801,000 tuples, the size of the snapshot the paper used; the default
	// (zero) is 0.05, which keeps experiment turnaround at laptop scale
	// while preserving every distributional property the experiments need.
	Scale float64
	// Skew, when greater than 1, draws relationship endpoints from a Zipf
	// distribution with that exponent instead of uniformly: a few prolific
	// authors accumulate most publications, the way a real bibliography
	// crawl behaves. The default (0) keeps endpoints uniform, which is what
	// EXPERIMENTS.md reports; the ablation-skew experiment contrasts the
	// two.
	Skew float64
}

// full-size table cardinalities, chosen to sum to ~801k tuples with
// DBLife-like proportions (publications and authorship dominate).
var fullCounts = map[string]int{
	Person:       45_000,
	Publication:  130_000,
	Conference:   1_200,
	Organization: 4_000,
	Topic:        800,
	Writes:       260_000,
	Coauthor:     130_000,
	Affiliated:   45_000,
	WorksOn:      40_000,
	Serves:       18_000,
	GaveTalk:     9_000,
	GaveTutorial: 3_000,
	PublishedIn:  75_000,
	AboutTopic:   40_000,
}

// Name pools. The workload's terms (Table 2) are planted explicitly below;
// the pools provide the bulk mass around them.
var (
	firstNames = []string{
		"Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Henry",
		"Irene", "Jack", "Karen", "Leo", "Mona", "Nina", "Oscar", "Paul",
		"Quinn", "Rita", "Sam", "Tina", "Uma", "Victor", "Wendy", "Xavier",
		"Yolanda", "Zach", "Ivan", "Judy", "Kyle", "Laura",
	}
	lastNames = []string{
		"Smith", "Johnson", "Lee", "Brown", "Garcia", "Miller", "Davis",
		"Wilson", "Moore", "Taylor", "Anderson", "Thomas", "Jackson",
		"White", "Harris", "Martin", "Thompson", "Young", "Walker", "Hall",
		"Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill",
		"Flores", "Green", "Adams", "Nelson", "Baker", "Rivera", "Campbell",
		"Mitchell", "Carter", "Roberts", "Gomez", "Phillips", "Evans",
	}
	titleWords = []string{
		"query", "optimization", "index", "join", "mining", "graph",
		"ranking", "web", "schema", "integration", "transaction", "storage",
		"parallel", "distributed", "adaptive", "learning", "entity",
		"extraction", "cleaning", "provenance", "uncertain", "sampling",
		"approximate", "aggregation", "view", "materialized", "cache",
		"partitioning", "skyline", "spatial", "temporal", "sensor",
		"workflow", "crawl", "clustering", "classification", "privacy",
		"security", "benchmark", "engine", "data", "stream", "probabilistic",
	}
	confNames = []string{
		"SIGMOD", "VLDB", "ICDE", "EDBT", "KDD", "WWW", "CIKM", "ICDT",
		"SIGIR", "PODS", "WSDM", "SoCC",
	}
	orgNames = []string{
		"University of Wisconsin-Madison", "University of Washington",
		"Stanford University", "Microsoft Research", "IBM Almaden",
		"Google Research", "Yahoo Labs", "AT&T Labs", "Bell Labs",
		"Cornell University", "MIT", "Berkeley", "CMU", "ETH Zurich",
		"University of Michigan", "Duke University",
	}
	topicNames = []string{
		"probabilistic data", "keyword search", "data streams", "histograms",
		"XML processing", "query optimization", "data integration",
		"information extraction", "web data", "graph mining",
		"uncertain data", "tutorials and surveys", "crowdsourcing",
		"column stores", "provenance",
	}
)

// Planted entities: the rows the Table 2 workload depends on. IDs are
// assigned first, before the random bulk, so they are stable across scales.
var plantedPeople = []string{
	"Jennifer Widom", "Vagelis Hristidis", "Rakesh Agrawal",
	"Surajit Chaudhuri", "Gautam Das", "Pedro DeRose", "Jim Gray",
	"David DeWitt", "George Washington", "Luis Gravano",
	"Yannis Papakonstantinou", "AnHai Doan", "Jeffrey Naughton",
}

var plantedPubs = []string{
	"Trio a system for data uncertainty and lineage",
	"efficient keyword search over relational databases",
	"DBXplorer enabling keyword search over structured data",
	"probabilistic data management a survey",
	"querying probabilistic data with confidence",
	"histograms for selectivity estimation over data streams",
	"XML query processing at scale",
	"a tutorial on parallel database systems",
	"stream processing with sliding windows and histograms",
	"mining the web at the University of Washington",
}

// Generate builds the synthetic DBLife database. It returns a loaded engine
// whose schema graph is Schema().
func Generate(cfg Config) (*engine.Engine, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 0.05
	}
	if cfg.Scale < 0 {
		return nil, fmt.Errorf("dblife: negative scale %v", cfg.Scale)
	}
	if cfg.Skew != 0 && cfg.Skew <= 1 {
		return nil, fmt.Errorf("dblife: skew must be > 1 (or 0 for uniform), got %v", cfg.Skew)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	schema := Schema()
	db := storage.NewDatabase(schema)

	count := func(table string, minimum int) int {
		n := int(float64(fullCounts[table]) * cfg.Scale)
		if n < minimum {
			n = minimum
		}
		return n
	}
	tbl := func(name string) *storage.Table {
		t, ok := db.Table(name)
		if !ok {
			panic("dblife: missing table " + name)
		}
		return t
	}

	// --- Entities ---------------------------------------------------------
	people := tbl(Person)
	nPerson := count(Person, len(plantedPeople)+50)
	for i, name := range plantedPeople {
		people.MustInsert(storage.Row{storage.IntV(int64(i + 1)), storage.TextV(name)})
	}
	for i := len(plantedPeople); i < nPerson; i++ {
		name := firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
		people.MustInsert(storage.Row{storage.IntV(int64(i + 1)), storage.TextV(name)})
	}

	pubs := tbl(Publication)
	nPub := count(Publication, len(plantedPubs)+100)
	for i, title := range plantedPubs {
		pubs.MustInsert(storage.Row{
			storage.IntV(int64(i + 1)), storage.TextV(title),
			storage.IntV(int64(1995 + i%20)),
		})
	}
	for i := len(plantedPubs); i < nPub; i++ {
		nw := 3 + r.Intn(4)
		title := ""
		for w := 0; w < nw; w++ {
			if w > 0 {
				title += " "
			}
			title += titleWords[r.Intn(len(titleWords))]
		}
		// A slice of the corpus mentions the workload's content terms, so
		// multi-hop relationships exist beyond the planted rows.
		switch r.Intn(40) {
		case 0:
			title += " probabilistic data"
		case 1:
			title += " data streams"
		case 2:
			title += " keyword search"
		case 3:
			title += " XML"
		case 4:
			title += " histograms"
		case 5:
			title += " tutorial"
		}
		pubs.MustInsert(storage.Row{
			storage.IntV(int64(i + 1)), storage.TextV(title),
			storage.IntV(int64(1990 + r.Intn(25))),
		})
	}

	confs := tbl(Conference)
	nConf := count(Conference, len(confNames)+5)
	for i := 0; i < nConf; i++ {
		var name string
		if i < len(confNames) {
			name = confNames[i]
		} else {
			name = fmt.Sprintf("Workshop on %s %s",
				titleWords[r.Intn(len(titleWords))], titleWords[r.Intn(len(titleWords))])
		}
		confs.MustInsert(storage.Row{storage.IntV(int64(i + 1)), storage.TextV(name)})
	}

	orgs := tbl(Organization)
	nOrg := count(Organization, len(orgNames)+5)
	for i := 0; i < nOrg; i++ {
		var name string
		if i < len(orgNames) {
			name = orgNames[i]
		} else {
			name = fmt.Sprintf("Institute of %s %s",
				titleWords[r.Intn(len(titleWords))], titleWords[r.Intn(len(titleWords))])
		}
		orgs.MustInsert(storage.Row{storage.IntV(int64(i + 1)), storage.TextV(name)})
	}

	topics := tbl(Topic)
	nTopic := count(Topic, len(topicNames)+5)
	for i := 0; i < nTopic; i++ {
		var name string
		if i < len(topicNames) {
			name = topicNames[i]
		} else {
			name = titleWords[r.Intn(len(titleWords))] + " " + titleWords[r.Intn(len(titleWords))]
		}
		topics.MustInsert(storage.Row{storage.IntV(int64(i + 1)), storage.TextV(name)})
	}

	// --- Relationships ----------------------------------------------------
	draw := func(n int) func() int64 {
		if cfg.Skew > 1 {
			z := rand.NewZipf(r, cfg.Skew, 1, uint64(n-1))
			return func() int64 { return int64(1 + z.Uint64()) }
		}
		return func() int64 { return int64(1 + r.Intn(n)) }
	}
	pid := draw(nPerson)
	pubid := draw(nPub)
	confid := draw(nConf)
	orgid := draw(nOrg)
	topicid := draw(nTopic)
	pair := func(table string, n int, a, b func() int64) {
		t := tbl(table)
		for i := 0; i < n; i++ {
			t.MustInsert(storage.Row{storage.IntV(a()), storage.IntV(b())})
		}
	}

	// Planted relationships that pin the workload's qualitative behaviour.
	// Person IDs follow plantedPeople order; publication IDs plantedPubs.
	const (
		widom, hristidis, agrawal, chaudhuri, das, derose, gray, dewitt,
		washington, gravano, papak, doan, naughton = 1, 2, 3, 4, 5, 6, 7, 8,
			9, 10, 11, 12, 13
	)
	writes := tbl(Writes)
	plantWrites := [][2]int64{
		{widom, 1},      // Widom wrote the Trio paper
		{hristidis, 2},  // Hristidis wrote the keyword search paper
		{gravano, 2},    // ... with Gravano
		{papak, 3},      // Papakonstantinou wrote DBXplorer-ish paper
		{agrawal, 3},    // Agrawal too
		{chaudhuri, 4},  // Chaudhuri on probabilistic data
		{das, 5},        // Das on probabilistic data
		{dewitt, 8},     // DeWitt wrote the parallel DB tutorial... no:
		{gray, 8},       // Gray wrote the tutorial with DeWitt's coauthor
		{naughton, 9},   // streams + histograms
		{doan, 10},      // Washington-mentioning web mining paper
		{washington, 7}, // the person Washington wrote the XML paper
	}
	for _, w := range plantWrites {
		writes.MustInsert(storage.Row{storage.IntV(w[0]), storage.IntV(w[1])})
	}
	pair(Writes, count(Writes, 300), pid, pubid)

	coauthor := tbl(Coauthor)
	plantCoauthor := [][2]int64{
		{widom, hristidis}, {agrawal, chaudhuri}, {chaudhuri, das},
		{agrawal, das}, {derose, doan}, {doan, naughton}, {gray, dewitt},
		{derose, naughton},
	}
	for _, c := range plantCoauthor {
		coauthor.MustInsert(storage.Row{storage.IntV(c[0]), storage.IntV(c[1])})
	}
	pair(Coauthor, count(Coauthor, 200), pid, pid)

	affiliated := tbl(Affiliated)
	// Orgs follow orgNames order: 1 = Wisconsin, 2 = Washington, ...
	plantAffiliated := [][2]int64{
		{doan, 1}, {naughton, 1}, {derose, 1}, {dewitt, 1},
		{washington, 2}, {gray, 4}, {chaudhuri, 4}, {agrawal, 5},
	}
	for _, a := range plantAffiliated {
		affiliated.MustInsert(storage.Row{storage.IntV(a[0]), storage.IntV(a[1])})
	}
	pair(Affiliated, count(Affiliated, 100), pid, orgid)

	worksOn := tbl(WorksOn)
	// Topics follow topicNames order: 1 = probabilistic data, 2 = keyword
	// search, 3 = data streams, 4 = histograms, 5 = XML processing, ...
	plantWorksOn := [][2]int64{
		{widom, 1}, {hristidis, 2}, {das, 1}, {chaudhuri, 6},
		{naughton, 3}, {gravano, 2}, {washington, 5},
	}
	for _, w := range plantWorksOn {
		worksOn.MustInsert(storage.Row{storage.IntV(w[0]), storage.IntV(w[1])})
	}
	pair(WorksOn, count(WorksOn, 100), pid, topicid)

	serves := tbl(Serves)
	// Conferences follow confNames order: 1 = SIGMOD, 2 = VLDB, ...
	plantServes := [][2]int64{
		{gray, 1}, {widom, 2}, {dewitt, 1}, {naughton, 2}, {chaudhuri, 1},
	}
	for _, s := range plantServes {
		serves.MustInsert(storage.Row{storage.IntV(s[0]), storage.IntV(s[1])})
	}
	pair(Serves, count(Serves, 50), pid, confid)

	pair(GaveTalk, count(GaveTalk, 30), pid, orgid)

	gaveTutorial := tbl(GaveTutorial)
	// DeWitt gave a tutorial at SIGMOD; the tutorial *paper* (pub 8) is by
	// Gray, so "DeWitt tutorial" is dead at two tables but alive via joins —
	// the paper's observation about Q6.
	gaveTutorial.MustInsert(storage.Row{storage.IntV(dewitt), storage.IntV(1)})
	pair(GaveTutorial, count(GaveTutorial, 20), pid, confid)

	publishedIn := tbl(PublishedIn)
	// The keyword search paper is in VLDB; the Trio paper in SIGMOD. DeRose
	// has no publication at all planted — "DeRose VLDB" (Q4) finds nothing
	// at low levels but connects via coauthors at higher ones.
	plantPublished := [][2]int64{{1, 1}, {2, 2}, {3, 1}, {4, 2}, {7, 1}, {8, 1}, {9, 2}}
	for _, p := range plantPublished {
		publishedIn.MustInsert(storage.Row{storage.IntV(p[0]), storage.IntV(p[1])})
	}
	pair(PublishedIn, count(PublishedIn, 150), pubid, confid)

	aboutTopic := tbl(AboutTopic)
	plantAbout := [][2]int64{{1, 1}, {2, 2}, {4, 1}, {5, 1}, {6, 4}, {7, 5}, {9, 3}}
	for _, a := range plantAbout {
		aboutTopic.MustInsert(storage.Row{storage.IntV(a[0]), storage.IntV(a[1])})
	}
	pair(AboutTopic, count(AboutTopic, 100), pubid, topicid)

	return engine.New(db), nil
}
