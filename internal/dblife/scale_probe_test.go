package dblife

import (
	"testing"
	"time"

	"kwsdbg/internal/lattice"
)

// TestLatticeScale documents the lattice sizes the DBLife schema produces;
// run with -v to see the per-level breakdown. It also guards against
// regressions that would blow generation up beyond experiment scale.
func TestLatticeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale probe is slow")
	}
	for _, opts := range []lattice.Options{
		{MaxJoins: 4, KeywordSlots: 3},
		{MaxJoins: 6, KeywordSlots: 3},
	} {
		start := time.Now()
		l, err := lattice.GenerateOpts(Schema(), opts)
		if err != nil {
			t.Fatalf("GenerateOpts(%+v): %v", opts, err)
		}
		t.Logf("maxJoins=%d slots=%d total=%d elapsed=%v",
			opts.MaxJoins, opts.KeywordSlots, l.Len(), time.Since(start))
		for _, st := range l.Stats() {
			t.Logf("  L%d kept=%d gen=%d dup=%d t=%v", st.Level, st.Kept, st.Generated, st.Duplicates, st.Elapsed)
		}
		if l.Len() > 3_000_000 {
			t.Errorf("lattice for %+v has %d nodes; experiment scale exceeded", opts, l.Len())
		}
	}
}
