// Package dblife provides a synthetic stand-in for the DBLife snapshot the
// paper evaluates on (§3): the same 14-table star schema — five entity tables
// that carry text (Person, Publication, Conference, Organization, Topic) and
// nine text-less relationship tables centered on Person — plus a
// deterministic, seeded data generator scaled by a single factor, and the
// paper's ten-query workload (Table 2).
//
// The real 40 MB crawl (801,189 tuples) is not redistributable; what the
// paper's experiments actually depend on is the schema shape and where in the
// lattice the MTNs and MPANs of each query fall. The generator plants the
// workload's terms so those distributions match the paper's qualitative
// findings: person-name queries fan out into many candidate networks, and
// several queries are dead at low join counts but alive via multi-hop
// relationships.
package dblife

import "kwsdbg/internal/catalog"

// Relation names of the five entity tables.
const (
	Person       = "Person"
	Publication  = "Publication"
	Conference   = "Conference"
	Organization = "Organization"
	Topic        = "Topic"
)

// Relation names of the nine relationship tables.
const (
	Writes       = "writes"        // Person authored Publication
	Coauthor     = "coauthor"      // Person co-authored with Person
	Affiliated   = "affiliated"    // Person belongs to Organization
	WorksOn      = "works_on"      // Person works on Topic
	Serves       = "serves"        // Person serves Conference (PC etc.)
	GaveTalk     = "gave_talk"     // Person gave a talk at Organization
	GaveTutorial = "gave_tutorial" // Person gave a tutorial at Conference
	PublishedIn  = "published_in"  // Publication appeared in Conference
	AboutTopic   = "about_topic"   // Publication is about Topic
)

// Schema builds the 14-table DBLife schema graph of the paper's Figure 8.
func Schema() *catalog.Schema {
	b := catalog.NewSchemaBuilder()
	id := catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true}
	text := func(name string) catalog.Column {
		return catalog.Column{Name: name, Type: catalog.Text}
	}
	b.AddRelation(catalog.MustRelation(Person, id, text("name")))
	b.AddRelation(catalog.MustRelation(Publication, id, text("title"),
		catalog.Column{Name: "year", Type: catalog.Int}))
	b.AddRelation(catalog.MustRelation(Conference, id, text("name")))
	b.AddRelation(catalog.MustRelation(Organization, id, text("name")))
	b.AddRelation(catalog.MustRelation(Topic, id, text("name")))

	rel := func(name, aCol, aTab, bCol, bTab string) {
		b.AddRelation(catalog.MustRelation(name,
			catalog.Column{Name: aCol, Type: catalog.Int},
			catalog.Column{Name: bCol, Type: catalog.Int}))
		b.AddEdge(name, aCol, aTab, "id")
		b.AddEdge(name, bCol, bTab, "id")
	}
	rel(Writes, "pid", Person, "pubid", Publication)
	rel(Coauthor, "p1", Person, "p2", Person)
	rel(Affiliated, "pid", Person, "oid", Organization)
	rel(WorksOn, "pid", Person, "tid", Topic)
	rel(Serves, "pid", Person, "cid", Conference)
	rel(GaveTalk, "pid", Person, "oid", Organization)
	rel(GaveTutorial, "pid", Person, "cid", Conference)
	rel(PublishedIn, "pubid", Publication, "cid", Conference)
	rel(AboutTopic, "pubid", Publication, "tid", Topic)
	return b.MustBuild()
}
