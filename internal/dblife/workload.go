package dblife

// Query is one workload entry: the paper's Table 2.
type Query struct {
	ID       string
	Keywords []string
}

// Workload returns the ten keyword queries of Table 2. Q2, Q3, Q8, and Q10
// are the three-keyword queries the paper singles out as the expensive ones;
// Q4 and Q6 are the queries that are dead at the two-table level but alive
// at higher levels; Q8's "Washington" deliberately occurs in Person,
// Publication, and Organization.
func Workload() []Query {
	return []Query{
		{ID: "Q1", Keywords: []string{"Widom", "Trio"}},
		{ID: "Q2", Keywords: []string{"Hristidis", "Keyword", "Search"}},
		{ID: "Q3", Keywords: []string{"Agrawal", "Chaudhuri", "Das"}},
		{ID: "Q4", Keywords: []string{"DeRose", "VLDB"}},
		{ID: "Q5", Keywords: []string{"Gray", "SIGMOD"}},
		{ID: "Q6", Keywords: []string{"DeWitt", "tutorial"}},
		{ID: "Q7", Keywords: []string{"Probabilistic", "Data"}},
		{ID: "Q8", Keywords: []string{"Probabilistic", "Data", "Washington"}},
		{ID: "Q9", Keywords: []string{"SIGMOD", "XML"}},
		{ID: "Q10", Keywords: []string{"Stream", "data", "histograms"}},
	}
}
