package engine

import (
	"fmt"
	"testing"
)

// benchEngine loads a product database with n items for the micro-benchmarks.
func benchEngine(b *testing.B, n int) *Engine {
	b.Helper()
	e, err := Load(productScript)
	if err != nil {
		b.Fatal(err)
	}
	tbl, _ := e.Database().Table("Item")
	words := []string{"scented", "plain", "striped", "marbled", "rustic"}
	for i := 5; i < n; i++ {
		name := fmt.Sprintf("%s item %d", words[i%len(words)], i)
		row := fmt.Sprintf("INSERT INTO Item VALUES (%d, '%s', %d, %d, %d, %f, 'bulk row')",
			i, name, 1+i%3, 1+i%4, 1+i%4, float64(i%50))
		if _, err := e.Exec(row); err != nil {
			b.Fatal(err)
		}
	}
	_ = tbl
	e.Index() // build outside the timed region
	return e
}

// BenchmarkExistenceProbe is the debugger's hot path: a three-way join with
// keyword predicates, early-exited by LIMIT 1.
func BenchmarkExistenceProbe(b *testing.B) {
	e := benchEngine(b, 5000)
	const q = `SELECT 1 FROM PType AS t0, Item AS t1, Color AS t2
		WHERE t1.ptype = t0.id AND t1.color = t2.id
		AND t0.ptype CONTAINS 'candle' AND t1.name CONTAINS 'scented'
		AND (t2.color CONTAINS 'red' OR t2.synonyms CONTAINS 'red') LIMIT 1`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeadProbe measures the worst case for existence checks: a probe
// that must exhaust its candidates to conclude emptiness.
func BenchmarkDeadProbe(b *testing.B) {
	e := benchEngine(b, 5000)
	const q = `SELECT 1 FROM PType AS t0, Item AS t1
		WHERE t1.ptype = t0.id AND t0.ptype CONTAINS 'incense'
		AND t1.name CONTAINS 'scented' LIMIT 1`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCountStarJoin measures full enumeration through a join.
func BenchmarkCountStarJoin(b *testing.B) {
	e := benchEngine(b, 2000)
	const q = `SELECT COUNT(*) FROM Item i, PType p WHERE i.ptype = p.id`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContainsIndexed measures an index-accelerated text predicate.
func BenchmarkContainsIndexed(b *testing.B) {
	e := benchEngine(b, 5000)
	const q = `SELECT COUNT(*) FROM Item WHERE name CONTAINS 'striped'`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLikeScan measures the scan-based LIKE fallback over the same data.
func BenchmarkLikeScan(b *testing.B) {
	e := benchEngine(b, 5000)
	const q = `SELECT COUNT(*) FROM Item WHERE name LIKE '%striped%'`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse isolates SQL text parsing from execution.
func BenchmarkParse(b *testing.B) {
	e := benchEngine(b, 100)
	_ = e
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query("SELECT 1 FROM Item WHERE name CONTAINS 'no such token here' LIMIT 1"); err != nil {
			b.Fatal(err)
		}
	}
}
