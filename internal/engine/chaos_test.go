package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps chaos tests quick without changing attempt semantics.
var fastRetry = RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond, MaxDelay: 200 * time.Microsecond}

// TestRetryTransientFault proves a transient failure is absorbed: the query
// succeeds, costs extra attempts, and returns exactly the fault-free rows.
func TestRetryTransientFault(t *testing.T) {
	e := productEngine(t)
	e.SetRetryPolicy(fastRetry)
	want := mustQuery(t, e, "SELECT name FROM Item")

	var calls atomic.Int64
	e.SetFaultInjector(func() error {
		// Fail the first two attempts; the third (and last) succeeds.
		if calls.Add(1) <= 2 {
			return Transient(fmt.Errorf("synthetic I/O hiccup"))
		}
		return nil
	})
	got, err := e.Query("SELECT name FROM Item")
	e.SetFaultInjector(nil)
	if err != nil {
		t.Fatalf("transient faults should be retried away, got %v", err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows after retries = %d, want %d", len(got.Rows), len(want.Rows))
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("executions = %d, want 3 (two faults + success)", n)
	}
}

// TestRetryGivesUp verifies the attempt bound: a fault that never clears
// fails the query after exactly MaxAttempts executions.
func TestRetryGivesUp(t *testing.T) {
	e := productEngine(t)
	e.SetRetryPolicy(fastRetry)
	var calls atomic.Int64
	e.SetFaultInjector(func() error {
		calls.Add(1)
		return Transient(fmt.Errorf("permanent hiccup"))
	})
	defer e.SetFaultInjector(nil)
	if _, err := e.Query("SELECT name FROM Item"); !IsTransient(err) {
		t.Fatalf("want the transient error to surface after retries, got %v", err)
	}
	if n := calls.Load(); n != int64(fastRetry.MaxAttempts) {
		t.Fatalf("executions = %d, want %d", n, fastRetry.MaxAttempts)
	}
}

// TestRetrySkipsNonTransient: a plain error is not retried.
func TestRetrySkipsNonTransient(t *testing.T) {
	e := productEngine(t)
	e.SetRetryPolicy(fastRetry)
	boom := fmt.Errorf("corrupted page")
	var calls atomic.Int64
	e.SetFaultInjector(func() error {
		calls.Add(1)
		return boom
	})
	defer e.SetFaultInjector(nil)
	if _, err := e.Query("SELECT name FROM Item"); !errors.Is(err, boom) {
		t.Fatalf("want the original error, got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1 (no retry for non-transient)", n)
	}
}

// TestRetryRespectsCancellation: cancellation during the backoff sleep
// returns context.Canceled promptly instead of burning the remaining
// attempts, and a transient-wrapped context error is never retried.
func TestRetryRespectsCancellation(t *testing.T) {
	e := productEngine(t)
	e.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Hour, MaxDelay: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	e.SetFaultInjector(func() error {
		cancel() // fault once, then cancel while SelectContext backs off
		return Transient(fmt.Errorf("hiccup"))
	})
	defer e.SetFaultInjector(nil)

	done := make(chan error, 1)
	go func() {
		_, err := e.QueryContext(ctx, "SELECT name FROM Item")
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SelectContext slept through cancellation")
	}

	if IsTransient(Transient(context.Canceled)) {
		t.Fatal("a wrapped context error must not count as transient")
	}
}
