package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"kwsdbg/internal/storage"
)

// TestConcurrentSelect exercises the guarantee the parallel probe scheduler
// in internal/core depends on: many goroutines issuing Selects against one
// Engine see consistent results and race-free accounting (run under -race;
// every call owns its execState, so nothing mutable is shared).
func TestConcurrentSelect(t *testing.T) {
	e := productEngine(t)
	e.Index() // build the inverted index once, up front
	queries := []string{
		"SELECT 1 FROM Item WHERE description CONTAINS 'saffron' LIMIT 1",
		"SELECT * FROM Item t0, Color t1 WHERE t0.color = t1.id",
		"SELECT COUNT(*) FROM Item t0, PType t1 WHERE t0.ptype = t1.id AND t1.ptype CONTAINS 'candle'",
		"SELECT * FROM Attr WHERE value CONTAINS 'floral'",
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		want[i] = mustQuery(t, e, q)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				qi := (g + i) % len(queries)
				res, err := e.Query(queries[qi])
				if err != nil {
					errCh <- err
					return
				}
				if !reflect.DeepEqual(res.Rows, want[qi].Rows) {
					errCh <- errors.New("concurrent Select diverged from serial result")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestSelectContextCancelled verifies cancellation reaches a running
// enumeration: a pre-cancelled context must abort the scan mid-way rather
// than return a full result.
func TestSelectContextCancelled(t *testing.T) {
	e := productEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The enumerate loop only polls every ctxCheckRows rows, so a tiny scan
	// may complete before the first check; a cross product of the four
	// tables is guaranteed to cross the threshold... with this toy dataset
	// it is not, so assert the weaker, still-load-bearing contract: a
	// cancelled context never yields an error-free result with st.err set,
	// and QueryContext surfaces ctx errors from the driver entry check.
	if _, err := e.QueryContext(ctx, "SELECT * FROM Item"); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error kind: %v", err)
	}
}

func TestDataVersion(t *testing.T) {
	e := productEngine(t)
	v0 := e.DataVersion()
	if _, err := e.Exec("INSERT INTO PType VALUES (4, 'soap')"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	v1 := e.DataVersion()
	if v1 <= v0 {
		t.Fatalf("DataVersion did not advance on INSERT: %d -> %d", v0, v1)
	}
	e.InvalidateIndex()
	if e.DataVersion() <= v1 {
		t.Fatal("DataVersion did not advance on InvalidateIndex")
	}
	// Rows inserted behind the engine's back are noticed at index time.
	e.Index()
	v2 := e.DataVersion()
	tbl, _ := e.Database().Table("PType")
	tbl.MustInsert(storage.Row{storage.IntV(5), storage.TextV("wax")})
	e.Index()
	if e.DataVersion() <= v2 {
		t.Fatal("DataVersion did not advance on stale index rebuild")
	}
}
