package engine

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/storage"
)

// Dump writes the database as a SQL script that Load accepts: CREATE TABLE
// statements in schema order (with their key-foreign-key clauses) followed
// by batched INSERTs. Dump(Load(Dump(db))) is the identity on data, which
// the tests pin; the synthetic datasets become portable artifacts this way.
func (e *Engine) Dump(w io.Writer) error {
	schema := e.db.Schema()
	for _, rel := range schema.Relations() {
		if err := dumpCreate(w, schema, rel); err != nil {
			return err
		}
	}
	for _, rel := range schema.Relations() {
		tbl, ok := e.db.Table(rel.Name)
		if !ok || tbl.RowCount() == 0 {
			continue
		}
		if err := dumpRows(w, rel, tbl); err != nil {
			return err
		}
	}
	return nil
}

func dumpCreate(w io.Writer, schema *catalog.Schema, rel *catalog.Relation) error {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(rel.Name)
	sb.WriteString(" (")
	for i, c := range rel.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteByte(' ')
		sb.WriteString(c.Type.String())
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		}
	}
	for _, e := range schema.Edges() {
		if e.From == rel.Name {
			fmt.Fprintf(&sb, ", FOREIGN KEY (%s) REFERENCES %s(%s)", e.FromCol, e.To, e.ToCol)
		}
	}
	sb.WriteString(");\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// dumpRows batches inserts to keep statements parseable without slurping the
// whole table into one line.
func dumpRows(w io.Writer, rel *catalog.Relation, tbl *storage.Table) error {
	const batch = 200
	var sb strings.Builder
	count := 0
	flush := func() error {
		if count == 0 {
			return nil
		}
		sb.WriteString(";\n")
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
		sb.Reset()
		count = 0
		return nil
	}
	var outerErr error
	tbl.Scan(func(_ storage.RowID, row storage.Row) bool {
		if count == 0 {
			sb.WriteString("INSERT INTO ")
			sb.WriteString(rel.Name)
			sb.WriteString(" VALUES ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for i, v := range row {
			if i > 0 {
				sb.WriteString(", ")
			}
			switch v.Kind {
			case catalog.Int:
				sb.WriteString(strconv.FormatInt(v.I, 10))
			case catalog.Float:
				sb.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
			default:
				sb.WriteByte('\'')
				sb.WriteString(strings.ReplaceAll(v.S, "'", "''"))
				sb.WriteByte('\'')
			}
		}
		sb.WriteByte(')')
		count++
		if count == batch {
			if err := flush(); err != nil {
				outerErr = err
				return false
			}
		}
		return true
	})
	if outerErr != nil {
		return outerErr
	}
	return flush()
}
