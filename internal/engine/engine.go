// Package engine executes the SQL dialect of package sqltext against the
// in-memory store of package storage. It is the stdlib stand-in for the
// PostgreSQL instance of the paper's evaluation: the KWS-S layers above it
// only ever ask "run this select-project-join query, possibly with LIMIT 1,
// and tell me what comes back".
//
// The planner is deliberately query-shape-aware rather than general: it
// computes per-alias candidate row sets from indexable local predicates
// (CONTAINS via the inverted index, integer equality via hash indexes), picks
// a greedy join order starting from the most selective alias, and enumerates
// bindings by index-nested-loop backtracking with early exit on LIMIT — the
// access pattern that dominates a lattice traversal's existence probes.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/invidx"
	"kwsdbg/internal/sqltext"
	"kwsdbg/internal/storage"
	"kwsdbg/internal/vervec"
)

// Engine executes SQL against one database. It is safe for concurrent
// queries; data definition happens only at load time.
type Engine struct {
	db *storage.Database

	// version counts observed data mutations: INSERTs through the engine,
	// explicit index invalidations, and staleness detected at index
	// rebuild time. It survives as the coarse fallback; fine-grained
	// staleness goes through vv.
	version atomic.Uint64

	// vv attributes every observed mutation to the tables and terms it
	// touched, so footprint-stamped artifacts (plans, candidate sets,
	// probe verdicts) survive writes disjoint from their join trees.
	// Mutations that cannot be attributed (InvalidateIndex after in-place
	// updates) advance its epoch instead, which stales every stamp.
	vv *vervec.Vector

	mu      sync.Mutex
	ix      *invidx.Index
	ixSizes map[string]int // per-table row counts when ix was built

	// plans caches Prepared handles for the text path: QueryContext keys it
	// by the statement's canonical rendering (see sqltext.CanonicalKey) plus
	// the raw text as an alias, so repeated SQL skips parse and resolve
	// entirely. Handles revalidate against version themselves, so the cache
	// needs no generation.
	plans *PreparedCache

	// faults and retry are the resilience hooks of retry.go: an optional
	// FaultInjector consulted before every Select execution, and the
	// RetryPolicy governing transient-failure retries. Both atomic so tests
	// and servers can swap them mid-flight.
	faults atomic.Value // FaultInjector
	retry  atomic.Value // RetryPolicy
}

// New wraps an already-populated database.
func New(db *storage.Database) *Engine {
	return &Engine{db: db, plans: NewPreparedCache(DefaultPlanCacheSize, "text"), vv: vervec.New()}
}

// Versions exposes the engine's per-table/per-term version vector, the
// fine-grained refinement of DataVersion. Cached artifacts stamp their
// footprint against it and the probe cache syncs a snapshot per run.
func (e *Engine) Versions() *vervec.Vector { return e.vv }

// PlanCache exposes the text-path plan cache for sizing, health stats, and
// cold-start benchmarks.
func (e *Engine) PlanCache() *PreparedCache { return e.plans }

// Load builds an engine from a SQL script of CREATE TABLE and INSERT
// statements. This is how the examples bootstrap their datasets, and it is
// the only path that performs DDL: the schema graph is immutable afterwards,
// because the lattice of package lattice is derived from it.
func Load(script string) (*Engine, error) {
	stmts, err := sqltext.ParseScript(script)
	if err != nil {
		return nil, err
	}
	b := catalog.NewSchemaBuilder()
	var inserts []*sqltext.Insert
	for _, s := range stmts {
		switch st := s.(type) {
		case *sqltext.CreateTable:
			rel, err := catalog.NewRelation(st.Name, st.Columns...)
			if err != nil {
				return nil, err
			}
			b.AddRelation(rel)
			for _, fk := range st.ForeignKeys {
				b.AddEdge(st.Name, fk.Column, fk.RefTable, fk.RefCol)
			}
		case *sqltext.Insert:
			inserts = append(inserts, st)
		default:
			return nil, fmt.Errorf("engine: load script may contain only CREATE TABLE and INSERT, got %T", s)
		}
	}
	schema, err := b.Build()
	if err != nil {
		return nil, err
	}
	e := New(storage.NewDatabase(schema))
	for _, ins := range inserts {
		if err := e.execInsert(ins); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Database returns the underlying store.
func (e *Engine) Database() *storage.Database { return e.db }

// Index returns the inverted index over the current data, rebuilding it if
// any indexed table changed size since the last build. The paper's workflow
// mutates data between debugging sessions (adding synonyms), so staleness is
// detected rather than assumed away.
func (e *Engine) Index() *invidx.Index {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ix != nil {
		stale := e.staleTablesLocked()
		if len(stale) == 0 {
			return e.ix
		}
		// Rows reached storage without passing through Exec (tests and
		// tools insert directly); surface the mutation to version-keyed
		// caches the same way the index rebuild reacts to it, attributing
		// the appended rows' tables and terms to the version vector so
		// footprint-stamped artifacts stale no wider than necessary.
		e.version.Add(1)
		e.attributeAppendsLocked(stale)
	}
	e.ix = invidx.Build(e.db)
	e.ixSizes = make(map[string]int)
	for _, rel := range e.db.Schema().Relations() {
		if t, ok := e.db.Table(rel.Name); ok {
			e.ixSizes[rel.Name] = t.RowCount()
		}
	}
	return e.ix
}

// staleTablesLocked lists tables whose row count moved since the index was
// built, in schema order (deterministic).
func (e *Engine) staleTablesLocked() []string {
	var stale []string
	for _, rel := range e.db.Schema().Relations() {
		t, ok := e.db.Table(rel.Name)
		if ok && e.ixSizes[rel.Name] != t.RowCount() {
			stale = append(stale, rel.Name)
		}
	}
	return stale
}

// attributeAppendsLocked bumps the version vector for rows that reached
// storage directly. Appended rows are readable (ixSizes remembers where the
// index stopped), so their text values are tokenized exactly as execInsert
// would have; a table that *shrank* has no attributable footprint and
// advances the epoch instead.
func (e *Engine) attributeAppendsLocked(stale []string) {
	var names []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, tn := range stale {
		t, ok := e.db.Table(tn)
		if !ok {
			continue
		}
		if t.RowCount() < e.ixSizes[tn] {
			e.vv.BumpEpoch()
			return
		}
		add(vervec.TableKey(tn))
		for id := e.ixSizes[tn]; id < t.RowCount(); id++ {
			for _, v := range t.Row(storage.RowID(id)) {
				if v.Kind != catalog.Text {
					continue
				}
				for _, tok := range invidx.Tokenize(v.S) {
					add(vervec.TermKey(tok))
				}
			}
		}
	}
	e.vv.Bump(names...)
}

// InvalidateIndex forces the next Index call to rebuild. Needed after
// in-place row updates, which do not change table sizes.
func (e *Engine) InvalidateIndex() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ix = nil
	e.version.Add(1)
	// In-place updates are non-monotone (a row's text may have *lost* a
	// term), so no footprint can vouch for any cached artifact: advance the
	// epoch, which stales every stamp at once.
	e.vv.BumpEpoch()
}

// DataVersion returns a counter that advances whenever the engine observes a
// data mutation: an INSERT, an explicit InvalidateIndex, or staleness
// detected while serving Index. The probe cache uses it as its generation, so
// verdicts learned before a data change can never be served after it.
func (e *Engine) DataVersion() uint64 { return e.version.Load() }

// Result is the outcome of a SELECT.
type Result struct {
	Columns []string
	Rows    [][]storage.Value
}

// Query parses and executes a SELECT statement.
func (e *Engine) Query(sql string) (*Result, error) {
	return e.QueryContext(context.Background(), sql)
}

// QueryContext parses and executes a SELECT statement, abandoning the
// enumeration when the context is cancelled. Statements are compiled through
// the plan cache: a repeat of the same SQL — byte-identical or merely
// spelling the same canonical query — reuses its Prepared handle and skips
// parse and resolve. Only successfully compiled SELECTs are cached; parse
// errors and non-SELECTs take the uncached path every time.
func (e *Engine) QueryContext(ctx context.Context, sql string) (*Result, error) {
	if p := e.plans.Get(sql); p != nil {
		return p.ExecContext(ctx, nil)
	}
	stmt, err := sqltext.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqltext.Select)
	if !ok {
		return nil, fmt.Errorf("engine: Query requires SELECT, got %T", stmt)
	}
	// Re-probe under the canonical key: different spellings of one query
	// (whitespace, case) converge on a single cached handle.
	canon := sqltext.CanonicalKey(sel)
	p := e.plans.Get(canon)
	if p == nil {
		p, err = e.Prepare(sel)
		if err != nil {
			return nil, err
		}
		e.plans.Put(canon, p)
	}
	if canon != sql {
		e.plans.Put(sql, p)
	}
	return p.ExecContext(ctx, nil)
}

// Exec parses and executes an INSERT statement, returning the number of rows
// inserted. DDL is rejected at runtime; see Load.
func (e *Engine) Exec(sql string) (int64, error) {
	stmt, err := sqltext.Parse(sql)
	if err != nil {
		return 0, err
	}
	ins, ok := stmt.(*sqltext.Insert)
	if !ok {
		return 0, fmt.Errorf("engine: Exec supports only INSERT at runtime (DDL is load-time only), got %T", stmt)
	}
	if err := e.execInsert(ins); err != nil {
		return 0, err
	}
	return int64(len(ins.Rows)), nil
}

func (e *Engine) execInsert(ins *sqltext.Insert) error {
	tbl, ok := e.db.Table(ins.Table)
	if !ok {
		return fmt.Errorf("engine: unknown table %q", ins.Table)
	}
	e.version.Add(1)
	// Attribute the write before any row becomes visible: a footprint
	// stamped between the bump and the insert goes stale — the safe
	// direction — while the reverse order could vouch for data the reader
	// never saw. Terms come from the statement's text literals, the same
	// tokens the inverted index will see.
	names := []string{vervec.TableKey(ins.Table)}
	seen := map[string]bool{names[0]: true}
	for _, litRow := range ins.Rows {
		for _, lit := range litRow {
			if lit.Kind != sqltext.LitString {
				continue
			}
			for _, tok := range invidx.Tokenize(lit.S) {
				if k := vervec.TermKey(tok); !seen[k] {
					seen[k] = true
					names = append(names, k)
				}
			}
		}
	}
	e.vv.Bump(names...)
	rel := tbl.Relation()
	for _, litRow := range ins.Rows {
		if len(litRow) != len(rel.Columns) {
			return fmt.Errorf("engine: INSERT INTO %s: %d values, want %d", ins.Table, len(litRow), len(rel.Columns))
		}
		row := make(storage.Row, len(litRow))
		for i, lit := range litRow {
			v, err := literalValue(lit, rel.Columns[i].Type)
			if err != nil {
				return fmt.Errorf("engine: INSERT INTO %s.%s: %w", ins.Table, rel.Columns[i].Name, err)
			}
			row[i] = v
		}
		if _, err := tbl.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// literalValue coerces a parsed literal to a column type. Integers widen to
// floats; everything else must match exactly.
// ErrLiteralType marks literal/column type mismatches in predicates and
// INSERT rows. Callers classify with errors.Is: the debugger distinguishes
// a malformed probe (a bug in SQL rendering) from a transient execution
// failure (retryable), so the sentinel must survive the wrapping layers.
var ErrLiteralType = errors.New("engine: literal does not fit column type")

func literalValue(lit sqltext.Literal, want catalog.ColType) (storage.Value, error) {
	switch want {
	case catalog.Int:
		if lit.Kind == sqltext.LitInt {
			return storage.IntV(lit.I), nil
		}
	case catalog.Float:
		switch lit.Kind {
		case sqltext.LitFloat:
			return storage.FloatV(lit.F), nil
		case sqltext.LitInt:
			return storage.FloatV(float64(lit.I)), nil
		}
	case catalog.Text:
		if lit.Kind == sqltext.LitString {
			return storage.TextV(lit.S), nil
		}
	}
	return storage.Value{}, fmt.Errorf("literal %v does not fit column type %v: %w", lit, want, ErrLiteralType)
}
