package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"kwsdbg/internal/invidx"
	"kwsdbg/internal/sqltext"
	"kwsdbg/internal/storage"
)

// productScript is the toy database of the paper's Figure 2.
const productScript = `
CREATE TABLE PType (id INT PRIMARY KEY, ptype TEXT);
CREATE TABLE Color (id INT PRIMARY KEY, color TEXT, synonyms TEXT);
CREATE TABLE Attr (id INT PRIMARY KEY, property TEXT, value TEXT);
CREATE TABLE Item (
	id INT PRIMARY KEY, name TEXT, ptype INT, color INT, attr INT,
	cost FLOAT, description TEXT,
	FOREIGN KEY (ptype) REFERENCES PType(id),
	FOREIGN KEY (color) REFERENCES Color(id),
	FOREIGN KEY (attr) REFERENCES Attr(id));

INSERT INTO PType VALUES (1, 'oil'), (2, 'candle'), (3, 'incense');
INSERT INTO Color VALUES
	(1, 'red', 'crimson, orange'),
	(2, 'yellow', 'golden, lemon'),
	(3, 'pink', 'peach, salmon'),
	(4, 'saffron', 'yellow, orange');
INSERT INTO Attr VALUES
	(1, 'scent', 'saffron'),
	(2, 'scent', 'vanilla'),
	(3, 'pattern', 'floral'),
	(4, 'pattern', 'checkered');
INSERT INTO Item VALUES
	(1, 'saffron scented oil', 1, 0, 1, 4.99, '3.4 oz. burns without fumes.'),
	(2, 'vanilla scented candle', 2, 2, 2, 5.99, 'burn time 50 hrs. 6.4 oz. 2pck.'),
	(3, 'crimson scented candle', 2, 1, 3, 3.99, 'hand-made. saffron scented. 2pck.'),
	(4, 'red checkered candle', 2, 1, 4, 3.99, 'rose scented. made from essential oils.');
`

func productEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := Load(productScript)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return e
}

func mustQuery(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	return res
}

func TestLoadErrors(t *testing.T) {
	bad := []struct {
		name, script string
	}{
		{"parse error", "CREATE TABLE ("},
		{"select in script", "SELECT * FROM t"},
		{"bad relation", "CREATE TABLE t ()"},
		{"bad fk", "CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES u(v))"},
		{"insert unknown table", "INSERT INTO nope VALUES (1)"},
		{"insert arity", "CREATE TABLE t (a INT, b TEXT); INSERT INTO t VALUES (1)"},
		{"insert type", "CREATE TABLE t (a INT); INSERT INTO t VALUES ('x')"},
		{"duplicate table", "CREATE TABLE t (a INT); CREATE TABLE t (a INT)"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(tc.script); err == nil {
				t.Fatal("Load succeeded, want error")
			}
		})
	}
}

func TestSingleTableSelect(t *testing.T) {
	e := productEngine(t)
	res := mustQuery(t, e, "SELECT * FROM PType")
	if len(res.Rows) != 3 || len(res.Columns) != 2 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	if res.Columns[0] != "PType.id" || res.Columns[1] != "PType.ptype" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestProjectionForms(t *testing.T) {
	e := productEngine(t)
	res := mustQuery(t, e, "SELECT COUNT(*) FROM Item")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 4 {
		t.Fatalf("count = %+v", res.Rows)
	}
	res = mustQuery(t, e, "SELECT 1 FROM Item LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("select 1 = %+v", res.Rows)
	}
	res = mustQuery(t, e, "SELECT name, cost FROM Item WHERE id = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "vanilla scented candle" || res.Rows[0][1].F != 5.99 {
		t.Fatalf("cols = %+v", res.Rows)
	}
	if !reflect.DeepEqual(res.Columns, []string{"name", "cost"}) {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestWherePredicates(t *testing.T) {
	e := productEngine(t)
	tests := []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM Item WHERE name CONTAINS 'candle'", 3},
		{"SELECT * FROM Item WHERE name CONTAINS 'scented candle'", 2},
		{"SELECT * FROM Item WHERE description CONTAINS 'saffron'", 1},
		{"SELECT * FROM Item WHERE (name CONTAINS 'saffron' OR description CONTAINS 'saffron')", 2},
		{"SELECT * FROM Item WHERE name LIKE '%scented%'", 3},
		{"SELECT * FROM Item WHERE name LIKE 'red%'", 1},
		{"SELECT * FROM Item WHERE name NOT LIKE '%candle%'", 1},
		{"SELECT * FROM Item WHERE name LIKE '_ed%'", 1},
		{"SELECT * FROM Item WHERE cost < 4.0", 2},
		{"SELECT * FROM Item WHERE cost <= 3.99", 2},
		{"SELECT * FROM Item WHERE cost > 4 AND cost < 6", 2},
		{"SELECT * FROM Item WHERE id >= 3", 2},
		{"SELECT * FROM Item WHERE id <> 1", 3},
		{"SELECT * FROM Item WHERE ptype = 2 AND color = 1", 2},
		{"SELECT * FROM Item WHERE (id = 1 OR id = 4)", 2},
		{"SELECT * FROM Item WHERE name = 'red checkered candle'", 1},
		{"SELECT * FROM Item WHERE name CONTAINS 'nothing here'", 0},
	}
	for _, tc := range tests {
		t.Run(tc.sql, func(t *testing.T) {
			if got := len(mustQuery(t, e, tc.sql).Rows); got != tc.want {
				t.Errorf("got %d rows, want %d", got, tc.want)
			}
		})
	}
}

func TestJoins(t *testing.T) {
	e := productEngine(t)
	// q1 of Example 1: scented candles whose color is saffron — dead.
	q1 := `SELECT 1 FROM PType AS t0, Item AS t1, Color AS t2
		WHERE t1.ptype = t0.id AND t1.color = t2.id
		AND t0.ptype CONTAINS 'candle' AND t1.name CONTAINS 'scented'
		AND (t2.color CONTAINS 'saffron' OR t2.synonyms CONTAINS 'saffron') LIMIT 1`
	if got := len(mustQuery(t, e, q1).Rows); got != 0 {
		t.Errorf("q1: got %d rows, want 0 (non-answer)", got)
	}
	// Sub-query of q1: scented candles — alive.
	sub := `SELECT 1 FROM PType AS t0, Item AS t1
		WHERE t1.ptype = t0.id AND t0.ptype CONTAINS 'candle' AND t1.name CONTAINS 'scented' LIMIT 1`
	if got := len(mustQuery(t, e, sub).Rows); got != 1 {
		t.Errorf("sub-query: got %d rows, want 1", got)
	}
	// q2: scented candles with saffron scent attribute — dead.
	q2 := `SELECT 1 FROM PType AS t0, Item AS t1, Attr AS t2
		WHERE t1.ptype = t0.id AND t1.attr = t2.id
		AND t0.ptype CONTAINS 'candle' AND t1.name CONTAINS 'scented'
		AND (t2.property CONTAINS 'saffron' OR t2.value CONTAINS 'saffron') LIMIT 1`
	if got := len(mustQuery(t, e, q2).Rows); got != 0 {
		t.Errorf("q2: got %d rows, want 0 (non-answer)", got)
	}
	// Sub-query of q2: saffron-scented products — alive (the oil).
	sub2 := `SELECT t1.name FROM Item AS t1, Attr AS t2
		WHERE t1.attr = t2.id AND t1.name CONTAINS 'scented'
		AND (t2.property CONTAINS 'saffron' OR t2.value CONTAINS 'saffron')`
	res := mustQuery(t, e, sub2)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "saffron scented oil" {
		t.Errorf("sub2 = %+v", res.Rows)
	}
}

func TestJoinFullResults(t *testing.T) {
	e := productEngine(t)
	res := mustQuery(t, e, `SELECT i.name, p.ptype FROM Item i, PType p WHERE i.ptype = p.id`)
	if len(res.Rows) != 4 {
		t.Fatalf("join rows = %d, want 4", len(res.Rows))
	}
	byName := map[string]string{}
	for _, r := range res.Rows {
		byName[r[0].S] = r[1].S
	}
	if byName["saffron scented oil"] != "oil" || byName["red checkered candle"] != "candle" {
		t.Errorf("join pairs = %v", byName)
	}
}

func TestSelfJoin(t *testing.T) {
	e := productEngine(t)
	res := mustQuery(t, e, `SELECT COUNT(*) FROM Item a, Item b WHERE a.ptype = b.ptype`)
	// 1 oil x itself + 3 candles x 3 candles = 1 + 9 = 10.
	if res.Rows[0][0].I != 10 {
		t.Errorf("self-join count = %d, want 10", res.Rows[0][0].I)
	}
}

func TestCrossProduct(t *testing.T) {
	e := productEngine(t)
	res := mustQuery(t, e, `SELECT COUNT(*) FROM PType, Color`)
	if res.Rows[0][0].I != 12 {
		t.Errorf("cross product = %d, want 12", res.Rows[0][0].I)
	}
}

func TestResidualPredicate(t *testing.T) {
	e := productEngine(t)
	// Non-equi cross-alias predicate must be applied as a residual filter.
	res := mustQuery(t, e, `SELECT COUNT(*) FROM Item a, Item b WHERE a.cost < b.cost`)
	// costs: 4.99, 5.99, 3.99, 3.99 -> pairs with strictly smaller: 3.99<4.99 x2, 3.99<5.99 x2, 4.99<5.99 = 5
	if res.Rows[0][0].I != 5 {
		t.Errorf("residual count = %d, want 5", res.Rows[0][0].I)
	}
	// Cross-alias OR group.
	res = mustQuery(t, e, `SELECT COUNT(*) FROM PType p, Color c WHERE (p.ptype = 'oil' OR c.color = 'red')`)
	// p=oil contributes 4, c=red contributes 3, overlap 1 -> 6.
	if res.Rows[0][0].I != 6 {
		t.Errorf("cross-alias OR = %d, want 6", res.Rows[0][0].I)
	}
}

func TestLimit(t *testing.T) {
	e := productEngine(t)
	if got := len(mustQuery(t, e, "SELECT * FROM Item LIMIT 2").Rows); got != 2 {
		t.Errorf("limit 2 -> %d rows", got)
	}
	if got := len(mustQuery(t, e, "SELECT * FROM Item LIMIT 0").Rows); got != 0 {
		t.Errorf("limit 0 -> %d rows", got)
	}
	if got := len(mustQuery(t, e, "SELECT * FROM Item LIMIT 99").Rows); got != 4 {
		t.Errorf("limit 99 -> %d rows", got)
	}
}

func TestQueryErrors(t *testing.T) {
	e := productEngine(t)
	bad := []string{
		"INSERT INTO Item VALUES (1)",              // Query is SELECT-only
		"SELECT * FROM nope",                       // unknown table
		"SELECT * FROM Item a, PType a",            // duplicate alias
		"SELECT nope FROM Item",                    // unknown column
		"SELECT id FROM Item, PType",               // ambiguous column
		"SELECT x.id FROM Item",                    // unknown alias
		"SELECT Item.nope FROM Item",               // unknown column w/ qualifier
		"SELECT * FROM Item WHERE name = 3",        // type mismatch
		"SELECT * FROM Item WHERE id = 'x'",        // type mismatch
		"SELECT * FROM Item WHERE id CONTAINS 'x'", // CONTAINS on INT
		"SELECT * FROM Item WHERE cost LIKE 'x'",   // LIKE on FLOAT
		"SELECT * FRO Item",                        // parse error
	}
	for _, sql := range bad {
		if _, err := e.Query(sql); err == nil {
			t.Errorf("Query(%q) succeeded, want error", sql)
		}
	}
}

func TestExecInsertAndIndexRefresh(t *testing.T) {
	e := productEngine(t)
	if got := len(mustQuery(t, e, "SELECT * FROM Item WHERE name CONTAINS 'lavender'").Rows); got != 0 {
		t.Fatalf("pre-insert rows = %d", got)
	}
	n, err := e.Exec("INSERT INTO Item VALUES (5, 'lavender candle', 2, 3, 2, 7.5, 'fresh')")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if n != 1 {
		t.Errorf("Exec rows = %d", n)
	}
	if got := len(mustQuery(t, e, "SELECT * FROM Item WHERE name CONTAINS 'lavender'").Rows); got != 1 {
		t.Errorf("post-insert rows = %d (stale index?)", got)
	}
	if _, err := e.Exec("SELECT * FROM Item"); err == nil {
		t.Error("Exec(SELECT) succeeded")
	}
	if _, err := e.Exec("CREATE TABLE t (a INT)"); err == nil {
		t.Error("Exec(CREATE) succeeded, want load-time-only error")
	}
	if _, err := e.Exec("INSERT INTO"); err == nil {
		t.Error("Exec(bad sql) succeeded")
	}
}

func TestInvalidateIndexAfterUpdate(t *testing.T) {
	e := productEngine(t)
	// The paper's motivating fix: add "saffron" as a synonym of yellow.
	tbl, _ := e.Database().Table("Color")
	if err := tbl.Update(1, storage.Row{
		storage.IntV(2), storage.TextV("yellow"), storage.TextV("golden, lemon, saffron"),
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// Same row count, so the engine cannot detect staleness on its own.
	e.InvalidateIndex()
	got := mustQuery(t, e, "SELECT * FROM Color WHERE synonyms CONTAINS 'saffron'")
	if len(got.Rows) != 1 {
		t.Errorf("post-update rows = %d, want 1", len(got.Rows))
	}
	// The paper's q1 now matches: saffron binds to the yellow color row too.
	got = mustQuery(t, e, "SELECT * FROM Color WHERE (color CONTAINS 'saffron' OR synonyms CONTAINS 'saffron')")
	if len(got.Rows) != 2 {
		t.Errorf("post-update OR rows = %d, want 2", len(got.Rows))
	}
}

func TestLikeMatch(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"", "", true},
		{"", "x", false},
		{"%candle%", "red candle here", true},
		{"%candle%", "red candl", false},
		{"red%", "red candle", true},
		{"red%", "a red candle", false},
		{"%red", "wired", true},
		{"_ed", "red", true},
		{"_ed", "fled", false},
		{"r_d", "rod", true},
		{"%a%b%", "xaxbx", true},
		{"%a%b%", "xbxax", false},
		{"a%%b", "ab", true},
		{"abc", "abc", true},
		{"abc", "ABC", false}, // case-sensitive
		{"%%", "anything", true},
		{"a_c%z", "abcdz", true},
	}
	for _, tc := range tests {
		if got := likeMatch(tc.pattern, tc.s); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tc.pattern, tc.s, got, tc.want)
		}
	}
}

// naiveEval evaluates a Select by full cartesian enumeration, independently of
// the planner, as the ground truth for the property test.
func naiveEval(t *testing.T, e *Engine, sel *sqltext.Select) [][]storage.Value {
	t.Helper()
	var tables []*storage.Table
	for _, tr := range sel.From {
		tbl, ok := e.Database().Table(tr.Table)
		if !ok {
			t.Fatalf("naive: unknown table %s", tr.Table)
		}
		tables = append(tables, tbl)
	}
	aliasOf := func(q string) int {
		for i, tr := range sel.From {
			if tr.Alias == q {
				return i
			}
		}
		t.Fatalf("naive: unknown alias %s", q)
		return -1
	}
	colOf := func(c sqltext.ColRef) (int, int) {
		if c.Qualifier != "" {
			a := aliasOf(c.Qualifier)
			return a, tables[a].Relation().ColumnIndex(c.Column)
		}
		for a, tbl := range tables {
			if ci := tbl.Relation().ColumnIndex(c.Column); ci >= 0 {
				return a, ci
			}
		}
		t.Fatalf("naive: unknown column %s", c.Column)
		return -1, -1
	}
	var evalPred func(p sqltext.Predicate, env []storage.Row) bool
	evalPred = func(p sqltext.Predicate, env []storage.Row) bool {
		switch pr := p.(type) {
		case sqltext.Comparison:
			a, c := colOf(pr.Left)
			lv := env[a][c]
			if pr.Right.IsCol {
				ra, rc := colOf(pr.Right.Col)
				return cmpValues(lv, env[ra][rc], pr.Op)
			}
			return cmpLiteral(lv, pr.Op, pr.Right.Lit)
		case sqltext.OrGroup:
			for _, term := range pr.Terms {
				if evalPred(term, env) {
					return true
				}
			}
			return false
		}
		return false
	}
	var out [][]storage.Value
	env := make([]storage.Row, len(tables))
	var rec func(i int)
	rec = func(i int) {
		if i == len(tables) {
			for _, p := range sel.Where {
				if !evalPred(p, env) {
					return
				}
			}
			switch {
			case sel.Projection.One:
				out = append(out, []storage.Value{storage.IntV(1)})
			case sel.Projection.Star:
				var row []storage.Value
				for _, r := range env {
					row = append(row, r...)
				}
				out = append(out, row)
			case sel.Projection.Count:
				out = append(out, nil) // counted below
			default:
				var row []storage.Value
				for _, c := range sel.Projection.Cols {
					a, ci := colOf(c)
					row = append(row, env[a][ci])
				}
				out = append(out, row)
			}
			return
		}
		tables[i].Scan(func(_ storage.RowID, row storage.Row) bool {
			env[i] = row
			rec(i + 1)
			return true
		})
	}
	rec(0)
	if sel.Projection.Count {
		return [][]storage.Value{{storage.IntV(int64(len(out)))}}
	}
	return out
}

func rowsKey(rows [][]storage.Value) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = fmt.Sprintf("%d:%s", int(v.Kind), v.String())
		}
		keys[i] = strings.Join(parts, "|")
	}
	sort.Strings(keys)
	return keys
}

// Property: the planner+executor agree with naive cartesian evaluation on
// randomly generated join queries over the product database.
func TestExecutorMatchesNaiveProperty(t *testing.T) {
	e := productEngine(t)
	r := rand.New(rand.NewSource(42))
	tables := []string{"Item", "PType", "Color", "Attr"}
	textCols := map[string][]string{
		"Item":  {"name", "description"},
		"PType": {"ptype"},
		"Color": {"color", "synonyms"},
		"Attr":  {"property", "value"},
	}
	intCols := map[string][]string{
		"Item":  {"id", "ptype", "color", "attr"},
		"PType": {"id"},
		"Color": {"id"},
		"Attr":  {"id"},
	}
	words := []string{"saffron", "scented", "candle", "red", "oil", "vanilla", "checkered", "missing"}
	for iter := 0; iter < 300; iter++ {
		nt := 1 + r.Intn(3)
		sel := &sqltext.Select{Limit: -1}
		for i := 0; i < nt; i++ {
			tbl := tables[r.Intn(len(tables))]
			sel.From = append(sel.From, sqltext.TableRef{Table: tbl, Alias: fmt.Sprintf("a%d", i)})
		}
		switch r.Intn(3) {
		case 0:
			sel.Projection.Star = true
		case 1:
			sel.Projection.Count = true
		default:
			sel.Projection.One = true
		}
		// Join predicates chaining consecutive aliases when possible.
		for i := 1; i < nt; i++ {
			lt := sel.From[i-1].Table
			rt := sel.From[i].Table
			lc := intCols[lt][r.Intn(len(intCols[lt]))]
			rc := intCols[rt][r.Intn(len(intCols[rt]))]
			sel.Where = append(sel.Where, sqltext.Comparison{
				Left:  sqltext.ColRef{Qualifier: sel.From[i-1].Alias, Column: lc},
				Op:    sqltext.OpEq,
				Right: sqltext.ColOperand(sqltext.ColRef{Qualifier: sel.From[i].Alias, Column: rc}),
			})
		}
		// Random local predicates.
		for i := 0; i < r.Intn(3); i++ {
			ai := r.Intn(nt)
			tbl := sel.From[ai].Table
			alias := sel.From[ai].Alias
			w := words[r.Intn(len(words))]
			tc := textCols[tbl][r.Intn(len(textCols[tbl]))]
			var pred sqltext.Predicate
			switch r.Intn(4) {
			case 0:
				pred = sqltext.Comparison{
					Left:  sqltext.ColRef{Qualifier: alias, Column: tc},
					Op:    sqltext.OpContains,
					Right: sqltext.LitOperand(sqltext.StringLit(w)),
				}
			case 1:
				pred = sqltext.Comparison{
					Left:  sqltext.ColRef{Qualifier: alias, Column: tc},
					Op:    sqltext.OpLike,
					Right: sqltext.LitOperand(sqltext.StringLit("%" + w + "%")),
				}
			case 2:
				ic := intCols[tbl][r.Intn(len(intCols[tbl]))]
				pred = sqltext.Comparison{
					Left:  sqltext.ColRef{Qualifier: alias, Column: ic},
					Op:    []sqltext.CmpOp{sqltext.OpEq, sqltext.OpLt, sqltext.OpGe}[r.Intn(3)],
					Right: sqltext.LitOperand(sqltext.IntLit(int64(r.Intn(5)))),
				}
			default:
				// Mixed OR-groups exercise the index-union path (CONTAINS
				// and integer equality are both indexable) as well as the
				// non-indexable fallback (LIKE poisons the union).
				second := sqltext.Predicate(sqltext.Comparison{
					Left:  sqltext.ColRef{Qualifier: alias, Column: textCols[tbl][0]},
					Op:    sqltext.OpContains,
					Right: sqltext.LitOperand(sqltext.StringLit(words[r.Intn(len(words))])),
				})
				switch r.Intn(3) {
				case 0:
					ic := intCols[tbl][r.Intn(len(intCols[tbl]))]
					second = sqltext.Comparison{
						Left:  sqltext.ColRef{Qualifier: alias, Column: ic},
						Op:    sqltext.OpEq,
						Right: sqltext.LitOperand(sqltext.IntLit(int64(r.Intn(4)))),
					}
				case 1:
					second = sqltext.Comparison{
						Left:  sqltext.ColRef{Qualifier: alias, Column: textCols[tbl][0]},
						Op:    sqltext.OpLike,
						Right: sqltext.LitOperand(sqltext.StringLit("%" + words[r.Intn(len(words))] + "%")),
					}
				}
				pred = sqltext.OrGroup{Terms: []sqltext.Predicate{
					sqltext.Comparison{
						Left:  sqltext.ColRef{Qualifier: alias, Column: tc},
						Op:    sqltext.OpContains,
						Right: sqltext.LitOperand(sqltext.StringLit(w)),
					},
					second,
				}}
			}
			sel.Where = append(sel.Where, pred)
		}
		want := naiveEval(t, e, sel)
		got, err := e.Select(sel)
		if err != nil {
			t.Fatalf("iter %d: Select(%s): %v", iter, sqltext.Print(sel), err)
		}
		if !reflect.DeepEqual(rowsKey(got.Rows), rowsKey(want)) {
			t.Fatalf("iter %d: mismatch for %s\ngot:  %v\nwant: %v",
				iter, sqltext.Print(sel), rowsKey(got.Rows), rowsKey(want))
		}
	}
}

func TestCellContains(t *testing.T) {
	tests := []struct {
		cell, kw string
		want     bool
	}{
		{"saffron scented oil", "saffron", true},
		{"saffron scented oil", "SAFFRON", true},
		{"unscented oil", "scented", false}, // token match, not substring
		{"hand-made. 2pck!", "2pck", true},
		{"hand-made. 2pck!", "pck", false},
		{"saffron scented oil", "scented saffron", true}, // all tokens, any order
		{"saffron scented oil", "saffron vanilla", false},
		{"", "x", false},
		{"x", "", false},
		{"Café au lait", "café", true},
		{"Café au lait", "cafe", false}, // no accent folding, same as the index
		{"ÜBER graph", "über", true},
		{"a b c", "c", true},
		{"abc", "ab", false},
		{"wordy words word", "word", true},
	}
	for _, tc := range tests {
		if got := cellContains(tc.cell, tc.kw); got != tc.want {
			t.Errorf("cellContains(%q, %q) = %v, want %v", tc.cell, tc.kw, got, tc.want)
		}
	}
}

// Property: the fast single-token path agrees with the tokenizer-based
// definition on arbitrary strings.
func TestContainsTokenMatchesTokenizeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := []rune{'a', 'b', 'ü', '1', ' ', '-', '.', 'Z'}
	randStr := func(n int) string {
		out := make([]rune, r.Intn(n))
		for i := range out {
			out[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(out)
	}
	for i := 0; i < 2000; i++ {
		cell := randStr(20)
		toks := invidx.Tokenize(randStr(6))
		if len(toks) != 1 {
			continue
		}
		token := toks[0]
		want := false
		for _, ct := range invidx.Tokenize(cell) {
			if ct == token {
				want = true
			}
		}
		if got := containsToken(cell, token); got != want {
			t.Fatalf("containsToken(%q, %q) = %v, want %v", cell, token, got, want)
		}
	}
}

// TestDumpLoadRoundTrip pins Dump's contract: reloading a dump reproduces
// the data exactly.
func TestDumpLoadRoundTrip(t *testing.T) {
	orig := productEngine(t)
	// Add a row with quoting hazards.
	if _, err := orig.Exec(`INSERT INTO Item VALUES (5, 'o''brien''s ''special'' candle', 2, 1, 4, 9.99, 'has ''quotes''')`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := orig.Dump(&sb); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	reloaded, err := Load(sb.String())
	if err != nil {
		t.Fatalf("Load(dump): %v\n%s", err, sb.String())
	}
	if got, want := reloaded.Database().TotalRows(), orig.Database().TotalRows(); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	for _, rel := range orig.Database().Schema().Relations() {
		a, _ := orig.Database().Table(rel.Name)
		b, ok := reloaded.Database().Table(rel.Name)
		if !ok {
			t.Fatalf("table %s missing after reload", rel.Name)
		}
		if a.RowCount() != b.RowCount() {
			t.Fatalf("%s rows: %d vs %d", rel.Name, a.RowCount(), b.RowCount())
		}
		for i := 0; i < a.RowCount(); i++ {
			ra, rb := a.Row(storage.RowID(i)), b.Row(storage.RowID(i))
			for c := range ra {
				if !ra[c].Equal(rb[c]) {
					t.Fatalf("%s row %d col %d: %v vs %v", rel.Name, i, c, ra[c], rb[c])
				}
			}
		}
	}
	// The schema graph survives too.
	if got, want := len(reloaded.Database().Schema().Edges()), len(orig.Database().Schema().Edges()); got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
	// Queries behave identically on the reload.
	q := "SELECT COUNT(*) FROM Item WHERE name CONTAINS 'candle'"
	ra := mustQuery(t, orig, q).Rows[0][0].I
	rb := mustQuery(t, reloaded, q).Rows[0][0].I
	if ra != rb {
		t.Fatalf("query differs after reload: %d vs %d", ra, rb)
	}
}

// TestDumpBatching exercises the multi-batch INSERT path.
func TestDumpBatching(t *testing.T) {
	e := benchEngineForTest(t, 450)
	var sb strings.Builder
	if err := e.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "INSERT INTO Item"); got < 3 {
		t.Errorf("expected >= 3 Item insert batches, got %d", got)
	}
	reloaded, err := Load(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Database().TotalRows() != e.Database().TotalRows() {
		t.Errorf("rows differ after batched reload")
	}
}

func benchEngineForTest(t *testing.T, n int) *Engine {
	t.Helper()
	e, err := Load(productScript)
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < n; i++ {
		stmt := fmt.Sprintf("INSERT INTO Item VALUES (%d, 'bulk item %d', %d, %d, %d, %d.5, 'filler')",
			i, i, 1+i%3, 1+i%4, 1+i%4, i%40)
		if _, err := e.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestExplain(t *testing.T) {
	e := productEngine(t)
	out, err := e.Explain(`SELECT 1 FROM PType AS t0, Item AS t1, Color AS t2
		WHERE t1.ptype = t0.id AND t1.color = t2.id
		AND t0.ptype CONTAINS 'candle' AND t1.name CONTAINS 'scented'
		AND (t2.color CONTAINS 'saffron' OR t2.synonyms CONTAINS 'saffron') LIMIT 1`)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	for _, want := range []string{
		"plan for:",
		"via index candidates",
		"joined on",
		"predicates covered",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// The most selective alias (PType, 1 candidate) starts the join order.
	firstLine := strings.Split(out, "\n")[1]
	if !strings.Contains(firstLine, "1 rows") {
		t.Errorf("plan does not start with the most selective alias: %s", firstLine)
	}

	out, err = e.Explain("SELECT COUNT(*) FROM Item a, Item b WHERE a.cost < b.cost")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cross product") || !strings.Contains(out, "residual predicates: 1") {
		t.Errorf("cross/residual plan malformed:\n%s", out)
	}
	if !strings.Contains(out, "via scan") {
		t.Errorf("unfiltered alias not scanned:\n%s", out)
	}

	if _, err := e.Explain("INSERT INTO Item VALUES (9, 'x', 1, 1, 1, 1.0, 'y')"); err == nil {
		t.Error("Explain accepted INSERT")
	}
	if _, err := e.Explain("SELECT * FROM nope"); err == nil {
		t.Error("Explain accepted unknown table")
	}
	if _, err := e.Explain("not sql"); err == nil {
		t.Error("Explain accepted garbage")
	}
}

// TestErrLiteralTypeClassifiable locks in the errors.Is contract: a literal /
// column type mismatch — whether it surfaces while resolving a predicate or
// while coercing an INSERT row — must stay classifiable as ErrLiteralType
// through every wrapping layer. A regression here (flattening with %v) would
// make the debugger treat malformed probes as transient failures.
func TestErrLiteralTypeClassifiable(t *testing.T) {
	e := productEngine(t)

	cases := []struct {
		name string
		run  func() error
	}{
		{"predicate string literal on INT column", func() error {
			_, err := e.Query(`SELECT * FROM Item i WHERE i.id = 'three'`)
			return err
		}},
		{"predicate int literal on TEXT column", func() error {
			_, err := e.Query(`SELECT * FROM Item i WHERE i.name = 7`)
			return err
		}},
		{"LIKE on non-TEXT column", func() error {
			_, err := e.Query(`SELECT * FROM Item i WHERE i.cost LIKE 'cheap'`)
			return err
		}},
		{"INSERT string into INT column", func() error {
			_, err := e.Exec(`INSERT INTO PType VALUES ('four', 'wax')`)
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Fatalf("%s: expected an error", tc.name)
		}
		if !errors.Is(err, ErrLiteralType) {
			t.Errorf("%s: errors.Is(err, ErrLiteralType) = false for %v", tc.name, err)
		}
	}

	// Well-typed statements must not trip the sentinel path.
	if _, err := e.Query(`SELECT * FROM Item i WHERE i.id = 3`); err != nil {
		t.Fatalf("well-typed query failed: %v", err)
	}
}
