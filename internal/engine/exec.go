package engine

import (
	"context"
	"fmt"
	"sort"
	"time"
	"unicode"
	"unicode/utf8"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/invidx"
	"kwsdbg/internal/sqltext"
	"kwsdbg/internal/storage"
)

// colLoc pins a column reference to (alias position, column position).
type colLoc struct{ a, c int }

// rpred is a resolved predicate. mask() reports which aliases it touches.
type rpred interface {
	mask() uint64
	eval(env []storage.Row) bool
}

// rcmp is a resolved comparison.
type rcmp struct {
	left  colLoc
	op    sqltext.CmpOp
	isCol bool
	right colLoc
	lit   sqltext.Literal
	m     uint64
}

func (p *rcmp) mask() uint64 { return p.m }

func (p *rcmp) eval(env []storage.Row) bool {
	lv := env[p.left.a][p.left.c]
	if p.isCol {
		return cmpValues(lv, env[p.right.a][p.right.c], p.op)
	}
	return cmpLiteral(lv, p.op, p.lit)
}

// ror is a resolved OR-group.
type ror struct {
	terms []rpred
	m     uint64
}

func (p *ror) mask() uint64 { return p.m }

func (p *ror) eval(env []storage.Row) bool {
	for _, t := range p.terms {
		if t.eval(env) {
			return true
		}
	}
	return false
}

// cmpValues compares two column values; ints and floats compare numerically.
func cmpValues(a, b storage.Value, op sqltext.CmpOp) bool {
	if a.Kind == catalog.Text && b.Kind == catalog.Text {
		return cmpOrdered(a.S, b.S, op)
	}
	af, aok := numeric(a)
	bf, bok := numeric(b)
	if aok && bok {
		return cmpOrdered(af, bf, op)
	}
	return false
}

func numeric(v storage.Value) (float64, bool) {
	switch v.Kind {
	case catalog.Int:
		return float64(v.I), true
	case catalog.Float:
		return v.F, true
	default:
		return 0, false
	}
}

func cmpOrdered[T string | float64](a, b T, op sqltext.CmpOp) bool {
	switch op {
	case sqltext.OpEq:
		return a == b
	case sqltext.OpNe:
		return a != b
	case sqltext.OpLt:
		return a < b
	case sqltext.OpLe:
		return a <= b
	case sqltext.OpGt:
		return a > b
	case sqltext.OpGe:
		return a >= b
	default:
		return false
	}
}

// cmpLiteral compares a column value against a literal.
func cmpLiteral(v storage.Value, op sqltext.CmpOp, lit sqltext.Literal) bool {
	switch op {
	case sqltext.OpLike:
		return v.Kind == catalog.Text && likeMatch(lit.S, v.S)
	case sqltext.OpNotLike:
		return v.Kind == catalog.Text && !likeMatch(lit.S, v.S)
	case sqltext.OpContains:
		return v.Kind == catalog.Text && cellContains(v.S, lit.S)
	}
	if v.Kind == catalog.Text {
		return lit.Kind == sqltext.LitString && cmpOrdered(v.S, lit.S, op)
	}
	vf, ok := numeric(v)
	if !ok {
		return false
	}
	switch lit.Kind {
	case sqltext.LitInt:
		return cmpOrdered(vf, float64(lit.I), op)
	case sqltext.LitFloat:
		return cmpOrdered(vf, lit.F, op)
	default:
		return false
	}
}

// cellContains reports whether every token of the keyword occurs among the
// tokens of the cell — the same semantics the inverted index implements, so
// index-accelerated and scan-evaluated CONTAINS agree.
func cellContains(cell, keyword string) bool {
	want := invidx.Tokenize(keyword)
	if len(want) == 0 {
		return false
	}
	if len(want) == 1 {
		return containsToken(cell, want[0])
	}
	have := make(map[string]bool)
	for _, tok := range invidx.Tokenize(cell) {
		have[tok] = true
	}
	for _, tok := range want {
		if !have[tok] {
			return false
		}
	}
	return true
}

// containsToken is the allocation-free single-token fast path: it walks the
// cell's letter/digit runs and compares each run against the (already
// lowercased) token.
func containsToken(cell, token string) bool {
	i, n := 0, len(cell)
	for i < n {
		r, size := decodeAlnum(cell[i:])
		if size == 0 {
			i++
			continue
		}
		// Compare this alphanumeric run against the token, rune by rune.
		j := 0
		match := true
		for size != 0 {
			if match && j < len(token) {
				tr, tsize := utf8.DecodeRuneInString(token[j:])
				if tr == unicode.ToLower(r) {
					j += tsize
				} else {
					match = false
				}
			} else {
				match = false
			}
			i += size
			if i >= n {
				break
			}
			r, size = decodeAlnum(cell[i:])
		}
		if match && j == len(token) {
			return true
		}
	}
	return false
}

// decodeAlnum decodes the next rune if it is a letter or digit, returning
// size 0 otherwise.
func decodeAlnum(s string) (rune, int) {
	r, size := utf8.DecodeRuneInString(s)
	if size == 0 || (!unicode.IsLetter(r) && !unicode.IsDigit(r)) {
		return 0, 0
	}
	return r, size
}

// boundQuery is a Select with every name resolved against the catalog.
type boundQuery struct {
	sel     *sqltext.Select
	aliases []string
	tables  []*storage.Table
	rels    []*catalog.Relation
	// joins are the equality column-column predicates across two aliases.
	joins []*rcmp
	// local[a] holds single-alias predicates for alias a.
	local [][]rpred
	// residual holds multi-alias predicates that are not equi-joins.
	residual []rpred
	// projCols is the resolved explicit projection, if any.
	projCols []colLoc
}

// execState carries one Select call's enumeration state: the resolved query,
// the per-alias plans and join order, the emit callback, and the rows-scanned
// counter. Every call allocates its own execState, which is what makes
// concurrent Selects on one Engine race-free by construction — the parallel
// probe scheduler in internal/core issues many Selects at once and nothing
// mutable is shared between them.
type execState struct {
	ctx   context.Context
	bq    *boundQuery
	plans []aliasPlan
	order []int
	emit  func([]storage.Row) bool
	// scanned counts candidate rows visited during enumeration, for the
	// rows-scanned metric. Per-call, so no atomics.
	scanned int
	// err records context cancellation observed mid-enumeration; the
	// deadline is checked every ctxCheckRows scanned rows, so a runaway
	// cross product is abandoned promptly when the request is cancelled.
	err error
}

// ctxCheckRows is how many candidate rows are scanned between context
// checks: frequent enough that cancellation lands within microseconds,
// rare enough that the check does not show up in profiles.
const ctxCheckRows = 4096

func (e *Engine) resolve(sel *sqltext.Select) (*boundQuery, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("engine: SELECT without FROM")
	}
	if len(sel.From) > 64 {
		return nil, fmt.Errorf("engine: too many FROM entries (%d, max 64)", len(sel.From))
	}
	bq := &boundQuery{sel: sel, local: make([][]rpred, len(sel.From))}
	seen := make(map[string]bool)
	for _, tr := range sel.From {
		tbl, ok := e.db.Table(tr.Table)
		if !ok {
			return nil, fmt.Errorf("engine: unknown table %q", tr.Table)
		}
		if seen[tr.Alias] {
			return nil, fmt.Errorf("engine: duplicate alias %q", tr.Alias)
		}
		seen[tr.Alias] = true
		bq.aliases = append(bq.aliases, tr.Alias)
		bq.tables = append(bq.tables, tbl)
		bq.rels = append(bq.rels, tbl.Relation())
	}
	for _, c := range sel.Projection.Cols {
		loc, err := bq.resolveCol(c)
		if err != nil {
			return nil, err
		}
		bq.projCols = append(bq.projCols, loc)
	}
	for _, pr := range sel.Where {
		rp, err := bq.resolvePred(pr)
		if err != nil {
			return nil, err
		}
		switch {
		case popcount(rp.mask()) == 1:
			a := lowestBit(rp.mask())
			bq.local[a] = append(bq.local[a], rp)
		default:
			if cmp, ok := rp.(*rcmp); ok && cmp.isCol && cmp.op == sqltext.OpEq {
				bq.joins = append(bq.joins, cmp)
				continue
			}
			bq.residual = append(bq.residual, rp)
		}
	}
	return bq, nil
}

func popcount(m uint64) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

func lowestBit(m uint64) int {
	for i := 0; i < 64; i++ {
		if m&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

func (bq *boundQuery) resolveCol(c sqltext.ColRef) (colLoc, error) {
	if c.Qualifier != "" {
		for a, alias := range bq.aliases {
			if alias != c.Qualifier {
				continue
			}
			ci := bq.rels[a].ColumnIndex(c.Column)
			if ci < 0 {
				return colLoc{}, fmt.Errorf("engine: no column %q in %s", c.Column, bq.rels[a].Name)
			}
			return colLoc{a: a, c: ci}, nil
		}
		return colLoc{}, fmt.Errorf("engine: unknown alias %q", c.Qualifier)
	}
	found := colLoc{a: -1}
	for a, rel := range bq.rels {
		if ci := rel.ColumnIndex(c.Column); ci >= 0 {
			if found.a >= 0 {
				return colLoc{}, fmt.Errorf("engine: ambiguous column %q", c.Column)
			}
			found = colLoc{a: a, c: ci}
		}
	}
	if found.a < 0 {
		return colLoc{}, fmt.Errorf("engine: unknown column %q", c.Column)
	}
	return found, nil
}

func (bq *boundQuery) resolvePred(p sqltext.Predicate) (rpred, error) {
	switch pr := p.(type) {
	case sqltext.Comparison:
		left, err := bq.resolveCol(pr.Left)
		if err != nil {
			return nil, err
		}
		out := &rcmp{left: left, op: pr.Op, m: 1 << uint(left.a)}
		if pr.Right.IsCol {
			right, err := bq.resolveCol(pr.Right.Col)
			if err != nil {
				return nil, err
			}
			out.isCol = true
			out.right = right
			out.m |= 1 << uint(right.a)
			return out, nil
		}
		out.lit = pr.Right.Lit
		lt := bq.rels[left.a].Columns[left.c].Type
		if err := checkLiteralType(lt, pr.Op, pr.Right.Lit); err != nil {
			return nil, fmt.Errorf("engine: %s.%s: %w", bq.rels[left.a].Name, bq.rels[left.a].Columns[left.c].Name, err)
		}
		return out, nil
	case sqltext.OrGroup:
		out := &ror{}
		for _, term := range pr.Terms {
			rt, err := bq.resolvePred(term)
			if err != nil {
				return nil, err
			}
			out.terms = append(out.terms, rt)
			out.m |= rt.mask()
		}
		return out, nil
	default:
		return nil, fmt.Errorf("engine: unsupported predicate %T", p)
	}
}

func checkLiteralType(col catalog.ColType, op sqltext.CmpOp, lit sqltext.Literal) error {
	switch op {
	case sqltext.OpLike, sqltext.OpNotLike, sqltext.OpContains:
		if col != catalog.Text {
			return fmt.Errorf("%s requires a TEXT column: %w", op, ErrLiteralType)
		}
		return nil
	}
	switch col {
	case catalog.Text:
		if lit.Kind != sqltext.LitString {
			return fmt.Errorf("cannot compare TEXT with non-string literal: %w", ErrLiteralType)
		}
	default:
		if lit.Kind == sqltext.LitString {
			return fmt.Errorf("cannot compare %v with string literal: %w", col, ErrLiteralType)
		}
	}
	return nil
}

// aliasPlan is the per-alias access strategy.
type aliasPlan struct {
	// indexed reports whether ids is authoritative; an indexed plan with an
	// empty ids list means no row can match (nil slices from an empty
	// intersection must not be confused with "no index available").
	indexed bool
	// ids is the explicit candidate list (sorted); meaningful when indexed.
	ids []storage.RowID
	// member is the membership set for ids when non-nil.
	member map[storage.RowID]bool
	// est is the estimated candidate count used for join ordering.
	est int
	// covered marks the local predicates (parallel to boundQuery.local[a])
	// that ids captures exactly; they need no per-row re-check because the
	// inverted index and the CONTAINS evaluator share one tokenizer.
	covered []bool
}

// plan computes candidate sets from indexable local predicates and an
// execution order over the aliases.
func (e *Engine) plan(bq *boundQuery) ([]aliasPlan, []int) {
	return e.planWith(bq, nil)
}

// planWith is plan with an optional candidate-set cache (see CandidateCache):
// indexed row sets are looked up there before touching the inverted index, so
// probes of one debug run that bind the same keyword to the same relation
// share the lookup, intersection, and membership map.
func (e *Engine) planWith(bq *boundQuery, cands *CandidateCache) ([]aliasPlan, []int) {
	plans := make([]aliasPlan, len(bq.aliases))
	ix := e.Index()
	for a := range bq.aliases {
		plans[a] = e.planAlias(bq, ix, a, cands)
	}
	// Greedy order: start from the smallest estimate; repeatedly pick the
	// connected alias with the smallest estimate, falling back to the global
	// smallest when the join graph is disconnected (cross product).
	n := len(bq.aliases)
	order := make([]int, 0, n)
	used := make([]bool, n)
	connected := func(a int, mask uint64) bool {
		for _, j := range bq.joins {
			touches := j.mask()&(1<<uint(a)) != 0
			other := j.mask() &^ (1 << uint(a))
			if touches && other&mask != 0 {
				return true
			}
		}
		return false
	}
	var mask uint64
	for len(order) < n {
		best, bestEst, bestConn := -1, 0, false
		for a := 0; a < n; a++ {
			if used[a] {
				continue
			}
			conn := len(order) > 0 && connected(a, mask)
			better := best == -1 ||
				(conn && !bestConn) ||
				(conn == bestConn && plans[a].est < bestEst)
			if better {
				best, bestEst, bestConn = a, plans[a].est, conn
			}
		}
		order = append(order, best)
		used[best] = true
		mask |= 1 << uint(best)
	}
	return plans, order
}

// planAlias derives the candidate row set for one alias from its indexable
// local predicates, consulting the candidate-set cache when one is supplied.
// A single cached predicate reuses the cache's membership map directly — the
// common case for existence probes, whose aliases carry at most one keyword
// predicate — and only intersections allocate a fresh one.
func (e *Engine) planAlias(bq *boundQuery, ix *invidx.Index, a int, cands *CandidateCache) aliasPlan {
	tbl := bq.tables[a]
	var ids []storage.RowID
	var member map[storage.RowID]bool
	have := false
	covered := make([]bool, len(bq.local[a]))
	for pi, p := range bq.local[a] {
		if got, mem, ok := e.candidateSet(bq, ix, a, p, cands); ok {
			covered[pi] = true
			if !have {
				ids, member, have = got, mem, true
			} else {
				ids = invidx.IntersectRowIDs(ids, got)
				member = nil
			}
		}
	}
	if !have {
		return aliasPlan{est: tbl.RowCount()}
	}
	if member == nil {
		member = make(map[storage.RowID]bool, len(ids))
		for _, id := range ids {
			member[id] = true
		}
	}
	return aliasPlan{indexed: true, ids: ids, member: member, est: len(ids), covered: covered}
}

// indexable evaluates a local predicate via an index when possible,
// returning the sorted candidate rows. OR-groups are indexable when every
// term is; their candidates union.
func (e *Engine) indexable(bq *boundQuery, ix *invidx.Index, a int, p rpred) ([]storage.RowID, bool) {
	switch pr := p.(type) {
	case *rcmp:
		if pr.isCol {
			return nil, false
		}
		rel := bq.rels[a]
		col := rel.Columns[pr.left.c]
		switch {
		case pr.op == sqltext.OpContains:
			return ix.Rows(rel.Name, col.Name, pr.lit.S), true
		case pr.op == sqltext.OpEq && col.Type == catalog.Int && pr.lit.Kind == sqltext.LitInt:
			ids := bq.tables[a].LookupInt(pr.left.c, pr.lit.I)
			out := make([]storage.RowID, len(ids))
			copy(out, ids)
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out, true
		}
		return nil, false
	case *ror:
		var union []storage.RowID
		for _, term := range pr.terms {
			got, ok := e.indexable(bq, ix, a, term)
			if !ok {
				return nil, false
			}
			union = invidx.UnionRowIDs(union, got)
		}
		return union, true
	default:
		return nil, false
	}
}

// Select executes a resolved SELECT statement.
func (e *Engine) Select(sel *sqltext.Select) (*Result, error) {
	return e.SelectContext(context.Background(), sel)
}

// SelectContext executes a resolved SELECT statement under a context: the
// deadline is re-checked periodically while join bindings are enumerated, so
// a cancelled request abandons even a long-running cross product instead of
// running it to completion. Transient failures (see Transient) are retried
// with exponential backoff up to the engine's RetryPolicy; the backoff sleep
// itself is context-aware, so cancellation never waits out a delay.
//
// One-shot calls compile an ephemeral Prepared handle; callers re-executing
// the same Select should Prepare once and reuse the handle.
func (e *Engine) SelectContext(ctx context.Context, sel *sqltext.Select) (*Result, error) {
	p, err := e.Prepare(sel)
	if err != nil {
		return nil, err
	}
	return p.ExecContext(ctx, nil)
}

// runPlan enumerates one planned execution and assembles the Result; it is
// the shared tail of every execution path (text or prepared, any attempt).
// start is when the attempt began, so the latency metric covers planning too.
func (e *Engine) runPlan(ctx context.Context, bq *boundQuery, plans []aliasPlan, order []int, start time.Time) (*Result, error) {
	sel := bq.sel
	res := &Result{Columns: projectionColumns(bq)}
	limit := sel.Limit
	if sel.Projection.Count {
		limit = -1 // the aggregate consumes all bindings
	}
	count := int64(0)
	st := &execState{ctx: ctx, bq: bq, plans: plans, order: order}
	st.emit = func(env []storage.Row) bool {
		if sel.Projection.Count {
			count++
			return true
		}
		res.Rows = append(res.Rows, projectRow(bq, env))
		return limit < 0 || len(res.Rows) < limit
	}

	env := make([]storage.Row, len(bq.aliases))
	if limit != 0 {
		e.enumerate(st, 0, env)
	}

	mSQLExec.Inc()
	mSQLSeconds.Observe(time.Since(start).Seconds())
	mRowsScanned.Add(float64(st.scanned))
	if st.err != nil {
		return nil, st.err
	}
	if sel.Projection.Count {
		res.Rows = append(res.Rows, []storage.Value{storage.IntV(count)})
	}
	return res, nil
}

func projectionColumns(bq *boundQuery) []string {
	p := bq.sel.Projection
	switch {
	case p.Count:
		return []string{"count"}
	case p.One:
		return []string{"1"}
	case p.Star:
		var cols []string
		for a, rel := range bq.rels {
			for _, c := range rel.Columns {
				cols = append(cols, bq.aliases[a]+"."+c.Name)
			}
		}
		return cols
	default:
		cols := make([]string, len(p.Cols))
		for i, c := range p.Cols {
			if c.Qualifier != "" {
				cols[i] = c.Qualifier + "." + c.Column
			} else {
				cols[i] = c.Column
			}
		}
		return cols
	}
}

func projectRow(bq *boundQuery, env []storage.Row) []storage.Value {
	p := bq.sel.Projection
	switch {
	case p.One:
		return []storage.Value{storage.IntV(1)}
	case p.Star:
		var out []storage.Value
		for a := range bq.rels {
			out = append(out, env[a]...)
		}
		return out
	default:
		out := make([]storage.Value, len(bq.projCols))
		for i, loc := range bq.projCols {
			out[i] = env[loc.a][loc.c]
		}
		return out
	}
}

// enumerate binds aliases in plan order by index-nested-loop backtracking.
// It returns false when the emit callback asks to stop (LIMIT reached) or
// the context is cancelled (recorded in st.err).
func (e *Engine) enumerate(st *execState, depth int, env []storage.Row) bool {
	bq, plans, order := st.bq, st.plans, st.order
	if depth == len(order) {
		for _, p := range bq.residual {
			if !p.eval(env) {
				return true
			}
		}
		return st.emit(env)
	}
	a := order[depth]
	tbl := bq.tables[a]

	var boundMask uint64
	for _, prev := range order[:depth] {
		boundMask |= 1 << uint(prev)
	}
	// Join predicates connecting a to an already-bound alias.
	var probes []*rcmp
	for _, j := range bq.joins {
		if j.mask()&(1<<uint(a)) != 0 && j.mask()&boundMask != 0 && j.mask()&^(boundMask|1<<uint(a)) == 0 {
			probes = append(probes, j)
		}
	}

	try := func(id storage.RowID) bool {
		st.scanned++
		if st.scanned%ctxCheckRows == 0 {
			if err := st.ctx.Err(); err != nil {
				st.err = err
				return false
			}
		}
		row := tbl.Row(id)
		env[a] = row
		defer func() { env[a] = nil }()
		for _, j := range probes {
			if !j.eval(env) {
				return true // mismatch: keep searching
			}
		}
		for pi, p := range bq.local[a] {
			if plans[a].indexed && plans[a].covered[pi] {
				continue // exactly captured by the candidate list
			}
			if !p.eval(env) {
				return true
			}
		}
		return e.enumerate(st, depth+1, env)
	}

	// Prefer probing a hash index with a bound join value.
	for _, j := range probes {
		probeLoc, valueLoc := j.left, j.right
		if probeLoc.a != a {
			probeLoc, valueLoc = j.right, j.left
		}
		if bq.rels[a].Columns[probeLoc.c].Type != catalog.Int {
			continue
		}
		v := env[valueLoc.a][valueLoc.c]
		vf, ok := numeric(v)
		if !ok || vf != float64(int64(vf)) {
			return true // join value cannot match any integer key
		}
		for _, id := range tbl.LookupInt(probeLoc.c, int64(vf)) {
			if plans[a].indexed && !plans[a].member[id] {
				continue
			}
			if !try(id) {
				return false
			}
		}
		return true
	}

	// Otherwise scan the candidate list (or the whole table).
	if plans[a].indexed {
		for _, id := range plans[a].ids {
			if !try(id) {
				return false
			}
		}
		return true
	}
	ok := true
	tbl.Scan(func(id storage.RowID, _ storage.Row) bool {
		ok = try(id)
		return ok
	})
	return ok
}
