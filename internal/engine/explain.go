package engine

import (
	"fmt"
	"strings"

	"kwsdbg/internal/sqltext"
)

// Explain describes how the engine would execute a SELECT: the join order
// the planner chose, each alias's access path (index candidates versus full
// scan, and which predicates the candidate list already guarantees), and the
// residual predicates applied to complete bindings. No data is touched
// beyond what planning itself needs (index lookups for candidate lists).
func (e *Engine) Explain(query string) (string, error) {
	stmt, err := sqltext.Parse(query)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sqltext.Select)
	if !ok {
		return "", fmt.Errorf("engine: Explain requires SELECT, got %T", stmt)
	}
	bq, err := e.resolve(sel)
	if err != nil {
		return "", err
	}
	plans, order := e.plan(bq)

	var sb strings.Builder
	fmt.Fprintf(&sb, "plan for: %s\n", sqltext.Print(sel))
	for depth, a := range order {
		tbl := bq.tables[a]
		fmt.Fprintf(&sb, "%d. %s AS %s", depth+1, bq.rels[a].Name, bq.aliases[a])
		switch {
		case plans[a].indexed:
			covered := 0
			for _, c := range plans[a].covered {
				if c {
					covered++
				}
			}
			fmt.Fprintf(&sb, " via index candidates (%d rows, %d/%d local predicates covered)",
				len(plans[a].ids), covered, len(bq.local[a]))
		default:
			fmt.Fprintf(&sb, " via scan (%d rows", tbl.RowCount())
			if len(bq.local[a]) > 0 {
				fmt.Fprintf(&sb, ", %d filter predicates", len(bq.local[a]))
			}
			sb.WriteString(")")
		}
		if depth > 0 {
			var probes []string
			var boundMask uint64
			for _, prev := range order[:depth] {
				boundMask |= 1 << uint(prev)
			}
			for _, j := range bq.joins {
				if j.mask()&(1<<uint(a)) != 0 && j.mask()&boundMask != 0 &&
					j.mask()&^(boundMask|1<<uint(a)) == 0 {
					probes = append(probes, joinString(bq, j))
				}
			}
			if len(probes) > 0 {
				fmt.Fprintf(&sb, " joined on %s", strings.Join(probes, " AND "))
			} else {
				sb.WriteString(" (cross product)")
			}
		}
		sb.WriteByte('\n')
	}
	if len(bq.residual) > 0 {
		fmt.Fprintf(&sb, "residual predicates: %d applied per complete binding\n", len(bq.residual))
	}
	return sb.String(), nil
}

func joinString(bq *boundQuery, j *rcmp) string {
	return fmt.Sprintf("%s.%s = %s.%s",
		bq.aliases[j.left.a], bq.rels[j.left.a].Columns[j.left.c].Name,
		bq.aliases[j.right.a], bq.rels[j.right.a].Columns[j.right.c].Name)
}
