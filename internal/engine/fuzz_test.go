package engine

import (
	"regexp"
	"strings"
	"testing"

	"kwsdbg/internal/invidx"
)

// likeToRegexp is the differential oracle for likeMatch: translate the LIKE
// pattern into an anchored regular expression.
func likeToRegexp(pattern string) *regexp.Regexp {
	var sb strings.Builder
	sb.WriteString(`(?s)\A`)
	for _, r := range pattern {
		switch r {
		case '%':
			sb.WriteString(`.*`)
		case '_':
			sb.WriteString(`.`)
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString(`\z`)
	return regexp.MustCompile(sb.String())
}

// FuzzLikeMatch checks likeMatch against the regexp translation.
func FuzzLikeMatch(f *testing.F) {
	f.Add("%candle%", "red candle")
	f.Add("a_c%z", "abcdz")
	f.Add("%%", "")
	f.Add("", "x")
	f.Add("_", "é")
	f.Add("%a%b%c%", "xxaxbxc")
	f.Add("", "")       // empty pattern
	f.Add("%", "é")     // wildcard-only over multi-byte input
	f.Add("%世界", "你好世界") // multi-byte runes at pattern boundaries
	f.Add("_é_", "xéy")
	f.Add("%ß%", "straße")
	f.Fuzz(func(t *testing.T, pattern, s string) {
		if len(pattern) > 64 || len(s) > 256 {
			return // keep the backtracking oracle cheap
		}
		got := likeMatch(pattern, s)
		want := likeToRegexp(pattern).MatchString(s)
		if got != want {
			t.Fatalf("likeMatch(%q, %q) = %v, regexp says %v", pattern, s, got, want)
		}
	})
}

// FuzzContainsToken checks the allocation-free fast path against the
// tokenizer-based definition.
func FuzzContainsToken(f *testing.F) {
	f.Add("saffron scented oil", "saffron")
	f.Add("hand-made. 2pck!", "2pck")
	f.Add("ÜBER graph", "über")
	f.Add("", "")
	f.Add("ab", "abc")
	f.Add("ΣΟΦΙΑ works", "σοφια") // case folding over multi-byte letters
	f.Add("café-au-lait", "café") // multi-byte rune at a token boundary
	f.Add("naïve—idea", "idea")   // multi-byte delimiter
	f.Add("v1.2 release", "2")
	f.Fuzz(func(t *testing.T, cell, keyword string) {
		toks := invidx.Tokenize(keyword)
		if len(toks) != 1 {
			return
		}
		token := toks[0]
		want := false
		for _, ct := range invidx.Tokenize(cell) {
			if ct == token {
				want = true
			}
		}
		if got := containsToken(cell, token); got != want {
			t.Fatalf("containsToken(%q, %q) = %v, want %v", cell, token, got, want)
		}
	})
}
