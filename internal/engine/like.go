package engine

// likeMatch implements SQL LIKE: '%' matches any run of characters (including
// the empty run) and '_' matches exactly one character. Matching is
// case-sensitive, as in PostgreSQL, the system the paper evaluated against,
// and character-based: '_' consumes one rune, not one byte.
//
// The implementation is the classic two-pointer wildcard matcher: linear in
// the input with backtracking only to the most recent '%'.
func likeMatch(pattern, s string) bool {
	pr := []rune(pattern)
	sr := []rune(s)
	p, i := 0, 0
	star, mark := -1, 0
	for i < len(sr) {
		switch {
		// The wildcard case must precede the literal case: a '%' in the
		// *input* would otherwise satisfy pr[p] == sr[i] and consume the
		// pattern's '%' as a literal (caught by FuzzLikeMatch).
		case p < len(pr) && pr[p] == '%':
			star = p
			mark = i
			p++
		case p < len(pr) && (pr[p] == '_' || pr[p] == sr[i]):
			p++
			i++
		case star >= 0:
			p = star + 1
			mark++
			i = mark
		default:
			return false
		}
	}
	for p < len(pr) && pr[p] == '%' {
		p++
	}
	return p == len(pr)
}
