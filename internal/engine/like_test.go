package engine

import "testing"

// Unicode and degenerate-pattern edges of likeMatch, complementing the ASCII
// table in engine_test.go: '_' must consume one rune (not one byte), '%' must
// backtrack correctly across multi-byte runes, and the empty and
// wildcard-only patterns must behave per SQL semantics.
func TestLikeMatchUnicode(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		// Degenerate patterns.
		{"", "", true},
		{"", "é", false},
		{"%", "", true},
		{"%", "любой текст", true},
		{"%%%", "", true},

		// '_' is one rune, never one byte.
		{"_", "é", true},
		{"_", "世", true},
		{"__", "é", false},
		{"__", "世界", true},
		{"_é_", "xéy", true},
		{"_é_", "xez", false},

		// Multi-byte runes at pattern boundaries.
		{"é%", "écru", true},
		{"é%", "crué", false},
		{"%é", "café", true},
		{"%é", "éclair", false},
		{"%世界", "你好世界", true},
		{"%世界%", "世界你好", true},

		// Backtracking across multi-byte text.
		{"%a%é%", "xaxéx", true},
		{"%a%é%", "xéxax", false},
		{"%ß%", "straße", true},

		// Case folding is NOT applied (LIKE is case-sensitive here).
		{"ÜBER%", "über alles", false},
		{"über%", "über alles", true},
	}
	for _, tc := range tests {
		if got := likeMatch(tc.pattern, tc.s); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tc.pattern, tc.s, got, tc.want)
		}
	}
}

// containsToken must case-fold like the tokenizer it shadows (unicode.ToLower
// per rune) and must respect token boundaries: an alphanumeric run matches
// only in full, and runs are delimited by any non-alphanumeric rune, however
// many bytes wide.
func TestContainsTokenUnicode(t *testing.T) {
	tests := []struct {
		cell, token string
		want        bool
	}{
		{"saffron scented oil", "saffron", true},
		{"saffrons", "saffron", false}, // prefix of a longer run is no match
		{"saf", "saffron", false},
		{"", "saffron", false},
		{"saffron", "", false}, // the empty token matches nothing

		// Case folding over multi-byte letters.
		{"ÜBER graph", "über", true},
		{"über graph", "uber", false}, // folding, not transliteration
		{"ΣΟΦΙΑ works", "σοφια", true},
		{"Łódź trains", "łódź", true},

		// Multi-byte runes at token boundaries: the delimiter and the token
		// edge can each be multi-byte.
		{"café-au-lait", "café", true},
		{"café-au-lait", "au", true},
		{"naïve—idea", "naïve", true}, // em-dash delimiter
		{"naïve—idea", "idea", true},
		{"世界 hello", "hello", true},

		// Digits participate in runs; punctuation does not.
		{"hand-made. 2pck!", "2pck", true},
		{"v1.2 release", "2", true},
		{"v1.2 release", "12", false},
	}
	for _, tc := range tests {
		if got := containsToken(tc.cell, tc.token); got != tc.want {
			t.Errorf("containsToken(%q, %q) = %v, want %v", tc.cell, tc.token, got, tc.want)
		}
	}
}

func TestDecodeAlnum(t *testing.T) {
	tests := []struct {
		in   string
		r    rune
		size int
	}{
		{"abc", 'a', 1},
		{"7up", '7', 1},
		{"état", 'é', 2},
		{"世界", '世', 3},
		{".dot", 0, 0},
		{" x", 0, 0},
		{"—dash", 0, 0},
		{"", 0, 0},
		{"\xff\xfe", 0, 0}, // invalid UTF-8 decodes to RuneError, not alnum
	}
	for _, tc := range tests {
		if r, size := decodeAlnum(tc.in); r != tc.r || size != tc.size {
			t.Errorf("decodeAlnum(%q) = (%q, %d), want (%q, %d)", tc.in, r, size, tc.r, tc.size)
		}
	}
}
