package engine

import "kwsdbg/internal/obs"

// Execution metrics. Every probe the debugger issues bottoms out in Select,
// so kwsdbg_sql_exec_total is the engine-side mirror of the traversal
// strategies' probe accounting, and rows_scanned is the work each probe
// actually did (candidate rows visited by the index-nested-loop enumerator,
// including join-probe mismatches).
var (
	mSQLExec = obs.Default.Counter("kwsdbg_sql_exec_total",
		"SELECT statements executed by the engine.")
	mSQLSeconds = obs.Default.Histogram("kwsdbg_sql_seconds",
		"SELECT execution latency.", nil)
	mRowsScanned = obs.Default.Counter("kwsdbg_sql_rows_scanned_total",
		"Candidate rows visited while enumerating join bindings.")
	mSQLRetries = obs.Default.Counter("kwsdbg_sql_retries_total",
		"SELECT execution attempts retried after a transient failure.")
	mFaultsInjected = obs.Default.Counter("kwsdbg_sql_faults_injected_total",
		"Execution attempts failed by the chaos fault-injection hook.")
)

// Prepared-pipeline metrics. The plan-cache families carry a path label:
// "text" is the engine's SQL-keyed cache in front of QueryContext, "prepared"
// the debugger's probe-handle cache. Compiles and re-plans are per-handle
// events and need no label.
var (
	mPlanCacheHits = obs.Default.CounterVec("kwsdbg_plan_cache_hits_total",
		"Plan cache lookups answered with an existing Prepared handle, by path.", "path")
	mPlanCacheMisses = obs.Default.CounterVec("kwsdbg_plan_cache_misses_total",
		"Plan cache lookups that had to compile a new handle, by path.", "path")
	mPlanCacheEvictions = obs.Default.CounterVec("kwsdbg_plan_cache_evictions_total",
		"Prepared handles evicted by the LRU bound, by path.", "path")
	mPlanCacheEntries = obs.Default.GaugeVec("kwsdbg_plan_cache_entries",
		"Prepared handles currently cached, by path.", "path")
	mPlanCompiles = obs.Default.Counter("kwsdbg_plan_compiles_total",
		"Selects compiled into Prepared handles (resolve-once events).")
	mPlanReplans = obs.Default.Counter("kwsdbg_plan_replans_total",
		"Prepared handles re-planned after a write intersected their footprint.")
	mPlanReplanGiveup = obs.Default.Counter("kwsdbg_plan_replan_giveup_total",
		"Replan/candidate-set loops abandoned after maxReplanAttempts of sustained write churn.")
)

// Candidate-set cache metrics: per-alias indexed row sets shared across the
// probes of one debug run.
var (
	mCandSetHits = obs.Default.Counter("kwsdbg_candset_hits_total",
		"Candidate-set lookups served from a run's shared cache.")
	mCandSetMisses = obs.Default.Counter("kwsdbg_candset_misses_total",
		"Candidate-set lookups that computed the row set from the index.")
	mCandSetStale = obs.Default.Counter("kwsdbg_candset_stale_total",
		"Candidate-set entries discarded because the data version advanced.")
)
