package engine

import "kwsdbg/internal/obs"

// Execution metrics. Every probe the debugger issues bottoms out in Select,
// so kwsdbg_sql_exec_total is the engine-side mirror of the traversal
// strategies' probe accounting, and rows_scanned is the work each probe
// actually did (candidate rows visited by the index-nested-loop enumerator,
// including join-probe mismatches).
var (
	mSQLExec = obs.Default.Counter("kwsdbg_sql_exec_total",
		"SELECT statements executed by the engine.")
	mSQLSeconds = obs.Default.Histogram("kwsdbg_sql_seconds",
		"SELECT execution latency.", nil)
	mRowsScanned = obs.Default.Counter("kwsdbg_sql_rows_scanned_total",
		"Candidate rows visited while enumerating join bindings.")
	mSQLRetries = obs.Default.Counter("kwsdbg_sql_retries_total",
		"SELECT execution attempts retried after a transient failure.")
	mFaultsInjected = obs.Default.Counter("kwsdbg_sql_faults_injected_total",
		"Execution attempts failed by the chaos fault-injection hook.")
)
