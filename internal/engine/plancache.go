package engine

import (
	"container/list"
	"sync"

	"kwsdbg/internal/obs"
)

// DefaultPlanCacheSize is the entry bound used when a cache's size has not
// been configured. Handles are small (a bound query plus one plan), so the
// default is generous enough that a server's working set of probe shapes
// never thrashes.
const DefaultPlanCacheSize = 4096

// PreparedCache is a thread-safe LRU of Prepared handles keyed by a
// caller-chosen identity — canonical SQL text for the engine's own cache, a
// probe-identity key for the debugger's. Entries need no generation stamp:
// a Prepared revalidates itself against the engine's data version on every
// execution, so an entry outliving an INSERT is cheap to keep (it re-plans
// once) and never wrong. A max of 0 disables the cache (Get always misses,
// Put drops); negative means unbounded.
type PreparedCache struct {
	// path labels this cache's samples in the shared kwsdbg_plan_cache_*
	// metric families: "text" for the SQL-keyed engine cache, "prepared"
	// for the debugger's handle cache.
	path string

	mu  sync.Mutex
	max int
	// ll is the recency list. guarded by mu.
	ll *list.List
	// items indexes ll by key. guarded by mu.
	items map[string]*list.Element

	// hits, misses, and evictions feed Stats. guarded by mu.
	hits, misses, evictions int64

	// Metric children are resolved once at construction: path is fixed per
	// instance, and Get sits on the per-probe hot path where Vec.With's
	// lock-and-label-key resolution costs ~2 allocations per call.
	mHits, mMisses, mEvictions *obs.Counter
	mEntries                   *obs.Gauge
}

type planEntry struct {
	key string
	p   *Prepared
}

// NewPreparedCache returns an LRU bounded to max entries, reporting metrics
// under the given path label.
func NewPreparedCache(max int, path string) *PreparedCache {
	return &PreparedCache{
		path:       path,
		max:        max,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		mHits:      mPlanCacheHits.With(path),
		mMisses:    mPlanCacheMisses.With(path),
		mEvictions: mPlanCacheEvictions.With(path),
		mEntries:   mPlanCacheEntries.With(path),
	}
}

// Get returns the cached handle for key, or nil.
//
//kws:hotpath
func (c *PreparedCache) Get(key string) *Prepared {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		c.mMisses.Inc()
		return nil
	}
	c.ll.MoveToFront(el)
	c.hits++
	c.mHits.Inc()
	return el.Value.(*planEntry).p
}

// Put stores a handle under key, evicting the least recently used entries
// beyond the bound. Storing an existing key refreshes its handle and recency.
func (c *PreparedCache) Put(key string, p *Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max == 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*planEntry).p = p
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, p: p})
	for c.max > 0 && c.ll.Len() > c.max {
		c.evictOldestLocked()
	}
	c.mEntries.Set(float64(c.ll.Len()))
}

func (c *PreparedCache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.ll.Remove(el)
	delete(c.items, el.Value.(*planEntry).key)
	c.evictions++
	c.mEvictions.Inc()
}

// Resize rebounds the cache, evicting down to the new max immediately. Zero
// disables the cache and drops every entry.
func (c *PreparedCache) Resize(max int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = max
	if max == 0 {
		c.ll.Init()
		c.items = make(map[string]*list.Element)
	}
	for max > 0 && c.ll.Len() > max {
		c.evictOldestLocked()
	}
	c.mEntries.Set(float64(c.ll.Len()))
}

// Purge drops every entry but keeps the bound; benchmarks use it to measure
// cold-path costs.
func (c *PreparedCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.mEntries.Set(0)
}

// Len returns the current entry count.
func (c *PreparedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// PlanCacheStats is a point-in-time snapshot for health endpoints.
type PlanCacheStats struct {
	Path      string `json:"path"`
	Entries   int    `json:"entries"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Evictions int64  `json:"evictions"`
}

// Stats snapshots the cache's counters.
func (c *PreparedCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Path: c.path, Entries: c.ll.Len(), Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
