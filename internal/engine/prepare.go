package engine

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/invidx"
	"kwsdbg/internal/obs"
	"kwsdbg/internal/obs/flight"
	"kwsdbg/internal/sqltext"
	"kwsdbg/internal/storage"
)

// This file is the prepared-probe pipeline: a Select is compiled once into a
// bound query (Prepare — names resolved, predicates classified, never redone),
// its per-alias plans are derived lazily and revalidated against the engine's
// data version on every execution (re-plan on a generation bump, never
// re-resolve), and the indexed candidate row sets that recur across the
// lattice nodes of one debug run can be shared through a CandidateCache.
// Phase 3 existence probes dominate the online cost, and before this layer
// every probe paid parse -> resolve -> plan against an immutable schema.

// compiledPlan is one planning outcome: the per-alias access paths and join
// order valid for a specific data version. It is immutable after
// construction, which is what lets concurrent executions share it through an
// atomic pointer.
type compiledPlan struct {
	version uint64
	plans   []aliasPlan
	order   []int
}

// Prepared is a compiled, reusable query handle. The bound query is fixed at
// Prepare time (the schema is immutable after load); the plan is computed on
// first execution and recomputed only when the engine's DataVersion has
// advanced past the plan's version. A Prepared is safe for concurrent
// ExecContext calls and may be shared across requests indefinitely — a stale
// handle never serves a stale plan, it re-plans.
type Prepared struct {
	e    *Engine
	bq   *boundQuery
	plan atomic.Pointer[compiledPlan]
}

// Prepare compiles a SELECT into a reusable handle: name resolution and
// predicate classification happen here, once; planning is deferred to the
// first execution so a handle prepared ahead of need costs almost nothing.
func (e *Engine) Prepare(sel *sqltext.Select) (*Prepared, error) {
	bq, err := e.resolve(sel)
	if err != nil {
		return nil, err
	}
	mPlanCompiles.Inc()
	return &Prepared{e: e, bq: bq}, nil
}

// PrepareQuery parses and compiles a SELECT statement in one step.
func (e *Engine) PrepareQuery(sql string) (*Prepared, error) {
	stmt, err := sqltext.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqltext.Select)
	if !ok {
		return nil, fmt.Errorf("engine: Prepare requires SELECT, got %T", stmt)
	}
	return e.Prepare(sel)
}

// replan computes a fresh plan. The version is read before planning: plan()
// itself can advance it (Index detects staleness while rebuilding), and
// stamping the earlier value errs in the safe direction — the next execution
// sees a version mismatch and plans again, it never trusts data the plan did
// not see. The loop converges as soon as no mutation lands mid-plan.
func (p *Prepared) replan(cands *CandidateCache) *compiledPlan {
	mPlanReplans.Inc()
	for attempt := 0; ; attempt++ {
		v := p.e.DataVersion()
		plans, order := p.e.planWith(p.bq, cands)
		if p.e.DataVersion() == v || attempt >= 3 {
			cp := &compiledPlan{version: v, plans: plans, order: order}
			p.plan.Store(cp)
			return cp
		}
	}
}

// Exec executes the prepared query; see ExecContext.
func (p *Prepared) Exec(cands *CandidateCache) (*Result, error) {
	return p.ExecContext(context.Background(), cands)
}

// ExecContext executes the prepared query with the same semantics as
// SelectContext — context checks during enumeration, transient-failure
// retries with backoff, the fault-injection hook — minus the per-call
// resolve/plan work. cands, when non-nil, shares indexed candidate sets with
// other handles executed against the same cache; nil plans privately.
//
// Flight recording on this path comes from the context (a ctx.Value walk per
// execution); the prepared oracle bypasses it via ExecFlight, which is the
// hot path and must not pay for a context lookup.
func (p *Prepared) ExecContext(ctx context.Context, cands *CandidateCache) (*Result, error) {
	return p.ExecFlight(ctx, cands, flight.FromContext(ctx), -1, "")
}

// ExecFlight is ExecContext with probe provenance: plan reuse/replan and
// retry events are recorded against the caller's probe identity (lattice
// node and probe-cache key). fl may be nil; node -1 marks an event not tied
// to a lattice node.
func (p *Prepared) ExecFlight(ctx context.Context, cands *CandidateCache, fl *flight.Log, node int, probe string) (*Result, error) {
	pol := p.e.retryPolicy()
	delay := pol.BaseDelay
	for attempt := 1; ; attempt++ {
		res, err := p.execOnce(ctx, cands, fl, node, probe)
		if err == nil || attempt >= pol.MaxAttempts || !IsTransient(err) {
			return res, err
		}
		mSQLRetries.Inc()
		fl.Emit(flight.Retry, node, probe, false, 0, err.Error())
		logRetry(ctx, attempt, pol.MaxAttempts, err)
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
		if delay *= 2; delay > pol.MaxDelay {
			delay = pol.MaxDelay
		}
	}
}

// logRetry reports one transient-failure retry, carrying the request ID from
// the context so a retry storm is attributable to the request that suffered
// it rather than appearing as anonymous engine noise.
func logRetry(ctx context.Context, attempt, max int, err error) {
	slog.Default().LogAttrs(ctx, slog.LevelWarn, "transient failure, retrying",
		slog.String("request_id", obs.RequestID(ctx)),
		slog.Int("attempt", attempt),
		slog.Int("max_attempts", max),
		slog.String("error", err.Error()))
}

// execOnce is one execution attempt. The fault hook fires first, exactly as
// in the text path, so chaos tests exercise prepared probes identically.
func (p *Prepared) execOnce(ctx context.Context, cands *CandidateCache, fl *flight.Log, node int, probe string) (*Result, error) {
	if f := p.e.faultInjector(); f != nil {
		if err := f(); err != nil {
			mFaultsInjected.Inc()
			return nil, err
		}
	}
	start := time.Now()
	if cp := p.plan.Load(); cp != nil && cp.version == p.e.DataVersion() {
		fl.Emit(flight.PlanReuse, node, probe, false, 0, "")
		return p.e.runPlan(ctx, p.bq, cp.plans, cp.order, start)
	} else if cp != nil {
		fl.Emit(flight.Replan, node, probe, false, 0, "stale")
	} else {
		fl.Emit(flight.Replan, node, probe, false, 0, "cold")
	}
	cp := p.replan(cands)
	return p.e.runPlan(ctx, p.bq, cp.plans, cp.order, start)
}

// CandidateCache shares the per-alias indexed candidate row sets of one debug
// run. Dozens of lattice nodes bind the same keyword to the same relation
// copy, so the same CONTAINS lookup — index probe, intersection, membership
// map — recurs across probes; entries are keyed by table plus the resolved
// predicate's signature (alias-independent), computed once under a
// single-flight, and revalidated against the engine's data version so an
// INSERT between probes can never serve a stale set. The zero value is not
// usable; see NewCandidateCache. Safe for concurrent use.
type CandidateCache struct {
	mu sync.Mutex
	// entries maps predicate signature to its single-flight slot.
	// guarded by mu.
	entries map[string]*candEntry

	hits   atomic.Int64
	misses atomic.Int64

	// fl records candidate-set provenance for the run. It is set once by
	// the run's owner before any probe executes and read-only afterwards;
	// a nil log records nothing. The cache carries it because the engine's
	// planning layer has no other per-run state to hang provenance on.
	fl *flight.Log
}

// SetFlight attaches the run's flight log. Call before the first execution
// against this cache; the field is not synchronized against in-flight
// probes.
func (c *CandidateCache) SetFlight(fl *flight.Log) {
	if c != nil {
		c.fl = fl
	}
}

// candEntry is one computed candidate set. version, ids, and member are
// written under once and immutable afterwards.
type candEntry struct {
	once    sync.Once
	version uint64
	ids     []storage.RowID
	member  map[storage.RowID]bool
}

// NewCandidateCache returns an empty cache. One cache serves one logical
// request (a debug run); cross-request sharing belongs to the verdict-level
// probe cache, not here.
func NewCandidateCache() *CandidateCache {
	return &CandidateCache{entries: make(map[string]*candEntry)}
}

// Stats reports lookups answered from the cache versus computed.
func (c *CandidateCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// get returns the candidate set for key, computing it at most once per data
// version. A stale entry (computed before the engine's current version) is
// replaced and recomputed; the loop is bounded because every retry requires
// an actual concurrent mutation, and even the bounded fallback is no weaker
// than uncached planning, which also reads the index at one instant.
func (c *CandidateCache) get(e *Engine, key string, compute func() []storage.RowID) *candEntry {
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		en, ok := c.entries[key]
		if !ok {
			en = &candEntry{}
			c.entries[key] = en
		}
		c.mu.Unlock()
		computed := false
		en.once.Do(func() {
			computed = true
			en.version = e.DataVersion()
			en.ids = compute()
			en.member = make(map[storage.RowID]bool, len(en.ids))
			for _, id := range en.ids {
				en.member[id] = true
			}
		})
		if computed {
			c.misses.Add(1)
			mCandSetMisses.Inc()
			c.fl.Emit(flight.CandSetMiss, -1, key, false, 0, "")
		} else {
			c.hits.Add(1)
			mCandSetHits.Inc()
			c.fl.Emit(flight.CandSetHit, -1, key, false, 0, "")
		}
		if en.version == e.DataVersion() || attempt >= 8 {
			return en
		}
		mCandSetStale.Inc()
		c.mu.Lock()
		if c.entries[key] == en {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
}

// candKey builds the cache key for one alias-local predicate: the table name
// plus the resolved predicate signature. Column positions, operators, and
// kind-tagged literal values identify the candidate set exactly; the alias
// name does not participate, which is the whole point — t0 and t3 bound to
// the same relation with the same keyword share one set.
func candKey(table string, p rpred) string {
	var sb strings.Builder
	sb.WriteString(table)
	sb.WriteByte(0)
	appendPredSig(&sb, p)
	return sb.String()
}

func appendPredSig(sb *strings.Builder, p rpred) {
	switch pr := p.(type) {
	case *rcmp:
		fmt.Fprintf(sb, "c%d;%s;", pr.left.c, pr.op)
		switch pr.lit.Kind {
		case sqltext.LitInt:
			fmt.Fprintf(sb, "i%d", pr.lit.I)
		case sqltext.LitFloat:
			fmt.Fprintf(sb, "f%g", pr.lit.F)
		case sqltext.LitString:
			sb.WriteByte('s')
			sb.WriteString(pr.lit.S)
		}
	case *ror:
		sb.WriteByte('(')
		for _, t := range pr.terms {
			appendPredSig(sb, t)
			sb.WriteByte('|')
		}
		sb.WriteByte(')')
	}
}

// indexableShape reports whether indexable() would accept the predicate,
// without touching any index — the structural precondition shared by the
// cached and uncached planning paths. Must mirror indexable's cases exactly.
func indexableShape(bq *boundQuery, a int, p rpred) bool {
	switch pr := p.(type) {
	case *rcmp:
		if pr.isCol {
			return false
		}
		col := bq.rels[a].Columns[pr.left.c]
		return pr.op == sqltext.OpContains ||
			(pr.op == sqltext.OpEq && col.Type == catalog.Int && pr.lit.Kind == sqltext.LitInt)
	case *ror:
		for _, t := range pr.terms {
			if !indexableShape(bq, a, t) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// candidateSet resolves one indexable local predicate to its candidate rows,
// through the cache when one is supplied. The bool mirrors indexable's: false
// means the predicate has no index path and must be evaluated per row.
func (e *Engine) candidateSet(bq *boundQuery, ix *invidx.Index, a int, p rpred, cands *CandidateCache) ([]storage.RowID, map[storage.RowID]bool, bool) {
	if !indexableShape(bq, a, p) {
		return nil, nil, false
	}
	if cands == nil {
		ids, _ := e.indexable(bq, ix, a, p)
		return ids, nil, true
	}
	en := cands.get(e, candKey(bq.rels[a].Name, p), func() []storage.RowID {
		ids, _ := e.indexable(bq, ix, a, p)
		return ids
	})
	return en.ids, en.member, true
}
