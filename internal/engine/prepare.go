package engine

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/invidx"
	"kwsdbg/internal/obs"
	"kwsdbg/internal/obs/flight"
	"kwsdbg/internal/sqltext"
	"kwsdbg/internal/storage"
	"kwsdbg/internal/vervec"
)

// This file is the prepared-probe pipeline: a Select is compiled once into a
// bound query (Prepare — names resolved, predicates classified, never redone),
// its per-alias plans are derived lazily and revalidated against the engine's
// version vector on every execution (re-plan only when a write intersected
// the plan's own FROM tables, never re-resolve), and the indexed candidate
// row sets that recur across the lattice nodes of one debug run can be shared
// through a CandidateCache. Phase 3 existence probes dominate the online
// cost, and before this layer every probe paid parse -> resolve -> plan
// against an immutable schema.

// maxReplanAttempts bounds every plan-under-churn loop in this file: the
// handle replan loop and the candidate-set recompute loop give up after the
// same number of retries, because both retries have the same trigger (a
// concurrent write landing inside the footprint mid-computation) and the
// same cost model. Exhaustion is counted in kwsdbg_plan_replan_giveup_total.
const maxReplanAttempts = 8

// ErrReplanChurn marks a replan abandoned because concurrent writes kept
// landing inside the plan's footprint on every attempt. It is wrapped as
// Transient: the retry layer backs off and re-enters the replan loop, which
// converges the moment the write storm pauses for one planning window.
var ErrReplanChurn = errors.New("engine: replan abandoned under sustained write churn")

// compiledPlan is one planning outcome: the per-alias access paths and join
// order valid while no write intersects the stamped footprint. It is
// immutable after construction, which is what lets concurrent executions
// share it through an atomic pointer.
type compiledPlan struct {
	stamp vervec.Stamp
	plans []aliasPlan
	order []int
}

// Prepared is a compiled, reusable query handle. The bound query is fixed at
// Prepare time (the schema is immutable after load); the plan is computed on
// first execution and recomputed only when the engine's version vector shows
// a write to one of the plan's own FROM tables — writes to unrelated tables
// leave it untouched. A Prepared is safe for concurrent ExecContext calls
// and may be shared across requests indefinitely — a stale handle never
// serves a stale plan, it re-plans.
type Prepared struct {
	e  *Engine
	bq *boundQuery
	// fp is the plan's footprint: the vector names of the query's FROM
	// tables, fixed at Prepare time. Plans read only these tables' indexes,
	// so the footprint slice of the version vector decides staleness.
	fp   []string
	plan atomic.Pointer[compiledPlan]
}

// Prepare compiles a SELECT into a reusable handle: name resolution and
// predicate classification happen here, once; planning is deferred to the
// first execution so a handle prepared ahead of need costs almost nothing.
func (e *Engine) Prepare(sel *sqltext.Select) (*Prepared, error) {
	bq, err := e.resolve(sel)
	if err != nil {
		return nil, err
	}
	mPlanCompiles.Inc()
	return &Prepared{e: e, bq: bq, fp: planFootprint(bq)}, nil
}

// planFootprint collects the distinct FROM tables of a bound query as
// version-vector names, in alias order (deterministic).
func planFootprint(bq *boundQuery) []string {
	seen := make(map[string]bool, len(bq.rels))
	names := make([]string, 0, len(bq.rels))
	for _, rel := range bq.rels {
		if k := vervec.TableKey(rel.Name); !seen[k] {
			seen[k] = true
			names = append(names, k)
		}
	}
	return names
}

// PrepareQuery parses and compiles a SELECT statement in one step.
func (e *Engine) PrepareQuery(sql string) (*Prepared, error) {
	stmt, err := sqltext.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqltext.Select)
	if !ok {
		return nil, fmt.Errorf("engine: Prepare requires SELECT, got %T", stmt)
	}
	return e.Prepare(sel)
}

// replan computes a fresh plan. The footprint is stamped before planning:
// planWith itself can advance the vector (Index attributes directly-appended
// rows while rebuilding), and stamping the earlier values errs in the safe
// direction — the next execution sees a stale stamp and plans again, it
// never trusts data the plan did not see. The loop converges as soon as no
// write intersecting the plan's own tables lands mid-plan; after
// maxReplanAttempts it gives up with a Transient-wrapped ErrReplanChurn so
// the retry layer backs off instead of spinning against the write storm.
func (p *Prepared) replan(cands *CandidateCache) (*compiledPlan, error) {
	mPlanReplans.Inc()
	for attempt := 0; ; attempt++ {
		st := p.e.vv.Stamp(p.fp)
		plans, order := p.e.planWith(p.bq, cands)
		if !p.e.vv.Stale(st) {
			cp := &compiledPlan{stamp: st, plans: plans, order: order}
			p.plan.Store(cp)
			return cp, nil
		}
		if attempt >= maxReplanAttempts {
			mPlanReplanGiveup.Inc()
			return nil, Transient(fmt.Errorf("engine: %d plan attempts each raced a concurrent write: %w",
				attempt+1, ErrReplanChurn))
		}
	}
}

// Exec executes the prepared query; see ExecContext.
func (p *Prepared) Exec(cands *CandidateCache) (*Result, error) {
	return p.ExecContext(context.Background(), cands)
}

// ExecContext executes the prepared query with the same semantics as
// SelectContext — context checks during enumeration, transient-failure
// retries with backoff, the fault-injection hook — minus the per-call
// resolve/plan work. cands, when non-nil, shares indexed candidate sets with
// other handles executed against the same cache; nil plans privately.
//
// Flight recording on this path comes from the context (a ctx.Value walk per
// execution); the prepared oracle bypasses it via ExecFlight, which is the
// hot path and must not pay for a context lookup.
func (p *Prepared) ExecContext(ctx context.Context, cands *CandidateCache) (*Result, error) {
	return p.ExecFlight(ctx, cands, flight.FromContext(ctx), -1, "")
}

// ExecFlight is ExecContext with probe provenance: plan reuse/replan and
// retry events are recorded against the caller's probe identity (lattice
// node and probe-cache key). fl may be nil; node -1 marks an event not tied
// to a lattice node.
func (p *Prepared) ExecFlight(ctx context.Context, cands *CandidateCache, fl *flight.Log, node int, probe string) (*Result, error) {
	pol := p.e.retryPolicy()
	delay := pol.BaseDelay
	// MaxDelay caps every backoff including the first: normalized() lets
	// BaseDelay exceed MaxDelay (each zero field defaults independently),
	// and the cap, not the base, is the configured ceiling.
	if delay > pol.MaxDelay {
		delay = pol.MaxDelay
	}
	for attempt := 1; ; attempt++ {
		res, err := p.execOnce(ctx, cands, fl, node, probe)
		if err == nil || attempt >= pol.MaxAttempts || !IsTransient(err) {
			return res, err
		}
		mSQLRetries.Inc()
		fl.Emit(flight.Retry, node, probe, false, 0, err.Error())
		logRetry(ctx, attempt, pol.MaxAttempts, err)
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
		if delay *= 2; delay > pol.MaxDelay {
			delay = pol.MaxDelay
		}
	}
}

// logRetry reports one transient-failure retry, carrying the request ID from
// the context so a retry storm is attributable to the request that suffered
// it rather than appearing as anonymous engine noise.
func logRetry(ctx context.Context, attempt, max int, err error) {
	slog.Default().LogAttrs(ctx, slog.LevelWarn, "transient failure, retrying",
		slog.String("request_id", obs.RequestID(ctx)),
		slog.Int("attempt", attempt),
		slog.Int("max_attempts", max),
		slog.String("error", err.Error()))
}

// execOnce is one execution attempt. The fault hook fires first, exactly as
// in the text path, so chaos tests exercise prepared probes identically.
func (p *Prepared) execOnce(ctx context.Context, cands *CandidateCache, fl *flight.Log, node int, probe string) (*Result, error) {
	if f := p.e.faultInjector(); f != nil {
		if err := f(); err != nil {
			mFaultsInjected.Inc()
			return nil, err
		}
	}
	start := time.Now()
	if cp := p.plan.Load(); cp != nil && !p.e.vv.Stale(cp.stamp) {
		fl.Emit(flight.PlanReuse, node, probe, false, 0, "")
		return p.e.runPlan(ctx, p.bq, cp.plans, cp.order, start)
	} else if cp != nil {
		fl.Emit(flight.Replan, node, probe, false, 0, "stale")
	} else {
		fl.Emit(flight.Replan, node, probe, false, 0, "cold")
	}
	cp, err := p.replan(cands)
	if err != nil {
		return nil, err
	}
	return p.e.runPlan(ctx, p.bq, cp.plans, cp.order, start)
}

// CandidateCache shares the per-alias indexed candidate row sets of one debug
// run. Dozens of lattice nodes bind the same keyword to the same relation
// copy, so the same CONTAINS lookup — index probe, intersection, membership
// map — recurs across probes; entries are keyed by table plus the resolved
// predicate's signature (alias-independent), computed once under a
// single-flight, and revalidated against the entry's footprint slice of the
// engine's version vector so an INSERT between probes can never serve a
// stale set — while writes that cannot change the set (a different table, or
// rows missing the predicate's terms) leave it shared. The zero value is not
// usable; see NewCandidateCache. Safe for concurrent use.
type CandidateCache struct {
	mu sync.Mutex
	// entries maps predicate signature to its single-flight slot.
	// guarded by mu.
	entries map[string]*candEntry

	hits   atomic.Int64
	misses atomic.Int64

	// fl records candidate-set provenance for the run. It is set once by
	// the run's owner before any probe executes and read-only afterwards;
	// a nil log records nothing. The cache carries it because the engine's
	// planning layer has no other per-run state to hang provenance on.
	fl *flight.Log
}

// SetFlight attaches the run's flight log. Call before the first execution
// against this cache; the field is not synchronized against in-flight
// probes.
func (c *CandidateCache) SetFlight(fl *flight.Log) {
	if c != nil {
		c.fl = fl
	}
}

// candEntry is one computed candidate set. stamp, groups, ids, and member
// are written under once and immutable afterwards.
type candEntry struct {
	once sync.Once
	// stamp snapshots the entry's footprint (table counter first, then the
	// predicate's term counters) at compute time; groups are the footprint's
	// per-branch term indices (see candFootprint).
	stamp  vervec.Stamp
	groups [][]int
	ids    []storage.RowID
	member map[storage.RowID]bool
}

// candFootprint describes what a candidate set depends on. names[0] is the
// table's vector name; the rest are term names. groups holds, per indexable
// predicate branch, the indices into names of the terms a new row must carry
// to enter that branch's set — an empty group means any write to the table
// can change the set (integer-equality branches).
type candFootprint struct {
	names  []string
	groups [][]int
}

// candStale decides whether a cached candidate set may have changed: the
// epoch moved, or the table advanced AND some branch's terms all advanced
// with it. The conjunction is sound because a row can only join a CONTAINS
// branch's set when it carries every token of the branch's literal, and
// execInsert bumps a row's table and all its tokens atomically — so a write
// that changes the set necessarily advances the table and a full group
// together. A write into the table without the terms (or the terms into
// another table) proves the set unchanged, which is the whole point.
func (e *Engine) candStale(en *candEntry) bool {
	vv := e.vv
	if vv.EpochChanged(en.stamp.Epoch) {
		return true
	}
	if !vv.Advanced(en.stamp.Names[0], en.stamp.Vals[0]) {
		return false
	}
	if len(en.groups) == 0 {
		return true
	}
	for _, g := range en.groups {
		all := true
		for _, i := range g {
			if !vv.Advanced(en.stamp.Names[i], en.stamp.Vals[i]) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// NewCandidateCache returns an empty cache. One cache serves one logical
// request (a debug run); cross-request sharing belongs to the verdict-level
// probe cache, not here.
func NewCandidateCache() *CandidateCache {
	return &CandidateCache{entries: make(map[string]*candEntry)}
}

// Stats reports lookups answered from the cache versus computed.
func (c *CandidateCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// get returns the candidate set for key, computing it at most once per
// footprint state. A stale entry (a write intersected its footprint since it
// was computed) is replaced and recomputed; the loop is bounded by
// maxReplanAttempts because every retry requires an actual concurrent
// footprint-intersecting mutation, and even the bounded fallback is no
// weaker than uncached planning, which also reads the index at one instant —
// exhaustion is surfaced through kwsdbg_plan_replan_giveup_total rather than
// an error, because the planning paths this feeds cannot propagate one.
func (c *CandidateCache) get(e *Engine, key string, fp candFootprint, compute func() []storage.RowID) *candEntry {
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		en, ok := c.entries[key]
		if !ok {
			en = &candEntry{}
			c.entries[key] = en
		}
		c.mu.Unlock()
		computed := false
		en.once.Do(func() {
			computed = true
			// Stamp before computing: a write landing mid-compute makes
			// the stamp stale rather than vouching for rows it never saw.
			en.stamp = e.vv.Stamp(fp.names)
			en.groups = fp.groups
			en.ids = compute()
			en.member = make(map[storage.RowID]bool, len(en.ids))
			for _, id := range en.ids {
				en.member[id] = true
			}
		})
		if computed {
			c.misses.Add(1)
			mCandSetMisses.Inc()
			c.fl.Emit(flight.CandSetMiss, -1, key, false, 0, "")
		} else {
			c.hits.Add(1)
			mCandSetHits.Inc()
			c.fl.Emit(flight.CandSetHit, -1, key, false, 0, "")
		}
		if !e.candStale(en) {
			return en
		}
		if attempt >= maxReplanAttempts {
			mPlanReplanGiveup.Inc()
			return en
		}
		mCandSetStale.Inc()
		c.mu.Lock()
		if c.entries[key] == en {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
}

// candKey builds the cache key for one alias-local predicate: the table name
// plus the resolved predicate signature. Column positions, operators, and
// kind-tagged literal values identify the candidate set exactly; the alias
// name does not participate, which is the whole point — t0 and t3 bound to
// the same relation with the same keyword share one set.
func candKey(table string, p rpred) string {
	var sb strings.Builder
	sb.WriteString(table)
	sb.WriteByte(0)
	appendPredSig(&sb, p)
	return sb.String()
}

func appendPredSig(sb *strings.Builder, p rpred) {
	switch pr := p.(type) {
	case *rcmp:
		fmt.Fprintf(sb, "c%d;%s;", pr.left.c, pr.op)
		switch pr.lit.Kind {
		case sqltext.LitInt:
			fmt.Fprintf(sb, "i%d", pr.lit.I)
		case sqltext.LitFloat:
			fmt.Fprintf(sb, "f%g", pr.lit.F)
		case sqltext.LitString:
			sb.WriteByte('s')
			sb.WriteString(pr.lit.S)
		}
	case *ror:
		sb.WriteByte('(')
		for _, t := range pr.terms {
			appendPredSig(sb, t)
			sb.WriteByte('|')
		}
		sb.WriteByte(')')
	}
}

// indexableShape reports whether indexable() would accept the predicate,
// without touching any index — the structural precondition shared by the
// cached and uncached planning paths. Must mirror indexable's cases exactly.
func indexableShape(bq *boundQuery, a int, p rpred) bool {
	switch pr := p.(type) {
	case *rcmp:
		if pr.isCol {
			return false
		}
		col := bq.rels[a].Columns[pr.left.c]
		return pr.op == sqltext.OpContains ||
			(pr.op == sqltext.OpEq && col.Type == catalog.Int && pr.lit.Kind == sqltext.LitInt)
	case *ror:
		for _, t := range pr.terms {
			if !indexableShape(bq, a, t) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// candidateSet resolves one indexable local predicate to its candidate rows,
// through the cache when one is supplied. The bool mirrors indexable's: false
// means the predicate has no index path and must be evaluated per row.
func (e *Engine) candidateSet(bq *boundQuery, ix *invidx.Index, a int, p rpred, cands *CandidateCache) ([]storage.RowID, map[storage.RowID]bool, bool) {
	if !indexableShape(bq, a, p) {
		return nil, nil, false
	}
	if cands == nil {
		ids, _ := e.indexable(bq, ix, a, p)
		return ids, nil, true
	}
	table := bq.rels[a].Name
	en := cands.get(e, candKey(table, p), candFP(table, p), func() []storage.RowID {
		ids, _ := e.indexable(bq, ix, a, p)
		return ids
	})
	return en.ids, en.member, true
}

// candFP builds the footprint of one indexable predicate: the table's vector
// name plus, per CONTAINS branch, the branch literal's tokens as one term
// group. Non-CONTAINS branches contribute an empty group (any table write
// may change them).
func candFP(table string, p rpred) candFootprint {
	fp := candFootprint{names: []string{vervec.TableKey(table)}}
	idx := make(map[string]int)
	var walk func(p rpred)
	walk = func(p rpred) {
		switch pr := p.(type) {
		case *rcmp:
			if pr.op == sqltext.OpContains && pr.lit.Kind == sqltext.LitString {
				var g []int
				for _, tok := range invidx.Tokenize(pr.lit.S) {
					k := vervec.TermKey(tok)
					i, ok := idx[k]
					if !ok {
						i = len(fp.names)
						idx[k] = i
						fp.names = append(fp.names, k)
					}
					g = append(g, i)
				}
				fp.groups = append(fp.groups, g)
			} else {
				fp.groups = append(fp.groups, nil)
			}
		case *ror:
			for _, t := range pr.terms {
				walk(t)
			}
		}
	}
	walk(p)
	return fp
}
