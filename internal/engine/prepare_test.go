package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"kwsdbg/internal/storage"
)

func mustPrepare(t *testing.T, e *Engine, sql string) *Prepared {
	t.Helper()
	p, err := e.PrepareQuery(sql)
	if err != nil {
		t.Fatalf("PrepareQuery(%s): %v", sql, err)
	}
	return p
}

// A prepared handle must return exactly what the text path returns, for every
// query shape the executor supports, with and without a shared candidate
// cache.
func TestPreparedMatchesQuery(t *testing.T) {
	e := productEngine(t)
	queries := []string{
		"SELECT * FROM Item",
		"SELECT COUNT(*) FROM Item WHERE cost > 4",
		"SELECT 1 FROM Item WHERE name CONTAINS 'candle' LIMIT 1",
		"SELECT name FROM Item WHERE (name CONTAINS 'saffron' OR description CONTAINS 'saffron')",
		"SELECT t1.name FROM PType t0, Item t1 WHERE t1.ptype = t0.id AND t0.ptype CONTAINS 'candle'",
		"SELECT * FROM Item t0, Color t1 WHERE t0.color = t1.id AND t1.color = 'red' LIMIT 2",
	}
	cands := NewCandidateCache()
	for _, sql := range queries {
		want := mustQuery(t, e, sql)
		p := mustPrepare(t, e, sql)
		for _, cache := range []*CandidateCache{nil, cands} {
			got, err := p.Exec(cache)
			if err != nil {
				t.Fatalf("Exec(%s): %v", sql, err)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) || !reflect.DeepEqual(got.Columns, want.Columns) {
				t.Errorf("prepared %s (cands=%v):\n got %+v\nwant %+v", sql, cache != nil, got.Rows, want.Rows)
			}
		}
	}
}

func TestPrepareRejectsNonSelect(t *testing.T) {
	e := productEngine(t)
	if _, err := e.PrepareQuery("INSERT INTO PType VALUES (9, 'wax')"); err == nil {
		t.Error("PrepareQuery(INSERT) succeeded")
	}
	if _, err := e.PrepareQuery("SELECT * FROM nope"); err == nil {
		t.Error("PrepareQuery(unknown table) succeeded")
	}
}

// The acceptance regression: an INSERT between two executions of the same
// handle — sharing one candidate cache — must be visible to the second
// execution. Neither the compiled plan nor the cached candidate set may
// outlive the data version they were computed at.
func TestPreparedReplansAfterInsert(t *testing.T) {
	e := productEngine(t)
	p := mustPrepare(t, e, "SELECT * FROM Item WHERE name CONTAINS 'lavender'")
	cands := NewCandidateCache()
	res, err := p.Exec(cands)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("pre-insert rows = %d", len(res.Rows))
	}
	if _, err := e.Exec("INSERT INTO Item VALUES (5, 'lavender candle', 2, 3, 2, 7.5, 'fresh')"); err != nil {
		t.Fatalf("Exec(INSERT): %v", err)
	}
	res, err = p.Exec(cands)
	if err != nil {
		t.Fatalf("Exec after insert: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("post-insert rows = %d, want 1 (stale plan or candidate set)", len(res.Rows))
	}
}

// InvalidateIndex bumps the data version without changing row counts; a
// handle must replan through it just like through an INSERT.
func TestPreparedReplansAfterInvalidate(t *testing.T) {
	e := productEngine(t)
	p := mustPrepare(t, e, "SELECT * FROM Color WHERE synonyms CONTAINS 'turquoise'")
	if res, _ := p.Exec(nil); len(res.Rows) != 0 {
		t.Fatalf("pre-update rows = %d", len(res.Rows))
	}
	tbl, _ := e.Database().Table("Color")
	if err := tbl.Update(0, storage.Row{
		storage.IntV(1), storage.TextV("red"), storage.TextV("crimson, orange, turquoise"),
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	e.InvalidateIndex()
	res, err := p.Exec(nil)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("post-invalidate rows = %d, want 1", len(res.Rows))
	}
}

// Two aliases of the same relation with the same local predicate must share
// one candidate set: the cache key is alias-independent.
func TestCandidateCacheSharesAcrossAliases(t *testing.T) {
	e := productEngine(t)
	cands := NewCandidateCache()
	a := mustPrepare(t, e, "SELECT 1 FROM Item t0 WHERE t0.name CONTAINS 'candle' LIMIT 1")
	b := mustPrepare(t, e, "SELECT 1 FROM Item t7 WHERE t7.name CONTAINS 'candle' LIMIT 1")
	for _, p := range []*Prepared{a, b} {
		if _, err := p.Exec(cands); err != nil {
			t.Fatalf("Exec: %v", err)
		}
	}
	hits, misses := cands.Stats()
	if misses != 1 || hits != 1 {
		t.Errorf("cands stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// A different literal is a different set.
	c := mustPrepare(t, e, "SELECT 1 FROM Item t0 WHERE t0.name CONTAINS 'oil' LIMIT 1")
	if _, err := c.Exec(cands); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if _, misses := cands.Stats(); misses != 2 {
		t.Errorf("misses after distinct literal = %d, want 2", misses)
	}
}

func TestPreparedCacheLRU(t *testing.T) {
	e := productEngine(t)
	pc := NewPreparedCache(2, "test")
	p1 := mustPrepare(t, e, "SELECT * FROM PType")
	p2 := mustPrepare(t, e, "SELECT * FROM Color")
	p3 := mustPrepare(t, e, "SELECT * FROM Attr")
	pc.Put("a", p1)
	pc.Put("b", p2)
	if pc.Get("a") != p1 { // touch a: b becomes the LRU victim
		t.Fatal("Get(a) missed")
	}
	pc.Put("c", p3)
	if pc.Get("b") != nil {
		t.Error("b survived eviction, want LRU out")
	}
	if pc.Get("a") != p1 || pc.Get("c") != p3 {
		t.Error("recently used entries evicted")
	}
	st := pc.Stats()
	if st.Path != "test" || st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}

	pc.Resize(0) // disabled: drops everything, stores nothing
	if pc.Len() != 0 {
		t.Errorf("Len after Resize(0) = %d", pc.Len())
	}
	pc.Put("a", p1)
	if pc.Get("a") != nil {
		t.Error("disabled cache stored an entry")
	}

	pc.Resize(-1) // unbounded
	for i := 0; i < 100; i++ {
		pc.Put(fmt.Sprintf("k%d", i), p1)
	}
	if pc.Len() != 100 {
		t.Errorf("unbounded Len = %d, want 100", pc.Len())
	}
}

// The engine-level text-path cache: a repeated query string must hit, a
// differently spelled but canonically identical query must hit, and an
// INSERT must not let either serve stale rows.
func TestQueryPlanCache(t *testing.T) {
	e := productEngine(t)
	const q = "SELECT * FROM Item WHERE name CONTAINS 'candle'"
	before := e.PlanCache().Stats()
	first := mustQuery(t, e, q)
	if got := mustQuery(t, e, q); !reflect.DeepEqual(got.Rows, first.Rows) {
		t.Fatal("cached execution diverged")
	}
	// Same query, different spelling: the canonical key must match.
	variant := "SELECT  *  FROM  Item  WHERE  (name CONTAINS 'candle')"
	if got := mustQuery(t, e, variant); !reflect.DeepEqual(got.Rows, first.Rows) {
		t.Fatal("canonical-variant execution diverged")
	}
	after := e.PlanCache().Stats()
	if hits := after.Hits - before.Hits; hits < 2 {
		t.Errorf("plan cache hits = %d, want >= 2 (repeat + canonical variant)", hits)
	}

	if _, err := e.Exec("INSERT INTO Item VALUES (6, 'black candle', 2, 1, 4, 2.5, 'plain')"); err != nil {
		t.Fatalf("Exec(INSERT): %v", err)
	}
	if got := mustQuery(t, e, q); len(got.Rows) != len(first.Rows)+1 {
		t.Errorf("post-insert rows = %d, want %d (stale cached plan)", len(got.Rows), len(first.Rows)+1)
	}
}

// Concurrent Prepare/Select/version-bump over one engine: the plan cache,
// the shared candidate cache, and the replan path must be race-clean (run
// under -race via make race). Storage mutation is never concurrent with
// scans — that is the engine's documented contract (see TestConcurrentSelect
// and core's read-only debug runs) — so the concurrent generation bumps come
// from InvalidateIndex, which forces the exact races the caches must
// survive: simultaneous replans of one handle, single-flight recomputation
// of shared candidate sets, and stale-entry retirement mid-lookup.
func TestPlanCacheConcurrent(t *testing.T) {
	e := productEngine(t)
	const readers = 4
	queries := []string{
		"SELECT COUNT(*) FROM Item",
		"SELECT * FROM Item WHERE name CONTAINS 'candle'",
		"SELECT 1 FROM Item t0, Color t1 WHERE t0.color = t1.id LIMIT 1",
	}
	shared := mustPrepare(t, e, queries[1])
	cands := NewCandidateCache()
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			own := mustPrepare(t, e, queries[2])
			for i := 0; i < 50; i++ {
				if _, err := e.Query(queries[i%len(queries)]); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if _, err := shared.Exec(cands); err != nil {
					t.Errorf("Exec shared: %v", err)
					return
				}
				if _, err := own.Exec(cands); err != nil {
					t.Errorf("Exec own: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			e.InvalidateIndex()
		}
	}()
	wg.Wait()

	// Inserts land at quiesce points; the concurrent reads that follow must
	// all see them — no cached plan or candidate set may survive the bump.
	const inserts = 4
	for i := 0; i < inserts; i++ {
		stmt := fmt.Sprintf("INSERT INTO Item VALUES (%d, 'probe %d', 2, 1, 1, 1.0, 'x')", 100+i, i)
		if _, err := e.Exec(stmt); err != nil {
			t.Fatalf("Exec(INSERT): %v", err)
		}
		want := i + 1
		p := mustPrepare(t, e, "SELECT * FROM Item WHERE name CONTAINS 'probe'")
		fresh := NewCandidateCache()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if got := mustQuery(t, e, "SELECT * FROM Item WHERE name CONTAINS 'probe'"); len(got.Rows) != want {
					t.Errorf("text path rows = %d, want %d", len(got.Rows), want)
				}
				res, err := p.Exec(fresh)
				if err != nil {
					t.Errorf("Exec: %v", err)
					return
				}
				if len(res.Rows) != want {
					t.Errorf("prepared path rows = %d, want %d", len(res.Rows), want)
				}
			}()
		}
		wg.Wait()
	}
}
