package engine

import (
	"context"
	"errors"
	"time"
)

// This file is the engine's resilience layer: transient execution failures —
// the kind a networked or disk-backed engine would surface as lock timeouts,
// connection resets, or page-read hiccups — are retried with exponential
// backoff instead of failing the probe that triggered them. Faults are
// injected through a test hook (FaultInjector) because the in-memory engine
// has no real I/O to fail; the chaos tests use it to prove the system's
// final output is identical under injected transient fault rates.

// DefaultRetry is the policy used when none has been set: three attempts
// with a 1ms base backoff doubling up to 50ms.
var DefaultRetry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}

// RetryPolicy bounds how hard SelectContext tries in the face of transient
// failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions per Select, including
	// the first; values below 1 behave as 1 (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it. Zero selects the default.
	BaseDelay time.Duration
	// MaxDelay caps the doubling backoff. Zero selects the default.
	MaxDelay time.Duration
}

// normalized fills zero fields with the documented defaults. Each zero field
// independently selects its default — a policy with BaseDelay above
// DefaultRetry.MaxDelay and a zero MaxDelay still gets the 50ms default cap,
// it does not silently inherit the oversized base. The retry loop caps every
// delay (the first included) at MaxDelay, so BaseDelay > MaxDelay is a legal,
// if odd, configuration meaning "always back off exactly MaxDelay".
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetry.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetry.MaxDelay
	}
	return p
}

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps an error so SelectContext treats it as retryable. Context
// cancellation and deadline expiry are never retried, even when wrapped.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t *transientError
	return errors.As(err, &t)
}

// FaultInjector is consulted immediately before every Select execution; a
// non-nil return fails that execution attempt. Return Transient(...) errors
// to exercise the retry path. Nil (the default) injects nothing.
type FaultInjector func() error

// SetFaultInjector installs (or, with nil, removes) the fault hook. Safe to
// call while Selects are running.
func (e *Engine) SetFaultInjector(f FaultInjector) { e.faults.Store(f) }

func (e *Engine) faultInjector() FaultInjector {
	f, _ := e.faults.Load().(FaultInjector)
	return f
}

// SetRetryPolicy replaces the engine's retry policy. Safe to call while
// Selects are running.
func (e *Engine) SetRetryPolicy(p RetryPolicy) { e.retry.Store(p.normalized()) }

func (e *Engine) retryPolicy() RetryPolicy {
	if p, ok := e.retry.Load().(RetryPolicy); ok {
		return p
	}
	return DefaultRetry.normalized()
}
