package engine

import (
	"testing"
	"time"

	"kwsdbg/internal/vervec"
)

// TestRetryPolicyNormalizedZeroMaxDelay is the regression for the doc/behavior
// mismatch: a zero MaxDelay selects the documented 50ms default even when
// BaseDelay exceeds it — it must not silently inherit the oversized base.
func TestRetryPolicyNormalizedZeroMaxDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseDelay: 200 * time.Millisecond}.normalized()
	if p.MaxDelay != DefaultRetry.MaxDelay {
		t.Errorf("MaxDelay = %v, want the %v default", p.MaxDelay, DefaultRetry.MaxDelay)
	}
	if p.BaseDelay != 200*time.Millisecond {
		t.Errorf("BaseDelay = %v, want the configured 200ms", p.BaseDelay)
	}

	want := RetryPolicy{MaxAttempts: 1, BaseDelay: DefaultRetry.BaseDelay, MaxDelay: DefaultRetry.MaxDelay}
	if z := (RetryPolicy{}).normalized(); z != want {
		t.Errorf("zero policy normalized to %+v, want %+v", z, want)
	}
	if n := (RetryPolicy{MaxAttempts: -3, BaseDelay: -time.Second, MaxDelay: -time.Second}).normalized(); n.MaxAttempts != 1 || n.BaseDelay != DefaultRetry.BaseDelay || n.MaxDelay != DefaultRetry.MaxDelay {
		t.Errorf("negative policy normalized to %+v", n)
	}
	// BaseDelay > MaxDelay with both set is legal and preserved: the retry
	// loop caps each delay at MaxDelay at use time.
	odd := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Second, MaxDelay: time.Millisecond}.normalized()
	if odd.BaseDelay != time.Second || odd.MaxDelay != time.Millisecond {
		t.Errorf("explicit BaseDelay > MaxDelay mangled: %+v", odd)
	}
}

// TestVersionVectorAttributesInserts pins the engine-side write attribution:
// an INSERT bumps exactly its table's counter and its text tokens' counters.
func TestVersionVectorAttributesInserts(t *testing.T) {
	e := productEngine(t)
	vv := e.Versions()
	// Seed-data loading already attributed its own rows; diff against the
	// loaded state, not zero.
	itemBefore := vv.Counter(vervec.TableKey("Item"))
	ptypeBefore := vv.Counter(vervec.TableKey("PType"))
	lavenderBefore := vv.Counter(vervec.TermKey("lavender"))
	saffronBefore := vv.Counter(vervec.TermKey("saffron"))

	if _, err := e.Exec("INSERT INTO Item VALUES (5, 'lavender candle', 2, 3, 2, 7.5, 'fresh')"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if got := vv.Counter(vervec.TableKey("Item")); got != itemBefore+1 {
		t.Errorf("Item counter = %d, want %d", got, itemBefore+1)
	}
	if got := vv.Counter(vervec.TableKey("PType")); got != ptypeBefore {
		t.Errorf("PType counter moved to %d on an Item insert", got)
	}
	for _, term := range []string{"lavender", "candle", "fresh"} {
		if vv.Counter(vervec.TermKey(term)) == 0 {
			t.Errorf("term %q not attributed", term)
		}
	}
	if got := vv.Counter(vervec.TermKey("lavender")); got != lavenderBefore+1 {
		t.Errorf("lavender counter = %d, want %d", got, lavenderBefore+1)
	}
	if got := vv.Counter(vervec.TermKey("saffron")); got != saffronBefore {
		t.Errorf("unrelated term 'saffron' moved %d -> %d on the insert", saffronBefore, got)
	}
}

// TestDisjointInsertKeepsCompiledPlan is the tentpole's engine-level claim:
// a write into a table outside a handle's FROM footprint must not flush its
// compiled plan, while an intersecting write must.
func TestDisjointInsertKeepsCompiledPlan(t *testing.T) {
	e := productEngine(t)
	p := mustPrepare(t, e, "SELECT 1 FROM Item WHERE name CONTAINS 'candle' LIMIT 1")
	if _, err := p.Exec(nil); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	cold := p.plan.Load()
	if cold == nil {
		t.Fatal("no compiled plan after first execution")
	}

	// Attr is not in the handle's FROM list; the plan must survive.
	if _, err := e.Exec("INSERT INTO Attr VALUES (5, 'scent', 'pine')"); err != nil {
		t.Fatalf("Exec(INSERT Attr): %v", err)
	}
	if _, err := p.Exec(nil); err != nil {
		t.Fatalf("Exec after disjoint insert: %v", err)
	}
	if p.plan.Load() != cold {
		t.Error("disjoint insert flushed the compiled plan")
	}

	if _, err := e.Exec("INSERT INTO Item VALUES (6, 'pine candle', 2, 2, 1, 3.5, 'woody')"); err != nil {
		t.Fatalf("Exec(INSERT Item): %v", err)
	}
	if _, err := p.Exec(nil); err != nil {
		t.Fatalf("Exec after intersecting insert: %v", err)
	}
	if p.plan.Load() == cold {
		t.Error("intersecting insert did not trigger a replan")
	}
}

// TestTermDisjointInsertKeepsCandidateSet pins the conjunction rule: an
// insert into the candidate set's own table whose tokens miss every term of
// the predicate leaves the cached set fresh — the new row cannot join it.
func TestTermDisjointInsertKeepsCandidateSet(t *testing.T) {
	e := productEngine(t)
	p := mustPrepare(t, e, "SELECT 1 FROM Item WHERE name CONTAINS 'lavender' LIMIT 1")
	cands := NewCandidateCache()
	if _, err := p.Exec(cands); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	_, coldMisses := cands.Stats()

	// Same table, disjoint tokens: the 'lavender' candidate set stays.
	if _, err := e.Exec("INSERT INTO Item VALUES (7, 'plain soap', 2, 1, 1, 1.5, 'unscented')"); err != nil {
		t.Fatalf("Exec(INSERT): %v", err)
	}
	if _, err := p.Exec(cands); err != nil {
		t.Fatalf("Exec after term-disjoint insert: %v", err)
	}
	if _, misses := cands.Stats(); misses != coldMisses {
		t.Errorf("term-disjoint insert recomputed the candidate set (misses %d -> %d)", coldMisses, misses)
	}

	// Intersecting token: the set must be recomputed and see the row.
	if _, err := e.Exec("INSERT INTO Item VALUES (8, 'lavender soap', 2, 1, 1, 2.5, 'mild')"); err != nil {
		t.Fatalf("Exec(INSERT): %v", err)
	}
	res, err := p.Exec(cands)
	if err != nil {
		t.Fatalf("Exec after intersecting insert: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("intersecting insert invisible to the probe: rows = %d", len(res.Rows))
	}
	if _, misses := cands.Stats(); misses == coldMisses {
		t.Error("intersecting insert did not recompute the candidate set")
	}
}

// TestEpochInvalidatesEverything: an in-place update is non-monotone, so
// InvalidateIndex must stale even footprint-disjoint artifacts.
func TestEpochInvalidatesEverything(t *testing.T) {
	e := productEngine(t)
	vv := e.Versions()
	st := vv.Stamp([]string{vervec.TableKey("Item")})
	e.InvalidateIndex()
	if !vv.Stale(st) {
		t.Error("epoch bump did not stale an existing stamp")
	}
}
