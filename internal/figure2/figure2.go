// Package figure2 builds the toy product database of the paper's Figure 2:
// an Items table joined to Product Type, Color, and Attribute tables. It is
// the running example of the paper (Example 1: the keyword query
// "saffron scented candle" maps to two structured queries that both return
// nothing) and doubles as a deterministic fixture for tests and examples.
package figure2

import (
	"kwsdbg/internal/engine"
)

// Script is the SQL that creates and populates the Figure 2 database.
const Script = `
CREATE TABLE PType (id INT PRIMARY KEY, ptype TEXT);
CREATE TABLE Color (id INT PRIMARY KEY, color TEXT, synonyms TEXT);
CREATE TABLE Attr (id INT PRIMARY KEY, property TEXT, value TEXT);
CREATE TABLE Item (
	id INT PRIMARY KEY, name TEXT, ptype INT, color INT, attr INT,
	cost FLOAT, description TEXT,
	FOREIGN KEY (ptype) REFERENCES PType(id),
	FOREIGN KEY (color) REFERENCES Color(id),
	FOREIGN KEY (attr) REFERENCES Attr(id));

INSERT INTO PType VALUES (1, 'oil'), (2, 'candle'), (3, 'incense');
INSERT INTO Color VALUES
	(1, 'red', 'crimson, orange'),
	(2, 'yellow', 'golden, lemon'),
	(3, 'pink', 'peach, salmon'),
	(4, 'saffron', 'yellow, orange');
INSERT INTO Attr VALUES
	(1, 'scent', 'saffron'),
	(2, 'scent', 'vanilla'),
	(3, 'pattern', 'floral'),
	(4, 'pattern', 'checkered');
INSERT INTO Item VALUES
	(1, 'saffron scented oil', 1, 0, 1, 4.99, '3.4 oz. burns without fumes.'),
	(2, 'vanilla scented candle', 2, 2, 2, 5.99, 'burn time 50 hrs. 6.4 oz. 2pck.'),
	(3, 'crimson scented candle', 2, 1, 3, 3.99, 'hand-made. saffron scented. 2pck.'),
	(4, 'red checkered candle', 2, 1, 4, 3.99, 'rose scented. made from essential oils.');
`

// Engine loads the Figure 2 database into a fresh engine.
func Engine() (*engine.Engine, error) {
	return engine.Load(Script)
}
