package figure2

import "testing"

func TestEngineLoads(t *testing.T) {
	e, err := Engine()
	if err != nil {
		t.Fatalf("Engine: %v", err)
	}
	// Figure 2 holds 15 tuples: 3 product types, 4 colors, 4 attributes,
	// 4 items.
	if got := e.Database().TotalRows(); got != 15 {
		t.Errorf("TotalRows = %d, want 15", got)
	}
	for _, tbl := range []string{"PType", "Color", "Attr", "Item"} {
		if _, ok := e.Database().Table(tbl); !ok {
			t.Errorf("table %s missing", tbl)
		}
	}
	if got := len(e.Database().Schema().Edges()); got != 3 {
		t.Errorf("edges = %d, want 3", got)
	}
	// The paper's headline fact: no saffron scented candles.
	res, err := e.Query(`SELECT 1 FROM PType AS t0, Item AS t1, Attr AS t2
		WHERE t1.ptype = t0.id AND t1.attr = t2.id
		AND t0.ptype CONTAINS 'candle' AND t1.name CONTAINS 'scented'
		AND (t2.property CONTAINS 'saffron' OR t2.value CONTAINS 'saffron') LIMIT 1`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Error("q2 returned rows; Figure 2 data corrupted")
	}
}
