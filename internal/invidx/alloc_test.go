package invidx

import (
	"testing"

	"kwsdbg/internal/clock"
)

// lookupMetrics.record is //kws:hotpath: it runs once per keyword binding
// and once per row probe. The children are pre-resolved at init precisely so
// the hot path is an atomic add plus a histogram observe — this pins that at
// zero allocations. (The central manifest walk in internal/core defers to
// this test because the receiver is unexported.)
func TestLookupRecordAllocFree(t *testing.T) {
	start := clock.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		lookupTables.record(start, true)
		lookupRows.record(start, false)
	})
	if allocs != 0 {
		t.Errorf("lookupMetrics.record allocates %v per call, want 0", allocs)
	}
}
