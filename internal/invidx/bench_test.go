package invidx

import (
	"fmt"
	"testing"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/storage"
)

// benchDB builds a single-table corpus of n short documents.
func benchDB(tb testing.TB, n int) *storage.Database {
	tb.Helper()
	schema := catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("Doc",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "body", Type: catalog.Text})).
		MustBuild()
	db := storage.NewDatabase(schema)
	tbl, _ := db.Table("Doc")
	words := []string{"saffron", "scented", "candle", "oil", "vanilla", "red", "stream", "data"}
	for i := 0; i < n; i++ {
		body := fmt.Sprintf("%s %s item %d", words[i%len(words)], words[(i/3)%len(words)], i)
		tbl.MustInsert(storage.Row{storage.IntV(int64(i)), storage.TextV(body)})
	}
	return db
}

// BenchmarkBuild measures index construction, the cost paid at load time and
// after every data mutation.
func BenchmarkBuild(b *testing.B) {
	db := benchDB(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(db)
	}
}

// BenchmarkRowsAny measures the Phase 1 binding probe.
func BenchmarkRowsAny(b *testing.B) {
	ix := Build(benchDB(b, 20_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ix.RowsAny("Doc", "saffron"); len(got) == 0 {
			b.Fatal("empty postings")
		}
	}
}

// BenchmarkTokenize measures the shared tokenizer on a typical cell.
func BenchmarkTokenize(b *testing.B) {
	const s = "hand-made. saffron scented. 2pck, burns without fumes (3.4 oz)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Tokenize(s); len(got) == 0 {
			b.Fatal("no tokens")
		}
	}
}
