package invidx

import (
	"testing"
	"unicode"
)

// FuzzTokenize asserts tokenizer invariants on arbitrary input: no panics,
// and every token is a nonempty lowercase alphanumeric run that occurs in
// the (lowercased) input.
func FuzzTokenize(f *testing.F) {
	f.Add("Saffron Scented Candle")
	f.Add("hand-made. 2pck!")
	f.Add("ÜBER    graph\t\n")
	f.Add("")
	f.Add("....")
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q has separator rune %q", tok, r)
				}
				if r != unicode.ToLower(r) {
					t.Fatalf("token %q not ToLower-normalized", tok)
				}
			}
		}
		// Idempotence: tokenizing the join of tokens yields the same tokens.
		toks := Tokenize(s)
		joined := ""
		for i, tok := range toks {
			if i > 0 {
				joined += " "
			}
			joined += tok
		}
		again := Tokenize(joined)
		if len(again) != len(toks) {
			t.Fatalf("retokenize changed count: %v vs %v", toks, again)
		}
		for i := range toks {
			if toks[i] != again[i] {
				t.Fatalf("retokenize changed token %d: %v vs %v", i, toks, again)
			}
		}
	})
}
