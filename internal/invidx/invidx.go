// Package invidx implements the inverted text index the system uses both to
// bind keywords to relations (Phase 1 of the paper) and to accelerate the
// CONTAINS predicates in the generated SQL queries.
//
// It is the stdlib substitute for the Lucene indexes of the paper's
// evaluation (§3): for every text column of every table it records, per
// token, the sorted set of row IDs containing that token.
package invidx

import (
	"fmt"
	"sort"
	"strings"
	"unicode"

	"kwsdbg/internal/clock"
	"kwsdbg/internal/storage"
)

// Tokenize lowercases s and splits it into maximal runs of letters and
// digits. It is the single tokenizer used everywhere — the keyword binder and
// the CONTAINS evaluator must agree on token boundaries, otherwise Phase 1
// could bind a keyword that the SQL predicate then fails to match.
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// columnPostings maps token -> sorted row IDs for one column.
type columnPostings map[string][]storage.RowID

// tablePostings holds per-column postings plus the union per token.
type tablePostings struct {
	byColumn map[string]columnPostings
	anyCol   columnPostings
}

// Index is an inverted index over every text column of a database. It is
// immutable after Build and safe for concurrent use.
type Index struct {
	tables map[string]*tablePostings
	// tablesByTerm[token] = sorted table names containing the token.
	tablesByTerm map[string][]string
}

// Build scans the whole database and indexes every text column. Call it again
// after mutating the data (the debugging workflow of the paper's introduction
// updates synonym lists); indexes are cheap relative to the data load.
func Build(db *storage.Database) *Index {
	buildStart := clock.Now()
	ix := &Index{
		tables:       make(map[string]*tablePostings),
		tablesByTerm: make(map[string][]string),
	}
	for _, rel := range db.Schema().Relations() {
		textCols := rel.TextColumns()
		if len(textCols) == 0 {
			continue
		}
		tbl, ok := db.Table(rel.Name)
		if !ok {
			continue
		}
		tp := &tablePostings{
			byColumn: make(map[string]columnPostings, len(textCols)),
			anyCol:   make(columnPostings),
		}
		for _, c := range textCols {
			tp.byColumn[c] = make(columnPostings)
		}
		colIdx := make([]int, len(textCols))
		for i, c := range textCols {
			colIdx[i] = rel.ColumnIndex(c)
		}
		tbl.Scan(func(id storage.RowID, row storage.Row) bool {
			for i, c := range textCols {
				for _, tok := range Tokenize(row[colIdx[i]].S) {
					cp := tp.byColumn[c]
					cp[tok] = appendUnique(cp[tok], id)
					tp.anyCol[tok] = appendUnique(tp.anyCol[tok], id)
				}
			}
			return true
		})
		ix.tables[rel.Name] = tp
		toks := make([]string, 0, len(tp.anyCol))
		for tok := range tp.anyCol {
			toks = append(toks, tok)
		}
		sort.Strings(toks)
		for _, tok := range toks {
			ix.tablesByTerm[tok] = append(ix.tablesByTerm[tok], rel.Name)
		}
	}
	for tok := range ix.tablesByTerm {
		sort.Strings(ix.tablesByTerm[tok])
	}
	mBuilds.Inc()
	mBuildSeconds.Set(clock.Since(buildStart).Seconds())
	mTerms.Set(float64(len(ix.tablesByTerm)))
	return ix
}

// appendUnique appends id if it is not already the last element. Rows are
// scanned in increasing ID order, so postings stay sorted and deduplicated.
func appendUnique(ids []storage.RowID, id storage.RowID) []storage.RowID {
	if n := len(ids); n > 0 && ids[n-1] == id {
		return ids
	}
	return append(ids, id)
}

// Tables returns the sorted names of the tables in which the keyword occurs
// (as a token, in any text column). This is the Phase 1 binding lookup.
// Multi-token keywords bind to the tables containing every token.
func (ix *Index) Tables(keyword string) []string {
	start := clock.Now()
	toks := Tokenize(keyword)
	if len(toks) == 0 {
		return nil
	}
	result := ix.tablesByTerm[toks[0]]
	for _, tok := range toks[1:] {
		result = intersectStrings(result, ix.tablesByTerm[tok])
	}
	lookupTables.record(start, len(result) > 0)
	// Copy: callers may retain the slice.
	out := make([]string, len(result))
	copy(out, result)
	return out
}

func intersectStrings(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Contains reports whether the keyword occurs in some tuple of the table.
func (ix *Index) Contains(table, keyword string) bool {
	return len(ix.RowsAny(table, keyword)) > 0
}

// RowsAny returns the sorted IDs of rows of table in which the keyword occurs
// in any text column. Multi-token keywords require every token (possibly in
// different columns, matching "and" semantics within a keyword phrase).
func (ix *Index) RowsAny(table, keyword string) []storage.RowID {
	tp, ok := ix.tables[table]
	if !ok {
		return nil
	}
	return lookup(tp.anyCol, keyword)
}

// Rows returns the sorted IDs of rows of table whose given column contains
// the keyword. This is the evaluator for a single-column CONTAINS predicate.
func (ix *Index) Rows(table, column, keyword string) []storage.RowID {
	tp, ok := ix.tables[table]
	if !ok {
		return nil
	}
	cp, ok := tp.byColumn[column]
	if !ok {
		return nil
	}
	return lookup(cp, keyword)
}

func lookup(cp columnPostings, keyword string) []storage.RowID {
	start := clock.Now()
	toks := Tokenize(keyword)
	if len(toks) == 0 {
		return nil
	}
	result := cp[toks[0]]
	for _, tok := range toks[1:] {
		result = IntersectRowIDs(result, cp[tok])
	}
	lookupRows.record(start, len(result) > 0)
	out := make([]storage.RowID, len(result))
	copy(out, result)
	return out
}

// IntersectRowIDs intersects two sorted row-ID slices.
func IntersectRowIDs(a, b []storage.RowID) []storage.RowID {
	var out []storage.RowID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// UnionRowIDs unions two sorted row-ID slices.
func UnionRowIDs(a, b []storage.RowID) []storage.RowID {
	out := make([]storage.RowID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Stats summarizes the index for logs and the experiment harness.
type Stats struct {
	Tables int // tables with at least one text column
	Terms  int // distinct tokens across all tables
}

// Stats returns index-size statistics.
func (ix *Index) Stats() Stats {
	return Stats{Tables: len(ix.tables), Terms: len(ix.tablesByTerm)}
}

// String implements fmt.Stringer for Stats.
func (s Stats) String() string {
	return fmt.Sprintf("invidx{tables=%d terms=%d}", s.Tables, s.Terms)
}
