package invidx

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/storage"
)

func testDB(t *testing.T) *storage.Database {
	t.Helper()
	schema := catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("Item",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "name", Type: catalog.Text},
			catalog.Column{Name: "description", Type: catalog.Text})).
		AddRelation(catalog.MustRelation("Color",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "color", Type: catalog.Text},
			catalog.Column{Name: "synonyms", Type: catalog.Text})).
		AddRelation(catalog.MustRelation("Link",
			catalog.Column{Name: "a", Type: catalog.Int},
			catalog.Column{Name: "b", Type: catalog.Int})).
		MustBuild()
	db := storage.NewDatabase(schema)
	item, _ := db.Table("Item")
	item.MustInsert(storage.Row{storage.IntV(1), storage.TextV("saffron scented oil"), storage.TextV("burns without fumes")})
	item.MustInsert(storage.Row{storage.IntV(2), storage.TextV("vanilla scented candle"), storage.TextV("burn time 50 hrs")})
	item.MustInsert(storage.Row{storage.IntV(3), storage.TextV("crimson scented candle"), storage.TextV("hand-made. saffron scented.")})
	color, _ := db.Table("Color")
	color.MustInsert(storage.Row{storage.IntV(1), storage.TextV("red"), storage.TextV("crimson, orange")})
	color.MustInsert(storage.Row{storage.IntV(4), storage.TextV("saffron"), storage.TextV("yellow, orange")})
	link, _ := db.Table("Link")
	link.MustInsert(storage.Row{storage.IntV(1), storage.IntV(4)})
	return db
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Saffron Scented Candle", []string{"saffron", "scented", "candle"}},
		{"hand-made. 2pck!", []string{"hand", "made", "2pck"}},
		{"", nil},
		{"   ", nil},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
		{"a1b2", []string{"a1b2"}},
		{"über Café", []string{"über", "café"}},
	}
	for _, tc := range tests {
		if got := Tokenize(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTables(t *testing.T) {
	ix := Build(testDB(t))
	tests := []struct {
		kw   string
		want []string
	}{
		{"saffron", []string{"Color", "Item"}},
		{"SAFFRON", []string{"Color", "Item"}},
		{"candle", []string{"Item"}},
		{"yellow", []string{"Color"}},
		{"nonexistent", nil},
		{"", nil},
		{"saffron scented", []string{"Item"}}, // phrase keyword: both tokens required
	}
	for _, tc := range tests {
		got := ix.Tables(tc.kw)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tables(%q) = %v, want %v", tc.kw, got, tc.want)
		}
	}
}

func TestRowsAny(t *testing.T) {
	ix := Build(testDB(t))
	tests := []struct {
		table, kw string
		want      []storage.RowID
	}{
		{"Item", "scented", []storage.RowID{0, 1, 2}},
		{"Item", "saffron", []storage.RowID{0, 2}}, // row 2 matches in description only
		{"Item", "candle", []storage.RowID{1, 2}},
		{"Color", "orange", []storage.RowID{0, 1}},
		{"Item", "missing", nil},
		{"NoSuchTable", "saffron", nil},
		{"Link", "saffron", nil}, // no text columns
	}
	for _, tc := range tests {
		got := ix.RowsAny(tc.table, tc.kw)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("RowsAny(%s, %q) = %v, want %v", tc.table, tc.kw, got, tc.want)
		}
	}
}

func TestRowsPerColumn(t *testing.T) {
	ix := Build(testDB(t))
	if got := ix.Rows("Item", "name", "saffron"); !reflect.DeepEqual(got, []storage.RowID{0}) {
		t.Errorf("Rows(Item.name, saffron) = %v, want [0]", got)
	}
	if got := ix.Rows("Item", "description", "saffron"); !reflect.DeepEqual(got, []storage.RowID{2}) {
		t.Errorf("Rows(Item.description, saffron) = %v, want [2]", got)
	}
	if got := ix.Rows("Item", "nosuchcol", "saffron"); got != nil {
		t.Errorf("Rows on unknown column = %v, want nil", got)
	}
	if got := ix.Rows("Nope", "name", "saffron"); got != nil {
		t.Errorf("Rows on unknown table = %v, want nil", got)
	}
}

func TestContains(t *testing.T) {
	ix := Build(testDB(t))
	if !ix.Contains("Item", "candle") {
		t.Error("Contains(Item, candle) = false")
	}
	if ix.Contains("Color", "candle") {
		t.Error("Contains(Color, candle) = true")
	}
}

func TestDuplicateTokenInOneCell(t *testing.T) {
	// "saffron scented." appears twice in row 2's description via name too;
	// within a single cell a repeated token must not duplicate the posting.
	schema := catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("T",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "txt", Type: catalog.Text})).
		MustBuild()
	db := storage.NewDatabase(schema)
	tbl, _ := db.Table("T")
	tbl.MustInsert(storage.Row{storage.IntV(1), storage.TextV("foo foo foo")})
	ix := Build(db)
	if got := ix.Rows("T", "txt", "foo"); len(got) != 1 {
		t.Errorf("postings = %v, want one entry", got)
	}
}

func TestIntersectAndUnionRowIDs(t *testing.T) {
	a := []storage.RowID{1, 3, 5, 7}
	b := []storage.RowID{2, 3, 5, 8}
	if got := IntersectRowIDs(a, b); !reflect.DeepEqual(got, []storage.RowID{3, 5}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := IntersectRowIDs(a, nil); got != nil {
		t.Errorf("Intersect with nil = %v", got)
	}
	if got := UnionRowIDs(a, b); !reflect.DeepEqual(got, []storage.RowID{1, 2, 3, 5, 7, 8}) {
		t.Errorf("Union = %v", got)
	}
	if got := UnionRowIDs(nil, b); !reflect.DeepEqual(got, b) {
		t.Errorf("Union(nil, b) = %v", got)
	}
}

func TestStats(t *testing.T) {
	ix := Build(testDB(t))
	st := ix.Stats()
	if st.Tables != 2 { // Link has no text columns
		t.Errorf("Stats.Tables = %d, want 2", st.Tables)
	}
	if st.Terms == 0 {
		t.Error("Stats.Terms = 0")
	}
	if s := st.String(); !strings.Contains(s, "tables=2") {
		t.Errorf("Stats.String() = %q", s)
	}
}

// Property: for random documents, RowsAny agrees with a naive scan that
// re-tokenizes every cell, and postings are sorted and unique.
func TestIndexMatchesNaiveScanProperty(t *testing.T) {
	schema := catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("Doc",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "body", Type: catalog.Text})).
		MustBuild()
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	f := func(choices []uint8) bool {
		db := storage.NewDatabase(schema)
		tbl, _ := db.Table("Doc")
		for i, c := range choices {
			w1 := words[int(c)%len(words)]
			w2 := words[int(c/8)%len(words)]
			tbl.MustInsert(storage.Row{storage.IntV(int64(i)), storage.TextV(w1 + " " + w2)})
		}
		ix := Build(db)
		for _, probe := range words {
			got := ix.RowsAny("Doc", probe)
			var want []storage.RowID
			tbl.Scan(func(id storage.RowID, row storage.Row) bool {
				for _, tok := range Tokenize(row[1].S) {
					if tok == probe {
						want = append(want, id)
						break
					}
				}
				return true
			})
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
				if i > 0 && got[i] <= got[i-1] {
					return false // not sorted/unique
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
