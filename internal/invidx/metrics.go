package invidx

import (
	"time"

	"kwsdbg/internal/clock"
	"kwsdbg/internal/obs"
)

// Index hot-path metrics. Lookups are labeled by operation — "tables" is the
// Phase 1 keyword->relations binding, "rows" backs the CONTAINS predicates of
// the probe SQL — and by whether the lookup found anything, since a miss on
// the binding path is exactly the paper's non-keyword case.
var (
	mLookups = obs.Default.CounterVec("kwsdbg_invidx_lookup_total",
		"Inverted-index lookups, by operation and hit/miss.", "op", "result")
	mLookupSeconds = obs.Default.HistogramVec("kwsdbg_invidx_lookup_seconds",
		"Inverted-index lookup latency by operation.", nil, "op")
	mBuilds = obs.Default.Counter("kwsdbg_invidx_builds_total",
		"Inverted-index (re)builds.")
	mBuildSeconds = obs.Default.Gauge("kwsdbg_invidx_build_seconds",
		"Wall time of the last index build.")
	mTerms = obs.Default.Gauge("kwsdbg_invidx_terms",
		"Distinct terms in the last built index.")
)

// recordLookup accounts one lookup; hit reports whether it returned postings.
func recordLookup(op string, start time.Time, hit bool) {
	result := "miss"
	if hit {
		result = "hit"
	}
	mLookups.With(op, result).Inc()
	mLookupSeconds.With(op).Observe(clock.Since(start).Seconds())
}
