package invidx

import (
	"time"

	"kwsdbg/internal/clock"
	"kwsdbg/internal/obs"
)

// Index hot-path metrics. Lookups are labeled by operation — "tables" is the
// Phase 1 keyword->relations binding, "rows" backs the CONTAINS predicates of
// the probe SQL — and by whether the lookup found anything, since a miss on
// the binding path is exactly the paper's non-keyword case.
var (
	mLookups = obs.Default.CounterVec("kwsdbg_invidx_lookup_total",
		"Inverted-index lookups, by operation and hit/miss.", "op", "result")
	mLookupSeconds = obs.Default.HistogramVec("kwsdbg_invidx_lookup_seconds",
		"Inverted-index lookup latency by operation.", nil, "op")
	mBuilds = obs.Default.Counter("kwsdbg_invidx_builds_total",
		"Inverted-index (re)builds.")
	mBuildSeconds = obs.Default.Gauge("kwsdbg_invidx_build_seconds",
		"Wall time of the last index build.")
	mTerms = obs.Default.Gauge("kwsdbg_invidx_terms",
		"Distinct terms in the last built index.")
)

// lookupMetrics is one operation's pre-resolved metric children. Vec.With
// resolves a child through a lock and a label-key build — ~2 allocations per
// call — and recordLookup runs once per keyword binding and once per row
// probe, so the op/result label space (2×2 counters, 2 histograms) is
// resolved once at init and the hot path pays an atomic add and an observe.
type lookupMetrics struct {
	hit, miss *obs.Counter
	seconds   *obs.Histogram
}

var (
	lookupTables = lookupMetrics{
		hit:     mLookups.With("tables", "hit"),
		miss:    mLookups.With("tables", "miss"),
		seconds: mLookupSeconds.With("tables"),
	}
	lookupRows = lookupMetrics{
		hit:     mLookups.With("rows", "hit"),
		miss:    mLookups.With("rows", "miss"),
		seconds: mLookupSeconds.With("rows"),
	}
)

// record accounts one lookup; hit reports whether it returned postings.
//
//kws:hotpath
func (m lookupMetrics) record(start time.Time, hit bool) {
	c := m.miss
	if hit {
		c = m.hit
	}
	c.Inc()
	m.seconds.Observe(clock.Since(start).Seconds())
}
