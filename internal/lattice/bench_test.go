package lattice

import (
	"math/rand"
	"testing"

	"kwsdbg/internal/catalog"
)

// benchSchema is the Figure 2 product schema, rebuilt without *testing.T so
// benchmarks can share it.
func benchSchema(tb testing.TB) *catalog.Schema {
	tb.Helper()
	return catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("PType",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "ptype", Type: catalog.Text})).
		AddRelation(catalog.MustRelation("Color",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "color", Type: catalog.Text},
			catalog.Column{Name: "synonyms", Type: catalog.Text})).
		AddRelation(catalog.MustRelation("Attr",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "property", Type: catalog.Text},
			catalog.Column{Name: "value", Type: catalog.Text})).
		AddRelation(catalog.MustRelation("Item",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "name", Type: catalog.Text},
			catalog.Column{Name: "ptype", Type: catalog.Int},
			catalog.Column{Name: "color", Type: catalog.Int},
			catalog.Column{Name: "attr", Type: catalog.Int},
			catalog.Column{Name: "description", Type: catalog.Text})).
		AddEdge("Item", "ptype", "PType", "id").
		AddEdge("Item", "color", "Color", "id").
		AddEdge("Item", "attr", "Attr", "id").
		MustBuild()
}

// BenchmarkGenerateProductL4 measures Phase 0 on the four-table Figure 2
// schema at four levels.
func BenchmarkGenerateProductL4(b *testing.B) {
	schema := benchSchema(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(schema, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanonicalLabel measures Algorithm 2 on lattice nodes of mixed
// sizes, the inner loop of both generation and child linking.
func BenchmarkCanonicalLabel(b *testing.B) {
	l, err := Generate(benchSchema(b), 3)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	nodes := make([]*Node, 256)
	for i := range nodes {
		nodes[i] = l.Node(r.Intn(l.Len()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := nodes[i%len(nodes)]
		if _, err := l.CanonicalLabel(n.Vertices, n.Edges); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLRender measures template instantiation (the per-node work when
// a probe is issued).
func BenchmarkSQLRender(b *testing.B) {
	l, err := Generate(benchSchema(b), 2)
	if err != nil {
		b.Fatal(err)
	}
	var target *Node
	for _, id := range l.Level(3) {
		if n := l.Node(id); n.IsTotal(2) {
			target = n
			break
		}
	}
	if target == nil {
		b.Fatal("no total level-3 node")
	}
	kws := []string{"k1", "k2", "k3"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.SQL(target, kws, true); err != nil {
			b.Fatal(err)
		}
	}
}
