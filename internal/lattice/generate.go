package lattice

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/clock"
)

// LevelStats records generation effort for one lattice level, the quantities
// Figure 9 of the paper reports.
type LevelStats struct {
	Level      int
	Generated  int // candidate extensions produced (including duplicates)
	Duplicates int // candidates discarded because an equal node existed
	Kept       int // nodes retained at this level
	Elapsed    time.Duration
}

// Options tunes lattice generation.
type Options struct {
	// MaxJoins is the paper's m: the lattice covers queries with up to
	// MaxJoins joins (MaxJoins+1 relations).
	MaxJoins int
	// KeywordSlots is the number of keyword copies R1..R_KeywordSlots kept
	// per text-bearing relation. The paper's Algorithm 1 uses MaxJoins+1
	// (the default, when zero); capping it at the maximum keyword-query
	// length actually served (3 in the paper's workload) shrinks the
	// lattice without changing any query the system can answer.
	KeywordSlots int
	// CopiesForTextlessRelations makes relations without text columns also
	// receive keyword copies, as in the literal Algorithm 1. Keywords can
	// never bind to such relations, so those nodes are pruned by every
	// query; the default (false) omits them offline, which is what keeps
	// the lattice near the node counts the paper reports for DBLife, whose
	// nine relationship tables carry no text.
	CopiesForTextlessRelations bool
	// Workers bounds the goroutines used to extend and label candidate
	// trees; 0 means GOMAXPROCS. The result is identical for any worker
	// count (candidates are merged in a deterministic order), so
	// parallelism only changes wall time — a 7-level DBLife lattice is
	// dominated by canonical-labeling work that parallelizes well.
	Workers int
}

// Lattice is the offline structure of Phase 0: every join-query template
// over the schema with up to MaxJoins joins, organized by the sub-query
// partial order. It is immutable after Generate and safe for concurrent use.
type Lattice struct {
	schema *catalog.Schema
	opts   Options
	lb     *labeler

	allow func(rel string, copy int) bool

	nodes   []*Node
	byLabel map[string]int
	// levels[k] lists node IDs at level k+1 ordered by label.
	levels [][]int
	stats  []LevelStats
}

// Generate builds the lattice with the paper's default options: keyword
// slots 1..maxJoins+1 on every text-bearing relation, plus the free copy R0
// everywhere.
func Generate(schema *catalog.Schema, maxJoins int) (*Lattice, error) {
	return GenerateOpts(schema, Options{MaxJoins: maxJoins})
}

// admits consults the admission callback for keyword copies.
func (l *Lattice) admits(rel string, copy int) bool {
	return copy == 0 || l.allow == nil || l.allow(rel, copy)
}

// copies returns the copy indexes a relation participates with: always the
// free copy 0, plus keyword slots when the relation can contain keywords.
func (l *Lattice) copies(rel string) int {
	r, _ := l.schema.Relation(rel)
	if l.opts.CopiesForTextlessRelations || (r != nil && len(r.TextColumns()) > 0) {
		return l.opts.KeywordSlots
	}
	return 0
}

// GenerateOpts runs Algorithm 1: seed the base level with relation copies,
// then repeatedly extend each tree by one schema-graph edge to a fresh
// relation copy, eliminating duplicates via canonical labeling (Algorithm 2),
// and finally link each node to its leaf-removed children.
func GenerateOpts(schema *catalog.Schema, opts Options) (*Lattice, error) {
	return generate(schema, opts, nil)
}

// GenerateRestricted is GenerateOpts with a per-(relation, copy) admission
// callback. It exists for the online candidate-network baseline: a classical
// KWS-S system builds join trees at query time over only the tuple sets the
// current keywords bind, which is exactly this generation restricted by the
// Phase 1 bindings. The callback is consulted for keyword copies (copy >= 1)
// only; free tuple sets are always admitted.
func GenerateRestricted(schema *catalog.Schema, opts Options, allow func(rel string, copy int) bool) (*Lattice, error) {
	return generate(schema, opts, allow)
}

func generate(schema *catalog.Schema, opts Options, allow func(rel string, copy int) bool) (*Lattice, error) {
	if opts.MaxJoins < 0 {
		return nil, fmt.Errorf("lattice: maxJoins must be >= 0, got %d", opts.MaxJoins)
	}
	if len(schema.Relations()) == 0 {
		return nil, fmt.Errorf("lattice: schema has no relations")
	}
	if opts.KeywordSlots == 0 {
		opts.KeywordSlots = opts.MaxJoins + 1
	}
	if opts.KeywordSlots < 1 || opts.KeywordSlots > 62 {
		return nil, fmt.Errorf("lattice: keyword slots %d out of range [1, 62]", opts.KeywordSlots)
	}
	l := &Lattice{
		schema:  schema,
		opts:    opts,
		allow:   allow,
		lb:      newLabeler(schema, opts.KeywordSlots),
		byLabel: make(map[string]int),
	}
	buildStart := clock.Now()

	// Base level: single-vertex nodes. Copy 0 is the free tuple set R0 the
	// paper maintains in addition to the keyword copies R1..Rm+1.
	start := clock.Now()
	var base []*Node
	for _, name := range schema.RelationNames() {
		for c := 0; c <= l.copies(name); c++ {
			if !l.admits(name, c) {
				continue
			}
			base = append(base, &Node{Vertices: []Vertex{{Rel: name, Copy: c}}, Level: 1})
		}
	}
	st := LevelStats{Level: 1, Generated: len(base)}
	for _, n := range base {
		if l.add(n) {
			st.Kept++
		} else {
			st.Duplicates++
		}
	}
	st.Elapsed = clock.Since(start)
	l.stats = append(l.stats, st)

	// Higher levels: extend every vertex of every level-(k-1) node along
	// every incident schema edge to every copy of the opposite relation.
	// Workers label candidate trees in parallel; the single-threaded merge
	// below keeps node IDs and duplicate counts deterministic.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for level := 2; level <= opts.MaxJoins+1; level++ {
		start = clock.Now()
		st = LevelStats{Level: level}
		prev := l.levels[level-2]
		// Buckets are indexed by source node so the merge replays the exact
		// candidate order sequential generation would produce, making the
		// lattice bit-identical for any worker count.
		buckets := make([][]*Node, len(prev))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(prev); i += workers {
					g := l.nodes[prev[i]]
					var out []*Node
					for vi := range g.Vertices {
						for _, ext := range l.extendAt(g, vi) {
							ext.Label = l.lb.canonicalLabel(ext)
							out = append(out, ext)
						}
					}
					buckets[i] = out
				}
			}(w)
		}
		wg.Wait()
		for _, bucket := range buckets {
			for _, ext := range bucket {
				st.Generated++
				if l.addLabeled(ext) {
					st.Kept++
				} else {
					st.Duplicates++
				}
			}
		}
		st.Elapsed = clock.Since(start)
		l.stats = append(l.stats, st)
	}

	l.link(workers)
	l.sortLevels()
	l.record("generate", clock.Since(buildStart))
	return l, nil
}

// add registers the node if its canonical label is new, assigning its ID,
// label, level, and copy mask. It reports whether the node was kept.
func (l *Lattice) add(n *Node) bool {
	n.Label = l.lb.canonicalLabel(n)
	return l.addLabeled(n)
}

// addLabeled is add for a node whose Label is already computed (the parallel
// generation path labels candidates on worker goroutines).
func (l *Lattice) addLabeled(n *Node) bool {
	if _, dup := l.byLabel[n.Label]; dup {
		return false
	}
	n.ID = len(l.nodes)
	n.Level = len(n.Vertices)
	n.CopyMask = computeCopyMask(n.Vertices)
	l.nodes = append(l.nodes, n)
	l.byLabel[n.Label] = n.ID
	for len(l.levels) < n.Level {
		l.levels = append(l.levels, nil)
	}
	l.levels[n.Level-1] = append(l.levels[n.Level-1], n.ID)
	return true
}

// extendAt is the paper's ExtendGraph: all one-edge extensions of g anchored
// at vertex vi. Each extension joins a fresh copy of the relation on the
// opposite end of a schema edge incident to vi's relation; copies already in
// the tree are skipped (candidate networks are trees).
func (l *Lattice) extendAt(g *Node, vi int) []*Node {
	rel := g.Vertices[vi].Rel
	var out []*Node
	for _, eid := range l.schema.Incident(rel) {
		e := l.schema.Edges()[eid]
		// For a self-edge (From == To) the anchor can play either side.
		var orientations []bool // anchor is the From side?
		switch {
		case e.From == rel && e.To == rel:
			orientations = []bool{true, false}
		case e.From == rel:
			orientations = []bool{true}
		default:
			orientations = []bool{false}
		}
		for _, anchorFrom := range orientations {
			other := e.To
			if !anchorFrom {
				other = e.From
			}
			for c := 0; c <= l.copies(other); c++ {
				if !l.admits(other, c) || g.HasVertex(other, c) {
					continue
				}
				vs := make([]Vertex, len(g.Vertices), len(g.Vertices)+1)
				copy(vs, g.Vertices)
				vs = append(vs, Vertex{Rel: other, Copy: c})
				es := make([]JoinEdge, len(g.Edges), len(g.Edges)+1)
				copy(es, g.Edges)
				es = append(es, JoinEdge{A: vi, B: len(vs) - 1, EdgeID: eid, AFrom: anchorFrom})
				out = append(out, &Node{Vertices: vs, Edges: es})
			}
		}
	}
	return out
}

// link computes the child/parent relation: the children of a node are the
// sub-networks obtained by removing one leaf. Distinct leaves always yield
// distinct children because vertices are distinct (rel, copy) pairs. Child
// labels are pure functions of each node, so they are computed in parallel;
// the link pass itself is sequential.
func (l *Lattice) link(workers int) {
	childLabels := make([][]string, len(l.nodes))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(l.nodes); i += workers {
				n := l.nodes[i]
				if n.Level == 1 {
					continue
				}
				leaves := n.leaves()
				labels := make([]string, len(leaves))
				for j, li := range leaves {
					vs, es := n.removeLeaf(li)
					labels[j] = l.lb.canonicalLabel(&Node{Vertices: vs, Edges: es})
				}
				childLabels[i] = labels
			}
		}(w)
	}
	wg.Wait()
	for i, n := range l.nodes {
		for _, childLabel := range childLabels[i] {
			cid, ok := l.byLabel[childLabel]
			if !ok {
				// Cannot happen: every sub-tree is generated by Algorithm 1.
				panic(fmt.Sprintf("lattice: missing child %q of %q", childLabel, n.Label))
			}
			n.Children = append(n.Children, cid)
			l.nodes[cid].Parents = append(l.nodes[cid].Parents, n.ID)
		}
	}
	for _, n := range l.nodes {
		sort.Ints(n.Children)
		sort.Ints(n.Parents)
	}
}

// sortLevels orders each level's node IDs by label for deterministic output.
func (l *Lattice) sortLevels() {
	for _, ids := range l.levels {
		sort.Slice(ids, func(i, j int) bool {
			return l.nodes[ids[i]].Label < l.nodes[ids[j]].Label
		})
	}
}

// Schema returns the schema graph the lattice was generated from.
func (l *Lattice) Schema() *catalog.Schema { return l.schema }

// MaxJoins returns the join bound m; the lattice has m+1 levels.
func (l *Lattice) MaxJoins() int { return l.opts.MaxJoins }

// KeywordSlots returns the number of keyword copies per text relation, the
// maximum keyword-query length the lattice supports.
func (l *Lattice) KeywordSlots() int { return l.opts.KeywordSlots }

// Len returns the number of nodes.
func (l *Lattice) Len() int { return len(l.nodes) }

// Node returns the node with the given ID.
func (l *Lattice) Node(id int) *Node { return l.nodes[id] }

// NodeByLabel looks a node up by canonical label.
func (l *Lattice) NodeByLabel(label string) (*Node, bool) {
	id, ok := l.byLabel[label]
	if !ok {
		return nil, false
	}
	return l.nodes[id], true
}

// Level returns the node IDs at the given level (1-based), ordered by label.
// The slice must not be modified.
func (l *Lattice) Level(k int) []int {
	if k < 1 || k > len(l.levels) {
		return nil
	}
	return l.levels[k-1]
}

// Levels returns the number of levels (maxJoins + 1).
func (l *Lattice) Levels() int { return len(l.levels) }

// Stats returns per-level generation statistics (Figure 9's quantities).
func (l *Lattice) Stats() []LevelStats { return l.stats }

// CanonicalLabel computes the canonical labeling of an arbitrary join tree
// over the lattice's schema. It validates the tree first. Exposed for tests
// and for tools that need to look up a hand-built tree.
func (l *Lattice) CanonicalLabel(vs []Vertex, es []JoinEdge) (string, error) {
	if err := validateTree(vs, es); err != nil {
		return "", err
	}
	for _, v := range vs {
		if _, ok := l.schema.Relation(v.Rel); !ok {
			return "", fmt.Errorf("lattice: unknown relation %q", v.Rel)
		}
		if v.Copy < 0 || v.Copy > l.copies(v.Rel) {
			return "", fmt.Errorf("lattice: copy %d out of range [0, %d] for %s", v.Copy, l.copies(v.Rel), v.Rel)
		}
	}
	for _, e := range es {
		if e.EdgeID < 0 || e.EdgeID >= len(l.schema.Edges()) {
			return "", fmt.Errorf("lattice: edge id %d out of range", e.EdgeID)
		}
	}
	return l.lb.canonicalLabel(&Node{Vertices: vs, Edges: es}), nil
}
