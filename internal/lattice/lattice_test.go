package lattice

import (
	"math/rand"
	"strings"
	"testing"

	"kwsdbg/internal/catalog"
)

// exampleSchema is Example 2 of the paper: R(a, b), S(c, d), R.b -> S.c.
func exampleSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	return catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("R",
			catalog.Column{Name: "a", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "b", Type: catalog.Int},
			catalog.Column{Name: "txt", Type: catalog.Text})).
		AddRelation(catalog.MustRelation("S",
			catalog.Column{Name: "c", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "d", Type: catalog.Text})).
		AddEdge("R", "b", "S", "c").
		MustBuild()
}

// productSchema is the Figure 2 product database schema.
func productSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	return catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("PType",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "ptype", Type: catalog.Text})).
		AddRelation(catalog.MustRelation("Color",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "color", Type: catalog.Text},
			catalog.Column{Name: "synonyms", Type: catalog.Text})).
		AddRelation(catalog.MustRelation("Attr",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "property", Type: catalog.Text},
			catalog.Column{Name: "value", Type: catalog.Text})).
		AddRelation(catalog.MustRelation("Item",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "name", Type: catalog.Text},
			catalog.Column{Name: "ptype", Type: catalog.Int},
			catalog.Column{Name: "color", Type: catalog.Int},
			catalog.Column{Name: "attr", Type: catalog.Int},
			catalog.Column{Name: "cost", Type: catalog.Float},
			catalog.Column{Name: "description", Type: catalog.Text})).
		AddEdge("Item", "ptype", "PType", "id").
		AddEdge("Item", "color", "Color", "id").
		AddEdge("Item", "attr", "Attr", "id").
		MustBuild()
}

func TestGenerateExample2(t *testing.T) {
	l, err := Generate(exampleSchema(t), 1)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Copies 0..2 per relation: 6 base nodes; level 2: all (Ri, Sj) pairs.
	if got := len(l.Level(1)); got != 6 {
		t.Errorf("level 1 nodes = %d, want 6", got)
	}
	if got := len(l.Level(2)); got != 9 {
		t.Errorf("level 2 nodes = %d, want 9", got)
	}
	if l.Levels() != 2 {
		t.Errorf("levels = %d, want 2", l.Levels())
	}
	st := l.Stats()
	if len(st) != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Each level-2 tree is generated twice (once from each endpoint).
	if st[1].Generated != 18 || st[1].Duplicates != 9 || st[1].Kept != 9 {
		t.Errorf("level 2 stats = %+v", st[1])
	}
	if st[0].Duplicates != 0 {
		t.Errorf("level 1 duplicates = %d", st[0].Duplicates)
	}
}

func TestParentChildLinks(t *testing.T) {
	l, err := Generate(exampleSchema(t), 1)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Find node R1 JOIN S2.
	label, err := l.CanonicalLabel(
		[]Vertex{{Rel: "R", Copy: 1}, {Rel: "S", Copy: 2}},
		[]JoinEdge{{A: 0, B: 1, EdgeID: 0, AFrom: true}})
	if err != nil {
		t.Fatalf("CanonicalLabel: %v", err)
	}
	n, ok := l.NodeByLabel(label)
	if !ok {
		t.Fatalf("node R1-S2 not found")
	}
	if len(n.Children) != 2 {
		t.Fatalf("children = %v", n.Children)
	}
	kids := map[string]bool{}
	for _, cid := range n.Children {
		kids[l.Node(cid).String()] = true
	}
	if !kids["R#1"] || !kids["S#2"] {
		t.Errorf("children = %v", kids)
	}
	// Base node R1 has parents R1-S0, R1-S1, R1-S2.
	r1, ok := l.NodeByLabel(mustLabel(t, l, []Vertex{{Rel: "R", Copy: 1}}, nil))
	if !ok {
		t.Fatal("R1 not found")
	}
	if len(r1.Parents) != 3 {
		t.Errorf("R1 parents = %d, want 3", len(r1.Parents))
	}
	if len(r1.Children) != 0 {
		t.Errorf("R1 children = %v", r1.Children)
	}
}

func mustLabel(t *testing.T, l *Lattice, vs []Vertex, es []JoinEdge) string {
	t.Helper()
	label, err := l.CanonicalLabel(vs, es)
	if err != nil {
		t.Fatalf("CanonicalLabel: %v", err)
	}
	return label
}

func TestGenerateProductSchema(t *testing.T) {
	l, err := Generate(productSchema(t), 2)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// 4 relations x 4 copies = 16 base nodes.
	if got := len(l.Level(1)); got != 16 {
		t.Errorf("level 1 = %d, want 16", got)
	}
	// The Phase 1 example node Color1-Item0-PType2 must exist at level 3.
	vs := []Vertex{{Rel: "Color", Copy: 1}, {Rel: "Item", Copy: 0}, {Rel: "PType", Copy: 2}}
	es := []JoinEdge{
		{A: 1, B: 0, EdgeID: 1, AFrom: true}, // Item.color -> Color.id
		{A: 1, B: 2, EdgeID: 0, AFrom: true}, // Item.ptype -> PType.id
	}
	n, ok := l.NodeByLabel(mustLabel(t, l, vs, es))
	if !ok {
		t.Fatal("C1-I0-P2 node not found in lattice")
	}
	if n.Level != 3 {
		t.Errorf("level = %d", n.Level)
	}
	if !n.IsTotal(2) {
		t.Error("C1-I0-P2 should be total for a 2-keyword query")
	}
	if n.IsTotal(3) {
		t.Error("C1-I0-P2 should not be total for a 3-keyword query")
	}
	// Its children are the two leaf removals: C1-I0 and I0-P2.
	if len(n.Children) != 2 {
		t.Errorf("children = %v", n.Children)
	}
}

func TestCopyMaskAndTotality(t *testing.T) {
	n := &Node{Vertices: []Vertex{{Rel: "A", Copy: 0}, {Rel: "B", Copy: 2}}}
	n.CopyMask = computeCopyMask(n.Vertices)
	if n.CopyMask != 0b101 {
		t.Errorf("mask = %b", n.CopyMask)
	}
	if n.IsTotal(2) {
		t.Error("missing keyword 1 but total")
	}
	if n.IsTotal(0) {
		t.Error("zero keywords cannot be total")
	}
	full := &Node{Vertices: []Vertex{{Rel: "A", Copy: 1}, {Rel: "B", Copy: 2}}}
	full.CopyMask = computeCopyMask(full.Vertices)
	if !full.IsTotal(2) {
		t.Error("full cover not total")
	}
}

func TestSelfEdgeOrientations(t *testing.T) {
	// Person.advisor -> Person.id: both orientations of a pair must appear.
	schema := catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("Person",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "advisor", Type: catalog.Int},
			catalog.Column{Name: "name", Type: catalog.Text})).
		AddEdge("Person", "advisor", "Person", "id").
		MustBuild()
	l, err := Generate(schema, 1)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Copies {0,1,2}: unordered pairs {i,j}, i != j -> 3, each with 2
	// orientations -> 6 level-2 nodes.
	if got := len(l.Level(2)); got != 6 {
		t.Errorf("level 2 = %d, want 6", got)
	}
}

func TestParallelSchemaEdges(t *testing.T) {
	// coauthor has two FKs to Person; joining via p1 differs from via p2.
	schema := catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("Person",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "name", Type: catalog.Text})).
		AddRelation(catalog.MustRelation("coauthor",
			catalog.Column{Name: "p1", Type: catalog.Int},
			catalog.Column{Name: "p2", Type: catalog.Int})).
		AddEdge("coauthor", "p1", "Person", "id").
		AddEdge("coauthor", "p2", "Person", "id").
		MustBuild()
	l, err := Generate(schema, 1)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// coauthor has no text columns, so it only exists as the free copy 0:
	// pairs (coauthor_0, Person_j): 3, times 2 schema edges = 6.
	if got := len(l.Level(2)); got != 6 {
		t.Errorf("level 2 = %d, want 6", got)
	}
	// The literal Algorithm 1 keeps keyword copies everywhere: 3x3 pairs
	// times 2 schema edges = 18.
	full, err := GenerateOpts(schema, Options{MaxJoins: 1, CopiesForTextlessRelations: true})
	if err != nil {
		t.Fatalf("GenerateOpts: %v", err)
	}
	if got := len(full.Level(2)); got != 18 {
		t.Errorf("full level 2 = %d, want 18", got)
	}
}

func TestKeywordSlotsCap(t *testing.T) {
	// Capping slots at 1 keeps only copies {0, 1} per text relation.
	l, err := GenerateOpts(exampleSchema(t), Options{MaxJoins: 1, KeywordSlots: 1})
	if err != nil {
		t.Fatalf("GenerateOpts: %v", err)
	}
	if got := len(l.Level(1)); got != 4 {
		t.Errorf("level 1 = %d, want 4", got)
	}
	if got := len(l.Level(2)); got != 4 {
		t.Errorf("level 2 = %d, want 4", got)
	}
	if l.KeywordSlots() != 1 {
		t.Errorf("KeywordSlots = %d", l.KeywordSlots())
	}
	if _, err := GenerateOpts(exampleSchema(t), Options{MaxJoins: 1, KeywordSlots: 99}); err == nil {
		t.Error("slots 99 accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(exampleSchema(t), -1); err == nil {
		t.Error("negative maxJoins accepted")
	}
	empty := catalog.NewSchemaBuilder().MustBuild()
	if _, err := Generate(empty, 1); err == nil {
		t.Error("empty schema accepted")
	}
}

func TestLevelBounds(t *testing.T) {
	l, _ := Generate(exampleSchema(t), 1)
	if l.Level(0) != nil || l.Level(3) != nil || l.Level(-1) != nil {
		t.Error("out-of-range Level returned nodes")
	}
	if _, ok := l.NodeByLabel("nope"); ok {
		t.Error("NodeByLabel(nope) found something")
	}
}

func TestCanonicalLabelErrors(t *testing.T) {
	l, _ := Generate(exampleSchema(t), 1)
	cases := []struct {
		name string
		vs   []Vertex
		es   []JoinEdge
	}{
		{"empty", nil, nil},
		{"not a tree", []Vertex{{Rel: "R", Copy: 1}, {Rel: "S", Copy: 1}}, nil},
		{"duplicate vertex", []Vertex{{Rel: "R", Copy: 1}, {Rel: "R", Copy: 1}},
			[]JoinEdge{{A: 0, B: 1, EdgeID: 0}}},
		{"unknown relation", []Vertex{{Rel: "X", Copy: 1}}, nil},
		{"copy out of range", []Vertex{{Rel: "R", Copy: 9}}, nil},
		{"edge id out of range", []Vertex{{Rel: "R", Copy: 1}, {Rel: "S", Copy: 1}},
			[]JoinEdge{{A: 0, B: 1, EdgeID: 5}}},
		{"endpoint out of range", []Vertex{{Rel: "R", Copy: 1}, {Rel: "S", Copy: 1}},
			[]JoinEdge{{A: 0, B: 7, EdgeID: 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := l.CanonicalLabel(tc.vs, tc.es); err == nil {
				t.Error("no error")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(productSchema(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(productSchema(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Node(i).Label != b.Node(i).Label {
			t.Fatalf("node %d label differs", i)
		}
	}
}

// Property: the canonical label is invariant under permutations of vertex
// order, edge order, and edge endpoint orientation.
func TestCanonicalLabelIsomorphismProperty(t *testing.T) {
	l, err := Generate(productSchema(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		n := l.Node(r.Intn(l.Len()))
		// Random vertex permutation.
		perm := r.Perm(len(n.Vertices))
		vs := make([]Vertex, len(n.Vertices))
		for i, p := range perm {
			vs[p] = n.Vertices[i]
		}
		es := make([]JoinEdge, len(n.Edges))
		for i, e := range n.Edges {
			ne := JoinEdge{A: perm[e.A], B: perm[e.B], EdgeID: e.EdgeID, AFrom: e.AFrom}
			if r.Intn(2) == 0 { // swap endpoints, flipping the orientation bit
				ne.A, ne.B, ne.AFrom = ne.B, ne.A, !ne.AFrom
			}
			es[i] = ne
		}
		r.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
		got, err := l.CanonicalLabel(vs, es)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if got != n.Label {
			t.Fatalf("iter %d: label changed under isomorphism\nnode: %s\ngot:  %s\nwant: %s",
				iter, n, got, n.Label)
		}
	}
}

// Property: distinct lattice nodes have distinct labels and children are
// exactly one level below with subset vertex sets.
func TestLatticeInvariants(t *testing.T) {
	l, err := Generate(productSchema(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for i := 0; i < l.Len(); i++ {
		n := l.Node(i)
		if prev, dup := seen[n.Label]; dup {
			t.Fatalf("nodes %d and %d share label %q", prev, i, n.Label)
		}
		seen[n.Label] = i
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		if err := validateTree(n.Vertices, n.Edges); err != nil {
			t.Errorf("node %d: %v", i, err)
		}
		for _, cid := range n.Children {
			c := l.Node(cid)
			if c.Level != n.Level-1 {
				t.Errorf("node %d child %d level %d, want %d", i, cid, c.Level, n.Level-1)
			}
			for _, v := range c.Vertices {
				if !n.HasVertex(v.Rel, v.Copy) {
					t.Errorf("node %d child %d has alien vertex %s", i, cid, v)
				}
			}
		}
		for _, pid := range n.Parents {
			p := l.Node(pid)
			found := false
			for _, cid := range p.Children {
				if cid == n.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("parent %d does not list %d as child", pid, n.ID)
			}
		}
	}
}

func TestSQLRendering(t *testing.T) {
	l, err := Generate(exampleSchema(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	label := mustLabel(t, l,
		[]Vertex{{Rel: "R", Copy: 1}, {Rel: "S", Copy: 2}},
		[]JoinEdge{{A: 0, B: 1, EdgeID: 0, AFrom: true}})
	n, _ := l.NodeByLabel(label)
	sql, err := l.SQL(n, []string{"k1", "k2"}, true)
	if err != nil {
		t.Fatalf("SQL: %v", err)
	}
	// The node's vertex order is canonical-generation order; accept either
	// alias arrangement but require the structural pieces.
	for _, want := range []string{
		"SELECT 1 FROM ",
		"R AS t", "S AS t",
		".b = t", // join on R.b = S.c
		"CONTAINS 'k1'", "CONTAINS 'k2'",
		"LIMIT 1",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
	// R has one text column (txt) -> bare comparison; S likewise.
	if strings.Count(sql, "CONTAINS") != 2 {
		t.Errorf("CONTAINS count in %s", sql)
	}
	// Full (non-exists) rendering.
	sql, err = l.SQL(n, []string{"k1", "k2"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sql, "SELECT * FROM") || strings.Contains(sql, "LIMIT") {
		t.Errorf("full SQL = %s", sql)
	}
}

func TestSQLMultiTextColumnsOrGroup(t *testing.T) {
	l, err := Generate(productSchema(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := l.NodeByLabel(mustLabel(t, l, []Vertex{{Rel: "Color", Copy: 1}}, nil))
	if !ok {
		t.Fatal("Color1 not found")
	}
	sql, err := l.SQL(n, []string{"saffron"}, true)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT 1 FROM Color AS t0 WHERE (t0.color CONTAINS 'saffron' OR t0.synonyms CONTAINS 'saffron') LIMIT 1"
	if sql != want {
		t.Errorf("sql = %s\nwant  %s", sql, want)
	}
}

func TestSQLErrors(t *testing.T) {
	l, err := Generate(exampleSchema(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := l.NodeByLabel(mustLabel(t, l, []Vertex{{Rel: "R", Copy: 2}}, nil))
	if _, err := l.SQL(n, []string{"only-one"}, true); err == nil {
		t.Error("copy 2 with 1 keyword rendered")
	}
	// Relation without text columns cannot take a keyword. Such nodes only
	// exist under the literal-Algorithm-1 option.
	schema := catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("NoText",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true})).
		MustBuild()
	l2, err := GenerateOpts(schema, Options{MaxJoins: 0, CopiesForTextlessRelations: true})
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := l2.NodeByLabel(mustLabel(t, l2, []Vertex{{Rel: "NoText", Copy: 1}}, nil))
	if _, err := l2.SQL(n2, []string{"kw"}, true); err == nil {
		t.Error("keyword on text-less relation rendered")
	}
}

func TestFreeNodeSQLHasNoPredicates(t *testing.T) {
	l, err := Generate(exampleSchema(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := l.NodeByLabel(mustLabel(t, l, []Vertex{{Rel: "R", Copy: 0}}, nil))
	sql, err := l.SQL(n, []string{"k1"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if sql != "SELECT 1 FROM R AS t0 LIMIT 1" {
		t.Errorf("sql = %s", sql)
	}
}

func TestNodeString(t *testing.T) {
	n := &Node{Vertices: []Vertex{{Rel: "Color", Copy: 1}, {Rel: "Item", Copy: 0}}}
	if got := n.String(); got != "Color#1-Item#0" {
		t.Errorf("String = %q", got)
	}
}

// TestParallelGenerationIdentical pins the Workers guarantee: any worker
// count yields a bit-identical lattice (IDs, labels, links, stats).
func TestParallelGenerationIdentical(t *testing.T) {
	ref, err := GenerateOpts(productSchema(t), Options{MaxJoins: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := GenerateOpts(productSchema(t), Options{MaxJoins: 3, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Len() != ref.Len() {
			t.Fatalf("workers=%d: %d nodes, want %d", workers, got.Len(), ref.Len())
		}
		for i := 0; i < ref.Len(); i++ {
			a, b := ref.Node(i), got.Node(i)
			if a.Label != b.Label {
				t.Fatalf("workers=%d: node %d label %q != %q", workers, i, b.Label, a.Label)
			}
			if len(a.Children) != len(b.Children) {
				t.Fatalf("workers=%d: node %d children differ", workers, i)
			}
			for j := range a.Children {
				if a.Children[j] != b.Children[j] {
					t.Fatalf("workers=%d: node %d child %d differs", workers, i, j)
				}
			}
		}
		for i, st := range ref.Stats() {
			if got.Stats()[i].Kept != st.Kept || got.Stats()[i].Duplicates != st.Duplicates {
				t.Fatalf("workers=%d: level %d stats differ", workers, st.Level)
			}
		}
	}
}

func TestIsCandidateNetwork(t *testing.T) {
	mk := func(vs []Vertex, es []JoinEdge) *Node {
		return &Node{Vertices: vs, Edges: es}
	}
	cases := []struct {
		name string
		n    *Node
		want bool
	}{
		{"single bound vertex", mk([]Vertex{{Rel: "R", Copy: 1}}, nil), true},
		{"single free vertex", mk([]Vertex{{Rel: "R", Copy: 0}}, nil), false},
		{"free leaf", mk(
			[]Vertex{{Rel: "R", Copy: 1}, {Rel: "S", Copy: 0}},
			[]JoinEdge{{A: 0, B: 1, EdgeID: 0}}), false},
		{"bound leaves, free interior", mk(
			[]Vertex{{Rel: "R", Copy: 1}, {Rel: "S", Copy: 0}, {Rel: "T", Copy: 2}},
			[]JoinEdge{{A: 0, B: 1, EdgeID: 0}, {A: 1, B: 2, EdgeID: 1}}), true},
		{"redundant leaf coverage", mk(
			[]Vertex{{Rel: "R", Copy: 1}, {Rel: "S", Copy: 1}},
			[]JoinEdge{{A: 0, B: 1, EdgeID: 0}}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.n.IsCandidateNetwork(); got != tc.want {
				t.Errorf("IsCandidateNetwork = %v, want %v", got, tc.want)
			}
		})
	}
}
