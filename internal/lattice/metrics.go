package lattice

import (
	"time"

	"kwsdbg/internal/obs"
)

// Phase 0 gauges. A process usually holds one lattice (the server) but may
// build several (the experiment harness); the gauges describe the most
// recently generated or loaded one, which is what a scrape of a serving
// process should see.
var (
	mNodes = obs.Default.Gauge("kwsdbg_lattice_nodes",
		"Nodes in the most recently built or loaded lattice.")
	mLevels = obs.Default.Gauge("kwsdbg_lattice_levels",
		"Levels (max joins + 1) in the most recently built or loaded lattice.")
	mBuildSeconds = obs.Default.Gauge("kwsdbg_lattice_build_seconds",
		"Wall time of the last lattice generation or load (Phase 0).")
	mBuilds = obs.Default.CounterVec("kwsdbg_lattice_builds_total",
		"Lattices constructed, by source.", "source")
)

// record publishes the gauges for a freshly constructed lattice.
func (l *Lattice) record(source string, elapsed time.Duration) {
	mNodes.Set(float64(l.Len()))
	mLevels.Set(float64(l.Levels()))
	mBuildSeconds.Set(elapsed.Seconds())
	mBuilds.With(source).Inc()
}
