// Package lattice implements Phase 0 of the paper: the offline generation of
// the lattice of join-query templates over a schema graph (Algorithm 1),
// deduplicated with a canonical tree labeling (Algorithm 2).
//
// Each lattice node is a join tree over relation copies. Copy 0 of a relation
// is the free tuple set (no keyword predicate, the paper's R0); copy j >= 1
// carries the predicate of the j-th keyword of the user's query, which gives
// the 1-1 mapping between lattice nodes and SQL query templates that the
// paper's Example 2 illustrates (the node R1 JOIN S2 is the template
// "... WHERE R1 matches k1 AND S2 matches k2").
//
// Node N is a descendant of node N' exactly when N's join tree is a connected
// sub-network of N”s; children differ from parents by one leaf vertex, and
// every connected sub-network is reachable by repeated leaf removal.
package lattice

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"kwsdbg/internal/catalog"
)

// Vertex is one occurrence of a relation copy in a join tree.
type Vertex struct {
	Rel  string
	Copy int // 0 = free tuple set; j >= 1 = j-th keyword's predicate
}

// String renders the vertex as Rel#copy, e.g. "Item#0" or "Color#1".
func (v Vertex) String() string { return v.Rel + "#" + strconv.Itoa(v.Copy) }

// JoinEdge is one key-foreign-key join between two vertices of a node.
// A and B index into the node's Vertices; EdgeID indexes the schema's Edges.
// AFrom records whether vertex A plays the foreign-key ("From") side.
type JoinEdge struct {
	A, B   int
	EdgeID int
	AFrom  bool
}

// Node is one lattice node: a join tree plus its position in the lattice.
type Node struct {
	ID       int
	Vertices []Vertex
	Edges    []JoinEdge
	// Label is the canonical labeling of the tree (Algorithm 2); two nodes
	// are the same query template iff their labels are equal.
	Label string
	// Level is the number of vertices (level 1 = single-table queries).
	Level int
	// Children are the IDs of the leaf-removed sub-networks; Parents the
	// reverse links. Both are sorted.
	Children []int
	Parents  []int
	// CopyMask has bit j set when some vertex has Copy == j (j >= 1).
	// Bit 0 is set when the node contains a free tuple set.
	CopyMask uint64
}

// HasVertex reports whether the node contains the (rel, copy) vertex.
func (n *Node) HasVertex(rel string, copy int) bool {
	for _, v := range n.Vertices {
		if v.Rel == rel && v.Copy == copy {
			return true
		}
	}
	return false
}

// IsTotal reports whether the node covers every keyword of an n-keyword
// query, i.e. copies 1..nKeywords all occur among its vertices.
func (n *Node) IsTotal(nKeywords int) bool {
	if nKeywords <= 0 {
		return false
	}
	want := (uint64(1)<<uint(nKeywords+1) - 1) &^ 1 // bits 1..nKeywords
	return n.CopyMask&want == want
}

// IsCandidateNetwork reports whether the node could be produced as a
// candidate network by a classical KWS-S system for *some* keyword query:
// every leaf must be keyword-bound and be the only vertex carrying its
// keyword (DISCOVER's minimality rule, relative to the node's own keyword
// set). Maximal alive sub-queries that fail this test are invisible to the
// Return Nothing workflow of §3.8 — the developer cannot reach them by
// re-submitting keyword subsets, which is the paper's incompleteness
// argument made checkable.
func (n *Node) IsCandidateNetwork() bool {
	copies := make(map[int]int, len(n.Vertices))
	for _, v := range n.Vertices {
		copies[v.Copy]++
	}
	deg := make([]int, len(n.Vertices))
	for _, e := range n.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	for i, v := range n.Vertices {
		if deg[i] <= 1 && (v.Copy == 0 || copies[v.Copy] > 1) {
			return false
		}
	}
	return true
}

// String renders the node compactly, e.g. "Color#1-Item#0-PType#2". The
// vertex list is sorted so that the rendering does not depend on generation
// order; it names the tuple sets involved, not the tree shape (the SQL
// rendering carries the join structure).
func (n *Node) String() string {
	parts := make([]string, len(n.Vertices))
	for i, v := range n.Vertices {
		parts[i] = v.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "-")
}

// labeler computes canonical labelings for join trees over one schema.
// Vertex IDs are (relation index, copy); edge IDs are schema edge indexes
// plus an orientation bit, so that isomorphic trees — and only those — share
// a labeling.
type labeler struct {
	schema    *catalog.Schema
	relIdx    map[string]int
	maxCopies int
}

func newLabeler(schema *catalog.Schema, keywordSlots int) *labeler {
	names := schema.RelationNames()
	idx := make(map[string]int, len(names))
	for i, name := range names {
		idx[name] = i
	}
	return &labeler{schema: schema, relIdx: idx, maxCopies: keywordSlots + 1}
}

func (lb *labeler) vertexID(v Vertex) int {
	return lb.relIdx[v.Rel]*lb.maxCopies + v.Copy
}

// edgeCode encodes the edge label as seen when traversing from vertex u
// across edge e: the schema edge ID with a direction bit (whether u is the
// From side), so that e.g. coauthor.p1->Person and coauthor.p2->Person
// label differently, and traversal direction is canonicalized.
func (lb *labeler) edgeCode(n *Node, e JoinEdge, u int) int {
	uFrom := e.AFrom == (e.A == u)
	code := e.EdgeID * 2
	if uFrom {
		code++
	}
	return code
}

// canonicalLabel implements Algorithm 2. Because vertices within a node are
// distinct (rel, copy) pairs, vertex IDs are unique, so the minimum-ID vertex
// is the single canonical root.
func (lb *labeler) canonicalLabel(n *Node) string {
	if len(n.Vertices) == 0 {
		return "[]"
	}
	adj := make([][]int, len(n.Vertices)) // vertex -> edge indexes
	for ei, e := range n.Edges {
		adj[e.A] = append(adj[e.A], ei)
		adj[e.B] = append(adj[e.B], ei)
	}
	root := 0
	for i := range n.Vertices {
		if lb.vertexID(n.Vertices[i]) < lb.vertexID(n.Vertices[root]) {
			root = i
		}
	}
	var code func(u, parentEdge int) string
	code = func(u, parentEdge int) string {
		var sb strings.Builder
		sb.WriteByte('[')
		sb.WriteString(strconv.Itoa(lb.vertexID(n.Vertices[u])))
		var kids []string
		for _, ei := range adj[u] {
			if ei == parentEdge {
				continue
			}
			e := n.Edges[ei]
			v := e.A
			if v == u {
				v = e.B
			}
			kids = append(kids, strconv.Itoa(lb.edgeCode(n, e, u))+code(v, ei))
		}
		if len(kids) > 0 {
			sb.WriteByte('|')
			sort.Strings(kids)
			for _, k := range kids {
				sb.WriteString(k)
			}
		}
		sb.WriteByte(']')
		return sb.String()
	}
	return code(root, -1)
}

// leaves returns the vertex indexes of degree <= 1 (single-vertex nodes have
// one leaf: the vertex itself).
func (n *Node) leaves() []int {
	deg := make([]int, len(n.Vertices))
	for _, e := range n.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	var out []int
	for i, d := range deg {
		if d <= 1 {
			out = append(out, i)
		}
	}
	return out
}

// removeLeaf returns the vertices and edges of the sub-network obtained by
// deleting leaf vertex li. The caller guarantees li is a leaf of a node with
// at least two vertices.
func (n *Node) removeLeaf(li int) ([]Vertex, []JoinEdge) {
	vs := make([]Vertex, 0, len(n.Vertices)-1)
	remap := make([]int, len(n.Vertices))
	for i, v := range n.Vertices {
		if i == li {
			remap[i] = -1
			continue
		}
		remap[i] = len(vs)
		vs = append(vs, v)
	}
	es := make([]JoinEdge, 0, len(n.Edges)-1)
	for _, e := range n.Edges {
		if e.A == li || e.B == li {
			continue
		}
		es = append(es, JoinEdge{A: remap[e.A], B: remap[e.B], EdgeID: e.EdgeID, AFrom: e.AFrom})
	}
	return vs, es
}

// computeCopyMask derives the copy bitmask from the vertices.
func computeCopyMask(vs []Vertex) uint64 {
	var mask uint64
	for _, v := range vs {
		if v.Copy < 64 {
			mask |= 1 << uint(v.Copy)
		}
	}
	return mask
}

// validateTree checks that the vertices and edges form a tree with distinct
// (rel, copy) vertices. Used by tests and by NewNode.
func validateTree(vs []Vertex, es []JoinEdge) error {
	if len(vs) == 0 {
		return fmt.Errorf("lattice: empty vertex set")
	}
	if len(es) != len(vs)-1 {
		return fmt.Errorf("lattice: %d edges for %d vertices (not a tree)", len(es), len(vs))
	}
	seen := make(map[Vertex]bool, len(vs))
	for _, v := range vs {
		if seen[v] {
			return fmt.Errorf("lattice: duplicate vertex %s", v)
		}
		seen[v] = true
	}
	// Connectivity via union-find.
	parent := make([]int, len(vs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range es {
		if e.A < 0 || e.A >= len(vs) || e.B < 0 || e.B >= len(vs) {
			return fmt.Errorf("lattice: edge endpoints out of range")
		}
		ra, rb := find(e.A), find(e.B)
		if ra == rb {
			return fmt.Errorf("lattice: cycle through edge %d-%d", e.A, e.B)
		}
		parent[ra] = rb
	}
	return nil
}
