package lattice

import (
	"encoding/gob"
	"fmt"
	"io"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/clock"
)

// persistVersion guards the on-disk format.
const persistVersion = 1

// latticeGob is the serialized form. Children links are stored (recomputing
// them costs a canonical labeling per (node, leaf) pair, a large share of
// generation time); parents, levels, and the label index are rebuilt on
// load.
type latticeGob struct {
	Version   int
	Opts      Options
	SchemaSig string
	Stats     []LevelStats
	Nodes     []nodeGob
}

type nodeGob struct {
	Vertices []Vertex
	Edges    []JoinEdge
	Label    string
	Children []int
}

// Save writes the lattice so a later Load can skip Phase 0 entirely — the
// paper's point is precisely that this structure is computed once, offline.
func (l *Lattice) Save(w io.Writer) error {
	out := latticeGob{
		Version:   persistVersion,
		Opts:      l.opts,
		SchemaSig: l.schema.String(),
		Stats:     l.stats,
		Nodes:     make([]nodeGob, len(l.nodes)),
	}
	for i, n := range l.nodes {
		out.Nodes[i] = nodeGob{
			Vertices: n.Vertices,
			Edges:    n.Edges,
			Label:    n.Label,
			Children: n.Children,
		}
	}
	return gob.NewEncoder(w).Encode(&out)
}

// Load reads a lattice previously written by Save and re-attaches it to the
// schema it was generated from. The schema is validated structurally (its
// relations, columns, and edges must render identically), because node
// vertex names and edge IDs index into it.
func Load(r io.Reader, schema *catalog.Schema) (*Lattice, error) {
	loadStart := clock.Now()
	var in latticeGob
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("lattice: load: %w", err)
	}
	if in.Version != persistVersion {
		return nil, fmt.Errorf("lattice: load: format version %d, want %d", in.Version, persistVersion)
	}
	if got := schema.String(); got != in.SchemaSig {
		return nil, fmt.Errorf("lattice: load: schema does not match the one the lattice was generated from")
	}
	l := &Lattice{
		schema:  schema,
		opts:    in.Opts,
		lb:      newLabeler(schema, in.Opts.KeywordSlots),
		byLabel: make(map[string]int, len(in.Nodes)),
		stats:   in.Stats,
	}
	for i, ng := range in.Nodes {
		n := &Node{
			ID:       i,
			Vertices: ng.Vertices,
			Edges:    ng.Edges,
			Label:    ng.Label,
			Level:    len(ng.Vertices),
			Children: ng.Children,
			CopyMask: computeCopyMask(ng.Vertices),
		}
		if _, dup := l.byLabel[n.Label]; dup {
			return nil, fmt.Errorf("lattice: load: duplicate label %q", n.Label)
		}
		l.nodes = append(l.nodes, n)
		l.byLabel[n.Label] = i
		for len(l.levels) < n.Level {
			l.levels = append(l.levels, nil)
		}
		l.levels[n.Level-1] = append(l.levels[n.Level-1], i)
	}
	// Validate child links and rebuild parents.
	for _, n := range l.nodes {
		for _, c := range n.Children {
			if c < 0 || c >= len(l.nodes) {
				return nil, fmt.Errorf("lattice: load: node %d has child %d out of range", n.ID, c)
			}
			if l.nodes[c].Level != n.Level-1 {
				return nil, fmt.Errorf("lattice: load: node %d child %d level mismatch", n.ID, c)
			}
			l.nodes[c].Parents = append(l.nodes[c].Parents, n.ID)
		}
	}
	l.sortLevels()
	l.record("load", clock.Since(loadStart))
	return l, nil
}
