package lattice

import (
	"bytes"
	"strings"
	"testing"

	"kwsdbg/internal/catalog"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	schema := productSchema(t)
	orig, err := GenerateOpts(schema, Options{MaxJoins: 2, KeywordSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf, schema)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), orig.Len())
	}
	if got.MaxJoins() != orig.MaxJoins() || got.KeywordSlots() != orig.KeywordSlots() {
		t.Errorf("options differ: %d/%d vs %d/%d",
			got.MaxJoins(), got.KeywordSlots(), orig.MaxJoins(), orig.KeywordSlots())
	}
	for i := 0; i < orig.Len(); i++ {
		a, b := orig.Node(i), got.Node(i)
		if a.Label != b.Label || a.Level != b.Level || a.CopyMask != b.CopyMask {
			t.Fatalf("node %d differs: %+v vs %+v", i, a, b)
		}
		if len(a.Children) != len(b.Children) || len(a.Parents) != len(b.Parents) {
			t.Fatalf("node %d links differ", i)
		}
		for j := range a.Children {
			if a.Children[j] != b.Children[j] {
				t.Fatalf("node %d child %d differs", i, j)
			}
		}
		for j := range a.Parents {
			if a.Parents[j] != b.Parents[j] {
				t.Fatalf("node %d parent %d differs", i, j)
			}
		}
	}
	if len(got.Stats()) != len(orig.Stats()) {
		t.Fatalf("stats differ")
	}
	for k := 1; k <= orig.Levels(); k++ {
		a, b := orig.Level(k), got.Level(k)
		if len(a) != len(b) {
			t.Fatalf("level %d sizes differ", k)
		}
		for i := range a {
			if orig.Node(a[i]).Label != got.Node(b[i]).Label {
				t.Fatalf("level %d order differs at %d", k, i)
			}
		}
	}
	// The loaded lattice renders SQL identically.
	n, ok := got.NodeByLabel(orig.Node(5).Label)
	if !ok {
		t.Fatal("label lookup failed on loaded lattice")
	}
	sqlOrig, err1 := orig.SQL(orig.Node(5), []string{"a", "b", "c"}, true)
	sqlGot, err2 := got.SQL(n, []string{"a", "b", "c"}, true)
	if (err1 == nil) != (err2 == nil) || (err1 == nil && sqlOrig != sqlGot) {
		t.Errorf("SQL differs after load: %q vs %q (%v, %v)", sqlOrig, sqlGot, err1, err2)
	}
}

func TestLoadErrorCases(t *testing.T) {
	schema := productSchema(t)
	orig, err := GenerateOpts(schema, Options{MaxJoins: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	t.Run("garbage", func(t *testing.T) {
		if _, err := Load(strings.NewReader("not a gob stream"), schema); err == nil {
			t.Error("garbage accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := Load(bytes.NewReader(saved[:len(saved)/2]), schema); err == nil {
			t.Error("truncated stream accepted")
		}
	})
	t.Run("wrong schema", func(t *testing.T) {
		other := catalog.NewSchemaBuilder().
			AddRelation(catalog.MustRelation("X",
				catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
				catalog.Column{Name: "t", Type: catalog.Text})).
			MustBuild()
		if _, err := Load(bytes.NewReader(saved), other); err == nil ||
			!strings.Contains(err.Error(), "schema") {
			t.Errorf("wrong schema: err = %v", err)
		}
	})
}
