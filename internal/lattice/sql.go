package lattice

import (
	"fmt"

	"kwsdbg/internal/sqltext"
)

// Select instantiates the node's SQL query template against a keyword query
// (Phase 1's instantiation step). Vertex copies j >= 1 receive the predicate
// of the j-th keyword — an OR over the relation's text columns of CONTAINS —
// and copy 0 (the free tuple set) receives no predicate. With exists set, the
// query is the existence probe the traversal strategies issue
// ("SELECT 1 ... LIMIT 1"); otherwise it returns full result tuples.
func (l *Lattice) Select(n *Node, keywords []string, exists bool) (*sqltext.Select, error) {
	sel := &sqltext.Select{Limit: -1}
	if exists {
		sel.Projection.One = true
		sel.Limit = 1
	} else {
		sel.Projection.Star = true
	}
	aliases := make([]string, len(n.Vertices))
	for i, v := range n.Vertices {
		aliases[i] = fmt.Sprintf("t%d", i)
		sel.From = append(sel.From, sqltext.TableRef{Table: v.Rel, Alias: aliases[i]})
	}
	for _, e := range n.Edges {
		edge := l.schema.Edges()[e.EdgeID]
		aCol, bCol := edge.FromCol, edge.ToCol
		if !e.AFrom {
			aCol, bCol = edge.ToCol, edge.FromCol
		}
		sel.Where = append(sel.Where, sqltext.Comparison{
			Left:  sqltext.ColRef{Qualifier: aliases[e.A], Column: aCol},
			Op:    sqltext.OpEq,
			Right: sqltext.ColOperand(sqltext.ColRef{Qualifier: aliases[e.B], Column: bCol}),
		})
	}
	for i, v := range n.Vertices {
		if v.Copy == 0 {
			continue
		}
		if v.Copy > len(keywords) {
			return nil, fmt.Errorf("lattice: node %s needs keyword %d, query has %d", n, v.Copy, len(keywords))
		}
		pred, err := l.keywordPredicate(aliases[i], v.Rel, keywords[v.Copy-1])
		if err != nil {
			return nil, err
		}
		sel.Where = append(sel.Where, pred)
	}
	return sel, nil
}

// keywordPredicate builds "(alias.c1 CONTAINS kw OR alias.c2 CONTAINS kw...)"
// over the relation's text columns.
func (l *Lattice) keywordPredicate(alias, rel, keyword string) (sqltext.Predicate, error) {
	r, ok := l.schema.Relation(rel)
	if !ok {
		return nil, fmt.Errorf("lattice: unknown relation %q", rel)
	}
	cols := r.TextColumns()
	if len(cols) == 0 {
		return nil, fmt.Errorf("lattice: relation %q has no text columns to match keyword %q", rel, keyword)
	}
	terms := make([]sqltext.Predicate, len(cols))
	for i, c := range cols {
		terms[i] = sqltext.Comparison{
			Left:  sqltext.ColRef{Qualifier: alias, Column: c},
			Op:    sqltext.OpContains,
			Right: sqltext.LitOperand(sqltext.StringLit(keyword)),
		}
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return sqltext.OrGroup{Terms: terms}, nil
}

// SQL renders the instantiated query as SQL text.
func (l *Lattice) SQL(n *Node, keywords []string, exists bool) (string, error) {
	sel, err := l.Select(n, keywords, exists)
	if err != nil {
		return "", err
	}
	return sqltext.Print(sel), nil
}
