// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The build environment vendors nothing, so the x/tools module is not
// available; this package provides exactly the subset kwslint needs —
// single-package passes over syntax plus types.Info, position-addressed
// diagnostics — and none of the machinery it does not (facts, result
// dependencies, SuggestedFixes). Analyzer names are short ("determinism");
// their user-facing check IDs carry the kwslint/ prefix ("kwslint/
// determinism"), which is also the name suppression directives use (see
// package ignore).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name is the short analyzer name, e.g. "determinism". It must be
	// unique across the suite and match ^[a-z][a-z0-9]*$.
	Name string

	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces, shown by `kwslint -list`.
	Doc string

	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Check returns the fully qualified check ID used in diagnostics and in
// //lint:ignore directives.
func (a *Analyzer) Check() string { return "kwslint/" + a.Name }

// Diagnostic is one finding, addressed by token position.
type Diagnostic struct {
	Pos     token.Pos
	Check   string // fully qualified, e.g. "kwslint/determinism"
	Message string
}

// Pass carries one package's syntax and type information through an
// Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Diags accumulates findings in report order; drivers sort before
	// printing so output is deterministic regardless of traversal order.
	Diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Diags = append(p.Diags, Diagnostic{
		Pos:     pos,
		Check:   p.Analyzer.Check(),
		Message: fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file in the pass in source order.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
