// Package cfg builds intraprocedural control-flow graphs over ast.Stmt and
// runs forward dataflow analyses over them.
//
// The syntax-level analyzers of PR 5 (determinism, lockcheck, …) see one
// statement at a time; the invariants the repo now stakes correctness on —
// Lock/Unlock balance across early returns, goroutine join evidence,
// allocation discipline inside loops — are properties of *paths*, not
// statements. This package is the flow-sensitive layer those analyzers
// (lockflow, leakcheck, hotpath) stand on: a basic-block graph with edges for
// if/for/range/switch/select/goto and explicit defer capture, plus a
// worklist fixpoint over a pluggable join semilattice.
//
// The builder is deliberately syntax-only (no go/types): blocks carry
// ast.Stmt values and the analyzers resolve meaning through their own Pass.
// Panic calls end their block without an Exit edge, so a path that provably
// panics is not reported as "falls off the end while holding a lock";
// every return and the fall-off end of the body flow into g.Exit.
//
// Like the rest of internal/lint this is a reimplementation of the
// golang.org/x/tools vocabulary (go/cfg) reduced to what kwslint needs; the
// build environment vendors nothing.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line statement sequence.
// Control statements (if/for/switch/…) contribute their init/condition to the
// block that evaluates them; their bodies live in successor blocks.
type Block struct {
	// Index is the block's position in Graph.Blocks, stable across builds of
	// the same function — diagnostics and golden tests key off it.
	Index int
	// Kind describes why the block exists ("entry", "if.then", "for.body",
	// …); it is documentation for humans and golden tests, not semantics.
	Kind string
	// Stmts are the block's statements in source order. Control headers
	// appear as their own entry (the *ast.IfStmt itself ends a block, with
	// its Cond still unevaluated in successors).
	Stmts []ast.Stmt
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
}

// addEdge links b -> s.
func addEdge(b, s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// Graph is the CFG of one function body.
type Graph struct {
	// Entry is the first block; Exit is the single synthetic exit every
	// return and the fall-off end of the body flow into.
	Entry, Exit *Block
	// Blocks lists every block in creation order (Entry first, Exit last
	// position is not guaranteed); unreachable blocks are retained so
	// diagnostics can still address dead code.
	Blocks []*Block
	// Defers collects every defer statement in the function, in source
	// order. Deferred calls run at every exit; flow-sensitive analyses
	// treat them as pending effects rather than edges.
	Defers []*ast.DeferStmt
}

// New builds the CFG of body. body may be the body of an *ast.FuncDecl or an
// *ast.FuncLit; a nil body yields a trivial entry->exit graph.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = &Block{Kind: "exit"} // indexed after building, see below
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// The fall-off end of the body returns.
	if b.cur != nil {
		addEdge(b.cur, b.g.Exit)
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// builder carries the construction state: the current block and the branch
// target stack.
type builder struct {
	g   *Graph
	cur *Block
	// targets is the innermost break/continue scope.
	targets *targets
	// labels maps label names to their pending blocks, created on first
	// reference (goto may precede the label).
	labels map[string]*labelBlock
}

// targets is one level of the break/continue scope stack.
type targets struct {
	tail      *targets
	breakOK   bool // switch/select define break but not continue
	brk, cont *Block
	label     string
}

// labelBlock tracks one label's jump targets.
type labelBlock struct {
	goto_ *Block // target of goto L (the labeled statement itself)
	brk   *Block // target of break L, nil until the labeled loop is built
	cont  *Block // target of continue L
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// startBlock begins a new current block without linking it; callers add the
// edges. A nil argument marks unreachable code after return/goto: statements
// still land in a fresh predecessor-less block.
func (b *builder) startBlock(blk *Block) {
	b.cur = blk
}

func (b *builder) labelled(name string) *labelBlock {
	if b.labels == nil {
		b.labels = make(map[string]*labelBlock)
	}
	lb, ok := b.labels[name]
	if !ok {
		lb = &labelBlock{goto_: b.newBlock("label." + name)}
		b.labels[name] = lb
	}
	return lb
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the immediately enclosing label
// name ("" when unlabeled); loops consume it for break/continue targets.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelled(s.Label.Name)
		addEdge(b.cur, lb.goto_)
		b.startBlock(lb.goto_)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		b.cur.Stmts = append(b.cur.Stmts, s) // the condition evaluation
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		addEdge(b.cur, then)
		if s.Else != nil {
			els := b.newBlock("if.else")
			addEdge(b.cur, els)
			b.startBlock(els)
			b.stmt(s.Else, "")
			if b.cur != nil {
				addEdge(b.cur, done)
			}
		} else {
			addEdge(b.cur, done)
		}
		b.startBlock(then)
		b.stmtList(s.Body.List)
		if b.cur != nil {
			addEdge(b.cur, done)
		}
		b.startBlock(done)

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		addEdge(b.cur, head)
		head.Stmts = append(head.Stmts, s) // the condition evaluation
		addEdge(head, body)
		if s.Cond != nil {
			addEdge(head, done) // infinite for {} has no exit edge
		}
		b.pushTargets(label, done, post)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		if b.cur != nil {
			addEdge(b.cur, post)
		}
		if s.Post != nil {
			b.startBlock(post)
			post.Stmts = append(post.Stmts, s.Post)
			addEdge(post, head)
		}
		b.popTargets()
		b.startBlock(done)

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		addEdge(b.cur, head)
		head.Stmts = append(head.Stmts, s) // the next-element evaluation
		addEdge(head, body)
		addEdge(head, done)
		b.pushTargets(label, done, head)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		if b.cur != nil {
			addEdge(b.cur, head)
		}
		b.popTargets()
		b.startBlock(done)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		b.switchBody(s, s.Body, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		b.cur.Stmts = append(b.cur.Stmts, s.Assign)
		b.switchBody(s, s.Body, label)

	case *ast.SelectStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		done := b.newBlock("select.done")
		entry := b.cur
		b.pushSwitchTargets(label, done)
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.newBlock("select.case")
			if clause.Comm != nil {
				blk.Stmts = append(blk.Stmts, clause.Comm)
			}
			addEdge(entry, blk)
			b.startBlock(blk)
			b.stmtList(clause.Body)
			if b.cur != nil {
				addEdge(b.cur, done)
			}
		}
		b.popTargets()
		b.startBlock(done)

	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		addEdge(b.cur, b.g.Exit)
		b.startBlock(b.newBlock("unreachable.return"))

	case *ast.BranchStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		switch s.Tok {
		case token.GOTO:
			addEdge(b.cur, b.labelled(s.Label.Name).goto_)
		case token.BREAK:
			if t := b.findBreak(s.Label); t != nil {
				addEdge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.findContinue(s.Label); t != nil {
				addEdge(b.cur, t)
			}
			// token.FALLTHROUGH is handled structurally by switchBody.
		}
		if s.Tok != token.FALLTHROUGH {
			b.startBlock(b.newBlock("unreachable.branch"))
		}

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.cur.Stmts = append(b.cur.Stmts, s)

	case *ast.ExprStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		if isPanic(s.X) {
			// A panicking path leaves the function without reaching Exit;
			// statements after it are unreachable.
			b.startBlock(b.newBlock("unreachable.panic"))
		}

	default:
		// Assignments, declarations, sends, inc/dec, go, empty: straight-line.
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

// switchBody builds the clause structure shared by switch and type switch.
func (b *builder) switchBody(header ast.Stmt, body *ast.BlockStmt, label string) {
	b.cur.Stmts = append(b.cur.Stmts, header)
	entry := b.cur
	done := b.newBlock("switch.done")
	b.pushSwitchTargets(label, done)

	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock("switch.case")
		if clauses[i].(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		addEdge(entry, done) // no case may match
	}
	for i, cc := range clauses {
		clause := cc.(*ast.CaseClause)
		addEdge(entry, blocks[i])
		b.startBlock(blocks[i])
		b.stmtList(clause.Body)
		if b.cur != nil {
			if fallsThrough(clause.Body) && i+1 < len(blocks) {
				addEdge(b.cur, blocks[i+1])
			} else {
				addEdge(b.cur, done)
			}
		}
	}
	b.popTargets()
	b.startBlock(done)
}

// fallsThrough reports whether a case body ends in a fallthrough statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) pushTargets(label string, brk, cont *Block) {
	b.targets = &targets{tail: b.targets, breakOK: true, brk: brk, cont: cont, label: label}
	if label != "" {
		lb := b.labelled(label)
		lb.brk, lb.cont = brk, cont
	}
}

// pushSwitchTargets defines break (switch/select) without continue.
func (b *builder) pushSwitchTargets(label string, brk *Block) {
	b.targets = &targets{tail: b.targets, breakOK: true, brk: brk, label: label}
	if label != "" {
		b.labelled(label).brk = brk
	}
}

func (b *builder) popTargets() { b.targets = b.targets.tail }

func (b *builder) findBreak(label *ast.Ident) *Block {
	if label != nil {
		if lb, ok := b.labels[label.Name]; ok {
			return lb.brk
		}
		return nil
	}
	for t := b.targets; t != nil; t = t.tail {
		if t.breakOK {
			return t.brk
		}
	}
	return nil
}

func (b *builder) findContinue(label *ast.Ident) *Block {
	if label != nil {
		if lb, ok := b.labels[label.Name]; ok {
			return lb.cont
		}
		return nil
	}
	for t := b.targets; t != nil; t = t.tail {
		if t.cont != nil {
			return t.cont
		}
	}
	return nil
}

// isPanic recognizes a direct call to the builtin panic. This is syntactic:
// a shadowed panic would be misread, which the repo does not do.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Reachable returns the blocks reachable from Entry, in Index order.
// Dataflow iterates these; diagnostics over unreachable code are the parser's
// and vet's business, not a fixpoint's.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	out := make([]*Block, 0, len(g.Blocks))
	for _, blk := range g.Blocks {
		if seen[blk.Index] {
			out = append(out, blk)
		}
	}
	return out
}

// LoopBlocks returns the set of blocks inside at least one loop: for every
// back edge u->v found by depth-first search, the natural loop body {v} ∪
// {blocks reaching u without passing v}. Goto-made irreducible regions are
// approximated (the DFS ancestor test still finds their retreating edges),
// which errs toward reporting — the right direction for a hot-path lint.
func (g *Graph) LoopBlocks() map[*Block]bool {
	const (
		white = iota
		grey
		black
	)
	color := make([]int, len(g.Blocks))
	loops := make(map[*Block]bool)

	var backEdges [][2]*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		color[b.Index] = grey
		for _, s := range b.Succs {
			switch color[s.Index] {
			case white:
				dfs(s)
			case grey:
				backEdges = append(backEdges, [2]*Block{b, s})
			}
		}
		color[b.Index] = black
	}
	dfs(g.Entry)

	for _, e := range backEdges {
		tail, head := e[0], e[1]
		// Walk predecessors from the tail, stopping at the head; each back
		// edge gets its own visited set so overlapping loops mark fully.
		body := map[*Block]bool{head: true}
		stack := []*Block{tail}
		for len(stack) > 0 {
			blk := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if body[blk] {
				continue
			}
			body[blk] = true
			for _, p := range blk.Preds {
				stack = append(stack, p)
			}
		}
		for blk := range body {
			loops[blk] = true
		}
	}
	return loops
}
