package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src (a complete function declaration) and builds its CFG.
func buildFunc(t *testing.T, src string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return New(fd.Body), fset
		}
	}
	t.Fatalf("no function in source")
	return nil, nil
}

func checkGolden(t *testing.T, src, want string) *Graph {
	t.Helper()
	g, fset := buildFunc(t, src)
	got := strings.TrimSpace(g.String(fset))
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	return g
}

func TestIfGraph(t *testing.T) {
	checkGolden(t, `
func f(x int) int {
	if x > 0 {
		return 1
	}
	return 2
}`, `
b0 entry: [if x > 0] -> b1 b2
b1 if.then: [return 1] -> b5
b2 if.done: [return 2] -> b5
b5 exit:
`)
}

func TestIfElseGraph(t *testing.T) {
	checkGolden(t, `
func f(x int) int {
	v := 0
	if x > 0 {
		v = 1
	} else {
		v = 2
	}
	return v
}`, `
b0 entry: [v := 0] [if x > 0] -> b1 b3
b1 if.then: [v = 1] -> b2
b2 if.done: [return v] -> b5
b3 if.else: [v = 2] -> b2
b5 exit:
`)
}

func TestForGraph(t *testing.T) {
	g := checkGolden(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		if i%2 == 0 {
			continue
		}
		work(i)
	}
}`, `
b0 entry: [i := 0] -> b1
b1 for.head: [for i < n] -> b2 b3
b2 for.body: [if i == 3] -> b5 b6
b3 for.done: -> b11
b4 for.post: [i++] -> b1
b5 if.then: [break] -> b3
b6 if.done: [if i%2 == 0] -> b8 b9
b8 if.then: [continue] -> b4
b9 if.done: [work(i)] -> b4
b11 exit:
`)

	loops := g.LoopBlocks()
	inLoop := map[string]bool{}
	for b := range loops {
		inLoop[b.Kind] = true
	}
	for _, kind := range []string{"for.head", "for.body", "for.post"} {
		if !inLoop[kind] {
			t.Errorf("LoopBlocks: %s not marked as loop body", kind)
		}
	}
	if inLoop["entry"] || inLoop["for.done"] || inLoop["exit"] {
		t.Errorf("LoopBlocks over-marks: %v", inLoop)
	}
}

func TestInfiniteForHasNoExitEdge(t *testing.T) {
	g, _ := buildFunc(t, `
func f() {
	for {
		work(0)
	}
}`)
	for _, b := range g.Reachable() {
		for _, s := range b.Succs {
			if s == g.Exit {
				t.Fatalf("for {} should not reach exit, but b%d does", b.Index)
			}
		}
	}
}

func TestRangeGraph(t *testing.T) {
	g := checkGolden(t, `
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`, `
b0 entry: [s := 0] -> b1
b1 range.head: [range xs] -> b2 b3
b2 range.body: [s += x] -> b1
b3 range.done: [return s] -> b5
b5 exit:
`)
	loops := g.LoopBlocks()
	for b := range loops {
		if b.Kind == "range.done" || b.Kind == "entry" {
			t.Errorf("LoopBlocks over-marks %s", b.Kind)
		}
	}
}

func TestSwitchGraph(t *testing.T) {
	checkGolden(t, `
func f(k int) string {
	switch k {
	case 1:
		return "one"
	case 2:
		fallthrough
	case 3:
		return "few"
	default:
		return "many"
	}
}`, `
b0 entry: [switch k] -> b2 b3 b4 b5
b2 switch.case: [return "one"] -> b9
b3 switch.case: [fallthrough] -> b4
b4 switch.case: [return "few"] -> b9
b5 switch.case: [return "many"] -> b9
b9 exit:
`)
}

func TestSwitchNoDefaultFallsPast(t *testing.T) {
	// Without a default clause control may skip every case.
	g, _ := buildFunc(t, `
func f(k int) {
	switch k {
	case 1:
		work(1)
	}
	work(2)
}`)
	var entry, done *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "entry":
			entry = b
		case "switch.done":
			done = b
		}
	}
	found := false
	for _, s := range entry.Succs {
		if s == done {
			found = true
		}
	}
	if !found {
		t.Fatalf("switch without default must have an entry -> done edge")
	}
}

func TestDeferCapture(t *testing.T) {
	g := checkGolden(t, `
func f(mu locker) {
	mu.Lock()
	defer mu.Unlock()
	work(1)
}`, `
b0 entry: [mu.Lock()] [defer mu.Unlock()] [work(1)] -> b1
b1 exit:
`)
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(g.Defers))
	}
}

func TestPanicEndsBlockWithoutExitEdge(t *testing.T) {
	g, _ := buildFunc(t, `
func f(x int) {
	if x < 0 {
		panic("negative")
	}
	work(x)
}`)
	for _, b := range g.Reachable() {
		if b.Kind != "if.then" {
			continue
		}
		for _, s := range b.Succs {
			if s == g.Exit {
				t.Fatalf("panic block must not flow to exit")
			}
		}
		return
	}
	t.Fatalf("if.then block not reachable")
}

func TestSelectGraph(t *testing.T) {
	g, _ := buildFunc(t, `
func f(ch chan int, done chan struct{}) {
	select {
	case v := <-ch:
		work(v)
	case <-done:
		return
	}
	work(0)
}`)
	cases := 0
	for _, b := range g.Reachable() {
		if b.Kind == "select.case" {
			cases++
		}
	}
	if cases != 2 {
		t.Fatalf("got %d select.case blocks, want 2", cases)
	}
}

func TestGotoGraph(t *testing.T) {
	g, _ := buildFunc(t, `
func f(n int) {
	i := 0
top:
	if i < n {
		i++
		goto top
	}
}`)
	// The goto creates a cycle, so the labeled block is in a loop.
	loops := g.LoopBlocks()
	found := false
	for b := range loops {
		if b.Kind == "label.top" {
			found = true
		}
	}
	if !found {
		t.Fatalf("goto cycle not detected by LoopBlocks")
	}
}

// assignLattice is a must-assign analysis used to exercise Forward: the fact
// is the set of names definitely assigned on every path, joined by
// intersection. It reads only top-level assignments in each block.
type assignLattice struct{}

func (assignLattice) Entry() map[string]bool { return map[string]bool{} }

func (assignLattice) Join(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (assignLattice) Equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (assignLattice) Transfer(b *Block, in map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range in {
		out[k] = true
	}
	for _, s := range b.Stmts {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				out[id.Name] = true
			}
		}
	}
	return out
}

func factAt(t *testing.T, facts map[*Block]map[string]bool, g *Graph) map[string]bool {
	t.Helper()
	f, ok := facts[g.Exit]
	if !ok {
		t.Fatalf("no fact at exit")
	}
	return f
}

func TestForwardBranchJoin(t *testing.T) {
	g, _ := buildFunc(t, `
func f(c bool) {
	a := 1
	if c {
		b := 2
		use(b)
	}
	d := 3
	use(a, d)
}`)
	facts := Forward[map[string]bool](g, assignLattice{})
	f := factAt(t, facts, g)
	if !f["a"] || !f["d"] {
		t.Errorf("a and d must be definitely assigned at exit; got %v", f)
	}
	if f["b"] {
		t.Errorf("b is branch-only and must not survive the join; got %v", f)
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	g, _ := buildFunc(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		x := 1
		use(x)
	}
	y := 2
	use(y)
}`)
	facts := Forward[map[string]bool](g, assignLattice{})
	f := factAt(t, facts, g)
	if !f["i"] || !f["y"] {
		t.Errorf("i and y must be definitely assigned at exit; got %v", f)
	}
	if f["x"] {
		t.Errorf("x is loop-body-only and must not reach exit (zero iterations); got %v", f)
	}
}
