package cfg

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// Lattice defines one forward dataflow problem over facts of type F. Facts
// must be treated as immutable by Transfer and Join: the fixpoint engine
// caches and compares them across iterations.
type Lattice[F any] interface {
	// Entry is the fact holding at function entry.
	Entry() F
	// Join merges the facts arriving over two incoming edges.
	Join(a, b F) F
	// Equal reports whether two facts carry the same information; the
	// fixpoint terminates when every block's input stops changing.
	Equal(a, b F) bool
	// Transfer pushes a fact through one block's statements.
	Transfer(b *Block, in F) F
}

// Forward runs a forward fixpoint and returns each reachable block's input
// fact (the join over its incoming edges; Entry() for the entry block). The
// worklist is processed in block-index order, so iteration — and therefore
// any diagnostics emitted from a deterministic Transfer — is deterministic.
func Forward[F any](g *Graph, lat Lattice[F]) map[*Block]F {
	reach := g.Reachable()
	inSet := make(map[*Block]bool, len(reach))
	for _, b := range reach {
		inSet[b] = true
	}

	in := make(map[*Block]F, len(reach))
	out := make(map[*Block]F, len(reach))
	seeded := make(map[*Block]bool, len(reach))
	in[g.Entry] = lat.Entry()
	seeded[g.Entry] = true

	work := make([]*Block, len(reach))
	copy(work, reach)
	queued := make(map[*Block]bool, len(reach))
	for _, b := range work {
		queued[b] = true
	}

	for len(work) > 0 {
		// Pop the lowest-index queued block: deterministic and close to
		// reverse postorder for the builder's creation order.
		sort.Slice(work, func(i, j int) bool { return work[i].Index < work[j].Index })
		b := work[0]
		work = work[1:]
		queued[b] = false

		fact, have := in[b], seeded[b]
		for _, p := range b.Preds {
			if !inSet[p] {
				continue // edge from unreachable code
			}
			pf, ok := out[p]
			if !ok {
				continue // predecessor not transferred yet
			}
			if !have {
				fact, have = pf, true
			} else {
				fact = lat.Join(fact, pf)
			}
		}
		if !have {
			continue
		}
		if old, ok := in[b]; !ok || !lat.Equal(old, fact) || !doneOnce(out, b) {
			in[b] = fact
			seeded[b] = true
			o := lat.Transfer(b, fact)
			if oldOut, ok := out[b]; ok && lat.Equal(oldOut, o) {
				continue
			}
			out[b] = o
			for _, s := range b.Succs {
				if inSet[s] && !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

func doneOnce[F any](out map[*Block]F, b *Block) bool {
	_, ok := out[b]
	return ok
}

// String renders the graph for golden tests and debugging: one line per
// reachable block with its kind, statements, and successor indexes.
func (g *Graph) String(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.Reachable() {
		fmt.Fprintf(&sb, "b%d %s:", b.Index, b.Kind)
		for _, s := range b.Stmts {
			fmt.Fprintf(&sb, " [%s]", stmtText(fset, s))
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// stmtText renders one statement compactly: control statements show only
// their header, bodies are elided (they live in successor blocks).
func stmtText(fset *token.FileSet, s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.IfStmt:
		return "if " + exprString(fset, s.Cond)
	case *ast.ForStmt:
		if s.Cond == nil {
			return "for"
		}
		return "for " + exprString(fset, s.Cond)
	case *ast.RangeStmt:
		return "range " + exprString(fset, s.X)
	case *ast.SwitchStmt:
		if s.Tag == nil {
			return "switch"
		}
		return "switch " + exprString(fset, s.Tag)
	case *ast.TypeSwitchStmt:
		return "type-switch"
	case *ast.SelectStmt:
		return "select"
	}
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, s); err != nil {
		return fmt.Sprintf("<%T>", s)
	}
	return strings.Join(strings.Fields(sb.String()), " ")
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return fmt.Sprintf("<%T>", e)
	}
	return strings.Join(strings.Fields(sb.String()), " ")
}
