// Package ctxflow enforces context threading through request paths.
//
// Every cancellable operation in the repo — SQL probes via SelectContext /
// ExecContext / QueryContext, traversal admission via the governor,
// goroutines spawned by the scheduler — is cancellable only if the caller's
// context actually reaches it. A function that accepts a context.Context
// and then drops it, or mints a fresh context.Background() /
// context.TODO() mid-path, silently severs cancellation and deadlines for
// everything downstream: the server's per-request deadline stops bounding
// probe time, and load shedding stops reclaiming workers.
//
// Two checks:
//
//  1. A named, non-blank context.Context parameter must be used somewhere
//     in the function body.
//  2. A function that receives a context must not call
//     context.Background() or context.TODO(); it must derive from the
//     context it was handed.
//
// Top-level convenience wrappers without a context parameter (Select,
// Session.Run) stay legal: minting a root context is exactly their job.
package ctxflow

import (
	"go/ast"
	"go/types"

	"kwsdbg/internal/lint/analysis"
)

// Analyzer is the context-threading checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "a function receiving a context.Context must thread it onward, " +
		"not drop it or mint context.Background()/TODO() mid-path",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := ctxParams(pass, fd)
			if len(params) == 0 {
				continue
			}
			checkFunc(pass, fd, params)
		}
	}
	return nil
}

// ctxParams returns the named, non-blank context.Context parameters of fd.
func ctxParams(pass *analysis.Pass, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, params []*types.Var) {
	used := make(map[*types.Var]bool, len(params))
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok {
				for _, p := range params {
					if v == p {
						used[p] = true
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := rootContextCall(pass, n); ok {
				pass.Reportf(n.Pos(),
					"%s receives a context.Context but mints context.%s here; derive from the caller's context so cancellation and deadlines propagate",
					fd.Name.Name, name)
			}
		}
		return true
	})
	for _, p := range params {
		if !used[p] {
			pass.Reportf(p.Pos(),
				"%s drops its context.Context parameter %q; thread it to the probes/goroutines below or remove it",
				fd.Name.Name, p.Name())
		}
	}
}

// rootContextCall matches context.Background() and context.TODO().
func rootContextCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if n := fn.Name(); n == "Background" || n == "TODO" {
		return n, true
	}
	return "", false
}
