package ctxflow_test

import (
	"testing"

	"kwsdbg/internal/lint/ctxflow"
	"kwsdbg/internal/lint/linttest"
)

func TestCtxflowFixture(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/ctx")
}
