// Package ctx is the ctxflow analyzer's fixture: dropped contexts, minted
// roots, and the legal shapes on either side of the rule.
package ctx

import "context"

func work(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// drops takes a context and never touches it.
func drops(ctx context.Context) error { // want `drops drops its context\.Context parameter "ctx"`
	return nil
}

// mints uses its context but still manufactures a root mid-path, severing
// the caller's deadline for everything below.
func mints(ctx context.Context) error {
	if err := work(ctx); err != nil {
		return err
	}
	return work(context.Background()) // want `mints receives a context\.Context but mints context\.Background`
}

func mintsTODO(ctx context.Context) error {
	_ = ctx
	return work(context.TODO()) // want `mintsTODO receives a context\.Context but mints context\.TODO`
}

// threads is the correct shape: the parameter reaches the callee.
func threads(ctx context.Context) error {
	return work(ctx)
}

// derives is also fine: children of the caller's context keep its deadline.
func derives(ctx context.Context) error {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(child)
}

// root has no context parameter, so minting one is exactly its job.
func root() error {
	return work(context.Background())
}

// blank declares it wants no cancellation; that is an explicit choice.
func blank(_ context.Context) error {
	return nil
}

// waived records why a root context is correct here.
func waived(ctx context.Context) error {
	_ = ctx
	//lint:ignore kwslint/ctxflow detached audit write must outlive the request
	return work(context.Background())
}
