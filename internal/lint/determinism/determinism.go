// Package determinism enforces the repo's core correctness invariant at
// build time: the lattice pipeline's output is a pure function of the data.
//
// Phase 3 must classify the same MTNs and report the same MPANs regardless
// of worker count, probe path, or cache state — the property PRs 2–4 defend
// with byte-identical-output tests after the fact. Two bug classes break it
// silently:
//
//  1. Wall-clock or randomness reads in an output path. In the scoped
//     packages, calls to time.Now / time.Since (and friends) and any use of
//     math/rand are forbidden; timing measurement goes through the
//     sanctioned kwsdbg/internal/clock seam instead.
//  2. Map iteration order leaking into ordered output. A `range` over a map
//     whose values flow into a slice (without a sort.* / slices.Sort over
//     that slice before it is used), into a string or builder, or into a
//     return value, produces output that varies run to run — exactly the
//     bug class the byte-identical property tests exist to catch.
//
// Commutative map-range bodies (writes into another map, counter updates,
// deletes) are allowed. Waivers use //lint:ignore kwslint/determinism with
// a reason.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"kwsdbg/internal/lint/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock/randomness reads and map-iteration-order leaks " +
		"in the output-affecting packages (core, lattice, report, sqltext, obs, " +
		"probecache, invidx, bitset, bitprobe)",
	Run: run,
}

// Scope reports whether a package is output-affecting and therefore
// subject to the determinism invariant. Tests override it to point the
// analyzer at fixture packages. obs and obs/flight are scoped because they
// run inside probe loops: a clock read there would both perturb the traces
// they exist to measure and tempt timing into the flight recorder's events,
// which must stay a pure function of the run (timing enters an Event only as
// the oracle's already-measured SQL latency). probecache is scoped because
// verdict expiry decides probe outcomes: its TTL deadline must come through
// the clock seam, so tests (and the byte-identity property suite) can pin it.
// invidx is scoped because candidate sets feed the bitset probe path
// directly: its lookup timing must go through the clock seam and its posting
// lists must never inherit map order. bitset and core/bitprobe are scoped
// because they *are* a probe path — their verdicts must be a pure function
// of the data, with no clock reads and no map iteration at all on the hot
// path. vervec is scoped because version stamps decide verdict staleness,
// and storage because snapshot contents and index posting lists feed every
// probe. engine and server are deliberately out of scope: their time.Now /
// timer reads are service-edge measurements (retry backoff, admission
// deadlines, HTTP latency) — wall-clock there is the feature, not a leak.
var Scope = func(pkgPath string) bool {
	switch pkgPath {
	case "kwsdbg/internal/core", "kwsdbg/internal/lattice",
		"kwsdbg/internal/report", "kwsdbg/internal/sqltext",
		"kwsdbg/internal/obs", "kwsdbg/internal/obs/flight",
		"kwsdbg/internal/probecache", "kwsdbg/internal/invidx",
		"kwsdbg/internal/bitset", "kwsdbg/internal/core/bitprobe",
		"kwsdbg/internal/vervec", "kwsdbg/internal/storage":
		return true
	}
	return false
}

// forbiddenTime is the set of time-package functions whose results depend
// on when they run. time.Duration arithmetic and type references stay legal.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"Sleep": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	if !Scope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		checkImports(pass, f)
	}
	pass.Inspect(func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			checkTimeUse(pass, sel)
		}
		return true
	})
	checkMapRanges(pass)
	return nil
}

func checkImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(),
				"import of %s in output-affecting package %s: randomness makes the pipeline's output depend on more than the data",
				path, pass.Pkg.Path())
		}
	}
}

// checkTimeUse flags any reference to a forbidden time function — calls
// and bare value uses alike, so `f := time.Now` cannot smuggle one in.
func checkTimeUse(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !forbiddenTime[fn.Name()] {
		return
	}
	pass.Reportf(sel.Pos(),
		"use of time.%s in output-affecting package %s: route timing measurement through kwsdbg/internal/clock",
		fn.Name(), pass.Pkg.Path())
}

// checkMapRanges walks every statement list so a map-range can see the
// statements that follow it in its enclosing block (where the sort that
// launders iteration order must appear).
func checkMapRanges(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, st := range list {
				rng, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if _, isMap := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
					continue
				}
				checkOneRange(pass, rng, list[i+1:])
			}
			return true
		})
	}
}

// checkOneRange classifies how a map-range body uses the iteration and
// flags order-dependent flows. rest is the tail of the enclosing block
// after the range statement, searched for a laundering sort.
func checkOneRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	// sinks are the outer slice variables the body appends to; each must be
	// sorted after the loop.
	sinks := map[*types.Var]token.Pos{}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			pass.Reportf(n.Pos(),
				"return inside a map range: iteration order decides the result; iterate a sorted key slice instead")
		case *ast.AssignStmt:
			checkAssign(pass, n, rng, sinks)
		case *ast.CallExpr:
			checkBodyCall(pass, n)
		}
		return true
	})

	for v, pos := range sinks {
		if !sortedAfter(pass, v, rest) {
			pass.Reportf(pos,
				"map iteration order flows into slice %q with no sort.* / slices.Sort before use; sort it after the loop or iterate sorted keys",
				v.Name())
		}
	}
}

// checkAssign flags string accumulation and records slice appends.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, rng *ast.RangeStmt, sinks map[*types.Var]token.Pos) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, rhs := as.Lhs[0], as.Rhs[0]
	lhsType := pass.TypesInfo.TypeOf(lhs)

	// s += k, or s = s + k, where s is a string declared outside the loop.
	if isString(lhsType) && !declaredWithin(pass, lhs, rng) {
		if as.Tok == token.ADD_ASSIGN {
			pass.Reportf(as.Pos(), "map iteration order flows into string %s; iterate sorted keys", exprText(lhs))
			return
		}
		if bin, ok := rhs.(*ast.BinaryExpr); ok && as.Tok == token.ASSIGN && bin.Op == token.ADD && mentions(pass, bin, lhs) {
			pass.Reportf(as.Pos(), "map iteration order flows into string %s; iterate sorted keys", exprText(lhs))
			return
		}
	}

	// x = append(x, ...) — record the sink when x is an identifier declared
	// outside the loop; flag un-trackable destinations outright.
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isBuiltinAppend(pass, call) {
		return
	}
	id, ok := lhs.(*ast.Ident)
	if !ok {
		pass.Reportf(as.Pos(),
			"map iteration order flows into %s via append; collect into a local slice and sort it", exprText(lhs))
		return
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || declaredWithin(pass, id, rng) {
		return // loop-local accumulation stays inside the loop's own scope
	}
	if _, seen := sinks[v]; !seen {
		sinks[v] = as.Pos()
	}
}

// checkBodyCall flags writes into builders/buffers/writers inside the loop.
func checkBodyCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name

	// fmt.Fprint* — ordered output to a writer.
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && strings.HasPrefix(name, "Fprint") {
		pass.Reportf(call.Pos(),
			"map iteration order flows into fmt.%s output; iterate sorted keys", name)
		return
	}

	// strings.Builder / bytes.Buffer writes.
	switch name {
	case "WriteString", "WriteByte", "WriteRune", "Write":
	default:
		return
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return
	}
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if full == "strings.Builder" || full == "bytes.Buffer" {
		pass.Reportf(call.Pos(),
			"map iteration order flows into %s via %s; iterate sorted keys", full, name)
	}
}

// sortedAfter reports whether any statement after the loop both calls into
// package sort or slices and mentions v.
func sortedAfter(pass *analysis.Pass, v *types.Var, rest []ast.Stmt) bool {
	for _, st := range rest {
		sortCall, mentionsV := false, false
		ast.Inspect(st, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func); ok && fn.Pkg() != nil {
					if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
						sortCall = true
					}
				}
			case *ast.Ident:
				if pass.TypesInfo.ObjectOf(n) == v {
					mentionsV = true
				}
			}
			return true
		})
		if sortCall && mentionsV {
			return true
		}
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// declaredWithin reports whether the object behind e is declared inside the
// range statement (loop-local state is invisible outside the iteration).
func declaredWithin(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// mentions reports whether root's subtree uses the same object as target.
func mentions(pass *analysis.Pass, root ast.Node, target ast.Expr) bool {
	tid, ok := target.(*ast.Ident)
	if !ok {
		return false
	}
	tobj := pass.TypesInfo.ObjectOf(tid)
	if tobj == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == tobj {
			found = true
		}
		return !found
	})
	return found
}

// exprText renders a short expression for diagnostics.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	default:
		return "expression"
	}
}
