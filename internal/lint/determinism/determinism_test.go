package determinism_test

import (
	"testing"

	"kwsdbg/internal/lint/determinism"
	"kwsdbg/internal/lint/linttest"
)

// TestDeterminismFixture widens Scope to the fixture package and checks
// every diagnostic class against the fixture's want comments — including
// that a reason-less suppression suppresses nothing.
func TestDeterminismFixture(t *testing.T) {
	old := determinism.Scope
	determinism.Scope = func(string) bool { return true }
	defer func() { determinism.Scope = old }()
	linttest.Run(t, determinism.Analyzer, "testdata/det")
}

// TestOutOfScopePackagesUnchecked leaves Scope at its default: the fixture
// is full of would-be violations, and none may be reported, because the
// determinism invariant binds only the output-affecting packages.
func TestOutOfScopePackagesUnchecked(t *testing.T) {
	linttest.Run(t, determinism.Analyzer, "testdata/outofscope")
}

// TestDefaultScope pins the output-affecting package list: a change here is
// a deliberate contract change, not an accident.
func TestDefaultScope(t *testing.T) {
	for _, pkg := range []string{
		"kwsdbg/internal/core",
		"kwsdbg/internal/lattice",
		"kwsdbg/internal/report",
		"kwsdbg/internal/sqltext",
		"kwsdbg/internal/obs",
		"kwsdbg/internal/obs/flight",
		"kwsdbg/internal/probecache",
	} {
		if !determinism.Scope(pkg) {
			t.Errorf("Scope(%q) = false, want true", pkg)
		}
	}
	for _, pkg := range []string{"kwsdbg/internal/bench", "kwsdbg/internal/server"} {
		if determinism.Scope(pkg) {
			t.Errorf("Scope(%q) = true, want false", pkg)
		}
	}
}
