// Package det is the determinism analyzer's fixture: every violation class
// the analyzer knows, next to the laundered/commutative shapes it must leave
// alone. The test widens determinism.Scope to cover this package.
package det

import (
	"fmt"
	"io"
	_ "math/rand" // want `import of math/rand in output-affecting package`
	"sort"
	"strings"
	"time"
)

// badnow mirrors the planted violation of internal/core/traverse.go: a raw
// wall-clock read inside an output-affecting package.
func badnow() int64 {
	return time.Now().UnixNano() // want `use of time\.Now`
}

// badvalue proves value uses are caught, not just calls.
func badvalue() func() time.Time {
	f := time.Now // want `use of time\.Now`
	return f
}

func badsleep() {
	time.Sleep(time.Millisecond) // want `use of time\.Sleep`
}

// durationMath stays legal: only when-did-it-run reads are forbidden.
func durationMath(d time.Duration) time.Duration { return 2 * d }

// waived shows the sanctioned escape hatch: a directive with a reason.
func waived() int64 {
	//lint:ignore kwslint/determinism fixture exercises the waiver path
	return time.Now().UnixNano()
}

// noReason shows that a reason-less directive suppresses nothing and is
// itself reported.
func noReason() int64 {
	/*lint:ignore kwslint/determinism*/ // want `lint:ignore directive needs a non-empty reason`
	return time.Now().UnixNano() // want `use of time\.Now`
}

// renderCounts mirrors the planted violation of internal/report: map
// iteration order flowing into an ordered slice with no laundering sort.
func renderCounts(counts map[string]int) []string {
	var out []string
	for k := range counts {
		out = append(out, k) // want `map iteration order flows into slice "out"`
	}
	return out
}

// renderSorted launders the iteration order and stays clean.
func renderSorted(counts map[string]int) []string {
	var out []string
	for k := range counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// firstKey returns mid-iteration: which key wins depends on map order.
func firstKey(m map[string]int) string {
	for k := range m {
		return k // want `return inside a map range`
	}
	return ""
}

func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `map iteration order flows into string s`
	}
	return s
}

func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `strings\.Builder`
	}
	return b.String()
}

func dump(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) // want `fmt\.Fprintln`
	}
}

// invert is commutative — map writes are order-independent — and stays
// clean, as does counting.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	total := 0
	for k, v := range m {
		out[v] = k
		total += v
	}
	_ = total
	return out
}

// localSlice accumulates into a loop-local slice that never escapes the
// iteration; the analyzer leaves loop-scoped state alone.
func localSlice(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		tmp := []int{}
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}
