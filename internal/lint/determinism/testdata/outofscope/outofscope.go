// Package outofscope holds determinism violations in a package the default
// Scope does not cover: with Scope left alone, the analyzer must report
// nothing here (timing in the governor and benchmarks is legitimate).
package outofscope

import "time"

func legitimateTiming() time.Duration {
	start := time.Now()
	time.Sleep(time.Microsecond)
	return time.Since(start)
}

func anyOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
