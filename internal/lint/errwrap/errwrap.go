// Package errwrap enforces the repo's error-chain discipline.
//
// The governor's graceful-degradation logic, the engine's transient-fault
// retries, and the server's status mapping all classify failures with
// errors.Is — which only works while every layer preserves the chain. Two
// checks:
//
//  1. fmt.Errorf formatting an error value must use %w: an error flattened
//     with %v or %s is invisible to errors.Is/As downstream (this is how a
//     retryable fault turns into a permanent 500).
//  2. Error values must not be compared with == or != (except against
//     nil); sentinel checks go through errors.Is, which sees through
//     wrapping.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"kwsdbg/internal/lint/analysis"
)

// Analyzer is the error-wrapping checker.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf over error values must wrap with %w, and sentinel " +
		"comparisons must use errors.Is rather than == / !=",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				// Package-level initializers can still build errors.
				ast.Inspect(decl, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						checkErrorf(pass, call)
					}
					return true
				})
				continue
			}
			// An Is(error) bool method is the errors.Is protocol itself:
			// comparing target against the sentinel there is the idiom the
			// rest of the rule exists to enable.
			isMethod := fd.Name.Name == "Is" && fd.Recv != nil
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkErrorf(pass, n)
				case *ast.BinaryExpr:
					if !isMethod {
						checkComparison(pass, n)
					}
				}
				return true
			})
		}
	}
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // dynamic format string: nothing to prove
	}
	format := constant.StringVal(tv.Value)
	wraps := strings.Count(strings.ReplaceAll(format, "%%", ""), "%w")

	errArgs := 0
	var firstErr ast.Expr
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil {
			continue
		}
		if isErrorInterface(t) {
			errArgs++
			if firstErr == nil {
				firstErr = arg
			}
		}
	}
	if errArgs > wraps && firstErr != nil {
		pass.Reportf(firstErr.Pos(),
			"fmt.Errorf formats an error value without %%w; wrap it so errors.Is/As can see the cause")
	}
}

// isErrorInterface reports whether t is the error interface (the static
// type of an err variable). Concrete error implementations are left alone:
// formatting a concrete type with %v is often deliberate rendering.
func isErrorInterface(t types.Type) bool {
	it, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Identical(it, types.Universe.Lookup("error").Type().Underlying())
}

func checkComparison(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	if isNil(pass, bin.X) || isNil(pass, bin.Y) {
		return
	}
	xt, yt := pass.TypesInfo.TypeOf(bin.X), pass.TypesInfo.TypeOf(bin.Y)
	if xt == nil || yt == nil || !isErrorInterface(xt) && !isErrorInterface(yt) {
		return
	}
	// Only flag when at least one side is an error-typed expression and the
	// other is error-like too (sentinel var, error interface, or concrete
	// error implementation).
	if !implementsError(xt) || !implementsError(yt) {
		return
	}
	pass.Reportf(bin.Pos(),
		"error compared with %s; use errors.Is so wrapped chains still match", bin.Op)
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func implementsError(t types.Type) bool {
	if isErrorInterface(t) {
		return true
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}
