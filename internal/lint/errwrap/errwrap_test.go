package errwrap_test

import (
	"testing"

	"kwsdbg/internal/lint/errwrap"
	"kwsdbg/internal/lint/linttest"
)

func TestErrwrapFixture(t *testing.T) {
	linttest.Run(t, errwrap.Analyzer, "testdata/wrap")
}
