// Package wrap is the errwrap analyzer's fixture: flattened error chains
// and naked sentinel comparisons, next to the %w / errors.Is shapes that
// keep classification working.
package wrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// flatten loses the chain: errors.Is can no longer see the cause.
func flatten(err error) error {
	return fmt.Errorf("probe failed: %v", err) // want `fmt\.Errorf formats an error value without %w`
}

func flattenS(err error) error {
	return fmt.Errorf("probe failed: %s", err) // want `without %w`
}

// escaped shows %%w is not wrapping: the literal percent does not count.
func escaped(err error) error {
	return fmt.Errorf("literal %%w here: %v", err) // want `without %w`
}

// oneOfTwo wraps one error but flattens the other.
func oneOfTwo(e1, e2 error) error {
	return fmt.Errorf("%w while handling %v", e1, e2) // want `without %w`
}

// wraps preserves the chain.
func wraps(err error) error {
	return fmt.Errorf("probe failed: %w", err)
}

func wrapsBoth(e1, e2 error) error {
	return fmt.Errorf("%w while handling %w", e1, e2)
}

// renders formats only non-error values; nothing to wrap.
func renders(n int) error {
	return fmt.Errorf("bad row count %d", n)
}

// compares uses naked equality on error values.
func compares(err error) bool {
	return err == errSentinel // want `error compared with ==`
}

func comparesNe(err error) bool {
	return err != errSentinel // want `error compared with !=`
}

// classifies is the correct shape: errors.Is sees through wrapping.
func classifies(err error) bool {
	return errors.Is(err, errSentinel)
}

// nilChecks stay legal: err == nil is flow control, not classification.
func nilChecks(err error) bool {
	return err == nil || errors.Is(err, errSentinel)
}

type wrapped struct{ inner error }

func (w *wrapped) Error() string { return "wrapped: " + w.inner.Error() }

// Is implements the errors.Is protocol itself — the one place a == sentinel
// comparison is the idiom rather than the bug.
func (w *wrapped) Is(target error) bool { return target == errSentinel }

// waived records why rendering with %v is deliberate here.
func waived(err error) error {
	//lint:ignore kwslint/errwrap user-facing rendering, never classified
	return fmt.Errorf("display: %v", err)
}
