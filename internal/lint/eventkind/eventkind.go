// Package eventkind keeps the flight-recorder Kind enum, its wire names,
// its generated registry, and every consumer switch in lockstep.
//
// The flight recorder's Kind enum is the schema of the probe-provenance
// ledger: String() feeds wire names from the kindNames table, cmd/obsgen
// emits a KindRegistry for docs and tooling, and kwstrace classifies events
// by switching over Kind. Each of those surfaces can silently fall behind
// when a kind is added — the event records fine and then prints "unknown",
// vanishes from the registry, or slips through an analyzer switch into the
// wrong bucket. This analyzer closes the loop, obsgen-style:
//
//   - in the flight package itself (FlightPath, overridable for fixtures),
//     every exported Kind constant must have a kindNames entry and appear
//     in the generated KindRegistry;
//   - in any package, a switch over the flight Kind type that has no
//     default clause must list every kind. A default clause is the
//     explicit opt-out: it says "everything else goes here" on purpose.
package eventkind

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"kwsdbg/internal/lint/analysis"
)

// FlightPath is the import path of the package that declares the Kind enum;
// a var so fixture tests can point it at a miniature copy.
var FlightPath = "kwsdbg/internal/obs/flight"

// Analyzer is the flight-kind exhaustiveness checker.
var Analyzer = &analysis.Analyzer{
	Name: "eventkind",
	Doc: "every flight Kind constant needs a kindNames entry and a KindRegistry " +
		"row; switches over Kind without a default must cover every kind",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == FlightPath {
		checkDeclarations(pass)
	}
	checkSwitches(pass)
	return nil
}

// kindConsts lists the exported constants of the Kind type declared in
// scope, in declaration (value) order. The unexported count sentinel
// (numKinds) is excluded by the export filter.
func kindConsts(kind *types.Named) []*types.Const {
	scope := kind.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), kind) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := constant.Int64Val(out[i].Val())
		vj, _ := constant.Int64Val(out[j].Val())
		return vi < vj
	})
	return out
}

// flightKind resolves t to the flight Kind named type, or nil.
func flightKind(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Kind" {
		return nil
	}
	if pkg := named.Obj().Pkg(); pkg == nil || pkg.Path() != FlightPath {
		return nil
	}
	return named
}

// checkDeclarations verifies kindNames and KindRegistry coverage inside the
// flight package itself.
func checkDeclarations(pass *analysis.Pass) {
	kindObj, ok := pass.Pkg.Scope().Lookup("Kind").(*types.TypeName)
	if !ok {
		return
	}
	kind, ok := kindObj.Type().(*types.Named)
	if !ok {
		return
	}

	named := identKeys(pass, "kindNames")
	registry, haveRegistry := compositeRefs(pass, "KindRegistry")

	for _, c := range kindConsts(kind) {
		if !named[c.Name()] {
			pass.Reportf(c.Pos(),
				"flight Kind %s has no kindNames entry: String() will report it as %q", c.Name(), "unknown")
		}
		if haveRegistry && !registry[c.Name()] {
			pass.Reportf(c.Pos(),
				"flight Kind %s is missing from the generated KindRegistry; run `go generate ./internal/obs`", c.Name())
		}
	}
	if !haveRegistry {
		pass.Reportf(kindObj.Pos(),
			"package %s declares Kind but no KindRegistry; run `go generate ./internal/obs` to create it", pass.Pkg.Path())
	}
}

// identKeys collects the key identifiers of the named variable's composite
// literal ({KindUnknown: "unknown", ...}).
func identKeys(pass *analysis.Pass, varName string) map[string]bool {
	out := map[string]bool{}
	lit := varLiteral(pass, varName)
	if lit == nil {
		return out
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			out[id.Name] = true
		}
	}
	return out
}

// compositeRefs collects every identifier referenced anywhere inside the
// named variable's composite literal; the generated registry mentions each
// kind constant exactly once.
func compositeRefs(pass *analysis.Pass, varName string) (map[string]bool, bool) {
	lit := varLiteral(pass, varName)
	if lit == nil {
		return nil, false
	}
	out := map[string]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out, true
}

// varLiteral finds `var <name> = <composite literal>` in the package files.
func varLiteral(pass *analysis.Pass, name string) *ast.CompositeLit {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
						return cl
					}
				}
			}
		}
	}
	return nil
}

// checkSwitches enforces case coverage on default-less switches over Kind.
func checkSwitches(pass *analysis.Pass) {
	pass.Inspect(func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		t := pass.TypesInfo.TypeOf(sw.Tag)
		if t == nil {
			return true
		}
		kind := flightKind(t)
		if kind == nil {
			return true
		}

		covered := map[string]bool{}
		hasDefault := false
		for _, cc := range sw.Body.List {
			clause := cc.(*ast.CaseClause)
			if clause.List == nil {
				hasDefault = true
				continue
			}
			for _, e := range clause.List {
				switch e := e.(type) {
				case *ast.Ident:
					covered[e.Name] = true
				case *ast.SelectorExpr:
					covered[e.Sel.Name] = true
				}
			}
		}
		if hasDefault {
			return true
		}
		var missing []string
		for _, c := range kindConsts(kind) {
			if !covered[c.Name()] {
				missing = append(missing, c.Name())
			}
		}
		if len(missing) > 0 {
			pass.Reportf(sw.Pos(),
				"switch over flight Kind has no default and misses %s; add the cases or an explicit default",
				strings.Join(missing, ", "))
		}
		return true
	})
}
