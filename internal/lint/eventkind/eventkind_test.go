package eventkind_test

import (
	"testing"

	"kwsdbg/internal/lint/eventkind"
	"kwsdbg/internal/lint/linttest"
)

func TestEventkindFixture(t *testing.T) {
	old := eventkind.FlightPath
	eventkind.FlightPath = "kwsdbg/lintfixture/kind"
	defer func() { eventkind.FlightPath = old }()
	linttest.Run(t, eventkind.Analyzer, "testdata/kind")
}

func TestMissingRegistryReported(t *testing.T) {
	old := eventkind.FlightPath
	eventkind.FlightPath = "kwsdbg/lintfixture/noreg"
	defer func() { eventkind.FlightPath = old }()
	linttest.Run(t, eventkind.Analyzer, "testdata/noreg")
}

// TestDefaultFlightPath pins the production enum location: if the flight
// package moves, the analyzer must move with it.
func TestDefaultFlightPath(t *testing.T) {
	if got, want := eventkind.FlightPath, "kwsdbg/internal/obs/flight"; got != want {
		t.Fatalf("FlightPath = %q, want %q", got, want)
	}
}
