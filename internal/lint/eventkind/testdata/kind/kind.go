// Package kind is the eventkind fixture: a miniature flight Kind enum with
// one constant missing from both coverage tables, plus exhaustive and
// non-exhaustive consumer switches.
package kind

// Kind mirrors the flight recorder's event-kind enum.
type Kind uint8

const (
	KindUnknown Kind = iota
	Admit
	Verdict
	Orphan // want `flight Kind Orphan has no kindNames entry` `flight Kind Orphan is missing from the generated KindRegistry`

	numKinds
)

var kindNames = [numKinds]string{
	KindUnknown: "unknown",
	Admit:       "admit",
	Verdict:     "verdict",
}

// KindRegistry mirrors the obsgen-generated table.
var KindRegistry = []struct {
	Kind Kind
	Name string
}{
	{KindUnknown, "unknown"},
	{Admit, "admit"},
	{Verdict, "verdict"},
}

// String uses kindNames like the real package does.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// classify has no default and misses Orphan: the drift the rule exists for.
func classify(k Kind) string {
	switch k { // want `switch over flight Kind has no default and misses Orphan`
	case KindUnknown:
		return "u"
	case Admit:
		return "a"
	case Verdict:
		return "v"
	}
	return ""
}

// classifyDefault opts out explicitly with a default clause: clean.
func classifyDefault(k Kind) string {
	switch k {
	case Admit:
		return "a"
	default:
		return ""
	}
}

// exhaustive lists every kind: clean without a default.
func exhaustive(k Kind) string {
	switch k {
	case KindUnknown, Admit, Verdict, Orphan:
		return k.String()
	}
	return ""
}
