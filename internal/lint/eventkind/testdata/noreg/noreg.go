// Package noreg is the eventkind fixture for a Kind enum whose generated
// registry has never been created: the analyzer demands a go generate run.
package noreg

type Kind uint8 // want `declares Kind but no KindRegistry`

const (
	KindUnknown Kind = iota

	numKinds
)

var kindNames = [numKinds]string{
	KindUnknown: "unknown",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}
