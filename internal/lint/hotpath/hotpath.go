// Package hotpath enforces the allocation contract of `//kws:hotpath`
// functions.
//
// PR 8 found CounterVec.With burning ~1.5µs per warm probe — by manual
// profiling, after the regression shipped. The contract is now explicit: a
// function whose doc comment carries the `//kws:hotpath` directive (oracle
// IsAlive, bitprobe Probe, flight Log.Emit, probecache Get, bitset And) is
// on the per-probe path and must stay allocation-free. Inside such a
// function this analyzer forbids
//
//   - calls into fmt (Sprintf and friends allocate; formatting in an error
//     return is exempt — the error path is cold by definition),
//   - any reference to reflect,
//   - resolving a metric child through *Vec.With (pre-resolve it at
//     construction, the way obs/flight and bitprobe do),
//   - building strings inside loops (+= / s = s + x allocates per
//     iteration; loop membership comes from the cfg engine's back-edge
//     analysis),
//   - ranging over a map at all: iteration order is random, which is both
//     an allocation (hidden iterator) and a determinism leak.
//
// The static rule is pinned from the other side by a testing.AllocsPerRun
// budget test over the same annotation manifest (cmd/obsgen emits
// internal/lint/hotpath/manifest_gen.go), so removing the annotation to
// silence the lint also drops the function from the runtime budget — a diff
// a reviewer cannot miss.
package hotpath

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"kwsdbg/internal/lint/analysis"
	"kwsdbg/internal/lint/cfg"
)

// Directive is the doc-comment marker that opts a function into the
// hot-path contract.
const Directive = "//kws:hotpath"

// Analyzer is the hot-path allocation-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //kws:hotpath may not call fmt (outside error " +
		"returns), use reflect, resolve *Vec.With children, build strings in " +
		"loops, or range over maps",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !Annotated(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// Annotated reports whether fd's doc comment carries the hotpath directive.
// Directive-style comments are invisible to CommentGroup.Text, so the raw
// list is scanned.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

// span is a half-open source range; returnSpans marks return statements,
// whose fmt calls are cold error exits.
type span struct{ lo, hi token.Pos }

type spans []span

func (s spans) contains(p token.Pos) bool {
	for _, sp := range s {
		if sp.lo <= p && p < sp.hi {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name

	var returnSpans spans
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returnSpans = append(returnSpans, span{r.Pos(), r.End()})
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			switch packageOf(pass, n) {
			case "fmt":
				if !returnSpans.contains(n.Pos()) {
					pass.Reportf(n.Pos(),
						"%s is //kws:hotpath but calls fmt.%s outside an error return; format off the hot path",
						name, n.Sel.Name)
				}
			case "reflect":
				pass.Reportf(n.Pos(),
					"%s is //kws:hotpath but uses reflect.%s", name, n.Sel.Name)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "With" && isObsVec(pass, sel.X) {
				pass.Reportf(n.Pos(),
					"%s is //kws:hotpath but resolves a metric child with %s.With; pre-resolve it at construction",
					name, exprText(pass.Fset, sel.X))
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(),
						"%s is //kws:hotpath but ranges over a map (random order, hidden iterator allocation)", name)
				}
			}
		}
		return true
	})

	checkLoopStringBuild(pass, name, fd.Body)
}

// packageOf returns the package name when sel is a qualified reference
// (fmt.Sprintf, reflect.ValueOf), else "".
func packageOf(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isObsVec reports whether x is one of the obs metric-vector types, whose
// With resolves a child through a lock and a label-key build.
func isObsVec(pass *analysis.Pass, x ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(x)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Name(), "Vec") &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs")
}

// checkLoopStringBuild builds the function's CFG and flags string
// concatenation in blocks inside a loop.
func checkLoopStringBuild(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	g := cfg.New(body)
	loops := g.LoopBlocks()
	for _, b := range g.Reachable() {
		if !loops[b] {
			continue
		}
		for _, s := range b.Stmts {
			as, ok := s.(*ast.AssignStmt)
			if !ok {
				continue
			}
			if stringConcat(pass, as) {
				pass.Reportf(as.Pos(),
					"%s is //kws:hotpath but builds a string inside a loop; use a preallocated buffer off the hot path",
					name)
			}
		}
	}
}

// stringConcat matches s += x and s = s + x on string-typed operands.
func stringConcat(pass *analysis.Pass, as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(as.Lhs[0])
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.String {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN:
		return true
	case token.ASSIGN:
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		return ok && bin.Op == token.ADD && sameExprText(pass.Fset, bin.X, as.Lhs[0])
	}
	return false
}

func sameExprText(fset *token.FileSet, a, b ast.Expr) bool {
	return exprText(fset, a) == exprText(fset, b)
}

func exprText(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return ""
	}
	return sb.String()
}
