package hotpath_test

import (
	"testing"

	"kwsdbg/internal/lint/hotpath"
	"kwsdbg/internal/lint/linttest"
)

func TestHotpathFixture(t *testing.T) {
	linttest.Run(t, hotpath.Analyzer, "testdata/hot")
}
