// Package hot is the hotpath fixture: annotated functions that respect the
// allocation contract, each forbidden construct, and proof that unannotated
// functions are left alone.
package hot

import (
	"fmt"
	"reflect"

	"kwsdbg/internal/obs"
)

// vec exists so the fixture can exercise the *Vec.With rule against the
// real obs types. The fixture is type-checked, never run.
var vec = obs.Default.CounterVec("lintfixture_hits_total", "fixture counter.", "op")

var hit = vec.With("probe")

//kws:hotpath
func probe(keys []string) int {
	n := 0
	for _, k := range keys {
		n += len(k)
	}
	hit.Inc()
	return n
}

// errs may format in an error return: the error path is cold.
//
//kws:hotpath
func errs(v int) error {
	if v < 0 {
		return fmt.Errorf("negative: %d", v)
	}
	return nil
}

//kws:hotpath
func logs(v int) {
	fmt.Println(v) // want `logs is .*hotpath but calls fmt\.Println outside an error return`
}

//kws:hotpath
func sprintfs(v int) string {
	s := fmt.Sprintf("%d", v) // want `sprintfs is .*hotpath but calls fmt\.Sprintf`
	return s
}

//kws:hotpath
func reflects(v any) string {
	return reflect.TypeOf(v).String() // want `reflects is .*hotpath but uses reflect\.TypeOf`
}

//kws:hotpath
func counts(op string) {
	vec.With(op).Inc() // want `counts is .*hotpath but resolves a metric child with vec\.With`
}

//kws:hotpath
func concats(keys []string) string {
	s := ""
	for _, k := range keys {
		s += k // want `concats is .*hotpath but builds a string inside a loop`
	}
	return s
}

//kws:hotpath
func ranges(m map[string]int) int {
	n := 0
	for _, v := range m { // want `ranges is .*hotpath but ranges over a map`
		n += v
	}
	return n
}

// cold is unannotated: fmt, maps, and With are all fine here.
func cold(m map[string]int) string {
	s := ""
	for k, v := range m {
		s += fmt.Sprintf("%s=%d;", k, v)
	}
	vec.With("cold").Inc()
	return s
}
