// Package ignore implements kwslint's suppression directives.
//
// A directive has the form
//
//	//lint:ignore kwslint/<name>[,kwslint/<name>...] reason
//
// and suppresses matching diagnostics on its own source line and on the
// line immediately below it — so it works both as a trailing comment on the
// offending line and as a comment on the line above. The reason is
// mandatory: an invariant strong enough to be machine-enforced deserves a
// recorded justification wherever it is waived, and a directive without one
// is itself a diagnostic (kwslint/directive) and suppresses nothing.
package ignore

import (
	"go/ast"
	"go/token"
	"strings"

	"kwsdbg/internal/lint/analysis"
)

// DirectiveCheck is the check ID malformed directives are reported under.
const DirectiveCheck = "kwslint/directive"

// Directive is one parsed //lint:ignore comment.
type Directive struct {
	Pos    token.Pos
	File   string
	Line   int
	Checks []string // fully qualified check IDs, e.g. "kwslint/ctxflow"
	Reason string
}

// prefix is what a directive comment's text starts with after the
// comment markers are stripped.
const prefix = "lint:ignore"

// Parse extracts every well-formed directive from the files and reports a
// diagnostic for every malformed one (missing check list or empty reason).
func Parse(fset *token.FileSet, files []*ast.File) ([]Directive, []analysis.Diagnostic) {
	var dirs []Directive
	var malformed []analysis.Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, prefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					malformed = append(malformed, analysis.Diagnostic{
						Pos:     c.Pos(),
						Check:   DirectiveCheck,
						Message: "lint:ignore directive needs a check list and a reason",
					})
					continue
				}
				checks := strings.Split(fields[0], ",")
				reason := strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
				if reason == "" {
					malformed = append(malformed, analysis.Diagnostic{
						Pos:     c.Pos(),
						Check:   DirectiveCheck,
						Message: "lint:ignore directive needs a non-empty reason",
					})
					continue
				}
				dirs = append(dirs, Directive{
					Pos:    c.Pos(),
					File:   pos.Filename,
					Line:   pos.Line,
					Checks: checks,
					Reason: reason,
				})
			}
		}
	}
	return dirs, malformed
}

// Filter returns the diagnostics not covered by a directive. A directive
// covers a diagnostic when the check matches and the diagnostic sits on the
// directive's line or the one below it in the same file.
func Filter(fset *token.FileSet, dirs []Directive, diags []analysis.Diagnostic) []analysis.Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		file  string
		line  int
		check string
	}
	covered := make(map[key]bool)
	for _, d := range dirs {
		for _, c := range d.Checks {
			covered[key{d.File, d.Line, c}] = true
			covered[key{d.File, d.Line + 1, c}] = true
		}
	}
	var kept []analysis.Diagnostic
	for _, dg := range diags {
		pos := fset.Position(dg.Pos)
		if covered[key{pos.Filename, pos.Line, dg.Check}] {
			continue
		}
		kept = append(kept, dg)
	}
	return kept
}
