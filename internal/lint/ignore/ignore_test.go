package ignore

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"kwsdbg/internal/lint/analysis"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectives(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:ignore kwslint/errwrap rendering only
var a = 1

//lint:ignore kwslint/errwrap,kwslint/ctxflow shared waiver for both checks
var b = 2

//lint:ignore kwslint/lockcheck
var c = 3

//lint:ignore
var d = 4
`)
	dirs, malformed := Parse(fset, files)
	if len(dirs) != 2 {
		t.Fatalf("got %d well-formed directives, want 2: %+v", len(dirs), dirs)
	}
	if got := strings.Join(dirs[1].Checks, "+"); got != "kwslint/errwrap+kwslint/ctxflow" {
		t.Errorf("multi-check directive parsed as %q", got)
	}
	if dirs[0].Reason != "rendering only" {
		t.Errorf("reason = %q, want %q", dirs[0].Reason, "rendering only")
	}
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2 (empty reason, missing checks): %+v", len(malformed), malformed)
	}
	for _, d := range malformed {
		if d.Check != DirectiveCheck {
			t.Errorf("malformed directive reported under %q, want %q", d.Check, DirectiveCheck)
		}
	}
}

func TestFilterCoversLineAndLineBelow(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:ignore kwslint/errwrap waived for the fixture
var a = 1
var b = 2
`)
	dirs, malformed := Parse(fset, files)
	if len(malformed) != 0 || len(dirs) != 1 {
		t.Fatalf("parse: dirs=%d malformed=%d", len(dirs), len(malformed))
	}
	file := fset.File(files[0].Pos())
	at := func(line int) token.Pos { return file.LineStart(line) }

	diags := []analysis.Diagnostic{
		{Pos: at(3), Check: "kwslint/errwrap", Message: "on the directive line"},
		{Pos: at(4), Check: "kwslint/errwrap", Message: "on the line below"},
		{Pos: at(5), Check: "kwslint/errwrap", Message: "two lines below"},
		{Pos: at(4), Check: "kwslint/ctxflow", Message: "different check"},
	}
	kept := Filter(fset, dirs, diags)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %+v", len(kept), kept)
	}
	if kept[0].Message != "two lines below" || kept[1].Message != "different check" {
		t.Errorf("wrong diagnostics survived: %+v", kept)
	}
}

// TestEmptyReasonSuppressesNothing is the contract the issue calls out: a
// directive without a reason is reported and filters no diagnostics.
func TestEmptyReasonSuppressesNothing(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:ignore kwslint/errwrap
var a = 1
`)
	dirs, malformed := Parse(fset, files)
	if len(dirs) != 0 {
		t.Fatalf("reason-less directive parsed as well-formed: %+v", dirs)
	}
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "non-empty reason") {
		t.Fatalf("malformed = %+v, want one non-empty-reason diagnostic", malformed)
	}
	file := fset.File(files[0].Pos())
	diags := []analysis.Diagnostic{{Pos: file.LineStart(4), Check: "kwslint/errwrap", Message: "still reported"}}
	if kept := Filter(fset, dirs, diags); len(kept) != 1 {
		t.Fatalf("reason-less directive suppressed a diagnostic: kept=%+v", kept)
	}
}
