// Package leakcheck requires join or cancellation evidence for every `go`
// statement.
//
// A goroutine with no path to termination is a leak: it pins its stack and
// captures forever, and — worse for a debugger whose verdicts must be
// reproducible — it keeps mutating shared state after the work that spawned
// it has "finished". This analyzer accepts a goroutine only when its body
// carries one of the repo's termination idioms:
//
//   - it calls Done on a sync.WaitGroup (the scheduler / lattice-generator
//     join pattern),
//   - it consults ctx.Done() on a context.Context (cancellation-bound
//     select loops, server drain),
//   - it ranges over a channel (terminates when the producer closes it),
//   - it sends on or closes a channel (single-flight result delivery, the
//     errCh pattern: the goroutine ends after handing off its result).
//
// `go f(...)` with a same-package named callee is checked one level deep
// against f's body. Anything else needs an explicit
// `//lint:ignore kwslint/leakcheck <reason>` — a process-lifetime listener
// is fine, but the reason has to be written down.
package leakcheck

import (
	"go/ast"
	"go/types"

	"kwsdbg/internal/lint/analysis"
)

// Analyzer is the goroutine-leak evidence checker.
var Analyzer = &analysis.Analyzer{
	Name: "leakcheck",
	Doc: "every `go` statement needs join/cancel evidence: WaitGroup Done, " +
		"ctx.Done, channel range/send/close, or an explicit ignore with reason",
	Run: run,
}

func run(pass *analysis.Pass) error {
	bodies := declBodies(pass)
	pass.Inspect(func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !hasEvidence(pass, bodies, gs) {
			pass.Reportf(gs.Pos(),
				"goroutine has no join or cancellation evidence (WaitGroup Done, ctx.Done, "+
					"channel range/send/close); bound its lifetime or //lint:ignore kwslint/leakcheck with a reason")
		}
		return true
	})
	return nil
}

// declBodies indexes this package's function declarations by object, so
// `go f(...)` can be checked against f's body.
func declBodies(pass *analysis.Pass) map[types.Object]*ast.BlockStmt {
	out := map[types.Object]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				out[obj] = fd.Body
			}
		}
	}
	return out
}

func hasEvidence(pass *analysis.Pass, bodies map[types.Object]*ast.BlockStmt, gs *ast.GoStmt) bool {
	if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return bodyEvidence(pass, fl.Body)
	}
	if obj := calleeObject(pass, gs.Call.Fun); obj != nil {
		if body, ok := bodies[obj]; ok {
			return bodyEvidence(pass, body)
		}
	}
	// Method value, cross-package function, or computed callee: the body is
	// out of reach, so the call site must carry an ignore directive.
	return false
}

// calleeObject resolves `go f(...)` / `go pkg.f(...)` to the function object.
func calleeObject(pass *analysis.Pass, fun ast.Expr) types.Object {
	switch fun := fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(fun)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(fun.Sel)
	}
	return nil
}

// bodyEvidence scans a goroutine body for any accepted termination idiom.
func bodyEvidence(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupDone(pass, n) || isCtxDone(pass, n) || isClose(pass, n) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			found = true
			return false
		}
		return true
	})
	return found
}

// isWaitGroupDone matches wg.Done() where wg is a sync.WaitGroup.
func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return namedTypeIs(pass.TypesInfo.TypeOf(sel.X), "sync", "WaitGroup")
}

// isCtxDone matches ctx.Done() where ctx is a context.Context; a select over
// <-ctx.Done() is the canonical cancellation-bound loop.
func isCtxDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return namedTypeIs(pass.TypesInfo.TypeOf(sel.X), "context", "Context")
}

// isClose matches the builtin close(ch).
func isClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}
