package leakcheck_test

import (
	"testing"

	"kwsdbg/internal/lint/leakcheck"
	"kwsdbg/internal/lint/linttest"
)

func TestLeakcheckFixture(t *testing.T) {
	linttest.Run(t, leakcheck.Analyzer, "testdata/leak")
}
