// Package leak is the leakcheck fixture: each accepted termination idiom,
// the unbounded goroutines the analyzer exists to catch, and the ignore
// escape hatch.
package leak

import (
	"context"
	"sync"
)

func work(int)   {}
func run() error { return nil }
func forever() {
	for {
		work(1)
	}
}
func pump(ch chan int) {
	for v := range ch {
		work(v)
	}
}

// waits joins through a WaitGroup: clean.
func waits(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

// cancellable is bound to ctx cancellation: clean.
func cancellable(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				work(v)
			}
		}
	}()
}

// drains terminates when the producer closes the channel: clean.
func drains(ch chan int) {
	go func() {
		for v := range ch {
			work(v)
		}
	}()
}

// delivers ends after handing off its single result: clean.
func delivers() chan error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- run()
	}()
	return errCh
}

// spawnsWorker starts a named same-package function; its body is checked
// one level deep and ranges over the channel: clean.
func spawnsWorker(ch chan int) {
	go pump(ch)
}

// leaky spins forever with no join or cancellation path.
func leaky() {
	go func() { // want `goroutine has no join or cancellation evidence`
		for {
			work(0)
		}
	}()
}

// spawnsForever leaks through a named callee.
func spawnsForever() {
	go forever() // want `goroutine has no join or cancellation evidence`
}

// listener documents why its goroutine may outlive the caller.
func listener() {
	//lint:ignore kwslint/leakcheck process-lifetime listener by design
	go forever()
}
