// Package linttest is the golden-file harness for kwslint analyzers,
// modeled on golang.org/x/tools/go/analysis/analysistest (which the build
// environment does not vendor).
//
// A fixture is a directory of Go source under the analyzer's testdata tree.
// Expectations are written inline:
//
//	m := time.Now() // want `forbidden call to time\.Now`
//
// Each `// want "re1" "re2"` comment expects the diagnostics reported on
// its line to match the given regular expressions; unexpected diagnostics
// and unmatched expectations both fail the test. Suppression directives
// (package ignore) are applied before matching, so fixtures also exercise
// the //lint:ignore machinery — including the rule that a directive with an
// empty reason suppresses nothing and is itself reported.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"kwsdbg/internal/lint/analysis"
	"kwsdbg/internal/lint/ignore"
	"kwsdbg/internal/lint/loadpkg"
)

var (
	setOnce sync.Once
	set     *loadpkg.Set
	setErr  error
)

// sharedSet loads the enclosing module's dependency closure once per test
// process; every fixture package type-checks against it.
func sharedSet(t *testing.T) *loadpkg.Set {
	t.Helper()
	setOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			setErr = err
			return
		}
		set, setErr = loadpkg.Load(root, "./...")
	})
	if setErr != nil {
		t.Fatalf("linttest: loading module: %v", setErr)
	}
	return set
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run type-checks the fixture directory (relative to the test's working
// directory), runs the analyzer over it, applies suppression directives,
// and compares the surviving diagnostics — plus any malformed-directive
// diagnostics — against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	s := sharedSet(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg, err := s.CheckDir(abs, "kwsdbg/lintfixture/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: analyzer %s: %v", a.Name, err)
	}

	dirs, malformed := ignore.Parse(pkg.Fset, pkg.Files)
	diags := ignore.Filter(pkg.Fset, dirs, pass.Diags)
	diags = append(diags, malformed...)

	match(t, pkg, diags)
}

// want is one expectation: a compiled regexp at a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func match(t *testing.T, pkg *loadpkg.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		msg := d.Check + ": " + d.Message
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, msg)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitPatterns parses the quoted regexps of a want comment: double-quoted
// (Go escaping) or backquoted (raw) strings, whitespace separated.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
			}
			pats = append(pats, pat)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want patterns must be quoted, got: %s", pos, s)
		}
	}
	return pats
}
