// Package loadpkg loads and type-checks the module's packages for analysis
// without golang.org/x/tools/go/packages.
//
// One `go list -deps -export -json` invocation yields, for every package in
// the dependency closure, the path of its compiled export data in the build
// cache. Module packages are then parsed from source and type-checked with
// go/types, importing every dependency — standard library included —
// through the gc export-data importer. This is the same strategy
// go/packages uses in LoadTypes mode, reduced to what a single-module lint
// driver needs, and it works fully offline: the go toolchain compiles the
// export data itself, so there is no network and no GOPATH dependency.
package loadpkg

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// Set is the dependency closure of one Load call: export data for every
// package go list reported, plus the parsed module packages themselves.
type Set struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
	pkgs    []*Package
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path, Dir string }
}

// Load runs the go toolchain on the given patterns (relative to dir) and
// type-checks every matched module package from source. Patterns follow
// `go list` syntax; "./..." lints the whole module.
func Load(dir string, patterns ...string) (*Set, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// First resolve which packages the patterns actually name: -deps drags
	// in the whole dependency closure (needed for export data), but only
	// the matched packages get analyzed.
	matched := make(map[string]bool)
	out, err := runGoList(dir, append([]string{"list", "-json=ImportPath"}, patterns...))
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loadpkg: decoding go list output: %w", err)
		}
		matched[p.ImportPath] = true
	}

	out, err = runGoList(dir, append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module",
	}, patterns...))
	if err != nil {
		return nil, err
	}

	s := &Set{fset: token.NewFileSet(), exports: make(map[string]string)}
	s.imp = importer.ForCompiler(s.fset, "gc", s.lookup)

	var module []listPackage
	dec = json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loadpkg: decoding go list output: %w", err)
		}
		if p.Export != "" {
			s.exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil && matched[p.ImportPath] {
			module = append(module, p)
		}
	}

	// go list emits dependencies before dependents, so checking in emitted
	// order never imports an unchecked module package — but the gc importer
	// reads export data regardless, so order only affects error locality.
	for _, lp := range module {
		pkg, err := s.check(lp)
		if err != nil {
			return nil, err
		}
		s.pkgs = append(s.pkgs, pkg)
	}
	return s, nil
}

// runGoList executes one go command and returns stdout.
func runGoList(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loadpkg: go %s: %w\n%s",
			strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// lookup feeds the gc importer the export data go list reported.
func (s *Set) lookup(path string) (io.ReadCloser, error) {
	f, ok := s.exports[path]
	if !ok {
		return nil, fmt.Errorf("loadpkg: no export data for %q", path)
	}
	return os.Open(f)
}

// Packages returns the module packages in go list order (dependencies
// first).
func (s *Set) Packages() []*Package { return s.pkgs }

// Fset returns the shared file set positions are resolved against.
func (s *Set) Fset() *token.FileSet { return s.fset }

// check parses and type-checks one listed package.
func (s *Set) check(lp listPackage) (*Package, error) {
	files := make([]string, len(lp.GoFiles))
	for i, g := range lp.GoFiles {
		files[i] = filepath.Join(lp.Dir, g)
	}
	return s.checkFiles(lp.ImportPath, lp.Dir, files)
}

// CheckDir parses every non-test .go file directly inside dir as a single
// package and type-checks it against the set's export data. This is the
// linttest entry point: analyzer test fixtures live in testdata directories
// the go tool ignores, but may import anything in the module's dependency
// closure (including kwsdbg packages).
func (s *Set) CheckDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loadpkg: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("loadpkg: no .go files in %s", dir)
	}
	return s.checkFiles(importPath, dir, files)
}

func (s *Set) checkFiles(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(s.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loadpkg: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: s.imp}
	tpkg, err := conf.Check(importPath, s.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loadpkg: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       s.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
