// Package lockcheck enforces `// guarded by <mutex>` field annotations.
//
// The concurrency-sensitive state in this repo — the probe cache's LRU
// list+map, the plan caches, the governor's trip reason — is documented
// with a comment naming the mutex that guards each field. This analyzer
// turns the comment into a checked contract: an annotated field may only be
// read or written
//
//   - inside a method of the owning struct whose body acquires the named
//     mutex (recv.mu.Lock / recv.mu.RLock, usually with a deferred
//     Unlock), or
//   - inside a method whose name ends in "Locked" — the repo's convention
//     for helpers whose callers hold the lock, or
//   - on a struct-typed variable created locally inside a plain function
//     (constructors initialize fields before the value is shared).
//
// This is a lexical approximation, not an escape analysis: it will not
// catch a lock released early or an access to a *different* instance's
// field under the receiver's lock. It does catch the common regression —
// a new method or free function touching guarded state with no locking at
// all — which is the bug class code review keeps having to re-find.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"kwsdbg/internal/lint/analysis"
)

// Analyzer is the guarded-field checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "fields annotated `// guarded by mu` may only be accessed while " +
		"holding the named mutex (or from *Locked helpers / constructors)",
	Run: run,
}

// guardPattern extracts the mutex field name from an annotation comment.
var guardPattern = regexp.MustCompile(`(?i)\bguarded by (\w+)\b`)

// guard records that a field is protected by a named mutex of its struct.
type guard struct {
	structType *types.Named
	mutex      string
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards finds annotated fields in this package's struct types and
// validates that the named guard is a sync.Mutex/RWMutex sibling field.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := make(map[*types.Var]guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			named, ok := pass.TypesInfo.Defs[ts.Name].Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				if !hasMutexField(pass, st, mutex) {
					pass.Reportf(field.Pos(),
						"guarded-by annotation names %q, which is not a sync.Mutex/RWMutex field of %s",
						mutex, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guard{structType: named, mutex: mutex}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation reads a field's doc or trailing line comment.
func guardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardPattern.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

func hasMutexField(pass *analysis.Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, fn := range field.Names {
			if fn.Name != name {
				continue
			}
			t := pass.TypesInfo.TypeOf(field.Type)
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return false
			}
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			return full == "sync.Mutex" || full == "sync.RWMutex"
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]guard) {
	recvType, recvObj := receiver(pass, fd)
	for _, sel := range guardedSelections(pass, fd, guards) {
		g := guards[sel.field]
		switch {
		case recvType == g.structType:
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller holds the lock by convention
			}
			if locksMutex(pass, fd.Body, recvObj, g.mutex) {
				continue
			}
			pass.Reportf(sel.pos,
				"%s accesses %s.%s without acquiring %s (no %s.Lock/RLock in this method; name it *Locked if callers hold the lock)",
				fd.Name.Name, g.structType.Obj().Name(), sel.field.Name(), g.mutex, g.mutex)
		case localBase(pass, fd, sel.base):
			// Freshly constructed value inside a plain function: fields are
			// initialized before the value can be shared.
		default:
			pass.Reportf(sel.pos,
				"guarded field %s.%s accessed outside a method of %s; only its methods may touch it (guarded by %s)",
				g.structType.Obj().Name(), sel.field.Name(), g.structType.Obj().Name(), g.mutex)
		}
	}
}

// selection is one access to a guarded field.
type selection struct {
	pos   token.Pos
	field *types.Var
	base  ast.Expr
}

// guardedSelections finds every guarded-field access in fd.
func guardedSelections(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]guard) []selection {
	var out []selection
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		if _, guarded := guards[v]; guarded {
			out = append(out, selection{pos: sel.Sel.Pos(), field: v, base: sel.X})
		}
		return true
	})
	return out
}

// receiver resolves fd's receiver named type (pointer receivers
// dereferenced) and object.
func receiver(pass *analysis.Pass, fd *ast.FuncDecl) (*types.Named, types.Object) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil, nil
	}
	field := fd.Recv.List[0]
	t := pass.TypesInfo.TypeOf(field.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	var obj types.Object
	if len(field.Names) > 0 {
		obj = pass.TypesInfo.Defs[field.Names[0]]
	}
	return named, obj
}

// locksMutex reports whether body contains recv.<mutex>.Lock() or .RLock().
func locksMutex(pass *analysis.Pass, body *ast.BlockStmt, recvObj types.Object, mutex string) bool {
	if recvObj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		outer, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (outer.Sel.Name != "Lock" && outer.Sel.Name != "RLock") {
			return true
		}
		inner, ok := outer.X.(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != mutex {
			return true
		}
		id, ok := inner.X.(*ast.Ident)
		if ok && pass.TypesInfo.ObjectOf(id) == recvObj {
			found = true
			return false
		}
		return true
	})
	return found
}

// localBase reports whether the accessed value is a variable declared in
// fd's body (a constructor's fresh value, not yet shared).
func localBase(pass *analysis.Pass, fd *ast.FuncDecl, base ast.Expr) bool {
	for {
		switch b := base.(type) {
		case *ast.ParenExpr:
			base = b.X
		case *ast.StarExpr:
			base = b.X
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(b)
			return obj != nil && obj.Pos() > fd.Body.Lbrace && obj.Pos() < fd.Body.Rbrace
		default:
			return false
		}
	}
}
