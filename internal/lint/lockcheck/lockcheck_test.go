package lockcheck_test

import (
	"testing"

	"kwsdbg/internal/lint/linttest"
	"kwsdbg/internal/lint/lockcheck"
)

func TestLockcheckFixture(t *testing.T) {
	linttest.Run(t, lockcheck.Analyzer, "testdata/lock")
}
