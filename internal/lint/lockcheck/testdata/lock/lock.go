// Package lock is the lockcheck analyzer's fixture: a guarded LRU-shaped
// struct with correctly locked methods, the unlocked regressions the
// analyzer exists to catch, and each sanctioned escape hatch.
package lock

import "sync"

type cache struct {
	mu sync.Mutex
	// items is the live table. guarded by mu.
	items map[string]int
	// hits counts lookups. guarded by mu.
	hits int

	// cap is unannotated: accesses are unchecked.
	cap int
}

// get locks before touching guarded state: clean.
func (c *cache) get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	return c.items[k]
}

// peek reads a guarded field with no lock anywhere in the method.
func (c *cache) peek(k string) int {
	return c.items[k] // want `peek accesses cache\.items without acquiring mu`
}

// sizeLocked follows the *Locked naming convention: callers hold mu.
func (c *cache) sizeLocked() int { return len(c.items) }

// capacity touches only unannotated state: no lock required.
func (c *cache) capacity() int { return c.cap }

// newCache initializes guarded fields on a value no other goroutine can see
// yet: constructors are exempt.
func newCache(n int) *cache {
	c := &cache{items: make(map[string]int, n), cap: n}
	c.items["seed"] = 1
	return c
}

// drain reaches into guarded state from a plain function on a shared value.
func drain(c *cache) {
	for k := range c.items { // want `guarded field cache\.items accessed outside a method`
		delete(c.items, k) // want `guarded field cache\.items accessed outside a method`
	}
}

// approxLen records why a torn read is acceptable here.
func (c *cache) approxLen() int {
	//lint:ignore kwslint/lockcheck approximate stat, torn reads acceptable
	return len(c.items)
}

// rw proves RLock satisfies the annotation on a RWMutex guard.
type rw struct {
	lk sync.RWMutex
	// n is the shared counter. guarded by lk.
	n int
}

func (r *rw) read() int {
	r.lk.RLock()
	defer r.lk.RUnlock()
	return r.n
}

func (r *rw) badRead() int {
	return r.n // want `badRead accesses rw\.n without acquiring lk`
}

// misnamed annotates a field with a guard that is not a mutex sibling: the
// annotation itself is the bug.
type misnamed struct {
	// v is shared state. guarded by missing.
	v int // want `guarded-by annotation names "missing"`
}

func (m *misnamed) value() int { return m.v }
