// Package lockflow checks Lock/Unlock balance along every control-flow path
// and accumulates a cross-package lock-acquisition-order graph.
//
// lockcheck (PR 5) verifies that guarded fields are touched under *some*
// acquisition of the named mutex; it cannot see an early return that skips
// the Unlock, because it reads methods as bags of statements. lockflow runs
// the cfg engine instead: a must-held lattice (a lock is in the fact only if
// every path to this point acquired it and has not released it) flows
// forward, deferred unlocks — including unlocks inside deferred function
// literals — count as releases on every exit, and any return or fall-off end
// still holding a non-deferred lock is reported. Intersection join means a
// conditionally-acquired lock is never reported, trading false negatives for
// silence — the right bias for a gate that blocks `make verify`.
//
// The same walk feeds a process-global acquisition-order graph: acquiring B
// while holding A adds the edge A→B, where A and B are stable cross-package
// identifiers ("pkg.Type.field" for struct mutexes, "pkg.var" for
// package-level ones — the same mutexes `guarded by` annotations name).
// An edge that closes a cycle is a lock-order inversion — two goroutines
// taking the same pair in opposite orders can deadlock — and is reported at
// the acquisition that closes it. Local mutex variables have no stable
// identity and stay out of the graph.
package lockflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"kwsdbg/internal/lint/analysis"
	"kwsdbg/internal/lint/cfg"
)

// Analyzer is the path-sensitive lock balance and ordering checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockflow",
	Doc: "every mutex acquired must be released on all exit paths or via defer; " +
		"nested acquisitions must agree on a global lock order (deadlock risk)",
	Run: run,
}

// orderEdges is the cross-package acquisition-order graph: from -> to -> the
// position of one acquisition that witnessed the edge. It accumulates across
// every package the driver runs, which is the point: an A→B edge in storage
// and a B→A edge in server is a deadlock neither package can see alone.
var orderEdges = map[string]map[string]token.Pos{}

// ResetForTest clears the accumulated order graph between fixture runs.
func ResetForTest() { orderEdges = map[string]map[string]token.Pos{} }

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Name.Name, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, fd.Name.Name+": func literal", fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

// fact is the must-held lock state at a program point.
type fact struct {
	// held maps a lock key to the position of its acquisition. Keys are the
	// source path of the locked expression ("c.mu"), prefixed "R:" for read
	// locks so RLock/RUnlock balance independently of Lock/Unlock.
	held map[string]token.Pos
	// deferred marks locks whose release is scheduled by a defer on every
	// path reaching this point.
	deferred map[string]bool
}

func (f fact) clone() fact {
	out := fact{
		held:     make(map[string]token.Pos, len(f.held)),
		deferred: make(map[string]bool, len(f.deferred)),
	}
	for k, v := range f.held {
		out.held[k] = v
	}
	for k := range f.deferred {
		out.deferred[k] = true
	}
	return out
}

// lattice implements cfg.Lattice[fact]; apply is shared between the pure
// fixpoint transfer and the single post-fixpoint reporting walk.
type lattice struct {
	pass     *analysis.Pass
	funcName string
	// ids caches held-key → order-ID resolutions within one function walk
	// (the held map stores source paths, which only the acquiring selector
	// could resolve to a typed identity).
	ids map[string]string
}

func (l *lattice) Entry() fact {
	return fact{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (l *lattice) Join(a, b fact) fact {
	out := fact{held: map[string]token.Pos{}, deferred: map[string]bool{}}
	for k, pa := range a.held {
		if pb, ok := b.held[k]; ok {
			if pb < pa {
				pa = pb
			}
			out.held[k] = pa
		}
	}
	for k := range a.deferred {
		if b.deferred[k] {
			out.deferred[k] = true
		}
	}
	return out
}

func (l *lattice) Equal(a, b fact) bool {
	if len(a.held) != len(b.held) || len(a.deferred) != len(b.deferred) {
		return false
	}
	for k, v := range a.held {
		if w, ok := b.held[k]; !ok || v != w {
			return false
		}
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	return true
}

func (l *lattice) Transfer(b *cfg.Block, in fact) fact {
	return l.apply(b, in, false)
}

// apply pushes a fact through one block. With report set (the one
// post-fixpoint walk over converged inputs) it emits diagnostics and feeds
// the order graph; the fixpoint itself runs silent.
func (l *lattice) apply(b *cfg.Block, in fact, report bool) fact {
	f := in.clone()
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			l.call(call, &f, report)
		case *ast.DeferStmt:
			for _, key := range deferredReleases(s.Call) {
				f.deferred[key] = true
			}
		case *ast.ReturnStmt:
			if report {
				l.reportLeaks(f, s.Pos(), "returns")
			}
		}
	}
	return f
}

// call interprets one expression-statement call for lock effects.
func (l *lattice) call(call *ast.CallExpr, f *fact, report bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	key, kok := lockKey(sel.X, sel.Sel.Name)
	if !kok {
		return
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if report {
			if prev, dup := f.held[key]; dup && sel.Sel.Name == "Lock" {
				l.pass.Reportf(call.Pos(),
					"%s acquires %s twice without releasing it (first at %s): self-deadlock",
					l.funcName, exprPath(sel.X), l.pos(prev))
			}
			l.recordOrder(*f, sel, call.Pos())
		}
		f.held[key] = call.Pos()
	case "Unlock", "RUnlock":
		delete(f.held, key)
		delete(f.deferred, key)
	}
}

// reportLeaks flags every lock held and not deferred at an exit.
func (l *lattice) reportLeaks(f fact, pos token.Pos, how string) {
	keys := make([]string, 0, len(f.held))
	for k := range f.held {
		if !f.deferred[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		l.pass.Reportf(pos,
			"%s %s while holding %s (acquired at %s); unlock on every path or defer the unlock",
			l.funcName, how, displayKey(k), l.pos(f.held[k]))
	}
}

// recordOrder adds held→acquiring edges to the global order graph and
// reports any cycle the new edge closes.
func (l *lattice) recordOrder(f fact, sel *ast.SelectorExpr, pos token.Pos) {
	to := l.orderID(sel.X)
	if to == "" {
		return
	}
	for heldKey := range f.held {
		from := l.heldOrderID(heldKey)
		if from == "" || from == to {
			continue
		}
		if _, ok := orderEdges[from][to]; ok {
			continue
		}
		if path := orderPath(to, from); path != nil {
			l.pass.Reportf(pos,
				"lock order inversion: acquiring %s while holding %s, but the reverse order %s is established elsewhere (deadlock risk)",
				to, from, strings.Join(append(path, to), " -> "))
			continue // do not insert the inverted edge: keep the graph acyclic
		}
		if orderEdges[from] == nil {
			orderEdges[from] = map[string]token.Pos{}
		}
		orderEdges[from][to] = pos
	}
	// Remember how to map this function's held keys back to order IDs.
	if l.ids == nil {
		l.ids = map[string]string{}
	}
	key, _ := lockKey(sel.X, sel.Sel.Name)
	l.ids[key] = to
}

func (l *lattice) heldOrderID(heldKey string) string { return l.ids[heldKey] }

// orderPath returns a path from → … → to in the order graph, or nil.
func orderPath(from, to string) []string {
	seen := map[string]bool{from: true}
	type node struct {
		id   string
		path []string
	}
	queue := []node{{from, []string{from}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.id == to {
			return n.path
		}
		next := make([]string, 0, len(orderEdges[n.id]))
		for succ := range orderEdges[n.id] {
			next = append(next, succ)
		}
		sort.Strings(next)
		for _, succ := range next {
			if !seen[succ] {
				seen[succ] = true
				queue = append(queue, node{succ, append(append([]string{}, n.path...), succ)})
			}
		}
	}
	return nil
}

func (l *lattice) pos(p token.Pos) string {
	position := l.pass.Fset.Position(p)
	return fmt.Sprintf("line %d", position.Line)
}

// orderID resolves a locked expression to a stable cross-package identifier:
// "pkg.Type.field" for a mutex field of a named struct, "pkg.var" for a
// package-level mutex. Locals return "".
func (l *lattice) orderID(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		t := l.pass.TypesInfo.TypeOf(x.X)
		if t == nil {
			return ""
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
	case *ast.Ident:
		obj := l.pass.TypesInfo.ObjectOf(x)
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.ParenExpr:
		return l.orderID(x.X)
	}
	return ""
}

// lockKey builds the per-path identity of a locked expression; read locks
// get an "R:" prefix so the two lock modes balance independently.
func lockKey(x ast.Expr, method string) (string, bool) {
	path := exprPath(x)
	if path == "" {
		return "", false
	}
	if method == "RLock" || method == "RUnlock" {
		return "R:" + path, true
	}
	return path, true
}

func displayKey(k string) string {
	if rest, ok := strings.CutPrefix(k, "R:"); ok {
		return rest + " (read lock)"
	}
	return k
}

// exprPath flattens an ident/selector chain to its source path ("c.mu");
// anything more exotic (map index, function result) has no stable per-path
// identity and is skipped.
func exprPath(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprPath(x.X)
	case *ast.StarExpr:
		return exprPath(x.X)
	}
	return ""
}

// deferredReleases lists the lock keys a deferred call releases: a direct
// defer mu.Unlock(), or any Unlock/RUnlock inside a deferred func literal.
func deferredReleases(call *ast.CallExpr) []string {
	var out []string
	add := func(c *ast.CallExpr) {
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
			return
		}
		if key, ok := lockKey(sel.X, sel.Sel.Name); ok {
			out = append(out, key)
		}
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				add(c)
			}
			return true
		})
		return out
	}
	add(call)
	return out
}

// checkBody runs the fixpoint over one function body and then a single
// reporting walk with the converged block inputs.
func checkBody(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	g := cfg.New(body)
	lat := &lattice{pass: pass, funcName: name}
	in := cfg.Forward[fact](g, lat)
	for _, b := range g.Reachable() {
		f, ok := in[b]
		if !ok {
			continue
		}
		lat.apply(b, f, true)
	}
	// The fall-off end: blocks flowing into Exit whose last statement is not
	// a return were already reported per-return above; anything else still
	// holding a lock leaks it off the end of the function.
	for _, b := range g.Exit.Preds {
		f, ok := in[b]
		if !ok {
			continue // unreachable
		}
		if n := len(b.Stmts); n > 0 {
			if _, isRet := b.Stmts[n-1].(*ast.ReturnStmt); isRet {
				continue
			}
		}
		out := lat.apply(b, f, false)
		lat.reportLeaks(out, body.Rbrace, "falls off the end")
	}
}
