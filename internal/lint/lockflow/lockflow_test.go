package lockflow_test

import (
	"testing"

	"kwsdbg/internal/lint/linttest"
	"kwsdbg/internal/lint/lockflow"
)

func TestLockflowFixture(t *testing.T) {
	lockflow.ResetForTest()
	linttest.Run(t, lockflow.Analyzer, "testdata/flow")
}
