// Package flow is the lockflow fixture: balanced lock patterns the analyzer
// must stay silent on, the early-return leak it exists to catch, and a
// cross-function lock-order inversion.
package flow

import "sync"

type store struct {
	mu    sync.Mutex
	items map[string]int
}

// get is the canonical pattern: lock, defer unlock.
func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

// lookup releases explicitly on both paths: clean.
func (s *store) lookup(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// leakyLookup forgets the unlock on the early return.
func (s *store) leakyLookup(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.items[k]
	if !ok {
		return 0, false // want `leakyLookup returns while holding s\.mu`
	}
	s.mu.Unlock()
	return v, true
}

// fallOff leaks the lock off the end of the function.
func (s *store) fallOff() {
	s.mu.Lock()
	s.items["x"] = 1
} // want `fallOff falls off the end while holding s\.mu`

// double self-deadlocks: the second acquisition never proceeds.
func (s *store) double() {
	s.mu.Lock()
	s.mu.Lock() // want `double acquires s\.mu twice`
	s.mu.Unlock()
	s.mu.Unlock()
}

// deferredLit releases through a deferred func literal: clean.
func (s *store) deferredLit() {
	s.mu.Lock()
	defer func() {
		s.items["n"]++
		s.mu.Unlock()
	}()
	s.items["x"] = 2
}

// conditional acquisition is never reported: the lock is not must-held.
func (s *store) conditional(lock bool) {
	if lock {
		s.mu.Lock()
	}
	if lock {
		s.mu.Unlock()
	}
}

type rstore struct {
	rw sync.RWMutex
	n  int
}

// read balances the read lock: clean.
func (r *rstore) read() int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.n
}

// leakyRead returns while holding the read lock.
func (r *rstore) leakyRead() int {
	r.rw.RLock()
	if r.n > 0 {
		return r.n // want `leakyRead returns while holding r\.rw \(read lock\)`
	}
	r.rw.RUnlock()
	return 0
}

// handoff intentionally returns locked; the ignore directive records why.
func (s *store) handoff() {
	s.mu.Lock()
	s.items["handoff"] = 1
	//lint:ignore kwslint/lockflow caller releases via (*store).release
	return
}

// Package-level mutexes establish a global acquisition order.
var (
	muA sync.Mutex
	muB sync.Mutex
)

// abOrder establishes muA -> muB.
func abOrder() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

// baOrder takes the same pair in the opposite order: deadlock risk.
func baOrder() {
	muB.Lock()
	muA.Lock() // want `lock order inversion`
	muA.Unlock()
	muB.Unlock()
}
