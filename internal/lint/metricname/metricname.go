// Package metricname keeps the repo's metric namespace coherent.
//
// Every metric family created through internal/obs must (1) have a
// compile-time-constant name, (2) match ^kwsdbg_[a-z0-9_]+$ — one prefix,
// lowercase, Prometheus-safe — and (3) appear in the generated registry
// (internal/obs/registry.go, `go generate ./internal/obs`, emitted by
// cmd/obsgen). The registry is also what regenerates DESIGN.md's metric
// table, so a metric that builds is, by construction, a metric that is
// documented; the analyzer closes the loop by refusing names the registry
// does not know, which is how docs drift is turned into a build failure.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"kwsdbg/internal/lint/analysis"
	"kwsdbg/internal/obs"
)

// Analyzer is the metric-naming checker.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "metric names passed to internal/obs must be constant, match " +
		"^kwsdbg_[a-z0-9_]+$, and be declared in the generated registry",
	Run: run,
}

// Registered reports whether a metric name is in the generated registry.
// It is a variable so tests can pin the registry contents.
var Registered = func(name string) bool { return obs.RegisteredNames()[name] }

// NamePattern is the shape every metric family name must have.
var NamePattern = regexp.MustCompile(`^kwsdbg_[a-z0-9_]+$`)

// factoryMethods are the Registry methods whose first argument is a metric
// family name.
var factoryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

func run(pass *analysis.Pass) error {
	// The obs package itself (and its registry) defines the factories and
	// the name table; it creates no families of its own.
	if pass.Pkg.Path() == "kwsdbg/internal/obs" {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkCall(pass, call)
		return true
	})
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !factoryMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isObsRegistry(recv.Type()) {
		return
	}

	arg := call.Args[0]
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"metric name must be a compile-time constant string so the registry and docs can account for it")
		return
	}
	name := constant.StringVal(tv.Value)
	if !NamePattern.MatchString(name) {
		pass.Reportf(arg.Pos(),
			"metric name %q must match %s (kwsdbg_ prefix, lowercase, underscores)", name, NamePattern)
		return
	}
	if !Registered(name) {
		pass.Reportf(arg.Pos(),
			"metric %q is not in the generated registry; run `go generate ./internal/obs` (cmd/obsgen) to declare it and refresh DESIGN.md's metric table", name)
	}
}

func isObsRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "kwsdbg/internal/obs" && obj.Name() == "Registry"
}
