package metricname_test

import (
	"testing"

	"kwsdbg/internal/lint/linttest"
	"kwsdbg/internal/lint/metricname"
)

// TestMetricnameFixture pins the registry to the fixture's three sanctioned
// names so the test is independent of the real generated registry.
func TestMetricnameFixture(t *testing.T) {
	pinned := map[string]bool{
		"kwsdbg_fixture_good_total":   true,
		"kwsdbg_fixture_hist_seconds": true,
		"kwsdbg_fixture_vec_total":    true,
	}
	old := metricname.Registered
	metricname.Registered = func(name string) bool { return pinned[name] }
	defer func() { metricname.Registered = old }()
	linttest.Run(t, metricname.Analyzer, "testdata/metric")
}
