// Package metric is the metricname analyzer's fixture. The test pins the
// registry to exactly {kwsdbg_fixture_good_total, kwsdbg_fixture_hist_seconds,
// kwsdbg_fixture_vec_total}; everything else is rogue.
package metric

import "kwsdbg/internal/obs"

var (
	good = obs.Default.Counter("kwsdbg_fixture_good_total", "registered, well-formed")
	hist = obs.Default.Histogram("kwsdbg_fixture_hist_seconds", "registered histogram", nil)
	vec  = obs.Default.CounterVec("kwsdbg_fixture_vec_total", "registered vec", "outcome")

	rogue = obs.Default.Counter("kwsdbg_fixture_rogue_total", "never registered") // want `metric "kwsdbg_fixture_rogue_total" is not in the generated registry`
	// The flight recorder's families (kwsdbg_flight_*, kwsdbg_ledger_*) get no
	// special pass: an instrument someone adds to the recorder without
	// regenerating the registry is flagged like any other rogue.
	rogueFlight = obs.Default.Counter("kwsdbg_flight_rogue_total", "unregistered flight metric") // want `metric "kwsdbg_flight_rogue_total" is not in the generated registry`
	badPrefix   = obs.Default.Gauge("fixture_bad_prefix", "missing kwsdbg_ prefix")              // want `must match \^kwsdbg_`
	badCase     = obs.Default.Gauge("kwsdbg_Fixture_mixed", "uppercase letter")                  // want `must match \^kwsdbg_`
)

// dynamic builds the name at run time, so neither the registry nor the docs
// generator can account for it.
func dynamic(name string) *obs.Counter {
	return obs.Default.Counter(name, "dynamic") // want `metric name must be a compile-time constant`
}

// waived records why a legacy name survives outside the registry.
func waived() *obs.Counter {
	//lint:ignore kwslint/metricname legacy dashboard name kept for continuity
	return obs.Default.Counter("kwsdbg_fixture_legacy_total", "legacy")
}
