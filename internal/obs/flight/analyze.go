package flight

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file is the analysis half of the recorder: it turns a loaded ledger
// into per-probe event chains and answers the three triage questions kwstrace
// exposes — what happened (summary), where the time went (slow), and what
// changed between a good and a bad run (diff). It lives here rather than in
// cmd/kwstrace so servers and tests can call the same logic the CLI renders.

// ProbeStat is one lattice node's aggregated event chain within a run.
type ProbeStat struct {
	// Node is the lattice node ID the chain is keyed by.
	Node int32
	// Key is the cross-request probe-cache key, when any event carried it.
	// It is the identity used to match probes across two runs, because node
	// IDs are lattice-local while the key is structural.
	Key string
	// Events is the node's chain in sequence order.
	Events []Event

	Admits      int
	CacheHits   int
	CacheMisses int
	SQLExecs    int
	PlanReuses  int
	Replans     int
	Retries     int
	Verdicts    int
	// Suspects counts cached dead verdicts a write downgraded; Repairs how
	// many of this probe's re-executions restored a verdict for one.
	Suspects int
	Repairs  int
	// BitsetHits counts probes answered by bitmap semi-joins (no SQL);
	// BitsetFallbacks counts attempts the bitset engine declined to SQL.
	BitsetHits      int
	BitsetFallbacks int
	// SQLTime is the summed measured latency of the node's execution events
	// — SQLExec and BitsetHit both, so cross-path diffs attribute the full
	// probe-time delta.
	SQLTime time.Duration
	// Alive is the last committed verdict; meaningful when Verdicts > 0.
	Alive bool
}

// Identity is the cross-run matching key: the probe key when known, else a
// node-scoped fallback.
func (p *ProbeStat) Identity() string {
	if p.Key != "" {
		return p.Key
	}
	return fmt.Sprintf("node:%d", p.Node)
}

// Analysis is a digested run: per-probe chains plus run-level aggregates.
type Analysis struct {
	Ledger *Ledger
	// Probes holds one entry per probed lattice node, in first-activity
	// order.
	Probes []*ProbeStat
	// KindCounts tallies every event by kind (indexed by Kind).
	KindCounts [numKinds]int
	// CandSetHits/Misses aggregate the per-run candidate-set cache.
	CandSetHits   int
	CandSetMisses int
	// TotalSQL is the summed latency of all execution events (SQLExec and
	// BitsetHit).
	TotalSQL time.Duration
	// Exhausted is the governor's trip cause, "" if the run completed.
	Exhausted string
	// Shed marks a run refused at admission.
	Shed bool
}

// Analyze groups a ledger's event stream into per-probe chains.
func Analyze(led *Ledger) *Analysis {
	a := &Analysis{Ledger: led}
	byNode := make(map[int32]*ProbeStat)
	for _, ev := range led.Events {
		if int(ev.Kind) < len(a.KindCounts) {
			a.KindCounts[ev.Kind]++
		}
		switch ev.Kind {
		case CandSetHit:
			a.CandSetHits++
			continue
		case CandSetMiss:
			a.CandSetMisses++
			continue
		case Exhausted:
			a.Exhausted = ev.Cause
			continue
		case Shed:
			a.Shed = true
			continue
		default:
			// Every other kind is a per-probe event, handled below.
		}
		if ev.Node < 0 {
			continue
		}
		ps := byNode[ev.Node]
		if ps == nil {
			ps = &ProbeStat{Node: ev.Node}
			byNode[ev.Node] = ps
			a.Probes = append(a.Probes, ps)
		}
		ps.Events = append(ps.Events, ev)
		if ps.Key == "" && ev.Probe != "" {
			ps.Key = ev.Probe
		}
		switch ev.Kind {
		case Admit:
			ps.Admits++
		case ProbeCacheHit:
			ps.CacheHits++
		case ProbeCacheMiss:
			ps.CacheMisses++
		case SQLExec:
			ps.SQLExecs++
			ps.SQLTime += ev.Dur
			a.TotalSQL += ev.Dur
		case PlanReuse:
			ps.PlanReuses++
		case Replan:
			ps.Replans++
		case Retry:
			ps.Retries++
		case Verdict:
			ps.Verdicts++
			ps.Alive = ev.Alive
		case Suspect:
			ps.Suspects++
		case Repair:
			ps.Repairs++
		case BitsetHit:
			ps.BitsetHits++
			ps.SQLTime += ev.Dur
			a.TotalSQL += ev.Dur
		case BitsetFallback:
			ps.BitsetFallbacks++
		case KindUnknown, BudgetCharged, CandSetHit, CandSetMiss, Shed, Exhausted:
			// Run-level kinds were consumed by the first switch; KindUnknown
			// and BudgetCharged carry no per-probe statistic. Listed so the
			// eventkind analyzer proves this switch exhaustive: a new Kind
			// fails lint here until its per-probe handling is decided.
		}
	}
	return a
}

// Slowest returns up to top probes ordered by descending SQL time (ties by
// identity, so the order is stable).
func (a *Analysis) Slowest(top int) []*ProbeStat {
	out := make([]*ProbeStat, len(a.Probes))
	copy(out, a.Probes)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SQLTime != out[j].SQLTime {
			return out[i].SQLTime > out[j].SQLTime
		}
		return out[i].Identity() < out[j].Identity()
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// RenderSummary writes the human form of one run: the summary record when the
// ledger has one, then the event-kind tallies and cache accounting.
func (a *Analysis) RenderSummary(w io.Writer) {
	if s := a.Ledger.Summary; s != nil {
		fmt.Fprintf(w, "run %s: keywords=%s strategy=%s workers=%d data_version=%d\n",
			s.Req, strings.Join(s.Keywords, ","), s.Strategy, s.Workers, s.DataVersion)
		fmt.Fprintf(w, "  phases: map=%.3fms prune=%.3fms mtn=%.3fms traverse=%.3fms\n",
			s.MapMS, s.PruneMS, s.MTNMS, s.TraverseMS)
		fmt.Fprintf(w, "  probes=%d cache_hits=%d (%.0f%%) sql_issued=%d sql=%.3fms\n",
			s.Probes, s.CacheHits, 100*s.CacheHitRate(), s.SQLIssued, s.SQLMS)
		fmt.Fprintf(w, "  answers=%d non_answers=%d", s.Answers, s.NonAnswers)
		if s.Incomplete {
			fmt.Fprintf(w, " INCOMPLETE(%s)", s.IncompleteReason)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  events=%d probed_nodes=%d total_sql=%v candset_hits=%d candset_misses=%d\n",
		len(a.Ledger.Events), len(a.Probes), a.TotalSQL, a.CandSetHits, a.CandSetMisses)
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		if a.KindCounts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, a.KindCounts[k]))
		}
	}
	fmt.Fprintf(w, "  by kind: %s\n", strings.Join(parts, " "))
	if a.Exhausted != "" {
		fmt.Fprintf(w, "  budget exhausted: %s\n", a.Exhausted)
	}
}

// RenderSlow writes the top-N slowest probes with their full event chains.
func (a *Analysis) RenderSlow(w io.Writer, top int) {
	for _, ps := range a.Slowest(top) {
		fmt.Fprintf(w, "%v  node=%d  %s\n", ps.SQLTime, ps.Node, shortKey(ps.Key))
		for _, ev := range ps.Events {
			fmt.Fprintf(w, "    #%d %s%s\n", ev.Seq, ev.Kind, eventDetail(ev))
		}
	}
}

func eventDetail(ev Event) string {
	var sb strings.Builder
	if ev.Cause != "" {
		fmt.Fprintf(&sb, " cause=%s", ev.Cause)
	}
	if ev.Kind == SQLExec || ev.Kind == BitsetHit {
		fmt.Fprintf(&sb, " dur=%v alive=%t", ev.Dur, ev.Alive)
	}
	if ev.Kind == Verdict || ev.Kind == ProbeCacheHit || ev.Kind == Repair {
		fmt.Fprintf(&sb, " alive=%t", ev.Alive)
	}
	return sb.String()
}

// shortKey elides the middle of long probe keys for terminal output and
// renders the key's NUL binding separators visibly.
func shortKey(k string) string {
	k = strings.ReplaceAll(k, "\x00", "·")
	if len(k) > 96 {
		k = k[:60] + "…" + k[len(k)-35:]
	}
	return k
}

// DiffEntry is one probe whose behavior changed between run A (baseline) and
// run B (regressed).
type DiffEntry struct {
	Key          string
	ANode, BNode int32
	ASQL, BSQL   time.Duration
	// OnlyIn marks a probe present in just one run ("a" or "b", "" when in
	// both).
	OnlyIn string
	// NewlyMissed / NewlyReplanned / NewlyRetried mark probes that did more
	// cache missing / replanning / retrying in B than in A — the causal
	// suspects for B's extra SQL time.
	NewlyMissed    bool
	NewlyReplanned bool
	NewlyRetried   bool
	// NewlyRepaired marks probes whose extra work in B was verdict repair:
	// a write suspected their cached dead verdict and B re-proved it. Their
	// SQL time is correctness spend, not a cache regression.
	NewlyRepaired bool
	// NewlyBitset marks probes that B answered on the bitset path more than
	// A did — the causal attribution for a bitset-vs-SQL speedup.
	NewlyBitset bool
}

// Delta is the probe's SQL-time change (B minus A).
func (e *DiffEntry) Delta() time.Duration { return e.BSQL - e.ASQL }

// changed reports whether the entry is worth listing.
func (e *DiffEntry) changed() bool {
	return e.OnlyIn != "" || e.NewlyMissed || e.NewlyReplanned || e.NewlyRetried ||
		e.NewlyRepaired || e.NewlyBitset || e.ASQL != e.BSQL
}

// DiffResult is the causal comparison of two runs of the same query.
type DiffResult struct {
	A, B *Analysis
	// Entries lists changed probes, largest absolute SQL-time delta first.
	Entries []DiffEntry
	// SQLDelta is B's total SQL time minus A's.
	SQLDelta time.Duration
	// Explained is the part of SQLDelta attributable to probes that newly
	// missed a cache, replanned, retried, or only exist in B — the answer
	// to "where did the extra time come from".
	Explained time.Duration
	// NewlyMissed / NewlyReplanned / NewlyRetried / NewlyRepaired count the
	// flagged probes.
	NewlyMissed    int
	NewlyReplanned int
	NewlyRetried   int
	NewlyRepaired  int
	// NewlyBitset counts probes B answered on the bitset path more than A.
	NewlyBitset int
	// RepairedSQL is the part of Explained spent re-proving suspected
	// verdicts — expected spend under write churn, not a regression.
	RepairedSQL time.Duration
	// BitsetSQL is the part of Explained attributable to newly-bitset
	// probes — typically negative: the bitmap-semi-join speedup.
	BitsetSQL time.Duration
}

// Diff matches the two runs' probes by identity (probe key, falling back to
// node ID) and attributes the SQL-time delta.
func Diff(a, b *Analysis) *DiffResult {
	d := &DiffResult{A: a, B: b, SQLDelta: b.TotalSQL - a.TotalSQL}
	aBy := make(map[string]*ProbeStat, len(a.Probes))
	for _, ps := range a.Probes {
		aBy[ps.Identity()] = ps
	}
	bBy := make(map[string]*ProbeStat, len(b.Probes))
	for _, ps := range b.Probes {
		bBy[ps.Identity()] = ps
	}

	// Walk A's probes in run order, then B-only probes in run order: the
	// iteration is over slices, so the result is deterministic.
	for _, pa := range a.Probes {
		id := pa.Identity()
		pb := bBy[id]
		e := DiffEntry{Key: id, ANode: pa.Node, BNode: -1, ASQL: pa.SQLTime}
		if pb == nil {
			e.OnlyIn = "a"
		} else {
			e.BNode = pb.Node
			e.BSQL = pb.SQLTime
			e.NewlyMissed = pb.CacheMisses > pa.CacheMisses
			e.NewlyReplanned = pb.Replans > pa.Replans
			e.NewlyRetried = pb.Retries > pa.Retries
			e.NewlyRepaired = pb.Repairs > pa.Repairs
			e.NewlyBitset = pb.BitsetHits > pa.BitsetHits
		}
		d.add(e)
	}
	for _, pb := range b.Probes {
		id := pb.Identity()
		if _, inA := aBy[id]; inA {
			continue
		}
		// A probe only B ran: everything it did is new, so its misses,
		// replans, and retries are all "newly".
		d.add(DiffEntry{
			Key: id, ANode: -1, BNode: pb.Node, BSQL: pb.SQLTime, OnlyIn: "b",
			NewlyMissed:    pb.CacheMisses > 0,
			NewlyReplanned: pb.Replans > 0,
			NewlyRetried:   pb.Retries > 0,
			NewlyRepaired:  pb.Repairs > 0,
			NewlyBitset:    pb.BitsetHits > 0,
		})
	}

	sort.SliceStable(d.Entries, func(i, j int) bool {
		di, dj := absDur(d.Entries[i].Delta()), absDur(d.Entries[j].Delta())
		if di != dj {
			return di > dj
		}
		return d.Entries[i].Key < d.Entries[j].Key
	})
	return d
}

func (d *DiffResult) add(e DiffEntry) {
	if !e.changed() {
		return
	}
	if e.NewlyMissed {
		d.NewlyMissed++
	}
	if e.NewlyReplanned {
		d.NewlyReplanned++
	}
	if e.NewlyRetried {
		d.NewlyRetried++
	}
	if e.NewlyRepaired {
		d.NewlyRepaired++
		d.RepairedSQL += e.Delta()
	}
	if e.NewlyBitset {
		d.NewlyBitset++
		d.BitsetSQL += e.Delta()
	}
	if e.NewlyMissed || e.NewlyReplanned || e.NewlyRetried || e.NewlyRepaired ||
		e.NewlyBitset || e.OnlyIn == "b" {
		d.Explained += e.Delta()
	}
	d.Entries = append(d.Entries, e)
}

// signedDur renders a delta with an explicit sign so diffs read as changes.
func signedDur(d time.Duration) string {
	if d >= 0 {
		return "+" + d.String()
	}
	return d.String()
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// RenderDiff writes the triage view: the aggregate delta and how much of it
// the flagged probes explain, then the changed probes themselves.
func (d *DiffResult) RenderDiff(w io.Writer, aLabel, bLabel string, top int) {
	fmt.Fprintf(w, "A = %s  (sql %v, %d probed nodes)\n", aLabel, d.A.TotalSQL, len(d.A.Probes))
	fmt.Fprintf(w, "B = %s  (sql %v, %d probed nodes)\n", bLabel, d.B.TotalSQL, len(d.B.Probes))
	fmt.Fprintf(w, "sql delta (B-A): %v; explained by newly-missed/replanned/retried/new probes: %v",
		d.SQLDelta, d.Explained)
	if d.SQLDelta > 0 {
		fmt.Fprintf(w, " (%.0f%%)", 100*float64(d.Explained)/float64(d.SQLDelta))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "newly missed cache: %d probes; newly replanned: %d; newly retried: %d\n",
		d.NewlyMissed, d.NewlyReplanned, d.NewlyRetried)
	if d.NewlyRepaired > 0 {
		fmt.Fprintf(w, "verdict repairs: %d probes re-proved after writes suspected their cached verdicts (%v of the delta is repair spend, not regression)\n",
			d.NewlyRepaired, signedDur(d.RepairedSQL))
	}
	if d.NewlyBitset > 0 {
		fmt.Fprintf(w, "bitset path: %d probes newly answered by bitmap semi-joins (%v of the delta is bitset attribution)\n",
			d.NewlyBitset, signedDur(d.BitsetSQL))
	}
	n := 0
	for i := range d.Entries {
		e := &d.Entries[i]
		if top > 0 && n >= top {
			fmt.Fprintf(w, "... and %d more changed probes\n", len(d.Entries)-n)
			break
		}
		n++
		var flags []string
		if e.NewlyMissed {
			flags = append(flags, "newly-missed")
		}
		if e.NewlyReplanned {
			flags = append(flags, "newly-replanned")
		}
		if e.NewlyRetried {
			flags = append(flags, "newly-retried")
		}
		if e.NewlyRepaired {
			flags = append(flags, "repaired")
		}
		if e.NewlyBitset {
			flags = append(flags, "bitset")
		}
		if e.OnlyIn != "" {
			flags = append(flags, "only-in-"+e.OnlyIn)
		}
		tag := ""
		if len(flags) > 0 {
			tag = "  [" + strings.Join(flags, " ") + "]"
		}
		fmt.Fprintf(w, "  %s  %s%s\n", signedDur(e.Delta()), shortKey(e.Key), tag)
	}
}
