// Package flight is the probe-provenance flight recorder: an always-on,
// fixed-size ring buffer of structured probe-lifecycle events emitted from
// every hot-path decision point (scheduler admission, budget charges, probe
// and candidate-set cache lookups, plan reuse/replan, SQL execution, retries,
// verdict commits, load shedding).
//
// The paper's framing — explain *why* a system produced no answer — applies
// to the debugger itself: a slow or cache-cold run is a non-answer nobody can
// explain without knowing which probes missed which cache and where the SQL
// time went. The recorder captures exactly that, cheaply enough to leave on:
// one atomic sequence fetch plus one mutex-guarded 64-byte slot store per
// event, and a single nil check when recording is off.
//
// Events are keyed by request ID and probe key and stamped with a globally
// monotonic sequence number, so the interleaving of concurrent workers is
// totally ordered on replay. Events deliberately carry no wall-clock reads:
// the only time in an event is the SQL latency the oracle already measured,
// which keeps the recorder inside the determinism lint scope.
//
// A Log is the per-request handle: it stamps events with the request ID,
// forwards them to the shared ring, and — when ledger capture is on — keeps a
// private copy so the server can write a complete JSONL run ledger (see
// ledger.go) regardless of what else the ring has overwritten since.
package flight

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies one probe-lifecycle event type. The zero value is
// KindUnknown so ledgers written by newer builds load (and count) cleanly.
type Kind uint8

const (
	// KindUnknown marks an event whose kind this build does not know —
	// only seen when loading a ledger from a different schema revision.
	KindUnknown Kind = iota
	// Admit: the scheduler admitted a probe past the governor.
	Admit
	// BudgetCharged: the governor charged one probe against the budget;
	// Dur is unused, Cause carries the remaining budget when limited.
	BudgetCharged
	// ProbeCacheHit: the cross-request probe cache answered the probe.
	ProbeCacheHit
	// ProbeCacheMiss: the probe cache could not answer; Cause is the miss
	// class ("cold", "stale", "expired").
	ProbeCacheMiss
	// CandSetHit: the per-run candidate-set cache reused a keyword
	// candidate set during planning. Probe holds the set signature.
	CandSetHit
	// CandSetMiss: the candidate set had to be computed.
	CandSetMiss
	// PlanReuse: a prepared probe executed its compiled plan as-is.
	PlanReuse
	// Replan: a prepared probe recompiled its plan (first use or
	// DataVersion bump; Cause distinguishes "cold" from "stale").
	Replan
	// SQLExec: a probe reached the execution layer; Dur is the measured
	// latency and Alive the verdict it produced.
	SQLExec
	// Retry: a transient execution failure was retried; Cause is the
	// error text.
	Retry
	// Verdict: the scheduler committed the probe's classification in
	// serial order.
	Verdict
	// Shed: the server refused the request at admission (queue full).
	Shed
	// Exhausted: the governor tripped; Cause is "probe_budget" or
	// "deadline".
	Exhausted
	// Suspect: a cached dead verdict was downgraded to suspect because a
	// write intersected its table footprint; the probe re-executes instead
	// of trusting the verdict. Cause is the miss class ("suspect").
	Suspect
	// Repair: a suspect verdict was re-proved by a fresh probe and its
	// repaired classification stored back; Alive carries the new verdict
	// and Cause is "confirmed" (still dead) or "flipped" (now alive).
	Repair
	// BitsetHit: the bitset engine answered the probe with bitmap
	// semi-joins — no SQL executed. Dur is the measured latency (memo hits
	// land near zero) and Alive the verdict.
	BitsetHit
	// BitsetFallback: the bitset engine declined the probe and it fell back
	// to the prepared-SQL path; Cause names the uncoverable shape
	// ("unanchored", "cyclic", "disconnected", "no_table",
	// "no_text_columns", "join_type", "candset_churn").
	BitsetFallback

	numKinds
)

var kindNames = [numKinds]string{
	KindUnknown:    "unknown",
	Admit:          "admit",
	BudgetCharged:  "budget_charged",
	ProbeCacheHit:  "probecache_hit",
	ProbeCacheMiss: "probecache_miss",
	CandSetHit:     "candset_hit",
	CandSetMiss:    "candset_miss",
	PlanReuse:      "plan_reuse",
	Replan:         "replan",
	SQLExec:        "sql_exec",
	Retry:          "retry",
	Verdict:        "verdict",
	Shed:           "shed",
	Exhausted:      "exhausted",
	Suspect:        "suspect",
	Repair:         "repair",
	BitsetHit:      "bitset_hit",
	BitsetFallback: "bitset_fallback",
}

// String returns the stable wire name of the kind (used in ledgers, the
// /debug/flight dump, and the kwsdbg_flight_events_total kind label).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind maps a wire name back to its Kind; unknown names map to
// KindUnknown rather than failing, so newer ledgers degrade gracefully.
func ParseKind(s string) Kind {
	for k, n := range kindNames {
		if n == s {
			return Kind(k)
		}
	}
	return KindUnknown
}

// Event is one recorded probe-lifecycle fact. Events are plain values: the
// ring's slots are the pool, and recording copies the struct into a slot
// without allocating.
type Event struct {
	// Seq is the globally monotonic sequence number; it totally orders the
	// interleaving of concurrent workers.
	Seq uint64
	// Req is the request ID the event belongs to ("" for unattributed runs).
	Req string
	// Kind says what happened.
	Kind Kind
	// Node is the lattice node ID the event concerns, -1 when the event is
	// not tied to a node (candidate sets, shedding).
	Node int32
	// Alive carries the verdict for SQLExec / Verdict / ProbeCacheHit.
	Alive bool
	// Probe is the cross-request probe-cache key (canonical label plus
	// keyword bindings) for probe events, or the candidate-set signature
	// for CandSet events.
	Probe string
	// Cause qualifies the event: miss class, retry error, exhaustion
	// reason, remaining budget.
	Cause string
	// Dur is the measured SQL latency for SQLExec events; zero otherwise.
	// It is the run's only per-event timing and is reused from the
	// oracle's existing measurement — the recorder itself never reads the
	// clock.
	Dur time.Duration
}

// DefaultRingSize is the slot count used when a Recorder is built with
// size <= 0. At ~5.5 probes and ~4 events per probe per debug run, 4096
// slots hold on the order of 150 recent runs' worth of hot-path history.
const DefaultRingSize = 4096

// slot is one pooled event cell. Slots are overwritten in ring order; the
// mutex makes the 64-byte copy atomic with respect to snapshotters and to a
// lapped writer.
type slot struct {
	mu sync.Mutex
	// ev is the stored event; Seq == 0 means never written. guarded by mu.
	ev Event
}

// store copies ev into the slot unless the slot already holds a newer event
// (a writer that lapped the ring while this one was descheduled).
func (s *slot) store(ev *Event) {
	s.mu.Lock()
	if ev.Seq > s.ev.Seq {
		s.ev = *ev
	}
	s.mu.Unlock()
}

// load copies the slot's event out.
func (s *slot) load() Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ev
}

// DefaultRunCap is how many recent run summaries a Recorder retains for
// GET /debug/runs.
const DefaultRunCap = 64

// Recorder is the shared fixed-size ring. One Recorder serves the whole
// process; per-request Logs feed it. It additionally retains the most recent
// run summaries so /debug/runs can answer without any ledger configured.
type Recorder struct {
	mask  uint64
	slots []slot
	seq   atomic.Uint64

	runsMu sync.Mutex
	// runs is a ring of the most recent run summaries, oldest first once
	// full. guarded by runsMu.
	runs []RunSummary
	// runNext is the next write index into runs. guarded by runsMu.
	runNext int
	runCap  int
}

// NewRecorder builds a ring with at least size slots (rounded up to a power
// of two; size <= 0 means DefaultRingSize).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	mRingSlots.Set(float64(n))
	return &Recorder{mask: uint64(n - 1), slots: make([]slot, n), runCap: DefaultRunCap}
}

// record assigns the next sequence number and stores the event in its ring
// slot. Overwriting the oldest slot is the intended behavior: the ring is a
// bounded window of the most recent activity, not an archive — ledgers are
// the archive.
func (r *Recorder) record(ev *Event) {
	seq := r.seq.Add(1)
	ev.Seq = seq
	r.slots[(seq-1)&r.mask].store(ev)
}

// Snapshot copies out every live event in the ring, ordered by sequence
// number. req filters to one request ID when non-empty.
func (r *Recorder) Snapshot(req string) []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		ev := r.slots[i].load()
		if ev.Seq == 0 || (req != "" && ev.Req != req) {
			continue
		}
		out = append(out, ev)
	}
	sortEvents(out)
	return out
}

// AddRun retains a run summary in the recent-runs ring.
func (r *Recorder) AddRun(sum RunSummary) {
	r.runsMu.Lock()
	defer r.runsMu.Unlock()
	if len(r.runs) < r.runCap {
		r.runs = append(r.runs, sum)
		r.runNext = len(r.runs) % r.runCap
		return
	}
	r.runs[r.runNext] = sum
	r.runNext = (r.runNext + 1) % r.runCap
}

// Runs returns the retained run summaries, most recent first.
func (r *Recorder) Runs() []RunSummary {
	r.runsMu.Lock()
	defer r.runsMu.Unlock()
	out := make([]RunSummary, 0, len(r.runs))
	// Walk backwards from the newest entry (runNext-1) around the ring.
	for i := 0; i < len(r.runs); i++ {
		idx := (r.runNext - 1 - i + len(r.runs)) % len(r.runs)
		out = append(out, r.runs[idx])
	}
	return out
}

// Log is the per-request recording handle. A nil *Log is a valid no-op
// receiver for every method — instrumented code holds a *Log field and emits
// unconditionally; when recording is off the cost is the nil check, nothing
// else (no context walk, no allocation). This is the same discipline as
// obs.Span.
type Log struct {
	rec *Recorder
	req string
	// fallbackSeq sequences events when no ring is attached (capture-only
	// logs in tests and CLI runs).
	fallbackSeq atomic.Uint64
	// count tallies events emitted through this log, capture or not, so the
	// run summary can report it without buffering the stream.
	count atomic.Uint64

	capture bool
	mu      sync.Mutex
	// events is the private capture buffer for ledger writing; nil unless
	// capture was requested. guarded by mu.
	events []Event
}

// NewLog builds a recording handle. rec may be nil (capture-only); capture
// keeps a private copy of every event for ledger writing.
func NewLog(rec *Recorder, req string, capture bool) *Log {
	return &Log{rec: rec, req: req, capture: capture}
}

// Req returns the request ID the log stamps onto events.
func (l *Log) Req() string {
	if l == nil {
		return ""
	}
	return l.req
}

// Emit records one event. Safe on a nil receiver (single branch, zero
// allocations) and for concurrent use.
//
//kws:hotpath
func (l *Log) Emit(k Kind, node int, probe string, alive bool, dur time.Duration, cause string) {
	if l == nil {
		return
	}
	ev := Event{Req: l.req, Kind: k, Node: int32(node), Alive: alive, Probe: probe, Cause: cause, Dur: dur}
	if l.rec != nil {
		l.rec.record(&ev)
	} else {
		ev.Seq = l.fallbackSeq.Add(1)
	}
	evCounters[k].Inc()
	l.count.Add(1)
	if l.capture {
		l.mu.Lock()
		l.events = append(l.events, ev)
		l.mu.Unlock()
	}
}

// Count returns how many events the log has emitted.
func (l *Log) Count() int {
	if l == nil {
		return 0
	}
	return int(l.count.Load())
}

// Events returns the captured event stream in sequence order; nil when the
// log is nil or capture was off.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	l.mu.Unlock()
	sortEvents(out)
	return out
}

// sortEvents orders events by sequence number.
func sortEvents(evs []Event) {
	// Events come out of the ring nearly sorted (ring order is sequence
	// order except across the wrap point), so a simple insertion sort is
	// both deterministic and close to O(n).
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Seq < evs[j-1].Seq; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

type logKey struct{}

// NewContext returns a context carrying the log, for code paths that cannot
// hold a *Log field (the text-probe path reaches the engine through
// database/sql-style call chains).
func NewContext(ctx context.Context, l *Log) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, logKey{}, l)
}

// FromContext returns the context's log, or nil when the run is not being
// recorded through the context.
func FromContext(ctx context.Context) *Log {
	l, _ := ctx.Value(logKey{}).(*Log)
	return l
}
