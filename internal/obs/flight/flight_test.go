package flight

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if got := ParseKind(name); got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", name, got, k)
		}
	}
	if got := ParseKind("from-the-future"); got != KindUnknown {
		t.Errorf("ParseKind(unknown) = %v, want KindUnknown", got)
	}
	if got := Kind(200).String(); got != "unknown" {
		t.Errorf("Kind(200).String() = %q, want unknown", got)
	}
}

func TestNilLogIsSafeAndFree(t *testing.T) {
	var l *Log
	l.Emit(SQLExec, 3, "k", true, time.Millisecond, "")
	if l.Events() != nil || l.Count() != 0 || l.Req() != "" {
		t.Fatal("nil log should observe nothing")
	}
	// The recording-off path must cost a nil check and nothing else: the
	// acceptance criterion is zero allocations per event.
	allocs := testing.AllocsPerRun(1000, func() {
		l.Emit(Admit, 1, "key", false, 0, "")
	})
	if allocs != 0 {
		t.Errorf("nil Log.Emit allocates %v times per event, want 0", allocs)
	}
}

func TestRecordingEmitDoesNotAllocate(t *testing.T) {
	rec := NewRecorder(64)
	l := NewLog(rec, "req-1", false)
	allocs := testing.AllocsPerRun(1000, func() {
		l.Emit(SQLExec, 7, "probe-key", true, time.Millisecond, "")
	})
	if allocs != 0 {
		t.Errorf("ring Log.Emit allocates %v times per event, want 0", allocs)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	rec := NewRecorder(4) // power of two already
	l := NewLog(rec, "r", false)
	for i := 0; i < 10; i++ {
		l.Emit(Admit, i, "", false, 0, "")
	}
	evs := rec.Snapshot("")
	if len(evs) != 4 {
		t.Fatalf("snapshot has %d events, want ring size 4", len(evs))
	}
	// The ring must retain exactly the newest four (seq 7..10), in order.
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
		if want := int32(6 + i); ev.Node != want {
			t.Errorf("event %d has node %d, want %d", i, ev.Node, want)
		}
	}
}

func TestRingSizeRoundsUp(t *testing.T) {
	rec := NewRecorder(5)
	if len(rec.slots) != 8 {
		t.Errorf("NewRecorder(5) has %d slots, want 8", len(rec.slots))
	}
	if def := NewRecorder(0); len(def.slots) != DefaultRingSize {
		t.Errorf("NewRecorder(0) has %d slots, want %d", len(def.slots), DefaultRingSize)
	}
}

func TestSnapshotFiltersByRequest(t *testing.T) {
	rec := NewRecorder(64)
	a := NewLog(rec, "a", false)
	b := NewLog(rec, "b", false)
	a.Emit(Admit, 1, "", false, 0, "")
	b.Emit(Admit, 2, "", false, 0, "")
	a.Emit(Verdict, 1, "", true, 0, "")
	got := rec.Snapshot("a")
	if len(got) != 2 {
		t.Fatalf("Snapshot(a) = %d events, want 2", len(got))
	}
	for _, ev := range got {
		if ev.Req != "a" {
			t.Errorf("Snapshot(a) returned event for %q", ev.Req)
		}
	}
	if all := rec.Snapshot(""); len(all) != 3 {
		t.Errorf("Snapshot(\"\") = %d events, want 3", len(all))
	}
}

func TestCaptureSurvivesRingWrap(t *testing.T) {
	rec := NewRecorder(4)
	l := NewLog(rec, "r", true)
	for i := 0; i < 32; i++ {
		l.Emit(SQLExec, i, "k", i%2 == 0, time.Duration(i), "")
	}
	evs := l.Events()
	if len(evs) != 32 {
		t.Fatalf("capture kept %d events, want all 32 despite the 4-slot ring", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("capture out of order at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
	if l.Count() != 32 {
		t.Errorf("Count() = %d, want 32", l.Count())
	}
}

func TestCaptureOnlyLogSequences(t *testing.T) {
	l := NewLog(nil, "solo", true)
	l.Emit(Admit, 1, "", false, 0, "")
	l.Emit(Verdict, 1, "", true, 0, "")
	evs := l.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("capture-only log misnumbered: %+v", evs)
	}
}

func TestRunRingNewestFirstAndBounded(t *testing.T) {
	rec := NewRecorder(16)
	rec.runCap = 3
	for i := 1; i <= 5; i++ {
		rec.AddRun(RunSummary{Req: string(rune('0' + i))})
	}
	runs := rec.Runs()
	if len(runs) != 3 {
		t.Fatalf("retained %d runs, want 3", len(runs))
	}
	for i, want := range []string{"5", "4", "3"} {
		if runs[i].Req != want {
			t.Errorf("runs[%d].Req = %q, want %q (newest first)", i, runs[i].Req, want)
		}
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, Req: "r", Kind: Admit, Node: 4},
		{Seq: 2, Req: "r", Kind: ProbeCacheMiss, Node: 4, Probe: "J\x00k", Cause: "cold"},
		{Seq: 3, Req: "r", Kind: SQLExec, Node: 4, Probe: "J\x00k", Alive: true, Dur: 42 * time.Microsecond},
		{Seq: 4, Req: "r", Kind: Verdict, Node: 4, Alive: true},
	}
	sum := &RunSummary{Req: "r", Keywords: []string{"a", "b"}, Strategy: "SBH",
		Workers: 1, Probes: 1, SQLIssued: 1, SQLMS: 0.042, Answers: 1, Events: 4}
	var buf bytes.Buffer
	if err := WriteLedger(&buf, events, sum); err != nil {
		t.Fatal(err)
	}
	led, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(led.Events) != len(events) {
		t.Fatalf("read %d events, want %d", len(led.Events), len(events))
	}
	for i, ev := range led.Events {
		if ev != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, events[i])
		}
	}
	if led.Summary == nil || led.Summary.Req != "r" || led.Summary.Events != 4 {
		t.Errorf("summary = %+v, want the written one", led.Summary)
	}
	if got := led.Summary.CacheHitRate(); got != 0 {
		t.Errorf("CacheHitRate() = %v, want 0", got)
	}
}

func TestReadLedgerTolerant(t *testing.T) {
	raw := strings.Join([]string{
		`{"v":2,"type":"event","seq":1,"kind":"quantum_probe","node":7}`,
		`{"v":2,"type":"annotation","note":"future line type"}`,
		`{"v":1,"type":"event","seq":2,"kind":"admit","node":7}`,
		``,
		`{"v":1,"type":"summary","summary":{"req":"x","workers":1,"data_version":0,"map_ms":0,"prune_ms":0,"mtn_ms":0,"traverse_ms":0,"probes":0,"cache_hits":0,"sql_issued":0,"sql_ms":0,"answers":0,"non_answers":0}}`,
	}, "\n")
	led, err := ReadLedger(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(led.Events) != 2 {
		t.Fatalf("read %d events, want 2 (annotation skipped)", len(led.Events))
	}
	if led.Events[0].Kind != KindUnknown {
		t.Errorf("future kind parsed as %v, want KindUnknown", led.Events[0].Kind)
	}
	if led.Events[1].Kind != Admit {
		t.Errorf("known kind parsed as %v, want Admit", led.Events[1].Kind)
	}
	if led.Summary == nil || led.Summary.Req != "x" {
		t.Errorf("summary = %+v, want req x", led.Summary)
	}
}

func TestReadLedgerRejectsGarbage(t *testing.T) {
	if _, err := ReadLedger(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line should fail loudly, not silently skip")
	}
}

func TestWriteLedgerFileSanitizesStem(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteLedgerFile(dir, "../../evil req", nil, &RunSummary{Req: "evil"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(path, "..") || !strings.HasPrefix(path, dir) {
		t.Fatalf("unsafe ledger path %q", path)
	}
	if _, err := LoadLedger(path); err != nil {
		t.Fatalf("load back: %v", err)
	}
}

func TestAnalyzeGroupsChains(t *testing.T) {
	led := &Ledger{Events: []Event{
		{Seq: 1, Kind: CandSetMiss, Node: -1, Probe: "sig"},
		{Seq: 2, Kind: Admit, Node: 4},
		{Seq: 3, Kind: ProbeCacheMiss, Node: 4, Probe: "key4", Cause: "cold"},
		{Seq: 4, Kind: SQLExec, Node: 4, Probe: "key4", Alive: true, Dur: 10 * time.Millisecond},
		{Seq: 5, Kind: Verdict, Node: 4, Alive: true},
		{Seq: 6, Kind: Admit, Node: 9},
		{Seq: 7, Kind: ProbeCacheHit, Node: 9, Probe: "key9", Alive: false},
		{Seq: 8, Kind: Verdict, Node: 9, Alive: false},
		{Seq: 9, Kind: Exhausted, Node: -1, Cause: "probe_budget"},
	}}
	a := Analyze(led)
	if len(a.Probes) != 2 {
		t.Fatalf("grouped %d probes, want 2", len(a.Probes))
	}
	p4 := a.Probes[0]
	if p4.Node != 4 || p4.Identity() != "key4" || p4.SQLExecs != 1 || p4.SQLTime != 10*time.Millisecond || !p4.Alive {
		t.Errorf("node 4 chain wrong: %+v", p4)
	}
	p9 := a.Probes[1]
	if p9.CacheHits != 1 || p9.SQLExecs != 0 || p9.Alive {
		t.Errorf("node 9 chain wrong: %+v", p9)
	}
	if a.TotalSQL != 10*time.Millisecond || a.Exhausted != "probe_budget" || a.CandSetMisses != 1 {
		t.Errorf("aggregates wrong: %+v", a)
	}
	if got := a.Slowest(1); len(got) != 1 || got[0].Node != 4 {
		t.Errorf("Slowest(1) = %+v, want node 4", got)
	}
}

// TestDiffAttributesColdRun is the analyzer's core promise in miniature: run A
// is warm (all cache hits, no SQL), run B is cold (misses + SQL), and the diff
// must attribute the entire SQL-time delta to the newly missed probes.
func TestDiffAttributesColdRun(t *testing.T) {
	warm := Analyze(&Ledger{Events: []Event{
		{Seq: 1, Kind: Admit, Node: 4},
		{Seq: 2, Kind: ProbeCacheHit, Node: 4, Probe: "key4", Alive: true},
		{Seq: 3, Kind: Verdict, Node: 4, Alive: true},
	}})
	cold := Analyze(&Ledger{Events: []Event{
		{Seq: 1, Kind: Admit, Node: 7}, // different node ID: matching is by key
		{Seq: 2, Kind: ProbeCacheMiss, Node: 7, Probe: "key4", Cause: "cold"},
		{Seq: 3, Kind: SQLExec, Node: 7, Probe: "key4", Alive: true, Dur: 5 * time.Millisecond},
		{Seq: 4, Kind: Verdict, Node: 7, Alive: true},
		{Seq: 5, Kind: Admit, Node: 8},
		{Seq: 6, Kind: ProbeCacheMiss, Node: 8, Probe: "key8", Cause: "cold"},
		{Seq: 7, Kind: SQLExec, Node: 8, Probe: "key8", Alive: false, Dur: 2 * time.Millisecond},
		{Seq: 8, Kind: Verdict, Node: 8, Alive: false},
	}})
	d := Diff(warm, cold)
	if d.SQLDelta != 7*time.Millisecond {
		t.Fatalf("SQLDelta = %v, want 7ms", d.SQLDelta)
	}
	if d.Explained != d.SQLDelta {
		t.Errorf("Explained = %v, want the full delta %v", d.Explained, d.SQLDelta)
	}
	if d.NewlyMissed != 2 {
		t.Errorf("NewlyMissed = %d, want 2", d.NewlyMissed)
	}
	// Largest delta first: key4 (5ms) before key8 (2ms).
	if len(d.Entries) != 2 || d.Entries[0].Key != "key4" || d.Entries[1].Key != "key8" {
		t.Fatalf("entries = %+v, want key4 then key8", d.Entries)
	}
	if d.Entries[1].OnlyIn != "b" {
		t.Errorf("key8 OnlyIn = %q, want b", d.Entries[1].OnlyIn)
	}
	var buf bytes.Buffer
	d.RenderDiff(&buf, "warm", "cold", 10)
	out := buf.String()
	for _, want := range []string{"sql delta (B-A): 7ms", "newly missed cache: 2", "(100%)", "only-in-b"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderDiff output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSummaryAndSlow(t *testing.T) {
	led := &Ledger{
		Events: []Event{
			{Seq: 1, Kind: Admit, Node: 4},
			{Seq: 2, Kind: SQLExec, Node: 4, Probe: "key4", Alive: true, Dur: time.Millisecond},
		},
		Summary: &RunSummary{Req: "007", Keywords: []string{"x"}, Strategy: "SBH",
			Workers: 2, Probes: 1, CacheHits: 0, SQLIssued: 1, Incomplete: true, IncompleteReason: "deadline"},
	}
	var buf bytes.Buffer
	a := Analyze(led)
	a.RenderSummary(&buf)
	for _, want := range []string{"run 007", "INCOMPLETE(deadline)", "admit=1", "sql_exec=1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	a.RenderSlow(&buf, 5)
	if !strings.Contains(buf.String(), "node=4") || !strings.Contains(buf.String(), "dur=1ms") {
		t.Errorf("slow view missing probe chain:\n%s", buf.String())
	}
}

func TestContextRoundTrip(t *testing.T) {
	l := NewLog(nil, "ctx", false)
	ctx := NewContext(t.Context(), l)
	if FromContext(ctx) != l {
		t.Fatal("FromContext lost the log")
	}
	if FromContext(t.Context()) != nil {
		t.Fatal("FromContext on bare context should be nil")
	}
	if got := NewContext(t.Context(), nil); FromContext(got) != nil {
		t.Fatal("NewContext(nil) should not install anything")
	}
}

func BenchmarkEmitRingOnly(b *testing.B) {
	rec := NewRecorder(DefaultRingSize)
	l := NewLog(rec, "bench", false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(SQLExec, 7, "probe-key", true, time.Millisecond, "")
	}
}

func BenchmarkEmitNil(b *testing.B) {
	var l *Log
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(SQLExec, 7, "probe-key", true, time.Millisecond, "")
	}
}
