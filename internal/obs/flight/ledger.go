package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// LedgerVersion is the schema revision stamped on every ledger line. Readers
// are tolerant: unknown line types and event kinds are skipped or mapped to
// KindUnknown, so a v1 kwstrace degrades gracefully on a v2 ledger instead
// of refusing it.
const LedgerVersion = 1

// RunSummary is the one-record digest of a debug run: identity, shape, and
// the accounting the paper's figures are built from (probe counts, cache hit
// rates, SQL time, phase timings). It closes every ledger and populates
// GET /debug/runs.
type RunSummary struct {
	// Req is the server request ID, doubling as the ledger file stem.
	Req string `json:"req"`
	// UnixNS is the wall-clock completion time (from internal/clock).
	UnixNS int64 `json:"unix_ns,omitempty"`
	// Keywords and Strategy identify what was debugged and how.
	Keywords []string `json:"keywords,omitempty"`
	Strategy string   `json:"strategy,omitempty"`
	// Workers is the traversal worker count.
	Workers int `json:"workers"`
	// DataVersion is the engine's data generation the run executed against;
	// two ledgers with different versions are not cache-comparable.
	DataVersion uint64 `json:"data_version"`

	// Per-phase wall timings in milliseconds.
	MapMS      float64 `json:"map_ms"`
	PruneMS    float64 `json:"prune_ms"`
	MTNMS      float64 `json:"mtn_ms"`
	TraverseMS float64 `json:"traverse_ms"`

	// Probes is total aliveness checks (cache hits included); SQLIssued is
	// the subset that reached the database, costing SQLMS milliseconds.
	Probes    int     `json:"probes"`
	CacheHits int     `json:"cache_hits"`
	SQLIssued int     `json:"sql_issued"`
	SQLMS     float64 `json:"sql_ms"`

	PlanCompiles  int `json:"plan_compiles,omitempty"`
	CandSetHits   int `json:"candset_hits,omitempty"`
	CandSetMisses int `json:"candset_misses,omitempty"`

	// BudgetLimit is the probe budget (0 = unlimited); Incomplete and
	// IncompleteReason mark a run the governor cut short.
	BudgetLimit      int    `json:"budget_limit,omitempty"`
	Incomplete       bool   `json:"incomplete,omitempty"`
	IncompleteReason string `json:"incomplete_reason,omitempty"`

	Answers    int `json:"answers"`
	NonAnswers int `json:"non_answers"`
	// Events is how many flight events the run emitted.
	Events int `json:"events,omitempty"`
}

// CacheHitRate is hits over probes, 0 when no probes ran.
func (s *RunSummary) CacheHitRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Probes)
}

// eventLine is the wire form of one event. Kind travels as its string name
// so ledgers stay greppable and survive enum renumbering.
type eventLine struct {
	V     int    `json:"v"`
	Type  string `json:"type"`
	Seq   uint64 `json:"seq"`
	Req   string `json:"req,omitempty"`
	Kind  string `json:"kind"`
	Node  int32  `json:"node"`
	Probe string `json:"probe,omitempty"`
	Alive bool   `json:"alive,omitempty"`
	DurNS int64  `json:"dur_ns,omitempty"`
	Cause string `json:"cause,omitempty"`
}

// summaryLine closes the ledger.
type summaryLine struct {
	V       int         `json:"v"`
	Type    string      `json:"type"`
	Summary *RunSummary `json:"summary"`
}

// WriteLedger streams the run as JSONL: one line per event in sequence
// order, then the summary record.
func WriteLedger(w io.Writer, events []Event, sum *RunSummary) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		ev := &events[i]
		line := eventLine{
			V: LedgerVersion, Type: "event",
			Seq: ev.Seq, Req: ev.Req, Kind: ev.Kind.String(), Node: ev.Node,
			Probe: ev.Probe, Alive: ev.Alive, DurNS: int64(ev.Dur), Cause: ev.Cause,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	if sum != nil {
		if err := enc.Encode(summaryLine{V: LedgerVersion, Type: "summary", Summary: sum}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteLedgerFile writes the run's ledger to dir/run-<req>.jsonl and returns
// the path. It owns the ledger metrics: runs, bytes, and write errors.
func WriteLedgerFile(dir, req string, events []Event, sum *RunSummary) (string, error) {
	path := filepath.Join(dir, "run-"+sanitizeStem(req)+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		mLedgerErrors.Inc()
		return "", fmt.Errorf("ledger: %w", err)
	}
	cw := &countingWriter{w: f}
	werr := WriteLedger(cw, events, sum)
	cerr := f.Close()
	mLedgerBytes.Add(float64(cw.n))
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		mLedgerErrors.Inc()
		return "", fmt.Errorf("ledger %s: %w", path, werr)
	}
	mLedgerRuns.Inc()
	return path, nil
}

// sanitizeStem keeps the request ID filesystem-safe.
func sanitizeStem(req string) string {
	if req == "" {
		return "unnamed"
	}
	b := []byte(req)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Ledger is one loaded run: its event stream (sequence-ordered) and summary.
type Ledger struct {
	// Path is where the ledger was loaded from ("" for readers).
	Path    string
	Events  []Event
	Summary *RunSummary
}

// maxLedgerLine bounds one JSONL line; probe keys are label+keywords, well
// under this.
const maxLedgerLine = 1 << 20

// ReadLedger parses a JSONL ledger stream. Lines with unknown types are
// skipped; unknown event kinds load as KindUnknown.
func ReadLedger(r io.Reader) (*Ledger, error) {
	led := &Ledger{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLedgerLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, fmt.Errorf("ledger line %d: %w", lineNo, err)
		}
		switch head.Type {
		case "event":
			var el eventLine
			if err := json.Unmarshal(raw, &el); err != nil {
				return nil, fmt.Errorf("ledger line %d: %w", lineNo, err)
			}
			led.Events = append(led.Events, Event{
				Seq: el.Seq, Req: el.Req, Kind: ParseKind(el.Kind), Node: el.Node,
				Probe: el.Probe, Alive: el.Alive, Dur: time.Duration(el.DurNS), Cause: el.Cause,
			})
		case "summary":
			var sl summaryLine
			if err := json.Unmarshal(raw, &sl); err != nil {
				return nil, fmt.Errorf("ledger line %d: %w", lineNo, err)
			}
			led.Summary = sl.Summary
		default:
			// Forward compatibility: a newer writer may add line types.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sortEvents(led.Events)
	return led, nil
}

// LoadLedger reads a ledger file from disk.
func LoadLedger(path string) (*Ledger, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	led, err := ReadLedger(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	led.Path = path
	return led, nil
}
