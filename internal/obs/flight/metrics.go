package flight

import "kwsdbg/internal/obs"

// Recorder metrics. The per-kind event counters answer "is the workload
// cache-hot" from a plain /metrics scrape, without pulling a ledger; the
// ledger counters watch the opt-in archive path for write failures.
//
// CounterVec.With builds a label key (and allocates) on every call, so the
// per-kind counters are resolved once into an array indexed by Kind — the
// hot path does one atomic add through a preresolved pointer.
var (
	mEventsVec = obs.Default.CounterVec("kwsdbg_flight_events_total",
		"Probe-lifecycle events recorded by the flight recorder, by event kind.",
		"kind")
	mRingSlots = obs.Default.Gauge("kwsdbg_flight_ring_slots",
		"Slot capacity of the flight-recorder ring buffer.")
	mLedgerRuns = obs.Default.Counter("kwsdbg_ledger_runs_total",
		"Run ledgers written to the ledger directory.")
	mLedgerErrors = obs.Default.Counter("kwsdbg_ledger_write_errors_total",
		"Run-ledger writes that failed (disk full, permission, encoding).")
	mLedgerBytes = obs.Default.Counter("kwsdbg_ledger_bytes_total",
		"Bytes of JSONL ledger data written.")
)

var evCounters = func() (a [numKinds]*obs.Counter) {
	for k := Kind(0); k < numKinds; k++ {
		a[k] = mEventsVec.With(k.String())
	}
	return a
}()
