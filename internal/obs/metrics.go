// Package obs is the zero-dependency observability layer: counters, gauges,
// and fixed-bucket histograms with Prometheus text exposition, plus a
// lightweight per-request trace (a span tree threaded through
// context.Context). Every layer of the debugger reports into it — the paper's
// evaluation is an accounting argument over SQL probes saved and work reused,
// so probe counts, phase timings, and hot-path latencies are first-class
// runtime outputs here, not post-hoc instrumentation.
//
// Metrics register themselves in a Registry (usually Default) at package
// init; registration is idempotent, so tests and multiple System instances
// share one family per name. All metric operations are lock-free atomic
// updates and safe for concurrent use.
//
//go:generate go run kwsdbg/cmd/obsgen
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with compare-and-swap on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ f atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.f.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.f.Add(v)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.f.Value() }

// Gauge is a value that can go up and down.
type Gauge struct{ f atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.f.Set(v) }

// Add adjusts the value by v (which may be negative).
func (g *Gauge) Add(v float64) { g.f.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.f.Value() }

// Histogram counts observations into fixed buckets and tracks their sum.
type Histogram struct {
	upper  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomicFloat
	total  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)                   // i == len(upper) is the +Inf bucket
	h.total.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// TimeBuckets is the default latency bucket layout in seconds, spanning the
// microsecond-scale inverted-index lookups up to multi-second traversals.
var TimeBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with zero or more label dimensions. Unlabeled
// metrics are the single child under the empty label key.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]any // label key -> *Counter | *Gauge | *Histogram
}

func (f *family) child(key string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	var m any
	switch f.typ {
	case counterType:
		m = &Counter{}
	case gaugeType:
		m = &Gauge{}
	default:
		m = &Histogram{upper: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	f.children[key] = m
	return m
}

// labelKey renders label name/value pairs in exposition syntax, which doubles
// as the child map key.
func labelKey(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Registry holds metric families and renders them in Prometheus text format.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// Default is the process-wide registry every package-level metric uses.
var Default = NewRegistry()

// getFamily returns the named family, creating it on first use. Re-requesting
// a name is idempotent; a type or label-arity mismatch panics, because it is
// a programming error that would silently split a metric.
func (r *Registry) getFamily(name, help string, typ metricType, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (was %s with %d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets,
		children: make(map[string]any)}
	r.fams[name] = f
	return f
}

// Counter returns the unlabeled counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.getFamily(name, help, counterType, nil, nil).child("").(*Counter)
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.getFamily(name, help, gaugeType, nil, nil).child("").(*Gauge)
}

// Histogram returns the unlabeled histogram with the given name. Nil buckets
// default to TimeBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = TimeBuckets
	}
	return r.getFamily(name, help, histogramType, nil, buckets).child("").(*Histogram)
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.getFamily(name, help, counterType, labels, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(labelKey(v.f.labels, values)).(*Counter)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.getFamily(name, help, gaugeType, labels, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(labelKey(v.f.labels, values)).(*Gauge)
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with the given name. Nil
// buckets default to TimeBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = TimeBuckets
	}
	return &HistogramVec{r.getFamily(name, help, histogramType, labels, buckets)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(labelKey(v.f.labels, values)).(*Histogram)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and children in sorted order so output is
// stable for golden tests and diffing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			m := f.children[k]
			switch f.typ {
			case counterType:
				writeSample(&sb, f.name, k, "", m.(*Counter).Value())
			case gaugeType:
				writeSample(&sb, f.name, k, "", m.(*Gauge).Value())
			default:
				h := m.(*Histogram)
				cum := uint64(0)
				for i, ub := range h.upper {
					cum += h.counts[i].Load()
					writeSample(&sb, f.name+"_bucket", k, `le="`+formatFloat(ub)+`"`, float64(cum))
				}
				writeSample(&sb, f.name+"_bucket", k, `le="+Inf"`, float64(h.Count()))
				writeSample(&sb, f.name+"_sum", k, "", h.Sum())
				writeSample(&sb, f.name+"_count", k, "", float64(h.Count()))
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeSample(sb *strings.Builder, name, labels, extra string, v float64) {
	sb.WriteString(name)
	if labels != "" || extra != "" {
		sb.WriteByte('{')
		sb.WriteString(labels)
		if labels != "" && extra != "" {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(v))
	sb.WriteByte('\n')
}

// Handler returns an http.Handler serving the registry in exposition format —
// the body behind GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Sample is one scalar reading, for snapshots outside the HTTP path (the
// bench harness prints these so its tables and /metrics agree).
type Sample struct {
	Name   string
	Labels string // exposition syntax without braces, "" when unlabeled
	Value  float64
}

// Samples returns a stable-sorted scalar view of the registry: counters and
// gauges as-is, histograms as their _count and _sum.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var out []Sample
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			m := f.children[k]
			switch f.typ {
			case counterType:
				out = append(out, Sample{f.name, k, m.(*Counter).Value()})
			case gaugeType:
				out = append(out, Sample{f.name, k, m.(*Gauge).Value()})
			default:
				h := m.(*Histogram)
				out = append(out, Sample{f.name + "_count", k, float64(h.Count())})
				out = append(out, Sample{f.name + "_sum", k, h.Sum()})
			}
		}
		f.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}
