package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Errorf("Value = %v, want 3.5", got)
	}
	if again := r.Counter("c_total", "help"); again != c {
		t.Error("re-registering a counter must return the same instance")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("Value = %v, want 6", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("probes_total", "help", "strategy")
	v.With("SBH").Add(5)
	v.With("BU").Inc()
	v.With("SBH").Inc()
	if got := v.With("SBH").Value(); got != 6 {
		t.Errorf(`With("SBH") = %v, want 6`, got)
	}
	if got := v.With("BU").Value(); got != 1 {
		t.Errorf(`With("BU") = %v, want 1`, got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Errorf("Sum = %v, want 56.05", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 56.05`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `h_bucket{le="1"} 1`) {
		t.Errorf("observation at the bound must land in its bucket:\n%s", sb.String())
	}
}

// TestExpositionGolden pins the full text format: ordering, HELP/TYPE lines,
// label rendering, and histogram expansion.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counts things").Add(2)
	r.GaugeVec("a_gauge", "a gauge", "kind").With(`x"y`).Set(1.5)
	h := r.Histogram("c_seconds", "c latency", []float64{0.5})
	h.Observe(0.25)
	h.Observe(0.75)

	want := `# HELP a_gauge a gauge
# TYPE a_gauge gauge
a_gauge{kind="x\"y"} 1.5
# HELP b_total b counts things
# TYPE b_total counter
b_total 2
# HELP c_seconds c latency
# TYPE c_seconds histogram
c_seconds_bucket{le="0.5"} 1
c_seconds_bucket{le="+Inf"} 2
c_seconds_sum 1
c_seconds_count 2
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	v := r.CounterVec("v_total", "help", "k")
	h := r.Histogram("h_seconds", "help", []float64{0.5})
	g := r.Gauge("g", "help")
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				v.With("a").Inc()
				h.Observe(0.25)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Errorf("counter = %v, want %d", got, workers*each)
	}
	if got := v.With("a").Value(); got != workers*each {
		t.Errorf("vec counter = %v, want %d", got, workers*each)
	}
	if h.Count() != workers*each {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*each)
	}
	if got := g.Value(); got != workers*each {
		t.Errorf("gauge = %v, want %d", got, workers*each)
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestSamples(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("b_total", "help", "s").With("x").Add(3)
	r.Gauge("a", "help").Set(7)
	h := r.Histogram("c_seconds", "help", []float64{1})
	h.Observe(0.5)
	got := r.Samples()
	want := []Sample{
		{"a", "", 7},
		{"b_total", `s="x"`, 3},
		{"c_seconds_count", "", 1},
		{"c_seconds_sum", "", 0.5},
	}
	if len(got) != len(want) {
		t.Fatalf("Samples = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Samples[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
