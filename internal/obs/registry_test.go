package obs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// designMetricTable extracts the metric names from DESIGN.md's generated
// table (the region between the cmd/obsgen markers).
func designMetricTable(t *testing.T) map[string]bool {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
	doc, err := os.ReadFile(filepath.Join(dir, "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	begin := strings.Index(text, "<!-- begin generated metric table (cmd/obsgen) -->")
	end := strings.Index(text, "<!-- end generated metric table (cmd/obsgen) -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("DESIGN.md is missing the generated metric table markers")
	}
	row := regexp.MustCompile("^\\| `(kwsdbg_[a-z0-9_]+)` \\|")
	names := make(map[string]bool)
	for _, line := range strings.Split(text[begin:end], "\n") {
		if m := row.FindStringSubmatch(line); m != nil {
			names[m[1]] = true
		}
	}
	return names
}

// TestDesignTableMatchesRegistry is the docs-drift tripwire: the metric
// table in DESIGN.md and the generated registry must list exactly the same
// families. Both are emitted by cmd/obsgen from one scan, so a mismatch
// means one side was hand-edited — rerun `go generate ./internal/obs`.
func TestDesignTableMatchesRegistry(t *testing.T) {
	documented := designMetricTable(t)
	registered := RegisteredNames()
	if len(documented) == 0 {
		t.Fatal("no metric rows found in DESIGN.md's generated table")
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("metric %s is registered but missing from DESIGN.md's table", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("metric %s is documented but not in the generated registry", name)
		}
	}
}

// TestRegistryWellFormed pins the registry's own invariants: sorted unique
// names, the kwsdbg_ shape, a non-empty help string and declaring package.
func TestRegistryWellFormed(t *testing.T) {
	pattern := regexp.MustCompile(`^kwsdbg_[a-z0-9_]+$`)
	for i, m := range Registered {
		if !pattern.MatchString(m.Name) {
			t.Errorf("registry entry %q does not match %s", m.Name, pattern)
		}
		if m.Help == "" || m.Package == "" {
			t.Errorf("registry entry %q has empty help or package", m.Name)
		}
		switch m.Type {
		case "counter", "gauge", "histogram":
		default:
			t.Errorf("registry entry %q has unknown type %q", m.Name, m.Type)
		}
		if i > 0 && Registered[i-1].Name >= m.Name {
			t.Errorf("registry not sorted/unique at %q >= %q", Registered[i-1].Name, m.Name)
		}
	}
}
