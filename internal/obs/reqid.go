package obs

import "context"

// Request IDs travel the context so every layer below the HTTP server — the
// engine's retry loop, the flight recorder, ad-hoc diagnostics — can stamp
// what it logs with the request that caused it. The server's logging
// middleware is the producer; anything that writes a log line or an event on
// behalf of a request is a consumer. Without this seam a retry storm is just
// N anonymous warnings: visible, but impossible to correlate with the one
// request that suffered them.

type requestIDKey struct{}

// WithRequestID returns a context carrying the request's correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's correlation ID, or "" when the work is not
// attributed to a request (CLI runs, tests, background jobs).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
