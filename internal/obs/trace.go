package obs

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"kwsdbg/internal/clock"
)

// Span is one timed region of a request, with attributes and child spans.
// A nil *Span is a valid no-op receiver for every method, so instrumented
// code pays (almost) nothing when tracing is off: StartSpan on a context
// without a trace returns nil.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	attrs    map[string]any
	children []*Span
}

type spanKey struct{}

// StartTrace roots a new span tree at the context and returns the root span.
// The caller owns the root: End it when the request finishes, then serialize
// it (it marshals to JSON as a nested span tree).
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: clock.Now()}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanFromContext returns the innermost span, or nil when the request is not
// being traced.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span. When the context
// carries no trace it returns the context unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{name: name, start: clock.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, child)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, child), child
}

// End fixes the span's duration. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.dur == 0 {
		s.dur = clock.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Attr returns the attribute value, or nil when absent (or the span is nil).
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Name returns the span's name; "" for a nil span.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's duration; for a still-open span, the time
// elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur == 0 {
		return clock.Since(s.start)
	}
	return s.dur
}

// Children returns the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Find returns the first span named name in a pre-order walk of the subtree,
// or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name() == name {
		return s
	}
	for _, c := range s.Children() {
		if got := c.Find(name); got != nil {
			return got
		}
	}
	return nil
}

// spanJSON is the wire shape of a span.
type spanJSON struct {
	Name       string         `json:"name"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*Span        `json:"children,omitempty"`
}

// MarshalJSON renders the span tree with millisecond durations.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	s.mu.Lock()
	dur := s.dur
	if dur == 0 {
		dur = clock.Since(s.start)
	}
	attrs := make(map[string]any, len(s.attrs))
	for k, v := range s.attrs {
		attrs[k] = v
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	name := s.name
	s.mu.Unlock()
	return json.Marshal(spanJSON{
		Name:       name,
		DurationMS: float64(dur.Microseconds()) / 1000,
		Attrs:      attrs,
		Children:   children,
	})
}
