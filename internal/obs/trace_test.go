package obs

import (
	"context"
	"encoding/json"
	"testing"
)

func TestTraceTree(t *testing.T) {
	ctx, root := StartTrace(context.Background(), "debug")
	c1, s1 := StartSpan(ctx, "phase12")
	_, s11 := StartSpan(c1, "map")
	s11.End()
	s1.SetAttr("mtns", 4)
	s1.End()
	_, s2 := StartSpan(ctx, "phase3")
	s2.SetAttr("probes", 17)
	s2.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "phase12" || kids[1].Name() != "phase3" {
		t.Fatalf("children = %v", kids)
	}
	if got := root.Find("map"); got == nil || got.Name() != "map" {
		t.Errorf("Find(map) = %v", got)
	}
	if got := root.Find("phase3").Attr("probes"); got != 17 {
		t.Errorf("probes attr = %v, want 17", got)
	}
	if root.Duration() <= 0 {
		t.Error("root duration must be positive after End")
	}
}

func TestNilSpanIsNoop(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "orphan")
	if s != nil {
		t.Fatal("StartSpan without a trace must return a nil span")
	}
	// All methods must be nil-safe.
	s.End()
	s.SetAttr("k", "v")
	if s.Attr("k") != nil || s.Name() != "" || s.Duration() != 0 || s.Children() != nil || s.Find("x") != nil {
		t.Error("nil span accessors must return zero values")
	}
	if SpanFromContext(ctx) != nil {
		t.Error("context must stay trace-free")
	}
	b, err := json.Marshal(s)
	if err != nil || string(b) != "null" {
		t.Errorf("nil span JSON = %s, %v", b, err)
	}
}

func TestSpanJSON(t *testing.T) {
	ctx, root := StartTrace(context.Background(), "debug")
	_, s := StartSpan(ctx, "phase3")
	s.SetAttr("probes", 5)
	s.End()
	root.End()

	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Name       string  `json:"name"`
		DurationMS float64 `json:"duration_ms"`
		Children   []struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"children"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("invalid span JSON: %v\n%s", err, b)
	}
	if got.Name != "debug" || got.DurationMS < 0 {
		t.Errorf("root = %+v", got)
	}
	if len(got.Children) != 1 || got.Children[0].Name != "phase3" {
		t.Fatalf("children = %+v", got.Children)
	}
	if got.Children[0].Attrs["probes"].(float64) != 5 {
		t.Errorf("attrs = %v", got.Children[0].Attrs)
	}
}
