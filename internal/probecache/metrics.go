package probecache

import "kwsdbg/internal/obs"

// Cache metrics, in the process-wide obs registry alongside the probe
// counters of internal/core: a scrape of GET /metrics shows how many Phase 3
// probes were answered from memory instead of the engine. Counters aggregate
// over all Cache instances in the process (servers run one).
var (
	mHits = obs.Default.Counter("kwsdbg_probecache_hits_total",
		"Aliveness probes answered from the cross-request cache.")
	mMisses = obs.Default.Counter("kwsdbg_probecache_misses_total",
		"Aliveness probes that missed the cross-request cache (including stale and expired entries).")
	mEvictionsVec = obs.Default.CounterVec("kwsdbg_probecache_evictions_total",
		"Cache entries dropped, by reason: capacity = LRU pressure (cache too small), stale = TTL expiry or generation supersession (data churning).",
		"reason")
	mEvictionsCapacity = mEvictionsVec.With("capacity")
	mEvictionsStale    = mEvictionsVec.With("stale")
	mEntries           = obs.Default.Gauge("kwsdbg_probecache_entries",
		"Verdicts currently held by the cache.")
	mSuspects = obs.Default.Counter("kwsdbg_probecache_suspects_total",
		"Dead verdicts downgraded to suspect because a write touched a footprint table (repair candidates, not evictions).")
	mRepairs = obs.Default.Counter("kwsdbg_probecache_repairs_total",
		"Suspect verdicts re-proved by a fresh probe and restored to the cache.")
)
