// Package probecache remembers aliveness verdicts across debugging requests.
//
// Phase 3 spends its entire budget on existence probes ("SELECT 1 ... LIMIT 1"
// per lattice node), and the paper's Figure 13 shows that 60-90% of MTN
// descendants are shared between the candidate networks of one query; the same
// sharing holds *across* queries, because a node's probe is determined by its
// canonical join-tree label plus the keyword bound to each copy — not by which
// request asked. The cache therefore keys verdicts by (canonical node label,
// per-copy keyword binding signature): two requests probing structurally
// identical sub-queries with the same keywords share one verdict, even across
// lattices of different depths.
//
// Entries are stamped two ways. The coarse mechanism is a data generation:
// bumping it (Bump, or SyncGeneration from an external counter) makes every
// older entry a miss in O(1). The fine mechanism is a footprint stamp
// against the engine's version vector (vervec): an entry stored through
// PutFP records the tables and keyword terms of its join tree with their
// write-counter values, and SyncVersions snapshots the live vector once per
// debug run. A later lookup compares only the entry's own footprint slice,
// so a write to a disjoint table invalidates nothing.
//
// Verdicts whose footprint a write *did* touch split by monotonicity: under
// the paper's pruning rules R1/R2 an INSERT can only flip dead -> alive,
// never alive -> dead, so an alive verdict still hits, while a dead verdict
// is downgraded to *suspect* — kept in place, reported as a Suspect outcome
// so the oracle re-probes it, and counted as a repair when the fresh verdict
// is stored over it. Non-monotone mutations (in-place updates) advance the
// vector's epoch, which stales footprint entries wholesale, exactly like a
// generation bump. Stale entries are evicted lazily as they are touched or
// as the LRU rotates them out. An optional TTL bounds staleness against
// mutations neither counter can see; an entry whose TTL lapsed is an
// eviction, never a repair candidate, no matter what state it was in.
//
// The cache is safe for concurrent use. Lookups and stores are O(footprint),
// which is O(1) in the lattice's node size.
package probecache

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"kwsdbg/internal/clock"
	"kwsdbg/internal/vervec"
)

// DefaultMaxEntries bounds the cache when Config.MaxEntries is zero. An entry
// is ~100 bytes (key string + list element), so the default costs a few MB.
const DefaultMaxEntries = 1 << 16

// Config tunes a Cache.
type Config struct {
	// MaxEntries bounds the number of cached verdicts; 0 means
	// DefaultMaxEntries, negative means unbounded.
	MaxEntries int
	// TTL expires entries this long after they were stored; 0 disables
	// expiry (generation bumps remain the invalidation mechanism).
	TTL time.Duration
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits   uint64
	Misses uint64
	// EvictionsCapacity counts entries rotated out by LRU pressure — the
	// "cache too small" signal — while EvictionsStale counts entries dropped
	// on contact because their generation was superseded or their TTL
	// expired — the "data churning" signal. Evictions is their sum, kept for
	// callers that do not care about the split.
	EvictionsCapacity uint64
	EvictionsStale    uint64
	Evictions         uint64
	Entries           int
	// Generation is the current data generation; entries stored under
	// older generations can never hit again.
	Generation uint64
	// Suspects counts dead verdicts downgraded to suspect by a
	// footprint-intersecting write; Repairs counts suspects re-proved by a
	// fresh probe and restored. Their difference is the suspect frontier
	// still awaiting repair.
	Suspects uint64
	Repairs  uint64
}

type entry struct {
	key   string
	alive bool
	gen   uint64
	// expires is the wall-clock deadline; zero time means no TTL.
	expires time.Time

	// Footprint stamp (PutFP entries; names is nil for legacy Put entries,
	// which rely on the generation alone). names[:ntab] are the join tree's
	// table counters — the suspect trigger set — and names[ntab:] its
	// keyword-term counters, recorded for provenance. vals are the view's
	// counter values and epoch the view's epoch at store time.
	names []string
	ntab  int
	vals  []uint64
	epoch uint64
	// suspect marks a dead verdict whose table slice advanced: kept for
	// repair, reported as Suspect until a fresh Put lands or the TTL does.
	suspect bool
}

// Cache is a thread-safe LRU of alive/dead verdicts.
type Cache struct {
	cfg Config

	mu sync.Mutex
	// ll is the recency list (front = most recently used; values are
	// *entry). guarded by mu.
	ll *list.List
	// items indexes ll by probe key. guarded by mu.
	items map[string]*list.Element
	// gen is the newest data generation observed. guarded by mu.
	gen uint64

	// view is the version-vector snapshot footprint stamps are taken from
	// and compared against; nil until the first SyncVersions (legacy
	// generation-only operation). guarded by mu.
	view *vervec.View

	// hits and misses count lookups. guarded by mu.
	hits, misses uint64
	// evictCapacity and evictStale split evictions by cause. guarded by mu.
	evictCapacity, evictStale uint64
	// suspects and repairs count the monotone-repair lifecycle. guarded by mu.
	suspects, repairs uint64

	// now is the clock, injectable for TTL tests. Defaults to the
	// internal/clock seam, never a raw time.Now — the determinism lint
	// enforces this for the whole package.
	now func() time.Time
}

// New builds a cache with the given configuration.
func New(cfg Config) *Cache {
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	return &Cache{
		cfg:   cfg,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		now:   clock.Now,
	}
}

// Key canonicalizes a probe identity: the node's canonical label (Algorithm
// 2's labeling, shared by structurally identical join trees at any lattice
// depth) plus the keyword bound to each copy the node uses. copyMask has bit
// j set when the node contains a keyword copy j >= 1 (bit 0, the free tuple
// set, is already part of the label). Nodes that use only copy 1 therefore
// share entries between any two queries whose first keyword matches.
func Key(label string, copyMask uint64, keywords []string) string {
	// Built with plain writes, not fmt: the flight recorder computes a key
	// per probe even when the verdict cache is bypassed, so this sits on the
	// recording hot path.
	n := len(label)
	for j := 1; j <= len(keywords); j++ {
		if copyMask&(1<<uint(j)) != 0 {
			n += len(keywords[j-1]) + 4 // '\x00' + up to 2 digits + '='
		}
	}
	var sb strings.Builder
	sb.Grow(n)
	sb.WriteString(label)
	for j := 1; j <= len(keywords); j++ {
		if copyMask&(1<<uint(j)) == 0 {
			continue
		}
		sb.WriteByte('\x00')
		sb.WriteString(strconv.Itoa(j))
		sb.WriteByte('=')
		sb.WriteString(keywords[j-1])
	}
	return sb.String()
}

// Generation returns the current data generation.
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Bump advances the data generation, invalidating every cached verdict in
// O(1). Call it whenever the underlying data may have changed (data load,
// INSERT, index invalidation).
func (c *Cache) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
}

// SyncGeneration raises the cache's generation to at least gen, invalidating
// entries stored under older generations. It lets callers drive invalidation
// from an external version counter (e.g. the engine's data version) without
// double-bumping when several requests observe the same reload.
func (c *Cache) SyncGeneration(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.gen {
		c.gen = gen
	}
}

// SyncVersions is SyncGeneration's footprint-aware successor: instead of
// raising a global generation (which stales every entry), it snapshots the
// engine's version vector so later lookups compare each entry's own
// footprint slice. Call it once per debug run, before the first probe; the
// snapshot is skipped when the vector has not moved since the last sync.
// Entries stored before the first SyncVersions carry no stamp and keep
// generation-only semantics.
//
// The returned view is the snapshot now current; the run passes it to PutFP
// so its entries are stamped against the state *its* probes are guaranteed
// to have seen. Stamping from the cache's latest view instead would be
// unsound: a concurrent run could sync a newer view between this run's
// probe and its store, vouching for a write the probe never read.
func (c *Cache) SyncVersions(vv *vervec.Vector) *vervec.View {
	if vv == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil || c.view.Seq != vv.Seq() {
		c.view = vv.Snapshot()
	}
	return c.view
}

// Footprint names what a verdict depends on, as version-vector names:
// Tables are the join tree's relations (the suspect trigger set — an insert
// into any of them can flip a dead verdict alive) and Terms the keywords
// bound to its copies (recorded for provenance and analysis; a term-only
// write never suspects a verdict, because the row landed in a table the
// tree does not join).
type Footprint struct {
	Tables []string
	Terms  []string
}

// Outcome classifies one lookup: a hit, or which way it missed. The split
// matters for provenance — a cold miss means the probe was simply never
// cached, a stale/expired miss means the data churned underneath an entry
// that existed — so the flight recorder records the cause, not just the
// boolean.
type Outcome uint8

const (
	// Hit answered the probe from cache.
	Hit Outcome = iota
	// MissCold means no entry existed for the key.
	MissCold
	// MissStale means the entry's data generation or epoch was superseded.
	MissStale
	// MissExpired means the entry's TTL had lapsed.
	MissExpired
	// Suspect means a dead verdict whose footprint a write intersected: the
	// caller must re-probe (it is a miss for answering purposes), but the
	// entry is retained — the fresh verdict stored over it is a repair, and
	// until it lands repeated lookups keep reporting Suspect.
	Suspect
)

// Cause is the outcome's short wire name: "" for a hit, otherwise the miss
// class ("cold", "stale", "expired", "suspect").
func (o Outcome) Cause() string {
	switch o {
	case MissCold:
		return "cold"
	case MissStale:
		return "stale"
	case MissExpired:
		return "expired"
	case Suspect:
		return "suspect"
	default:
		return ""
	}
}

// Get returns the cached verdict for the key, if it is present, current, and
// unexpired. Stale entries (older generation or past TTL) are evicted on
// contact and reported as misses.
//
//kws:hotpath
func (c *Cache) Get(key string) (alive, ok bool) {
	alive, outcome := c.Lookup(key)
	return alive, outcome == Hit
}

// Lookup is Get with the miss cause: it distinguishes entries that never
// existed from entries invalidated by a generation/epoch bump or TTL expiry,
// and from dead verdicts downgraded to suspect by a footprint-intersecting
// write. Stale and expired entries are evicted on contact, exactly as in
// Get; suspects are retained for repair.
//
// The check order is deliberate: generation, then epoch, then TTL, then
// footprint. A suspect whose TTL lapses is therefore an expired eviction
// (EvictionsStale), never a repair candidate — the TTL exists to bound
// staleness the counters cannot see, and repair must not resurrect it.
//
//kws:hotpath
func (c *Cache) Lookup(key string) (alive bool, outcome Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.items[key]
	if !found {
		c.misses++
		mMisses.Inc()
		return false, MissCold
	}
	en := el.Value.(*entry)
	if en.gen != c.gen {
		c.removeLocked(el, true)
		c.misses++
		mMisses.Inc()
		return false, MissStale
	}
	if en.names != nil && c.view != nil && en.epoch != c.view.Epoch {
		// A non-monotone mutation (epoch bump) voids every footprint
		// argument: alive and dead entries alike are plainly stale.
		c.removeLocked(el, true)
		c.misses++
		mMisses.Inc()
		return false, MissStale
	}
	// An entry expiring exactly at the deadline has already expired: the
	// TTL promises "served strictly before expires", so expires == now
	// must miss.
	if !en.expires.IsZero() && !c.now().Before(en.expires) {
		c.removeLocked(el, true)
		c.misses++
		mMisses.Inc()
		return false, MissExpired
	}
	if en.names != nil && c.advancedLocked(en) {
		if en.alive {
			// Monotone repair argument, alive half (R1): an INSERT can
			// only create bindings, so an alive verdict stays alive no
			// matter what landed in its tables. Serve it.
			c.ll.MoveToFront(el)
			c.hits++
			mHits.Inc()
			return true, Hit
		}
		// Dead half (R2): the write may have given this tree its first
		// binding. Downgrade to suspect — once — and make the caller
		// re-probe; the entry stays for Put to repair.
		if !en.suspect {
			en.suspect = true
			c.suspects++
			mSuspects.Inc()
		}
		c.misses++
		mMisses.Inc()
		return false, Suspect
	}
	c.ll.MoveToFront(el)
	c.hits++
	mHits.Inc()
	return en.alive, Hit
}

// advancedLocked reports whether any of the entry's footprint *tables* has
// advanced past its stamped value in the current view. Term counters are
// provenance only: a write carrying a tree's keyword into a table the tree
// does not join cannot bind a new row into the tree.
func (c *Cache) advancedLocked(en *entry) bool {
	for i := 0; i < en.ntab; i++ {
		if c.view.Counter(en.names[i]) > en.vals[i] {
			return true
		}
	}
	return false
}

// Put stores a verdict under the current generation, evicting the least
// recently used entry when the cache is full. Entries stored this way carry
// no footprint and are invalidated by generation bumps only; the oracle
// stores through PutFP.
func (c *Cache) Put(key string, alive bool) {
	c.putStamped(key, alive, nil, nil)
}

// PutFP is Put with a footprint stamp: the verdict records its join tree's
// tables and terms with their counter values from vw — the view the storing
// run got from SyncVersions, i.e. a snapshot taken before any of its probes
// read data — so later lookups compare only that slice of the version
// vector. Storing over a suspect entry is a repair (the re-probe the
// suspect asked for) and is counted as such. A nil vw (no SyncVersions ran)
// degrades the entry to generation-only semantics.
func (c *Cache) PutFP(key string, alive bool, fp Footprint, vw *vervec.View) {
	c.putStamped(key, alive, &fp, vw)
}

func (c *Cache) putStamped(key string, alive bool, fp *Footprint, vw *vervec.View) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.cfg.TTL > 0 {
		expires = c.now().Add(c.cfg.TTL)
	}
	var names []string
	var vals []uint64
	var ntab int
	var epoch uint64
	if fp != nil && vw != nil {
		ntab = len(fp.Tables)
		names = make([]string, 0, ntab+len(fp.Terms))
		names = append(names, fp.Tables...)
		names = append(names, fp.Terms...)
		vals = make([]uint64, len(names))
		for i, n := range names {
			vals[i] = vw.Counter(n)
		}
		epoch = vw.Epoch
	}
	if el, found := c.items[key]; found {
		en := el.Value.(*entry)
		if en.suspect {
			c.repairs++
			mRepairs.Inc()
		}
		en.alive, en.gen, en.expires = alive, c.gen, expires
		en.names, en.ntab, en.vals, en.epoch = names, ntab, vals, epoch
		en.suspect = false
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry{
		key: key, alive: alive, gen: c.gen, expires: expires,
		names: names, ntab: ntab, vals: vals, epoch: epoch,
	})
	c.items[key] = el
	mEntries.Set(float64(len(c.items)))
	if c.cfg.MaxEntries > 0 && len(c.items) > c.cfg.MaxEntries {
		if back := c.ll.Back(); back != nil {
			c.removeLocked(back, false)
		}
	}
}

// removeLocked drops one entry; the caller holds c.mu. stale separates
// evicted-on-contact entries (superseded generation or expired TTL) from
// LRU-capacity rotation, so the counters can tell "data churning" apart from
// "cache too small".
func (c *Cache) removeLocked(el *list.Element, stale bool) {
	en := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, en.key)
	if stale {
		c.evictStale++
		mEvictionsStale.Inc()
	} else {
		c.evictCapacity++
		mEvictionsCapacity.Inc()
	}
	mEntries.Set(float64(len(c.items)))
}

// Len reports the number of entries currently held (including any stale ones
// not yet evicted).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Purge empties the cache without touching the generation or the counters.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	mEntries.Set(0)
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:              c.hits,
		Misses:            c.misses,
		EvictionsCapacity: c.evictCapacity,
		EvictionsStale:    c.evictStale,
		Evictions:         c.evictCapacity + c.evictStale,
		Entries:           len(c.items),
		Generation:        c.gen,
		Suspects:          c.suspects,
		Repairs:           c.repairs,
	}
}

// FootprintTables lists the distinct table names (as version-vector names)
// appearing in any cached entry's footprint, sorted. The write-heavy bench
// uses it to pick a table provably disjoint from everything cached.
func (c *Cache) FootprintTables() []string {
	c.mu.Lock()
	set := make(map[string]bool)
	for el := c.ll.Front(); el != nil; el = el.Next() {
		en := el.Value.(*entry)
		for i := 0; i < en.ntab; i++ {
			set[en.names[i]] = true
		}
	}
	c.mu.Unlock()
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
