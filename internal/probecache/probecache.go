// Package probecache remembers aliveness verdicts across debugging requests.
//
// Phase 3 spends its entire budget on existence probes ("SELECT 1 ... LIMIT 1"
// per lattice node), and the paper's Figure 13 shows that 60-90% of MTN
// descendants are shared between the candidate networks of one query; the same
// sharing holds *across* queries, because a node's probe is determined by its
// canonical join-tree label plus the keyword bound to each copy — not by which
// request asked. The cache therefore keys verdicts by (canonical node label,
// per-copy keyword binding signature): two requests probing structurally
// identical sub-queries with the same keywords share one verdict, even across
// lattices of different depths.
//
// Entries are stamped with a data generation. Bumping the generation (after a
// data load, an INSERT, or an index invalidation) makes every older entry a
// miss in O(1); stale entries are evicted lazily as they are touched or as the
// LRU rotates them out. An optional TTL bounds staleness against mutations the
// generation counter cannot see.
//
// The cache is safe for concurrent use. Lookups and stores are O(1).
package probecache

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultMaxEntries bounds the cache when Config.MaxEntries is zero. An entry
// is ~100 bytes (key string + list element), so the default costs a few MB.
const DefaultMaxEntries = 1 << 16

// Config tunes a Cache.
type Config struct {
	// MaxEntries bounds the number of cached verdicts; 0 means
	// DefaultMaxEntries, negative means unbounded.
	MaxEntries int
	// TTL expires entries this long after they were stored; 0 disables
	// expiry (generation bumps remain the invalidation mechanism).
	TTL time.Duration
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits   uint64
	Misses uint64
	// EvictionsCapacity counts entries rotated out by LRU pressure — the
	// "cache too small" signal — while EvictionsStale counts entries dropped
	// on contact because their generation was superseded or their TTL
	// expired — the "data churning" signal. Evictions is their sum, kept for
	// callers that do not care about the split.
	EvictionsCapacity uint64
	EvictionsStale    uint64
	Evictions         uint64
	Entries           int
	// Generation is the current data generation; entries stored under
	// older generations can never hit again.
	Generation uint64
}

type entry struct {
	key   string
	alive bool
	gen   uint64
	// expires is the wall-clock deadline; zero time means no TTL.
	expires time.Time
}

// Cache is a thread-safe LRU of alive/dead verdicts.
type Cache struct {
	cfg Config

	mu sync.Mutex
	// ll is the recency list (front = most recently used; values are
	// *entry). guarded by mu.
	ll *list.List
	// items indexes ll by probe key. guarded by mu.
	items map[string]*list.Element
	// gen is the newest data generation observed. guarded by mu.
	gen uint64

	// hits and misses count lookups. guarded by mu.
	hits, misses uint64
	// evictCapacity and evictStale split evictions by cause. guarded by mu.
	evictCapacity, evictStale uint64

	// now is the clock, injectable for TTL tests.
	now func() time.Time
}

// New builds a cache with the given configuration.
func New(cfg Config) *Cache {
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	return &Cache{
		cfg:   cfg,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		now:   time.Now,
	}
}

// Key canonicalizes a probe identity: the node's canonical label (Algorithm
// 2's labeling, shared by structurally identical join trees at any lattice
// depth) plus the keyword bound to each copy the node uses. copyMask has bit
// j set when the node contains a keyword copy j >= 1 (bit 0, the free tuple
// set, is already part of the label). Nodes that use only copy 1 therefore
// share entries between any two queries whose first keyword matches.
func Key(label string, copyMask uint64, keywords []string) string {
	// Built with plain writes, not fmt: the flight recorder computes a key
	// per probe even when the verdict cache is bypassed, so this sits on the
	// recording hot path.
	n := len(label)
	for j := 1; j <= len(keywords); j++ {
		if copyMask&(1<<uint(j)) != 0 {
			n += len(keywords[j-1]) + 4 // '\x00' + up to 2 digits + '='
		}
	}
	var sb strings.Builder
	sb.Grow(n)
	sb.WriteString(label)
	for j := 1; j <= len(keywords); j++ {
		if copyMask&(1<<uint(j)) == 0 {
			continue
		}
		sb.WriteByte('\x00')
		sb.WriteString(strconv.Itoa(j))
		sb.WriteByte('=')
		sb.WriteString(keywords[j-1])
	}
	return sb.String()
}

// Generation returns the current data generation.
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Bump advances the data generation, invalidating every cached verdict in
// O(1). Call it whenever the underlying data may have changed (data load,
// INSERT, index invalidation).
func (c *Cache) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
}

// SyncGeneration raises the cache's generation to at least gen, invalidating
// entries stored under older generations. It lets callers drive invalidation
// from an external version counter (e.g. the engine's data version) without
// double-bumping when several requests observe the same reload.
func (c *Cache) SyncGeneration(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.gen {
		c.gen = gen
	}
}

// Outcome classifies one lookup: a hit, or which way it missed. The split
// matters for provenance — a cold miss means the probe was simply never
// cached, a stale/expired miss means the data churned underneath an entry
// that existed — so the flight recorder records the cause, not just the
// boolean.
type Outcome uint8

const (
	// Hit answered the probe from cache.
	Hit Outcome = iota
	// MissCold means no entry existed for the key.
	MissCold
	// MissStale means the entry's data generation was superseded.
	MissStale
	// MissExpired means the entry's TTL had lapsed.
	MissExpired
)

// Cause is the outcome's short wire name: "" for a hit, otherwise the miss
// class ("cold", "stale", "expired").
func (o Outcome) Cause() string {
	switch o {
	case MissCold:
		return "cold"
	case MissStale:
		return "stale"
	case MissExpired:
		return "expired"
	default:
		return ""
	}
}

// Get returns the cached verdict for the key, if it is present, current, and
// unexpired. Stale entries (older generation or past TTL) are evicted on
// contact and reported as misses.
func (c *Cache) Get(key string) (alive, ok bool) {
	alive, outcome := c.Lookup(key)
	return alive, outcome == Hit
}

// Lookup is Get with the miss cause: it distinguishes entries that never
// existed from entries invalidated by a generation bump or TTL expiry.
// Stale and expired entries are evicted on contact, exactly as in Get.
func (c *Cache) Lookup(key string) (alive bool, outcome Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.items[key]
	if !found {
		c.misses++
		mMisses.Inc()
		return false, MissCold
	}
	en := el.Value.(*entry)
	if en.gen != c.gen {
		c.removeLocked(el, true)
		c.misses++
		mMisses.Inc()
		return false, MissStale
	}
	if !en.expires.IsZero() && c.now().After(en.expires) {
		c.removeLocked(el, true)
		c.misses++
		mMisses.Inc()
		return false, MissExpired
	}
	c.ll.MoveToFront(el)
	c.hits++
	mHits.Inc()
	return en.alive, Hit
}

// Put stores a verdict under the current generation, evicting the least
// recently used entry when the cache is full.
func (c *Cache) Put(key string, alive bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.cfg.TTL > 0 {
		expires = c.now().Add(c.cfg.TTL)
	}
	if el, found := c.items[key]; found {
		en := el.Value.(*entry)
		en.alive, en.gen, en.expires = alive, c.gen, expires
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry{key: key, alive: alive, gen: c.gen, expires: expires})
	c.items[key] = el
	mEntries.Set(float64(len(c.items)))
	if c.cfg.MaxEntries > 0 && len(c.items) > c.cfg.MaxEntries {
		if back := c.ll.Back(); back != nil {
			c.removeLocked(back, false)
		}
	}
}

// removeLocked drops one entry; the caller holds c.mu. stale separates
// evicted-on-contact entries (superseded generation or expired TTL) from
// LRU-capacity rotation, so the counters can tell "data churning" apart from
// "cache too small".
func (c *Cache) removeLocked(el *list.Element, stale bool) {
	en := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, en.key)
	if stale {
		c.evictStale++
		mEvictionsStale.Inc()
	} else {
		c.evictCapacity++
		mEvictionsCapacity.Inc()
	}
	mEntries.Set(float64(len(c.items)))
}

// Len reports the number of entries currently held (including any stale ones
// not yet evicted).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Purge empties the cache without touching the generation or the counters.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	mEntries.Set(0)
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:              c.hits,
		Misses:            c.misses,
		EvictionsCapacity: c.evictCapacity,
		EvictionsStale:    c.evictStale,
		Evictions:         c.evictCapacity + c.evictStale,
		Entries:           len(c.items),
		Generation:        c.gen,
	}
}
