package probecache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestGetPut(t *testing.T) {
	c := New(Config{MaxEntries: 4})
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", true)
	c.Put("b", false)
	if alive, ok := c.Get("a"); !ok || !alive {
		t.Fatalf("Get(a) = %v, %v; want true, true", alive, ok)
	}
	if alive, ok := c.Get("b"); !ok || alive {
		t.Fatalf("Get(b) = %v, %v; want false, true", alive, ok)
	}
	st := c.Snapshot()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v; want 2 hits, 1 miss, 2 entries", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	c.Put("a", true)
	c.Put("b", true)
	c.Get("a") // a is now most recently used
	c.Put("c", true)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if st := c.Snapshot(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v; want 1 eviction, 2 entries", st)
	}
}

func TestUpdateExisting(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	c.Put("a", true)
	c.Put("a", false)
	if c.Len() != 1 {
		t.Fatalf("Len = %d; want 1 (update, not duplicate)", c.Len())
	}
	if alive, ok := c.Get("a"); !ok || alive {
		t.Fatalf("Get(a) = %v, %v; want updated false verdict", alive, ok)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := New(Config{})
	c.Put("a", true)
	c.Bump()
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry from an old generation must miss")
	}
	// Stale contact evicts the entry.
	if c.Len() != 0 {
		t.Fatalf("stale entry not evicted on contact; Len = %d", c.Len())
	}
	c.Put("a", false)
	if alive, ok := c.Get("a"); !ok || alive {
		t.Fatalf("Get after re-put = %v, %v; want false, true", alive, ok)
	}
}

func TestSyncGeneration(t *testing.T) {
	c := New(Config{})
	c.Put("a", true)
	c.SyncGeneration(5)
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry must be stale after SyncGeneration(5)")
	}
	// Syncing to the same or lower value must not invalidate again.
	c.Put("b", true)
	c.SyncGeneration(5)
	c.SyncGeneration(3)
	if _, ok := c.Get("b"); !ok {
		t.Fatal("entry lost by idempotent SyncGeneration")
	}
	if g := c.Generation(); g != 5 {
		t.Fatalf("Generation = %d; want 5", g)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(Config{TTL: time.Minute})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("a", true)
	now = now.Add(30 * time.Second)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(31 * time.Second)
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not evicted on contact")
	}
}

// TestTTLBoundary pins the exact expiry semantics: the TTL promises "served
// strictly before expires", so an entry touched exactly at its deadline
// (expires == now) is already expired — a stale-eviction miss, counted as
// stale, not capacity. One nanosecond before the deadline it still hits.
func TestTTLBoundary(t *testing.T) {
	c := New(Config{TTL: time.Minute})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("a", true)

	now = now.Add(time.Minute - time.Nanosecond) // one before the deadline
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry must hit strictly before its deadline")
	}

	now = now.Add(time.Nanosecond) // exactly the deadline
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry stored at expires == now must miss")
	}
	st := c.Snapshot()
	if st.EvictionsStale != 1 || st.EvictionsCapacity != 0 {
		t.Fatalf("stats = %+v; want exactly one stale eviction and no capacity evictions", st)
	}
	if st.Evictions != st.EvictionsStale+st.EvictionsCapacity {
		t.Fatalf("Evictions %d is not the sum of its parts in %+v", st.Evictions, st)
	}
}

// TestGenerationWraparound pins that generation comparison is by equality,
// not order: a generation that wraps uint64 back to a previously-used value
// still invalidates entries stamped under the pre-wrap value, and entries
// can be stored and hit at the wrapped generation.
func TestGenerationWraparound(t *testing.T) {
	c := New(Config{})
	c.SyncGeneration(^uint64(0)) // max uint64
	c.Put("a", true)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry at max generation must hit")
	}
	c.Bump() // wraps to 0
	if g := c.Generation(); g != 0 {
		t.Fatalf("Generation after wrap = %d; want 0", g)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("pre-wrap entry must miss after the generation wrapped")
	}
	c.Put("b", false)
	if alive, ok := c.Get("b"); !ok || alive {
		t.Fatal("entry stored at the wrapped generation must hit")
	}
}

// TestEvictionSplit separates the two eviction reasons end to end: LRU
// rotation counts as capacity, generation supersession as stale.
func TestEvictionSplit(t *testing.T) {
	c := New(Config{MaxEntries: 1})
	c.Put("a", true)
	c.Put("b", true) // rotates a out: capacity
	c.Bump()
	c.Get("b") // stale on contact: stale
	st := c.Snapshot()
	if st.EvictionsCapacity != 1 || st.EvictionsStale != 1 || st.Evictions != 2 {
		t.Fatalf("stats = %+v; want 1 capacity + 1 stale = 2 evictions", st)
	}
}

func TestKeyBindingSignature(t *testing.T) {
	kws := []string{"widom", "trio"}
	// Same label, same copies, same keywords: one key.
	if Key("L", 0b10, kws) != Key("L", 0b10, kws) {
		t.Fatal("identical probes must share a key")
	}
	// Copy 1 only: the second keyword must not matter.
	if Key("L", 0b10, []string{"widom", "trio"}) != Key("L", 0b10, []string{"widom", "other"}) {
		t.Fatal("unused keyword slots must not split the key")
	}
	// Different keyword for a used copy: different key.
	if Key("L", 0b10, []string{"widom"}) == Key("L", 0b10, []string{"ullman"}) {
		t.Fatal("binding must be part of the key")
	}
	// Copy index matters: keyword 1 on copy 1 vs copy 2.
	if Key("L", 0b10, []string{"widom", "widom"}) == Key("L", 0b100, []string{"widom", "widom"}) {
		t.Fatal("copy positions must be part of the key")
	}
	// Label matters.
	if Key("L1", 0b10, kws) == Key("L2", 0b10, kws) {
		t.Fatal("label must be part of the key")
	}
}

func TestPurge(t *testing.T) {
	c := New(Config{})
	c.Put("a", true)
	c.Put("b", true)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit after Purge")
	}
}

// TestConcurrent hammers the cache from many goroutines; run under -race.
func TestConcurrent(t *testing.T) {
	c := New(Config{MaxEntries: 64, TTL: time.Minute})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%100)
				if i%7 == 0 {
					c.Bump()
				}
				c.Put(key, i%2 == 0)
				c.Get(key)
				if i%50 == 0 {
					c.Snapshot()
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
}
