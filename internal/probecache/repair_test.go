package probecache

import (
	"testing"
	"time"

	"kwsdbg/internal/vervec"
)

// fpItem is a one-table footprint over Item with one bound term.
func fpItem() Footprint {
	return Footprint{
		Tables: []string{vervec.TableKey("Item")},
		Terms:  []string{vervec.TermKey("lilac")},
	}
}

func TestDisjointWriteInvalidatesNothing(t *testing.T) {
	vv := vervec.New()
	c := New(Config{})
	vw := c.SyncVersions(vv)
	c.PutFP("dead", false, fpItem(), vw)
	c.PutFP("alive", true, fpItem(), vw)

	// A write to an unrelated table — even one carrying the entry's own
	// term — must leave both verdicts served as hits.
	vv.Bump(vervec.TableKey("Person"), vervec.TermKey("lilac"))
	c.SyncVersions(vv)
	if _, outcome := c.Lookup("dead"); outcome != Hit {
		t.Fatalf("dead verdict after disjoint write: outcome %v, want Hit", outcome)
	}
	if _, outcome := c.Lookup("alive"); outcome != Hit {
		t.Fatalf("alive verdict after disjoint write: outcome %v, want Hit", outcome)
	}
	if st := c.Snapshot(); st.EvictionsStale != 0 || st.Suspects != 0 {
		t.Fatalf("disjoint write caused invalidation: %+v", st)
	}
}

func TestMonotoneRepairLifecycle(t *testing.T) {
	vv := vervec.New()
	c := New(Config{})
	vw := c.SyncVersions(vv)
	c.PutFP("dead", false, fpItem(), vw)
	c.PutFP("alive", true, fpItem(), vw)

	// A write into the footprint table: the alive verdict still hits (an
	// INSERT is monotone — R1), the dead one becomes a repair candidate.
	vv.Bump(vervec.TableKey("Item"), vervec.TermKey("candle"))
	vw = c.SyncVersions(vv)
	if alive, outcome := c.Lookup("alive"); outcome != Hit || !alive {
		t.Fatalf("alive verdict after touching write: (%v, %v), want (true, Hit)", alive, outcome)
	}
	if _, outcome := c.Lookup("dead"); outcome != Suspect {
		t.Fatalf("dead verdict after touching write: outcome %v, want Suspect", outcome)
	}
	if outcome := secondOutcome(c, "dead"); outcome != Suspect {
		t.Fatalf("repeat lookup of suspect: %v, want Suspect again", outcome)
	}
	st := c.Snapshot()
	if st.Suspects != 1 {
		t.Fatalf("Suspects = %d, want 1 (downgrade counts once)", st.Suspects)
	}
	if st.Entries != 2 {
		t.Fatalf("Entries = %d, want 2 (suspect retained, not evicted)", st.Entries)
	}

	// The re-probe stores the fresh verdict: that is the repair.
	c.PutFP("dead", true, fpItem(), vw)
	if st := c.Snapshot(); st.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1", st.Repairs)
	}
	if alive, outcome := c.Lookup("dead"); outcome != Hit || !alive {
		t.Fatalf("repaired verdict: (%v, %v), want (true, Hit)", alive, outcome)
	}
}

func secondOutcome(c *Cache, key string) Outcome {
	_, o := c.Lookup(key)
	return o
}

func TestEpochBumpStalesFootprintEntries(t *testing.T) {
	vv := vervec.New()
	c := New(Config{})
	vw := c.SyncVersions(vv)
	c.PutFP("alive", true, fpItem(), vw)
	c.PutFP("dead", false, fpItem(), vw)

	// A non-monotone mutation (in-place update) voids the monotone repair
	// argument: both entries are plainly stale, alive ones included.
	vv.BumpEpoch()
	c.SyncVersions(vv)
	if _, outcome := c.Lookup("alive"); outcome != MissStale {
		t.Fatalf("alive verdict after epoch bump: %v, want MissStale", outcome)
	}
	if _, outcome := c.Lookup("dead"); outcome != MissStale {
		t.Fatalf("dead verdict after epoch bump: %v, want MissStale", outcome)
	}
	if st := c.Snapshot(); st.EvictionsStale != 2 || st.Suspects != 0 {
		t.Fatalf("epoch bump accounting: %+v", st)
	}
}

// TestSuspectTTLLapseIsStaleEviction pins the satellite requirement: a
// suspect whose TTL lapses before its repair lands is an expired eviction
// (EvictionsStale), not a repair candidate — the TTL check runs before the
// footprint check.
func TestSuspectTTLLapseIsStaleEviction(t *testing.T) {
	vv := vervec.New()
	c := New(Config{TTL: time.Minute})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	vw := c.SyncVersions(vv)
	c.PutFP("dead", false, fpItem(), vw)

	vv.Bump(vervec.TableKey("Item"))
	c.SyncVersions(vv)
	if _, outcome := c.Lookup("dead"); outcome != Suspect {
		t.Fatalf("outcome %v, want Suspect before the TTL lapses", outcome)
	}

	now = now.Add(time.Minute) // expires == now: already expired
	if _, outcome := c.Lookup("dead"); outcome != MissExpired {
		t.Fatalf("lapsed suspect: outcome %v, want MissExpired", outcome)
	}
	st := c.Snapshot()
	if st.EvictionsStale != 1 {
		t.Fatalf("EvictionsStale = %d, want 1 (lapsed suspect is an eviction)", st.EvictionsStale)
	}
	if st.Repairs != 0 {
		t.Fatalf("Repairs = %d, want 0 (a lapsed suspect must not count as repaired)", st.Repairs)
	}
	if st.Entries != 0 {
		t.Fatalf("Entries = %d, want 0 (lapsed suspect evicted on contact)", st.Entries)
	}
	// A later store is a plain cold fill, not a repair.
	c.PutFP("dead", true, fpItem(), c.SyncVersions(vv))
	if st := c.Snapshot(); st.Repairs != 0 {
		t.Fatalf("Repairs after refill = %d, want 0", st.Repairs)
	}
}

func TestLegacyPutKeepsGenerationSemantics(t *testing.T) {
	vv := vervec.New()
	c := New(Config{})
	c.Put("legacy", true) // no footprint, no view
	vv.Bump(vervec.TableKey("Item"))
	c.SyncVersions(vv)
	if _, outcome := c.Lookup("legacy"); outcome != Hit {
		t.Fatalf("legacy entry after vector-only write: %v, want Hit", outcome)
	}
	c.Bump() // generation still invalidates everything
	if _, outcome := c.Lookup("legacy"); outcome != MissStale {
		t.Fatalf("legacy entry after Bump: %v, want MissStale", outcome)
	}
}

func TestFootprintTables(t *testing.T) {
	vv := vervec.New()
	c := New(Config{})
	vw := c.SyncVersions(vv)
	c.PutFP("a", false, Footprint{Tables: []string{vervec.TableKey("Person"), vervec.TableKey("Item")}}, vw)
	c.PutFP("b", true, Footprint{Tables: []string{vervec.TableKey("Item")}, Terms: []string{vervec.TermKey("x")}}, vw)
	got := c.FootprintTables()
	want := []string{vervec.TableKey("Item"), vervec.TableKey("Person")}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("FootprintTables = %q, want %q", got, want)
	}
}
