package report

import (
	"bytes"
	"testing"

	"kwsdbg/internal/core"
)

// The acceptance property at the report boundary, bitset edition: a
// bitset-path run renders byte-identical report text and JSON (including SQL
// text) to the prepared-path run at every worker count.
func TestBitsetPreparedByteIdentity(t *testing.T) {
	sys, _ := exampleOutput(t)
	for _, kws := range [][]string{
		{"saffron", "scented", "candle"},
		{"red", "oil"},
		{"vanilla"},
	} {
		ref, err := sys.Debug(kws, core.Options{Strategy: core.SBH, BypassCache: true})
		if err != nil {
			t.Fatalf("Debug prepared %v: %v", kws, err)
		}
		var wantJSON bytes.Buffer
		if err := JSON(&wantJSON, scrub(ref), true); err != nil {
			t.Fatalf("JSON: %v", err)
		}
		var wantText bytes.Buffer
		if err := Text(&wantText, scrub(ref), Options{ShowSQL: true}); err != nil {
			t.Fatalf("Text: %v", err)
		}
		for _, workers := range []int{1, 4, 8} {
			out, err := sys.Debug(kws, core.Options{Strategy: core.SBH, Workers: workers, BypassCache: true, BitsetProbes: true})
			if err != nil {
				t.Fatalf("Debug bitset %v workers=%d: %v", kws, workers, err)
			}
			var gotJSON bytes.Buffer
			if err := JSON(&gotJSON, scrub(out), true); err != nil {
				t.Fatalf("JSON: %v", err)
			}
			if !bytes.Equal(gotJSON.Bytes(), wantJSON.Bytes()) {
				t.Errorf("%v workers=%d: bitset JSON diverges from prepared JSON\ngot:  %s\nwant: %s",
					kws, workers, gotJSON.String(), wantJSON.String())
			}
			var gotText bytes.Buffer
			if err := Text(&gotText, scrub(out), Options{ShowSQL: true}); err != nil {
				t.Fatalf("Text: %v", err)
			}
			if !bytes.Equal(gotText.Bytes(), wantText.Bytes()) {
				t.Errorf("%v workers=%d: bitset report text diverges from prepared text\ngot:\n%s\nwant:\n%s",
					kws, workers, gotText.String(), wantText.String())
			}
		}
	}
}
