package report

import (
	"bytes"
	"testing"

	"kwsdbg/internal/core"
)

// scrub zeroes the fields the determinism guarantee excludes — wall times and
// cache accounting — so the rendered JSON can be compared byte for byte.
func scrub(out *core.Output) *core.Output {
	n := *out
	n.Stats.MapTime, n.Stats.PruneTime, n.Stats.MTNTime = 0, 0, 0
	n.Stats.SQLTime, n.Stats.TraverseTime = 0, 0
	n.Stats.CacheHits = 0
	n.Stats.PlanCompiles, n.Stats.CandSetHits, n.Stats.CandSetMisses = 0, 0, 0
	return &n
}

// The acceptance property at the report boundary: a prepared-path run renders
// byte-identical JSON (including SQL text) to the text-path run at every
// worker count.
func TestJSONPreparedTextByteIdentity(t *testing.T) {
	sys, _ := exampleOutput(t)
	for _, kws := range [][]string{
		{"saffron", "scented", "candle"},
		{"red", "oil"},
		{"vanilla"},
	} {
		ref, err := sys.Debug(kws, core.Options{Strategy: core.SBH, BypassCache: true, TextProbes: true})
		if err != nil {
			t.Fatalf("Debug text %v: %v", kws, err)
		}
		var want bytes.Buffer
		if err := JSON(&want, scrub(ref), true); err != nil {
			t.Fatalf("JSON: %v", err)
		}
		for _, workers := range []int{1, 4, 8} {
			out, err := sys.Debug(kws, core.Options{Strategy: core.SBH, Workers: workers, BypassCache: true})
			if err != nil {
				t.Fatalf("Debug prepared %v workers=%d: %v", kws, workers, err)
			}
			var got bytes.Buffer
			if err := JSON(&got, scrub(out), true); err != nil {
				t.Fatalf("JSON: %v", err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("%v workers=%d: prepared JSON diverges from text JSON\ngot:  %s\nwant: %s",
					kws, workers, got.String(), want.String())
			}
		}
	}
}
