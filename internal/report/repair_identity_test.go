package report

import (
	"bytes"
	"testing"

	"kwsdbg/internal/core"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/probecache"
)

// renderable strips the fields that legitimately differ between a cold run
// and a warm repaired run of the same data: wall times and cache accounting.
// Everything else — the classifications, the MPAN frontiers, the probe count
// SQLExecuted — is covered by the determinism contract and must survive
// rendering byte-for-byte.
func renderable(out *core.Output) *core.Output {
	n := *out
	n.Stats.MapTime = 0
	n.Stats.PruneTime = 0
	n.Stats.MTNTime = 0
	n.Stats.SQLTime = 0
	n.Stats.TraverseTime = 0
	n.Stats.CacheHits = 0
	n.Stats.PlanCompiles = 0
	n.Stats.CandSetHits = 0
	n.Stats.CandSetMisses = 0
	n.Stats.Suspects = 0
	n.Stats.Repaired = 0
	return &n
}

// TestRepairedRunRendersIdenticalReport is the acceptance property of the
// version-vector fix at the outermost layer: after an INSERT lands between
// runs, the warm run — answering from repaired and still-fresh cached
// verdicts — must render the exact same bytes as a cold run of the changed
// data, in both the text and the JSON form, at every worker count.
func TestRepairedRunRendersIdenticalReport(t *testing.T) {
	eng, err := figure2.Engine()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetProbeCache(probecache.New(probecache.Config{}))
	kws := []string{"saffron", "scented", "candle"}
	if _, err := sys.Debug(kws, core.Options{Strategy: core.SBH}); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if _, err := eng.Exec(
		"INSERT INTO Item VALUES (5, 'saffron scented candle', 2, 4, 4, 9.5, 'new stock')"); err != nil {
		t.Fatalf("Exec(INSERT): %v", err)
	}

	render := func(out *core.Output) (text, js []byte) {
		t.Helper()
		n := renderable(out)
		var tb, jb bytes.Buffer
		if err := Text(&tb, n, Options{ShowSQL: true}); err != nil {
			t.Fatal(err)
		}
		if err := JSON(&jb, n, true); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), jb.Bytes()
	}

	cold, err := sys.Debug(kws, core.Options{Strategy: core.SBH, BypassCache: true})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	coldText, coldJSON := render(cold)
	if !bytes.Contains(coldText, []byte("ALIVE")) {
		t.Fatalf("cold report shows no alive query after the insert:\n%s", coldText)
	}

	for _, workers := range []int{1, 4, 8} {
		warm, err := sys.Debug(kws, core.Options{Strategy: core.SBH, Workers: workers})
		if err != nil {
			t.Fatalf("warm run workers=%d: %v", workers, err)
		}
		warmText, warmJSON := render(warm)
		if !bytes.Equal(warmText, coldText) {
			t.Errorf("workers=%d: text report diverges from cold run\nwarm:\n%s\ncold:\n%s",
				workers, warmText, coldText)
		}
		if !bytes.Equal(warmJSON, coldJSON) {
			t.Errorf("workers=%d: JSON report diverges from cold run\nwarm:\n%s\ncold:\n%s",
				workers, warmJSON, coldJSON)
		}
	}
}
