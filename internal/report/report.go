// Package report renders debugger outputs for people and for machines: an
// indented text form for terminals (what cmd/kwsdbg prints) and a stable
// JSON form for tooling that post-processes non-answer explanations (the
// paper's §1 suggests filters and priority hierarchies are built downstream
// of the debugger — JSON is the interchange point for that).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"kwsdbg/internal/core"
	"kwsdbg/internal/obs"
)

// Options controls text rendering.
type Options struct {
	// ShowSQL includes each reported query's SQL text.
	ShowSQL bool
	// MaxMPANs caps the explanations printed per non-answer (0 = all).
	MaxMPANs int
	// Preview fetches up to this many result tuples per alive query; it
	// requires Sys to be set.
	Preview int
	// Sys supplies result fetching for Preview.
	Sys *core.System
}

// Text writes the human-readable report.
func Text(w io.Writer, out *core.Output, opts Options) error {
	if len(out.NonKeywords) > 0 {
		_, err := fmt.Fprintf(w, "keywords not found anywhere in the data: %s\n",
			strings.Join(out.NonKeywords, ", "))
		return err
	}
	if _, err := fmt.Fprintf(w, "%d answer queries, %d non-answer queries (%d SQL probes, %v)\n",
		len(out.Answers), len(out.NonAnswers), out.Stats.SQLExecuted, out.Stats.SQLTime); err != nil {
		return err
	}
	if out.Incomplete {
		if _, err := fmt.Fprintf(w, "INCOMPLETE: %s exhausted; everything below is guaranteed, %d candidate networks left unclassified\n",
			out.IncompleteReason, len(out.Unclassified)); err != nil {
			return err
		}
	}
	for _, a := range out.Answers {
		if _, err := fmt.Fprintf(w, "ALIVE %s\n", a.Tree); err != nil {
			return err
		}
		if opts.ShowSQL {
			fmt.Fprintf(w, "      %s\n", a.SQL)
		}
		if opts.Preview > 0 && opts.Sys != nil {
			preview(w, opts.Sys, out.Keywords, a.NodeID, opts.Preview)
		}
	}
	for _, na := range out.NonAnswers {
		if _, err := fmt.Fprintf(w, "DEAD  %s\n", na.Query.Tree); err != nil {
			return err
		}
		if opts.ShowSQL {
			fmt.Fprintf(w, "      %s\n", na.Query.SQL)
		}
		shown := 0
		for _, p := range na.MPANs {
			if opts.MaxMPANs > 0 && shown >= opts.MaxMPANs {
				fmt.Fprintf(w, "      ... and %d more maximal alive sub-queries\n", len(na.MPANs)-shown)
				break
			}
			fmt.Fprintf(w, "      alive up to: %s\n", p.Tree)
			if opts.ShowSQL {
				fmt.Fprintf(w, "        %s\n", p.SQL)
			}
			shown++
		}
		if na.Incomplete {
			fmt.Fprintf(w, "      (explanation incomplete: budget exhausted, more maximal alive sub-queries may exist)\n")
		}
	}
	for _, u := range out.Unclassified {
		if _, err := fmt.Fprintf(w, "UNKNOWN %s (not classified before %s exhausted)\n",
			u.Tree, out.IncompleteReason); err != nil {
			return err
		}
	}
	return nil
}

func preview(w io.Writer, sys *core.System, keywords []string, nodeID, limit int) {
	cols, rows, err := sys.Results(nodeID, keywords, limit)
	if err != nil {
		fmt.Fprintf(w, "      (preview failed: %v)\n", err)
		return
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%s=%s", cols[i], v.String())
		}
		line := strings.Join(parts, " ")
		if len(line) > 160 {
			line = line[:157] + "..."
		}
		fmt.Fprintf(w, "      %s\n", line)
	}
}

// jsonOutput is the stable JSON schema.
type jsonOutput struct {
	Keywords    []string    `json:"keywords"`
	NonKeywords []string    `json:"non_keywords,omitempty"`
	Answers     []jsonQuery `json:"answers"`
	NonAnswers  []jsonDead  `json:"non_answers"`
	// Incomplete marks a partial result: the run's deadline or probe budget
	// ran out. incomplete_reason is "probe_budget" or "deadline", and
	// unclassified lists the candidate networks never settled. Everything in
	// answers/non_answers is still a true classification.
	Incomplete       bool        `json:"incomplete,omitempty"`
	IncompleteReason string      `json:"incomplete_reason,omitempty"`
	Unclassified     []jsonQuery `json:"unclassified,omitempty"`
	Stats            jsonStats   `json:"stats"`
	// Trace is the per-request span tree, present when the caller traced the
	// run (the server's ?trace=1).
	Trace *obs.Span `json:"trace,omitempty"`
}

type jsonQuery struct {
	Node  int    `json:"node"`
	Level int    `json:"level"`
	Tree  string `json:"tree"`
	SQL   string `json:"sql,omitempty"`
}

type jsonDead struct {
	Query jsonQuery   `json:"query"`
	MPANs []jsonQuery `json:"mpans"`
	// BudgetExhausted marks an explanation the governor cut short: the MPANs
	// listed are guaranteed, but more may exist.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
}

type jsonStats struct {
	Strategy     string `json:"strategy"`
	LatticeNodes int    `json:"lattice_nodes"`
	PrunedNodes  int    `json:"pruned_nodes"`
	MTNs         int    `json:"mtns"`
	SQLExecuted  int    `json:"sql_executed"`
	Inferred     int    `json:"inferred"`
	// CacheHits is how many of sql_executed were answered by the
	// cross-request probe cache; sql_issued is the remainder that actually
	// reached the database.
	CacheHits int     `json:"cache_hits"`
	SQLIssued int     `json:"sql_issued"`
	SQLMillis float64 `json:"sql_ms"`
}

// JSONOptions controls the machine-readable rendering.
type JSONOptions struct {
	// ShowSQL includes each reported query's SQL text.
	ShowSQL bool
	// Trace, when non-nil, embeds the request's span tree.
	Trace *obs.Span
}

// JSON writes the machine-readable report.
func JSON(w io.Writer, out *core.Output, showSQL bool) error {
	return JSONOpts(w, out, JSONOptions{ShowSQL: showSQL})
}

// JSONOpts is JSON with the full option set.
func JSONOpts(w io.Writer, out *core.Output, opts JSONOptions) error {
	showSQL := opts.ShowSQL
	conv := func(q core.QueryInfo) jsonQuery {
		jq := jsonQuery{Node: q.NodeID, Level: q.Level, Tree: q.Tree}
		if showSQL {
			jq.SQL = q.SQL
		}
		return jq
	}
	jo := jsonOutput{
		Keywords:         out.Keywords,
		NonKeywords:      out.NonKeywords,
		Answers:          []jsonQuery{},
		NonAnswers:       []jsonDead{},
		Incomplete:       out.Incomplete,
		IncompleteReason: out.IncompleteReason,
		Trace:            opts.Trace,
		Stats: jsonStats{
			Strategy:     out.Stats.Strategy.String(),
			LatticeNodes: out.Stats.LatticeNodes,
			PrunedNodes:  out.Stats.PrunedNodes,
			MTNs:         out.Stats.MTNs,
			SQLExecuted:  out.Stats.SQLExecuted,
			Inferred:     out.Stats.Inferred,
			CacheHits:    out.Stats.CacheHits,
			SQLIssued:    out.Stats.SQLIssued(),
			SQLMillis:    float64(out.Stats.SQLTime.Microseconds()) / 1000,
		},
	}
	for _, a := range out.Answers {
		jo.Answers = append(jo.Answers, conv(a))
	}
	for _, na := range out.NonAnswers {
		jd := jsonDead{Query: conv(na.Query), MPANs: []jsonQuery{}, BudgetExhausted: na.Incomplete}
		for _, p := range na.MPANs {
			jd.MPANs = append(jd.MPANs, conv(p))
		}
		jo.NonAnswers = append(jo.NonAnswers, jd)
	}
	for _, u := range out.Unclassified {
		jo.Unclassified = append(jo.Unclassified, conv(u))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jo)
}
