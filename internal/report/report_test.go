package report

import (
	"encoding/json"
	"strings"
	"testing"

	"kwsdbg/internal/core"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
)

func exampleOutput(t *testing.T) (*core.System, *core.Output) {
	t.Helper()
	eng, err := figure2.Engine()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Debug([]string{"saffron", "scented", "candle"}, core.Options{Strategy: core.SBH})
	if err != nil {
		t.Fatal(err)
	}
	return sys, out
}

func TestTextBasic(t *testing.T) {
	_, out := exampleOutput(t)
	var sb strings.Builder
	if err := Text(&sb, out, Options{}); err != nil {
		t.Fatalf("Text: %v", err)
	}
	got := sb.String()
	for _, want := range []string{
		"1 answer queries, 4 non-answer queries",
		"ALIVE Item#1-Item#2-PType#3",
		"DEAD  Color#1-Item#2-PType#3",
		"alive up to: Item#2-PType#3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("text missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "SELECT") {
		t.Error("SQL shown without ShowSQL")
	}
}

func TestTextShowSQLAndPreview(t *testing.T) {
	sys, out := exampleOutput(t)
	var sb strings.Builder
	if err := Text(&sb, out, Options{ShowSQL: true, Preview: 2, Sys: sys}); err != nil {
		t.Fatalf("Text: %v", err)
	}
	got := sb.String()
	if !strings.Contains(got, "SELECT * FROM") {
		t.Error("ShowSQL did not include SQL")
	}
	if !strings.Contains(got, "t0.") && !strings.Contains(got, "=") {
		t.Error("preview rows missing")
	}
}

func TestTextMaxMPANs(t *testing.T) {
	_, out := exampleOutput(t)
	var sb strings.Builder
	if err := Text(&sb, out, Options{MaxMPANs: 1}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "more maximal alive sub-queries") {
		t.Errorf("cap notice missing:\n%s", got)
	}
}

func TestTextNonKeywords(t *testing.T) {
	out := &core.Output{Keywords: []string{"zzz"}, NonKeywords: []string{"zzz"}}
	var sb strings.Builder
	if err := Text(&sb, out, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "not found anywhere") {
		t.Errorf("text = %q", sb.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	_, out := exampleOutput(t)
	var sb strings.Builder
	if err := JSON(&sb, out, true); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded struct {
		Keywords   []string `json:"keywords"`
		Answers    []any    `json:"answers"`
		NonAnswers []struct {
			Query struct {
				Tree string `json:"tree"`
				SQL  string `json:"sql"`
			} `json:"query"`
			MPANs []any `json:"mpans"`
		} `json:"non_answers"`
		Stats struct {
			Strategy    string `json:"strategy"`
			MTNs        int    `json:"mtns"`
			SQLExecuted int    `json:"sql_executed"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded.Answers) != 1 || len(decoded.NonAnswers) != 4 {
		t.Errorf("answers=%d nonanswers=%d", len(decoded.Answers), len(decoded.NonAnswers))
	}
	if decoded.Stats.Strategy != "SBH" || decoded.Stats.MTNs != 5 {
		t.Errorf("stats = %+v", decoded.Stats)
	}
	if decoded.NonAnswers[0].Query.SQL == "" {
		t.Error("showSQL=true omitted SQL")
	}
	// Without SQL.
	sb.Reset()
	if err := JSON(&sb, out, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "SELECT") {
		t.Error("showSQL=false leaked SQL")
	}
}

func TestJSONEmptyOutput(t *testing.T) {
	out := &core.Output{Keywords: []string{"a"}}
	var sb strings.Builder
	if err := JSON(&sb, out, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"answers": []`) {
		t.Errorf("empty arrays must serialize as [], got %s", sb.String())
	}
}
