package server

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"kwsdbg/internal/obs"
	"kwsdbg/internal/obs/flight"
)

// Admission control: the expensive endpoints (/debug, /search — both bottom
// out in Phase 3 probing) pass through a semaphore bounded by
// Server.MaxInflight. A request that cannot take a slot waits up to
// Server.AdmissionWait and is then shed with 429 and a Retry-After header —
// under the ROADMAP's "millions of users" north star, one pathological query
// must degrade into a fast, explicit rejection for the requests behind it,
// not an unbounded queue. Cheap endpoints (/healthz, /metrics) bypass
// admission entirely so operators can observe an overloaded server.
var (
	mShed = obs.Default.Counter("kwsdbg_shed_total",
		"Requests rejected with 429 because every admission slot stayed occupied for the full bounded wait.")
	mInflight = obs.Default.Gauge("kwsdbg_inflight",
		"Requests currently holding an admission slot.")
	mBudgetExhausted = obs.Default.CounterVec("kwsdbg_probe_budget_exhausted_total",
		"Debug responses returned incomplete because a per-request allowance ran out, by reason.", "reason")
)

// DefaultAdmissionWait bounds how long an over-limit request queues for a
// slot when Server.AdmissionWait is zero.
const DefaultAdmissionWait = 100 * time.Millisecond

// admit reserves an admission slot, waiting at most AdmissionWait for one to
// free up. It returns a release func and true on success, or false when the
// request should be shed. With MaxInflight <= 0 admission is unlimited.
func (s *Server) admit(ctx context.Context) (func(), bool) {
	s.semOnce.Do(func() {
		if s.MaxInflight > 0 {
			s.sem = make(chan struct{}, s.MaxInflight)
		}
	})
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
	default:
		wait := s.AdmissionWait
		if wait <= 0 {
			wait = DefaultAdmissionWait
		}
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case s.sem <- struct{}{}:
		case <-t.C:
			return nil, false
		case <-ctx.Done():
			return nil, false
		}
	}
	mInflight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mInflight.Add(-1)
			<-s.sem
		})
	}, true
}

// shed rejects an unadmitted request: 429 with a Retry-After hint sized to
// the bounded wait, so well-behaved clients back off instead of hammering.
// The rejection lands in the flight ring too, so /debug/flight shows shed
// requests interleaved with the probe traffic that crowded them out.
func (s *Server) shed(w http.ResponseWriter, r *http.Request) {
	mShed.Inc()
	if s.Recorder != nil {
		flight.NewLog(s.Recorder, obs.RequestID(r.Context()), false).
			Emit(flight.Shed, -1, "", false, 0, "capacity")
	}
	retry := s.AdmissionWait
	if retry <= 0 {
		retry = DefaultAdmissionWait
	}
	secs := int(retry / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, http.StatusTooManyRequests,
		map[string]string{"error": "server at capacity; retry after the indicated delay"})
}
