package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"kwsdbg/internal/obs/flight"
	"kwsdbg/internal/probecache"
)

// TestLedgerDiffAttributesWarmVsCold is the flight recorder's end-to-end
// acceptance path: the same query runs twice through the full HTTP stack with
// ledger capture on — once against an empty probe cache (cold) and once warm —
// and diffing the two ledgers must attribute the whole SQL-time difference to
// the probes that missed the cache in the cold run.
func TestLedgerDiffAttributesWarmVsCold(t *testing.T) {
	s := testServer(t)
	s.sys.SetProbeCache(probecache.New(probecache.Config{}))
	s.LedgerDir = t.TempDir()

	debug := func() string {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/debug?q=saffron+scented+candle&ledger=1", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		path := rec.Header().Get("X-Kwsdbg-Ledger")
		if path == "" {
			t.Fatal("response carries no X-Kwsdbg-Ledger header")
		}
		if filepath.Dir(path) != s.LedgerDir {
			t.Fatalf("ledger %q written outside the configured directory %q", path, s.LedgerDir)
		}
		return path
	}
	coldPath := debug()
	warmPath := debug()

	load := func(path string) (*flight.Ledger, *flight.Analysis) {
		t.Helper()
		led, err := flight.LoadLedger(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		return led, flight.Analyze(led)
	}
	coldLed, cold := load(coldPath)
	warmLed, warm := load(warmPath)

	if coldLed.Summary == nil || warmLed.Summary == nil {
		t.Fatal("ledger missing its closing run summary")
	}
	if coldLed.Summary.CacheHits != 0 {
		t.Errorf("cold run reports %d cache hits, want 0", coldLed.Summary.CacheHits)
	}
	if warmLed.Summary.CacheHits == 0 {
		t.Error("warm run reports no cache hits")
	}
	if warm.TotalSQL != 0 {
		t.Errorf("warm run spent %v in SQL, want 0 (every probe should hit the cache)", warm.TotalSQL)
	}
	if cold.TotalSQL <= 0 {
		t.Fatalf("cold run spent %v in SQL, want > 0", cold.TotalSQL)
	}

	// Diff with the warm run as baseline: "why was the cold run slower?"
	d := flight.Diff(warm, cold)
	if d.SQLDelta != cold.TotalSQL-warm.TotalSQL {
		t.Errorf("SQLDelta = %v, want %v", d.SQLDelta, cold.TotalSQL-warm.TotalSQL)
	}
	if d.Explained != d.SQLDelta {
		t.Errorf("Explained = %v, want the full SQL delta %v: every slow probe newly missed the cache", d.Explained, d.SQLDelta)
	}
	if d.NewlyMissed == 0 {
		t.Error("diff flagged no newly-missed probes")
	}
	var sb strings.Builder
	d.RenderDiff(&sb, "warm", "cold", 10)
	for _, want := range []string{"warm", "cold", "newly-missed"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered diff missing %q:\n%s", want, sb.String())
		}
	}
}

// TestDebugRunsAndFlightEndpoints covers the recorder's read-side endpoints:
// /debug/runs serves recent run summaries newest first, /debug/flight dumps
// the ring (optionally filtered by request ID), and ledger=1 without a
// configured directory is a client error.
func TestDebugRunsAndFlightEndpoints(t *testing.T) {
	s := testServer(t)

	rec, _ := get(t, s, "/debug?q=saffron+scented+candle&ledger=1")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("ledger=1 without a ledger dir: status = %d, want 400", rec.Code)
	}

	rec, _ = get(t, s, "/debug?q=saffron+scented+candle")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug status = %d", rec.Code)
	}

	rec, body := get(t, s, "/debug/runs")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/runs status = %d", rec.Code)
	}
	runs := body["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("/debug/runs lists %d runs, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	if run["req"] == "" || run["events"].(float64) <= 0 || run["probes"].(float64) <= 0 {
		t.Errorf("run summary incomplete: %v", run)
	}

	rec, body = get(t, s, "/debug/flight")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/flight status = %d", rec.Code)
	}
	events := body["events"].([]any)
	if len(events) == 0 {
		t.Fatal("/debug/flight returned no events")
	}
	first := events[0].(map[string]any)
	if first["kind"] == nil || first["seq"].(float64) <= 0 {
		t.Errorf("event missing kind/seq: %v", first)
	}

	// Filtering by the run's request ID keeps its events; filtering by a
	// bogus ID yields none.
	reqID := run["req"].(string)
	rec, body = get(t, s, "/debug/flight?req="+reqID)
	if rec.Code != http.StatusOK || len(body["events"].([]any)) == 0 {
		t.Errorf("/debug/flight?req=%s: status %d, %d events", reqID, rec.Code, len(body["events"].([]any)))
	}
	_, body = get(t, s, "/debug/flight?req=no-such-request")
	if got := len(body["events"].([]any)); got != 0 {
		t.Errorf("bogus request filter returned %d events, want 0", got)
	}
}
