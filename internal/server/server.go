// Package server exposes the debugger and the search operation over HTTP as
// JSON, so the system can back a search box the way the paper's introduction
// frames it (e-commerce sites suppressing "no results found") while the
// debugging endpoint serves the developers behind it.
//
// Endpoints:
//
//	GET /debug?q=saffron+scented+candle[&strategy=SBH][&sql=1]
//	GET /search?q=red+candle[&k=10]
//	GET /healthz
//
// All responses are JSON; errors use {"error": "..."} with a 4xx/5xx status.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/report"
)

// Server wires a debugger into an http.Handler.
type Server struct {
	sys *core.System
	mux *http.ServeMux
	// Timeout bounds each request's probing work; zero means no bound.
	Timeout time.Duration
}

// New builds the handler around a ready system.
func New(sys *core.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux(), Timeout: 30 * time.Second}
	s.mux.HandleFunc("/debug", s.handleDebug)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) context(r *http.Request) (context.Context, context.CancelFunc) {
	if s.Timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.Timeout)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// keywords parses the q parameter into keyword fields.
func keywords(r *http.Request) ([]string, error) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		return nil, fmt.Errorf("missing q parameter")
	}
	return strings.Fields(q), nil
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	kws, err := keywords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	strat := core.SBH
	if name := r.URL.Query().Get("strategy"); name != "" {
		strat, err = parseStrategy(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	ctx, cancel := s.context(r)
	defer cancel()
	out, err := s.sys.DebugContext(ctx, kws, core.Options{Strategy: strat})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	showSQL := r.URL.Query().Get("sql") == "1"
	if err := report.JSON(w, out, showSQL); err != nil {
		writeError(w, http.StatusInternalServerError, err)
	}
}

// searchResponse is the /search JSON schema. When the query has no exact
// matches, partials carries the maximal sub-queries' results (the paper's
// Figure 1 behaviour) with the keywords each one covers.
type searchResponse struct {
	Keywords []string        `json:"keywords"`
	Missing  []string        `json:"missing,omitempty"`
	Results  []searchResult  `json:"results"`
	Partials []partialResult `json:"partials,omitempty"`
}

type searchResult struct {
	Score float64           `json:"score"`
	Tree  string            `json:"tree"`
	Tuple map[string]string `json:"tuple"`
}

type partialResult struct {
	Covered []string `json:"covered"`
	searchResult
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	kws, err := keywords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k <= 0 || k > 1000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k parameter %q", raw))
			return
		}
	}
	results, partials, missing, err := s.sys.SearchPartial(kws, k)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	conv := func(res core.SearchResult) searchResult {
		tuple := make(map[string]string, len(res.Tuple))
		for i, v := range res.Tuple {
			tuple[res.Columns[i]] = v.String()
		}
		return searchResult{Score: res.Score, Tree: res.Query.Tree, Tuple: tuple}
	}
	resp := searchResponse{Keywords: kws, Missing: missing, Results: []searchResult{}}
	for _, res := range results {
		resp.Results = append(resp.Results, conv(res))
	}
	for _, p := range partials {
		resp.Partials = append(resp.Partials, partialResult{Covered: p.Covered, searchResult: conv(p.SearchResult)})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":        "ok",
		"lattice_nodes": s.sys.Lattice().Len(),
		"levels":        s.sys.Lattice().Levels(),
		"tuples":        s.sys.Engine().Database().TotalRows(),
	})
}

func parseStrategy(name string) (core.Strategy, error) {
	switch strings.ToUpper(name) {
	case "BU":
		return core.BU, nil
	case "TD":
		return core.TD, nil
	case "BUWR":
		return core.BUWR, nil
	case "TDWR":
		return core.TDWR, nil
	case "SBH":
		return core.SBH, nil
	case "RE":
		return core.RE, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}
